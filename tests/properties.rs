//! Cross-crate property tests: metric invariants, prompt round-trips,
//! tokenizer monotonicity, curation invariants, cache identity.
//!
//! Reproducibility: every property's case stream is deterministic per
//! test name, shifted by the `SWAN_SEED` environment variable (default
//! 0). A failing property prints the seed and case number; re-running
//! with that `SWAN_SEED` exported replays the identical stream.

use proptest::prelude::*;
use swan::prelude::*;
use swan_core::metrics::{cell_eq, set_f1};
use swan_llm::prompt::{parse_row, render_value_row, row_values};
use swan_llm::{count_tokens, RowCompletionPrompt, RowExample};

proptest! {
    /// F1 is always in [0, 1]; it is 1 exactly when the sets agree.
    #[test]
    fn set_f1_bounds_and_identity(
        generated in proptest::collection::vec("[a-d]{1,3}", 0..6),
        truth in proptest::collection::vec("[a-d]{1,3}", 0..6),
    ) {
        let f1 = set_f1(&generated, &truth);
        prop_assert!((0.0..=1.0).contains(&f1));
        use std::collections::HashSet;
        let g: HashSet<&String> = generated.iter().collect();
        let t: HashSet<&String> = truth.iter().collect();
        if g == t {
            prop_assert_eq!(f1, 1.0);
        }
        if f1 == 1.0 {
            prop_assert_eq!(g, t);
        }
        // Symmetry.
        prop_assert_eq!(f1, set_f1(&truth, &generated));
    }

    /// Execution match is reflexive for any result set.
    #[test]
    fn execution_match_reflexive(
        cells in proptest::collection::vec(
            proptest::collection::vec(-100i64..100, 1..4),
            0..10,
        )
    ) {
        let rows: Vec<swan_sqlengine::Row> = cells
            .iter()
            .map(|r| r.iter().map(|&v| swan_sqlengine::Value::Integer(v)).collect::<Vec<_>>().into())
            .collect();
        let qr = QueryResult { columns: vec!["c".into()], rows, rows_affected: 0 };
        prop_assert!(execution_match(&qr, &qr, true));
        prop_assert!(execution_match(&qr, &qr, false));
    }

    /// cell_eq is symmetric.
    #[test]
    fn cell_eq_symmetric(a in -1000i64..1000, b in -1000i64..1000) {
        use swan_sqlengine::Value;
        let (x, y) = (Value::Integer(a), Value::Real(b as f64));
        prop_assert_eq!(cell_eq(&x, &y), cell_eq(&y, &x));
    }

    /// Quoted-row rendering round-trips arbitrary cell text.
    #[test]
    fn quoted_row_roundtrip(
        cells in proptest::collection::vec("[ -~]{0,12}", 1..6)
    ) {
        // Trim to mimic model output conventions: leading/trailing spaces
        // inside fields are not preserved by the tolerant parser.
        let cells: Vec<String> = cells.iter().map(|c| c.trim().to_string()).collect();
        let rendered = render_value_row(&cells);
        let back = row_values(&parse_row(&rendered));
        prop_assert_eq!(back, cells);
    }

    /// Row-completion prompts round-trip through render/parse for any
    /// printable key and column names.
    #[test]
    fn row_prompt_roundtrip(
        key in proptest::collection::vec("[A-Za-z0-9 .-]{1,12}", 1..3),
        n_cols in 1usize..5,
        shots in 0usize..3,
    ) {
        let key: Vec<String> = key.iter().map(|k| k.trim().to_string())
            .filter(|k| !k.is_empty()).collect();
        prop_assume!(!key.is_empty());
        let mut columns: Vec<String> = (0..key.len()).map(|i| format!("key{i}")).collect();
        columns.extend((0..n_cols).map(|i| format!("col{i}")));
        let examples = (0..shots)
            .map(|s| RowExample {
                key: key.iter().map(|k| format!("{k}{s}")).collect(),
                answer: columns.iter().map(|c| format!("v-{c}")).collect(),
            })
            .collect();
        let p = RowCompletionPrompt {
            db: "testdb".into(),
            columns,
            key_len: key.len(),
            value_lists: vec![("col0".into(), vec!["A".into(), "B".into()])],
            examples,
            target_key: key,
        };
        let back = RowCompletionPrompt::parse(&p.render()).unwrap();
        prop_assert_eq!(back, p);
    }

    /// Token counting is monotone under concatenation and zero only for
    /// whitespace.
    #[test]
    fn tokenizer_monotone(a in "[ -~]{0,60}", b in "[ -~]{0,60}") {
        let ta = count_tokens(&a);
        let tb = count_tokens(&b);
        let tab = count_tokens(&format!("{a} {b}"));
        prop_assert!(tab >= ta.max(tb));
        prop_assert!(tab <= ta + tb + 1);
    }
}

#[test]
fn curation_never_drops_key_columns() {
    // Every expansion's key columns must survive curation in the base
    // table — otherwise the PK-FK relationship of §3.4 breaks.
    let bench = SwanBenchmark::generate(&GenConfig::with_scale(0.01));
    for d in &bench.domains {
        for e in &d.curation.expansions {
            let base = d
                .curated
                .catalog()
                .get(&e.base_table)
                .unwrap_or_else(|| panic!("{}: base table {} missing", d.name, e.base_table));
            for k in &e.key_columns {
                assert!(
                    base.column_index(k).is_some(),
                    "{}: key column {}.{} dropped by curation",
                    d.name,
                    e.base_table,
                    k
                );
            }
        }
    }
}

#[test]
fn curated_is_a_projection_of_original() {
    // Every surviving column must exist in the original with identical
    // values row-by-row (curation only removes, never edits).
    let bench = SwanBenchmark::generate(&GenConfig::with_scale(0.01));
    for d in &bench.domains {
        for name in d.curated.catalog().table_names() {
            let cur = d.curated.catalog().get(&name).unwrap();
            let orig = d.original.catalog().get(&name).expect("table existed");
            assert_eq!(cur.len(), orig.len(), "{name}: row count preserved");
            for col in cur.column_names() {
                let ci = cur.column_index(&col).unwrap();
                let oi = orig.column_index(&col).expect("column existed");
                for (cr, or) in cur.rows.iter().zip(&orig.rows) {
                    assert_eq!(cr[ci], or[oi], "{name}.{col} value changed");
                }
            }
        }
    }
}

#[test]
fn exact_cache_returns_identical_completions() {
    use swan_llm::LlmResult;
    struct Fixed;
    impl LanguageModel for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn complete(&self, prompt: &str) -> LlmResult<swan_llm::Completion> {
            let tokens = swan_llm::TokenCount::of(prompt, "answer");
            self.usage_meter().record(tokens);
            Ok(swan_llm::Completion { text: format!("answer:{}", prompt.len()), tokens })
        }
        fn usage_meter(&self) -> &swan_llm::UsageMeter {
            static METER: std::sync::OnceLock<swan_llm::UsageMeter> = std::sync::OnceLock::new();
            METER.get_or_init(swan_llm::UsageMeter::new)
        }
    }
    let cached = CachedModel::new(Fixed, CachePolicy::Exact);
    for prompt in ["p1", "p2", "p1", "a much longer prompt", "p2"] {
        let first = cached.complete(prompt).unwrap().text;
        let second = cached.complete(prompt).unwrap().text;
        assert_eq!(first, second, "cache must return byte-identical text");
    }
}
