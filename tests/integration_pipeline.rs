//! Cross-crate integration tests: the full paper pipeline at small scale.

use std::sync::Arc;

use swan::prelude::*;

fn harness() -> Harness {
    Harness::new(0.02)
}

#[test]
fn benchmark_shape_matches_table1_structure() {
    let h = harness();
    assert_eq!(h.benchmark.domains.len(), 4);
    assert_eq!(h.benchmark.question_count(), 120);
    let expect = [
        ("california_schools", 3, 12),
        ("superhero", 8, 11),
        ("formula_1", 13, 12),
        ("european_football", 6, 12),
    ];
    for (name, tables, dropped) in expect {
        let d = h.benchmark.domain(name).unwrap();
        assert_eq!(d.table_count(), tables, "{name} table count");
        assert_eq!(d.curation.dropped_count(), dropped, "{name} dropped");
    }
}

#[test]
fn every_gold_query_runs_and_most_are_nonempty() {
    let h = harness();
    let mut nonempty = 0;
    for d in &h.benchmark.domains {
        for q in &d.questions {
            let r = h.gold.get(&q.id);
            if !r.rows.is_empty() {
                nonempty += 1;
            }
        }
    }
    assert!(nonempty >= 100, "most gold answers non-empty, got {nonempty}/120");
}

#[test]
fn every_hybrid_query_runs_after_materialization() {
    let h = harness();
    for d in &h.benchmark.domains {
        let model = SimulatedModel::new(ModelKind::Gpt4Turbo, h.kb.clone());
        let run = materialize(d, &model, &HqdlConfig { shots: 5, workers: 2 });
        for q in &d.questions {
            run.database
                .query(&q.hybrid_sql)
                .unwrap_or_else(|e| panic!("{} hybrid failed: {e}\n{}", q.id, q.hybrid_sql));
        }
    }
}

#[test]
fn every_udf_query_runs() {
    let h = harness();
    for d in &h.benchmark.domains {
        let model = Arc::new(SimulatedModel::new(ModelKind::Gpt35Turbo, h.kb.clone()));
        let mut runner = UdfRunner::new(d, model, UdfConfig::default());
        for q in &d.questions {
            runner
                .run_sql(&q.udf_sql)
                .unwrap_or_else(|e| panic!("{} udf failed: {e}\n{}", q.id, q.udf_sql));
        }
    }
}

#[test]
fn perfect_model_means_perfect_execution_accuracy() {
    // With a zero-noise model (factuality forced to 1 via seed-free
    // shortcut: use the knowledge base directly), hybrid EX must be 100%.
    // We emulate "perfect" by materializing ground truth straight from
    // the domain facts.
    use std::collections::HashMap;
    use swan_sqlengine::{Column, Table, Value};

    let h = harness();
    for d in &h.benchmark.domains {
        let mut db = d.curated.clone();
        let mut truth: HashMap<(Vec<String>, String), String> = HashMap::new();
        for f in &d.facts {
            truth.insert((f.key.clone(), f.attribute.clone()), f.value.condensed());
        }
        for e in &d.curation.expansions {
            let mut table = Table::new(
                e.table.clone(),
                e.all_columns().into_iter().map(Column::new).collect(),
                &[],
            )
            .unwrap();
            for key in swan_core::hqdl::expansion_keys(&d.curated, e) {
                let mut row: Vec<Value> =
                    key.iter().map(|k| swan_core::hqdl::infer_value(k)).collect();
                for g in &e.generated {
                    let cell = truth
                        .get(&(key.clone(), g.name.clone()))
                        .cloned()
                        .unwrap_or_default();
                    row.push(swan_core::hqdl::infer_value(&cell));
                }
                table.insert_row(row).unwrap();
            }
            db.catalog_mut().put_table(table);
        }
        for q in &d.questions {
            let gold = h.gold.get(&q.id);
            let hybrid = db.query(&q.hybrid_sql).unwrap();
            assert!(
                execution_match(gold, &hybrid, sql_is_ordered(&q.gold_sql)),
                "{} should match with perfect data\ngold: {:?}\nhybrid: {:?}",
                q.id,
                gold.rows,
                hybrid.rows,
            );
        }
    }
}

#[test]
fn hqdl_beats_udf_on_execution_accuracy() {
    let h = harness();
    let hqdl = evaluate_hqdl(&h.benchmark, h.kb.clone(), &h.gold, ModelKind::Gpt35Turbo, 5, 2);
    let udf = evaluate_udf(
        &h.benchmark,
        h.kb.clone(),
        &h.gold,
        ModelKind::Gpt35Turbo,
        UdfConfig { shots: 5, ..Default::default() },
    );
    assert!(
        hqdl.overall.accuracy() >= udf.overall.accuracy(),
        "paper §5.4: HQDL ({:.3}) >= UDFs ({:.3})",
        hqdl.overall.accuracy(),
        udf.overall.accuracy()
    );
}

#[test]
fn few_shot_improves_factuality() {
    let h = harness();
    let zero = evaluate_hqdl(&h.benchmark, h.kb.clone(), &h.gold, ModelKind::Gpt4Turbo, 0, 2);
    let five = evaluate_hqdl(&h.benchmark, h.kb.clone(), &h.gold, ModelKind::Gpt4Turbo, 5, 2);
    assert!(five.average_f1() > zero.average_f1() + 0.05, "shots must help F1 substantially");
    assert!(five.overall.accuracy() >= zero.overall.accuracy(), "shots must not hurt EX");
}

#[test]
fn gpt4_sim_beats_gpt35_sim_on_factuality() {
    let h = harness();
    for shots in [0usize, 5] {
        let g35 = evaluate_hqdl(&h.benchmark, h.kb.clone(), &h.gold, ModelKind::Gpt35Turbo, shots, 2);
        let g4 = evaluate_hqdl(&h.benchmark, h.kb.clone(), &h.gold, ModelKind::Gpt4Turbo, shots, 2);
        assert!(
            g4.average_f1() > g35.average_f1(),
            "shots={shots}: GPT-4 F1 {:.3} vs GPT-3.5 {:.3}",
            g4.average_f1(),
            g35.average_f1()
        );
    }
}

#[test]
fn udf_solution_uses_more_tokens_than_hqdl() {
    let h = harness();
    let hqdl = evaluate_hqdl(&h.benchmark, h.kb.clone(), &h.gold, ModelKind::Gpt35Turbo, 0, 2);
    let udf = evaluate_udf(
        &h.benchmark,
        h.kb.clone(),
        &h.gold,
        ModelKind::Gpt35Turbo,
        UdfConfig::default(),
    );
    assert!(
        udf.usage.input_tokens > hqdl.usage.input_tokens,
        "Table 5 shape: UDFs ({}) > HQDL ({}) input tokens",
        udf.usage.input_tokens,
        hqdl.usage.input_tokens
    );
}

#[test]
fn runs_are_deterministic_end_to_end() {
    let a = {
        let h = harness();
        let e = evaluate_hqdl(&h.benchmark, h.kb.clone(), &h.gold, ModelKind::Gpt4Turbo, 3, 1);
        (e.overall.correct, e.usage.input_tokens)
    };
    let b = {
        let h = harness();
        let e = evaluate_hqdl(&h.benchmark, h.kb.clone(), &h.gold, ModelKind::Gpt4Turbo, 3, 4);
        (e.overall.correct, e.usage.input_tokens)
    };
    assert_eq!(a, b, "same seed + different worker count must agree");
}
