//! Deterministic LLM fault sweep over the resilient model-call layer —
//! the model boundary's answer to `crash_sim.rs`.
//!
//! Every model attempt flows through the [`SimTransport`] seam, which
//! can make any *call index* fail transiently, rate-limit, time out,
//! respond slowly (inside or past the per-call budget) or return
//! malformed output. This harness sweeps **every fault kind through
//! every call index** of a small `llm_map` workload under three
//! execution shapes — serial, 8-thread morsel-parallel, and eight
//! concurrent [`SharedDb`] sessions coalescing through the single-flight
//! map — and checks the resilience contract:
//!
//! 1. **No hangs** — every statement completes; time is virtual
//!    ([`SimClock`]), so even a 60-second simulated hang finishes
//!    instantly, and a run that parked a waiter forever would deadlock
//!    the test;
//! 2. **Failed calls never populate the cache** — a terminally failing
//!    workload leaves the answer store empty, and recovery after the
//!    fault script clears serves real answers, not ghosts;
//! 3. **Retries respect the statement deadline** — with a statement
//!    timeout armed, retry loops stop at the deadline (never sleeping
//!    past it) and surface the engine's `statement timeout` error, which
//!    no degradation policy may swallow;
//! 4. **Breaker transitions match the fault script** — consecutive
//!    scripted failures open the breaker (observable through
//!    `UdfStats`), the cooldown admits a half-open probe, and a clean
//!    probe closes it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use swan::prelude::*;
use swan_core::OnModelFailure;
use swan_data::DomainData;
use swan_llm::{
    BreakerPolicy, BreakerState, Completion, LlmResult, ModelFault, ResilientModel,
    RetryPolicy, SimTransport, TokenCount, UsageMeter,
};
use swan_pool::{Clock as _, SimClock};
use swan_sqlengine::{Error, OptimizerConfig, SharedDb};

/// A model that answers every UDF prompt with one `'ok'` line per key —
/// instantly (latency is the transport's job) — and counts completions.
struct EchoModel {
    meter: UsageMeter,
    calls: AtomicU64,
}

impl EchoModel {
    fn new() -> Self {
        EchoModel { meter: UsageMeter::new(), calls: AtomicU64::new(0) }
    }
}

impl LanguageModel for EchoModel {
    fn name(&self) -> &str {
        "echo"
    }

    fn complete(&self, prompt: &str) -> LlmResult<Completion> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        let mut in_keys = false;
        let mut answers = String::new();
        for line in prompt.lines() {
            let line = line.trim();
            if line == "Keys:" {
                in_keys = true;
                continue;
            }
            if line == "Answer:" {
                break;
            }
            if in_keys && !line.is_empty() {
                answers.push_str("'ok'\n");
            }
        }
        let tokens = TokenCount::of(prompt, &answers);
        self.meter.record(tokens);
        Ok(Completion { text: answers, tokens })
    }

    fn usage_meter(&self) -> &UsageMeter {
        &self.meter
    }
}

/// Every fault kind the sweep injects. The two `Slow` entries bracket
/// the per-call budget: one succeeds after its delay, one times out.
const FAULTS: [ModelFault; 6] = [
    ModelFault::Transient,
    ModelFault::RateLimited,
    ModelFault::Timeout,
    ModelFault::Slow(Duration::from_millis(50)),
    ModelFault::Slow(Duration::from_secs(30)),
    ModelFault::Malformed,
];

/// Fast retry policy: semantics identical to the default, milliseconds
/// instead of seconds so the virtual schedules stay tiny.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 4,
        call_timeout: Duration::from_millis(100),
        base_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(80),
    }
}

struct Rig {
    runner: UdfRunner,
    transport: SimTransport,
    resilient: Arc<ResilientModel>,
    clock: Arc<SimClock>,
}

fn rig(domain: &DomainData, config: UdfConfig, retry: RetryPolicy, breaker: BreakerPolicy) -> Rig {
    let clock = SimClock::handle();
    let transport = SimTransport::new(Arc::new(EchoModel::new()), clock.clone());
    let resilient = Arc::new(ResilientModel::new(
        Arc::new(transport.clone()),
        clock.clone(),
        retry,
        breaker,
    ));
    let mut runner = UdfRunner::with_resilient(domain, resilient.clone(), config);
    // The engine shares the virtual clock, so statement deadlines and
    // transport latency tick together.
    runner.database_mut().set_clock(clock.clone());
    Rig { runner, transport, resilient, clock }
}

fn domain() -> DomainData {
    SwanBenchmark::generate(&GenConfig::with_scale(0.01)).domains.remove(0)
}

/// Three single-key chunks (`batch_size: 1`) so the sweep has several
/// distinct call indices to attack.
fn sweep_config() -> UdfConfig {
    UdfConfig { batch_size: 1, workers: 1, ..UdfConfig::default() }
}

fn setup_keys(rig: &mut Rig, threads: usize) {
    let db = rig.runner.database_mut();
    db.set_optimizer(OptimizerConfig {
        threads,
        parallel_threshold: if threads > 1 { 1 } else { usize::MAX },
        ..OptimizerConfig::default()
    });
    db.execute("CREATE TABLE keys (k TEXT PRIMARY KEY)").unwrap();
    db.execute("INSERT INTO keys VALUES ('a'), ('b'), ('c')").unwrap();
}

const SQL: &str = "SELECT k, llm_map('fault sweep probe', k) FROM keys ORDER BY k";

/// The core sweep: every fault kind at every call index, serial and
/// 8-thread morsel-parallel. A single injected fault must always be
/// absorbed — retried to the baseline answer — without opening the
/// breaker, degrading a value, or failing the statement; `Malformed` is
/// the one exception (the transport cannot tell it failed), which must
/// still complete with one well-typed value per row.
#[test]
fn fault_sweep_serial_and_parallel() {
    let d = domain();
    for threads in [1, 8] {
        let mut base = rig(&d, sweep_config(), fast_retry(), BreakerPolicy::default());
        setup_keys(&mut base, threads);
        let baseline = base.runner.database_mut().query(SQL).unwrap();
        let total_calls = base.transport.calls();
        assert!(total_calls >= 3, "threads={threads}: sweep needs ≥3 call indices, got {total_calls}");
        assert_eq!(baseline.rows.len(), 3);

        for fault in FAULTS {
            for at in 0..total_calls {
                let ctx = format!("threads={threads} fault {fault:?} @call {at}");
                let mut r = rig(&d, sweep_config(), fast_retry(), BreakerPolicy::default());
                setup_keys(&mut r, threads);
                r.transport.set_fault(at, fault);
                let got = r
                    .runner
                    .database_mut()
                    .query(SQL)
                    .unwrap_or_else(|e| panic!("{ctx}: one fault must be absorbed: {e}"));
                if fault == ModelFault::Malformed {
                    assert_eq!(got.rows.len(), baseline.rows.len(), "{ctx}");
                } else {
                    assert_eq!(got.rows, baseline.rows, "{ctx}: retried run must match baseline");
                }
                let s = r.resilient.stats();
                assert_eq!(s.failed_calls, 0, "{ctx}: every logical call must recover");
                assert_eq!(r.runner.stats().degraded, 0, "{ctx}: nothing degraded");
                assert_eq!(
                    r.runner.stats().breaker,
                    Some(BreakerState::Closed),
                    "{ctx}: one fault must not open the breaker"
                );
                if !matches!(fault, ModelFault::Malformed | ModelFault::Slow(_)) {
                    assert!(s.retries >= 1, "{ctx}: the faulted attempt was retried");
                }
            }
        }
    }
}

/// The same sweep with eight concurrent sessions racing the same query
/// through one [`SharedDb`]: the single-flight map must coalesce every
/// key to one logical fetch, deliver the leader's outcome to its
/// waiters, and never strand a waiter when the leader's call fails —
/// all sessions complete and agree on every row.
#[test]
fn fault_sweep_concurrent_sessions_single_flight() {
    let d = domain();
    // Baseline sizes the sweep (3 coalesced fetches, one per key).
    let base = rig(&d, sweep_config(), fast_retry(), BreakerPolicy::default());
    let mut base = base;
    setup_keys(&mut base, 1);
    let shared = SharedDb::from_database(base.runner.database().clone());
    let baseline = shared.query(SQL).unwrap();
    let total_calls = base.transport.calls();
    assert!(total_calls >= 3);

    for fault in FAULTS {
        for at in 0..total_calls {
            let ctx = format!("sessions fault {fault:?} @call {at}");
            let mut r = rig(&d, sweep_config(), fast_retry(), BreakerPolicy::default());
            setup_keys(&mut r, 1);
            let shared = SharedDb::from_database(r.runner.database().clone());
            shared.set_clock(r.clock.clone());
            r.transport.set_fault(at, fault);

            let results: Vec<QueryResult> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..8)
                    .map(|_| {
                        let shared = shared.clone();
                        s.spawn(move || shared.query(SQL))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join()
                            .expect("session thread must not panic")
                            .unwrap_or_else(|e| panic!("{ctx}: one fault must be absorbed: {e}"))
                    })
                    .collect()
            });
            for res in &results[1..] {
                assert_eq!(res.rows, results[0].rows, "{ctx}: sessions must agree");
            }
            assert_eq!(results[0].rows.len(), 3, "{ctx}");
            if fault != ModelFault::Malformed {
                assert_eq!(results[0].rows, baseline.rows, "{ctx}");
            }
            // Coalescing still holds under faults: at most one extra
            // round of per-key retries beyond the baseline fetches.
            let calls = r.transport.calls();
            assert!(
                calls <= total_calls + fast_retry().max_attempts as u64,
                "{ctx}: single-flight must bound the fan-out, saw {calls} attempts"
            );
        }
    }
}

/// Terminal failures (every attempt faulted) under each degradation
/// policy. `Fail` surfaces the error and caches nothing; `Null` yields
/// NULL per failed key and caches nothing; `StaleCache` re-serves the
/// last known good answer across a `PerQuestion` cache clear. Clearing
/// the fault script always restores real answers — failed calls left no
/// ghosts behind.
#[test]
fn terminal_failures_follow_the_degradation_policy() {
    let d = domain();

    // Fail: the statement errors, and the cache stays empty.
    let mut r = rig(&d, sweep_config(), fast_retry(), BreakerPolicy::default());
    setup_keys(&mut r, 1);
    r.transport.add_fault_range(0..1_000, ModelFault::Transient);
    let err = r.runner.database_mut().query(SQL).unwrap_err();
    assert!(matches!(err, Error::Udf { .. }), "fail-policy surfaces the model error: {err}");
    assert_eq!(r.runner.cached_answers(), 0, "failed calls must never populate the cache");
    r.transport.clear_faults();
    // The failure storm tripped the breaker; sit out its cooldown.
    r.clock.advance(Duration::from_secs(60));
    let ok = r.runner.database_mut().query(SQL).unwrap();
    assert_eq!(ok.rows.len(), 3, "recovery after the fault script clears");
    assert_eq!(r.runner.cached_answers(), 3);

    // Null: the statement completes with NULLs, and the cache stays
    // empty so recovery serves real answers.
    let config = UdfConfig { on_model_failure: OnModelFailure::Null, ..sweep_config() };
    let mut r = rig(&d, config, fast_retry(), BreakerPolicy::default());
    setup_keys(&mut r, 1);
    r.transport.add_fault_range(0..1_000, ModelFault::RateLimited);
    let got = r.runner.database_mut().query(SQL).unwrap();
    assert!(
        got.rows.iter().all(|row| row[1] == Value::Null),
        "null-policy degrades every failed key to NULL"
    );
    assert_eq!(r.runner.stats().degraded, 3);
    assert_eq!(r.runner.cached_answers(), 0, "degraded NULLs must never be cached");
    r.transport.clear_faults();
    r.clock.advance(Duration::from_secs(60));
    let ok = r.runner.database_mut().query(SQL).unwrap();
    assert!(ok.rows.iter().all(|row| row[1] != Value::Null), "real answers after recovery");

    // StaleCache: a clean run seeds the last-known-good store; after a
    // PerQuestion clear, a terminally failing rerun re-serves it.
    let config = UdfConfig {
        on_model_failure: OnModelFailure::StaleCache,
        cache: CacheScope::PerQuestion,
        ..sweep_config()
    };
    let mut r = rig(&d, config, fast_retry(), BreakerPolicy::default());
    setup_keys(&mut r, 1);
    let fresh = r.runner.run_sql(SQL).unwrap();
    assert!(fresh.rows.iter().all(|row| row[1] != Value::Null));
    r.transport.add_fault_range(0..1_000, ModelFault::Transient);
    let stale = r.runner.run_sql(SQL).unwrap();
    assert_eq!(stale.rows, fresh.rows, "stale-cache re-serves the last known good answers");
    assert_eq!(r.runner.stats().degraded, 3);
}

/// A statement timeout bounds the whole retry schedule: with every
/// attempt timing out, the statement fails with the engine's deadline
/// error — never hanging, never sleeping past the deadline (virtual
/// time proves it), and never degraded to NULL even under the most
/// permissive policy. Clearing the faults and the timeout fully
/// recovers the session.
#[test]
fn retries_respect_the_statement_deadline() {
    let d = domain();
    for policy in [OnModelFailure::Fail, OnModelFailure::Null, OnModelFailure::StaleCache] {
        let config = UdfConfig { on_model_failure: policy, ..sweep_config() };
        let mut r = rig(&d, config, fast_retry(), BreakerPolicy::default());
        setup_keys(&mut r, 1);
        r.transport.add_fault_range(0..1_000, ModelFault::Timeout);
        r.runner.database_mut().set_statement_timeout(Some(Duration::from_millis(250)));
        let start = r.clock.now();
        let err = r.runner.database_mut().query(SQL).unwrap_err();
        assert!(
            matches!(err, Error::Deadline),
            "{policy:?}: a blown deadline must abort the statement, got {err}"
        );
        assert_eq!(err.to_string(), "statement timeout: deadline exceeded");
        let elapsed = r.clock.now() - start;
        assert!(
            elapsed <= Duration::from_millis(250),
            "{policy:?}: never sleeps past the deadline (virtual elapsed {elapsed:?})"
        );
        assert_eq!(r.runner.cached_answers(), 0, "{policy:?}: nothing cached on the way down");

        // The session is intact: lift the faults and the timeout and the
        // same statement succeeds — no leaked workers, no parked waiters.
        r.transport.clear_faults();
        r.runner.database_mut().set_statement_timeout(None);
        assert_eq!(r.runner.database_mut().query(SQL).unwrap().rows.len(), 3);
    }
}

/// The deadline also cancels an 8-thread morsel-parallel statement
/// promptly: pool workers observe the statement token between morsels,
/// the batch fan-out aborts, and the pool survives to run the next
/// statement.
#[test]
fn deadline_cancels_parallel_statements_cleanly() {
    let d = domain();
    let mut r = rig(&d, sweep_config(), fast_retry(), BreakerPolicy::default());
    setup_keys(&mut r, 8);
    r.transport.add_fault_range(0..1_000, ModelFault::Timeout);
    r.runner.database_mut().set_statement_timeout(Some(Duration::from_millis(250)));
    let err = r.runner.database_mut().query(SQL).unwrap_err();
    assert!(matches!(err, Error::Deadline), "parallel statement hits the deadline: {err}");

    r.transport.clear_faults();
    r.runner.database_mut().set_statement_timeout(None);
    let ok = r.runner.database_mut().query(SQL).unwrap();
    assert_eq!(ok.rows.len(), 3, "the pool is healthy after a cancelled parallel statement");
}

/// Breaker transitions, end to end through `UdfStats`: three scripted
/// consecutive failures open it (subsequent keys fail fast without
/// touching the endpoint), the cooldown admits a half-open probe, and a
/// clean probe closes it again.
#[test]
fn breaker_transitions_match_the_fault_script() {
    let d = domain();
    let config = UdfConfig { on_model_failure: OnModelFailure::Null, ..sweep_config() };
    let retry = RetryPolicy { max_attempts: 1, ..fast_retry() };
    let breaker = BreakerPolicy { failure_threshold: 3, cooldown: Duration::from_secs(5) };
    let mut r = rig(&d, config, retry, breaker);
    setup_keys(&mut r, 1);
    assert_eq!(r.runner.stats().breaker, Some(BreakerState::Closed));

    // Three consecutive scripted failures: the batch phase burns exactly
    // the threshold, opening the breaker; the per-key fallbacks then
    // fail fast on the open breaker and degrade to NULL.
    r.transport.add_fault_range(0..3, ModelFault::Transient);
    let got = r.runner.database_mut().query(SQL).unwrap();
    assert!(got.rows.iter().all(|row| row[1] == Value::Null));
    assert_eq!(r.runner.stats().breaker, Some(BreakerState::Open), "threshold opens the breaker");
    let s = r.resilient.stats();
    assert_eq!(s.breaker_opens, 1);
    assert!(s.breaker_rejections >= 1, "open breaker rejects without calling the endpoint");
    assert_eq!(r.transport.calls(), 3, "rejected calls never reach the transport");

    // Inside the cooldown the breaker still rejects.
    let rejected_before = s.breaker_rejections;
    let got = r.runner.database_mut().query(SQL).unwrap();
    assert!(got.rows.iter().all(|row| row[1] == Value::Null));
    assert_eq!(r.transport.calls(), 3, "still nothing reaches the endpoint inside the cooldown");
    assert!(r.resilient.stats().breaker_rejections > rejected_before);

    // Cooldown elapses; the fault script is exhausted, so the half-open
    // probe succeeds and closes the breaker; every key resolves.
    r.clock.advance(Duration::from_secs(5));
    let got = r.runner.database_mut().query(SQL).unwrap();
    assert!(got.rows.iter().all(|row| row[1] != Value::Null), "probe success restores service");
    assert_eq!(r.runner.stats().breaker, Some(BreakerState::Closed), "clean probe closes");
    assert_eq!(r.resilient.stats().breaker_opens, 1, "no re-open on the healthy path");
}
