//! Cross-session concurrency: many [`SharedDb`] sessions over one
//! database with a registered `llm_map` UDF must coalesce concurrent
//! same-key calls into **one** model call — PR 2's single-flight
//! guarantee, extended across sessions. All sessions share the same
//! `Arc<dyn ScalarUdf>` through the registry, so the answer store and
//! the in-flight set are one object no matter how many sessions clone
//! the handle.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use swan::prelude::*;
use swan_llm::{Completion, LlmError, LlmResult, TokenCount, UsageMeter};
use swan_sqlengine::SharedDb;

/// A model that answers any UDF prompt with one well-formed line per key
/// and counts (slowly, to widen the race window) every completion call.
struct CountingModel {
    meter: UsageMeter,
    calls: AtomicU64,
}

impl CountingModel {
    fn new() -> Self {
        CountingModel { meter: UsageMeter::new(), calls: AtomicU64::new(0) }
    }
}

impl LanguageModel for CountingModel {
    fn name(&self) -> &str {
        "counting"
    }

    fn complete(&self, prompt: &str) -> LlmResult<Completion> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        // Hold the call open so overlapping sessions actually race.
        std::thread::sleep(std::time::Duration::from_millis(30));
        // One answer line per key line (between "Keys:" and "Answer:").
        let mut in_keys = false;
        let mut answers = String::new();
        for line in prompt.lines() {
            let line = line.trim();
            if line == "Keys:" {
                in_keys = true;
                continue;
            }
            if line == "Answer:" {
                break;
            }
            if in_keys && !line.is_empty() {
                answers.push_str("'ans'\n");
            }
        }
        let tokens = TokenCount::of(prompt, &answers);
        self.meter.record(tokens);
        Ok(Completion { text: answers, tokens })
    }

    fn usage_meter(&self) -> &UsageMeter {
        &self.meter
    }
}

#[test]
fn concurrent_same_key_llm_map_calls_coalesce_across_sessions() {
    // A real SWAN domain provides the metadata `llm_map` needs.
    let bench = SwanBenchmark::generate(&GenConfig::with_scale(0.01));
    let domain = &bench.domains[0];
    let model = Arc::new(CountingModel::new());
    let runner = UdfRunner::new(domain, model.clone(), UdfConfig::default());

    // Lift the runner's database (llm_map registered) into a shared one
    // and add a small key table: 5 keys == one default batch.
    let shared = SharedDb::from_database(runner.database().clone());
    shared.execute("CREATE TABLE keys (k TEXT PRIMARY KEY)").unwrap();
    shared
        .execute("INSERT INTO keys VALUES ('a'), ('b'), ('c'), ('d'), ('e')")
        .unwrap();

    let sql = "SELECT k, llm_map('what is the color of', k) FROM keys ORDER BY k";
    let results: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let session = shared.clone();
                s.spawn(move || session.query(sql).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every session sees the same answers...
    for r in &results[1..] {
        assert_eq!(r.rows, results[0].rows, "sessions must agree");
    }
    assert_eq!(results[0].rows.len(), 5);

    // ...and the 8 concurrent sessions paid exactly ONE model call: the
    // first batch (5 keys ≤ default batch_size) flies, every other
    // session's batch finds the keys in flight and waits on the shared
    // single-flight set instead of issuing its own call.
    let calls = model.calls.load(Ordering::SeqCst);
    assert_eq!(
        calls, 1,
        "8 sessions × 5 identical keys must coalesce to one model call, got {calls}"
    );

    // A later session with the same keys is served from the shared
    // answer store: still no new call.
    let again = shared.query(sql).unwrap();
    assert_eq!(again.rows, results[0].rows);
    assert_eq!(model.calls.load(Ordering::SeqCst), 1, "answer store shared across sessions");
}

/// A model whose FIRST completion fails (slowly, so overlapping sessions
/// pile up behind the single-flight leader) and every later one answers.
struct FirstCallFails {
    meter: UsageMeter,
    calls: AtomicU64,
}

impl LanguageModel for FirstCallFails {
    fn name(&self) -> &str {
        "first-call-fails"
    }

    fn complete(&self, prompt: &str) -> LlmResult<Completion> {
        let idx = self.calls.fetch_add(1, Ordering::SeqCst);
        if idx == 0 {
            // Hold the doomed call open long enough that every other
            // session has joined its flight before it resolves.
            std::thread::sleep(std::time::Duration::from_millis(500));
            return Err(LlmError::Backend("injected leader failure".into()));
        }
        let answers = "'late'\n";
        let tokens = TokenCount::of(prompt, answers);
        self.meter.record(tokens);
        Ok(Completion { text: answers.to_string(), tokens })
    }

    fn usage_meter(&self) -> &UsageMeter {
        &self.meter
    }
}

/// Single-flight **failure** propagation: when the leader's model call
/// fails, every session waiting on that flight receives the leader's
/// error — it must not hang, and it must not fall out of the wait only
/// to retry serially as a chain of new leaders (the pre-fix behaviour:
/// one model call per waiter). A *later* call gets a fresh flight and
/// succeeds, because failures never populate the answer store.
///
/// The `llm_map` call sits inside a CASE branch: conditionally evaluated
/// sites are never collected by the batch prefetch (whose failures are
/// advisory — the engine falls back to the per-row path), so every
/// session takes the per-row `fetch_single` route where the coalesced
/// error is a *statement* error.
#[test]
fn single_flight_propagates_the_leaders_failure_to_waiters() {
    let bench = SwanBenchmark::generate(&GenConfig::with_scale(0.01));
    let domain = &bench.domains[0];
    let model = Arc::new(FirstCallFails { meter: UsageMeter::new(), calls: AtomicU64::new(0) });
    let runner = UdfRunner::new(domain, model.clone(), UdfConfig::default());

    let shared = SharedDb::from_database(runner.database().clone());
    shared.execute("CREATE TABLE one_key (k TEXT PRIMARY KEY)").unwrap();
    shared.execute("INSERT INTO one_key VALUES ('x')").unwrap();
    let sql = "SELECT CASE WHEN k IS NOT NULL \
               THEN llm_map('leader failure probe', k) END FROM one_key";

    let results: Vec<Result<QueryResult, _>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let session = shared.clone();
                s.spawn(move || session.query(sql))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // All eight raced the same key and the one in-flight call failed:
    // every session gets that failure.
    for (i, r) in results.iter().enumerate() {
        let err = r.as_ref().expect_err("the leader's failure reaches every waiter");
        assert!(
            err.to_string().contains("injected leader failure"),
            "session {i} must see the leader's error, got: {err}"
        );
    }
    assert_eq!(
        model.calls.load(Ordering::SeqCst),
        1,
        "waiters receive the leader's outcome; they must not retry as serial leaders"
    );

    // The failure was not cached, so a later call retries — and this
    // time the model answers.
    let again = shared.query(sql).unwrap();
    assert_eq!(again.rows.len(), 1);
    assert_eq!(again.rows[0][0].render(), "late");
    assert_eq!(model.calls.load(Ordering::SeqCst), 2, "fresh flight after a failed one");
}
