//! Golden-file tests for the fixture corpus: each `fixtures/<case>.rs`
//! has a `fixtures/<case>.expected` holding the exact diagnostics the
//! analyzer must emit (empty file = the case must be clean). True
//! positives and true negatives are both pinned, so a rule that goes
//! quiet OR noisy fails the suite.

use std::path::Path;

fn fixture_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn run_case(name: &str) {
    let dir = fixture_dir();
    let rel = format!("fixtures/{name}.rs");
    let src = std::fs::read_to_string(dir.join(format!("{name}.rs")))
        .unwrap_or_else(|e| panic!("reading fixture {name}.rs: {e}"));
    let expected = std::fs::read_to_string(dir.join(format!("{name}.expected")))
        .unwrap_or_else(|e| panic!("reading golden {name}.expected: {e}"));

    let got: Vec<String> = swan_analyze::analyze_file(&rel, &src)
        .iter()
        .map(|f| f.render())
        .collect();
    let want: Vec<String> = expected.lines().map(str::to_string).collect();
    assert_eq!(
        got, want,
        "fixture {name}: analyzer output diverged from golden file"
    );
}

macro_rules! golden {
    ($($name:ident),* $(,)?) => {
        $(#[test]
        fn $name() {
            run_case(stringify!($name));
        })*
    };
}

golden!(
    bad_fs,
    bad_clock,
    bad_thread,
    wal,
    bad_unsafe,
    bad_lock,
    bad_allow,
    allowed,
    vfs,
    test_only,
    columnar,
);

/// Every fixture on disk must be covered by a golden test above, and
/// every `.rs` must have a `.expected` — no silent gaps in the corpus.
#[test]
fn corpus_is_fully_paired() {
    let dir = fixture_dir();
    let mut rs = Vec::new();
    let mut expected = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("fixtures dir") {
        let name = entry.expect("dir entry").file_name().to_string_lossy().into_owned();
        if let Some(stem) = name.strip_suffix(".rs") {
            rs.push(stem.to_string());
        } else if let Some(stem) = name.strip_suffix(".expected") {
            expected.push(stem.to_string());
        }
    }
    rs.sort();
    expected.sort();
    assert_eq!(rs, expected, "each fixture .rs needs a matching .expected");

    const COVERED: &[&str] = &[
        "bad_fs", "bad_clock", "bad_thread", "wal", "bad_unsafe", "bad_lock",
        "bad_allow", "allowed", "vfs", "test_only", "columnar",
    ];
    let mut covered: Vec<String> = COVERED.iter().map(|s| s.to_string()).collect();
    covered.sort();
    assert_eq!(rs, covered, "fixture on disk without a golden test (or vice versa)");
}

/// The analyzer must be clean on its own workspace — the acceptance
/// gate `swan-analyze --workspace` run as a test, so `cargo test`
/// catches a seam regression even if CI's lint stage is skipped.
#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let (findings, scanned) =
        swan_analyze::analyze_workspace(&root).expect("workspace scan");
    assert!(scanned > 40, "suspiciously few files scanned: {scanned}");
    let rendered: Vec<String> = findings.iter().map(|f| f.render()).collect();
    assert!(
        rendered.is_empty(),
        "workspace has lint findings:\n{}",
        rendered.join("\n")
    );
}
