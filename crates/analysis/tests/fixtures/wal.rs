//! True positives for `no-panic-paths`: this fixture is named `wal.rs`,
//! so it is treated as a commit/recovery-path file.

pub fn append(frames: &[u8]) -> usize {
    let len: u32 = frames.len().try_into().unwrap();
    let header = frames.get(..4).expect("frame too short");
    if header.is_empty() {
        panic!("empty WAL header");
    }
    match len {
        0 => unreachable!("checked above"),
        n => n as usize,
    }
}

pub fn shrink(frames: &[u8]) -> usize {
    // `unwrap_or_else` and `unwrap_or` are fallbacks, not panics.
    let len: u32 = frames.len().try_into().unwrap_or(0);
    len.checked_sub(1).unwrap_or_else(|| 0) as usize
}
