//! True positives for `fs-seam`: raw filesystem access outside vfs.rs.

pub fn load_config() -> Vec<u8> {
    std::fs::read("swan.toml").unwrap_or_default()
}

pub fn open_log() {
    let _f = File::open("swan.log");
}
