//! `lock-rank`: bare shim locks (true positives) vs ranked and
//! fully-qualified std locks (true negatives).

use parking_lot::{Mutex, RwLock};

pub struct Bad {
    queue: Mutex<Vec<u32>>,
    map: RwLock<Vec<u32>>,
}

pub fn build_bad() -> Bad {
    Bad { queue: Mutex::new(Vec::new()), map: RwLock::new(Vec::new()) }
}

pub fn build_good() -> (Mutex<u32>, std::sync::Mutex<u32>) {
    let ranked = Mutex::with_rank("fixture_queue", 10, 0);
    let std_lock = std::sync::Mutex::new(0);
    (ranked, std_lock)
}
