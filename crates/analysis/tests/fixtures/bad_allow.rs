//! Allowlist misuse: a bare `allow` with no justification suppresses
//! nothing (the violation still fires AND the allow is reported), and an
//! allow naming an unknown rule is reported.

pub fn read_raw() -> Vec<u8> {
    // lint: allow(fs-seam)
    std::fs::read("raw.bin").unwrap_or_default()
}

// lint: allow(fs-semaphore): typo'd rule name
pub fn noop() {}
