// Fixture for the no-row-materialize rule: this file is named
// columnar.rs, so kernel code here must not materialize rows.

/// A kernel that gathers whole rows per index — flagged twice: the
/// method call and the `Row::` construction.
pub fn bad_kernel(set: &ColumnSet, sel: &[u32]) -> Vec<Row> {
    let mut out = Vec::new();
    for &i in sel {
        out.push(set.materialize_row(i as usize));
    }
    out.push(Row::from(Vec::new()));
    out
}

/// The sanctioned boundary: *defining* `materialize_row` is fine — the
/// rule flags calls, not the definition.
pub fn materialize_row(set: &ColumnSet, i: usize) -> Row {
    set.columns.iter().map(|c| c.value_at(i)).collect()
}

pub fn allowed_boundary(set: &ColumnSet) -> Row {
    // lint: allow(no-row-materialize): boundary adapter feeding the row-path fallback
    set.materialize_row(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn round_trip() {
        // Test regions are skipped: materializing rows to assert against
        // the row path is exactly what kernel tests should do.
        let _ = set.materialize_row(3);
        let _ = Row::from(Vec::new());
    }
}
