//! `safety-comment`: one undocumented `unsafe` (true positive), one
//! documented (true negative).

pub fn undocumented(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn documented(slice: &[u8]) -> u8 {
    // SAFETY: the caller guarantees `slice` is non-empty; bounds were
    // checked at construction.
    unsafe { *slice.get_unchecked(0) }
}
