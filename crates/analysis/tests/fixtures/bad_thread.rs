//! True positive for `thread-seam`: ad-hoc thread creation outside
//! swan_pool.

pub fn fire_and_forget() {
    std::thread::spawn(|| {
        // orphan thread: no shutdown, no panic propagation
    });
}
