//! True negatives: every rule violated, every violation allowlisted with
//! a justification. This file must produce zero findings.

pub fn read_raw() -> Vec<u8> {
    // lint: allow(fs-seam): fixture demonstrating a justified escape hatch
    std::fs::read("raw.bin").unwrap_or_default()
}

pub fn wall_clock() {
    let _t = std::time::Instant::now(); // lint: allow(clock-seam): startup banner only, never on a query path
}

pub fn helper_thread() {
    // lint: allow(thread-seam): one-shot bootstrap thread joined before serving
    let h = std::thread::spawn(|| 42);
    let _ = h.join();
}
