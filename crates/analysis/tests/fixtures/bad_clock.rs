//! True positives for `clock-seam`: real-time reads and sleeps outside
//! swan_pool::time.

use std::time::{Duration, Instant, SystemTime};

pub fn measure() -> Duration {
    let start = Instant::now();
    std::thread::sleep(Duration::from_millis(5));
    let _wall = SystemTime::now();
    start.elapsed()
}
