//! True negatives: violations confined to test code are out of scope.

pub fn production() -> u32 {
    41 + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_files_and_panics_are_fine_here() {
        let _ = std::fs::read("scratch.bin");
        let _t = std::time::Instant::now();
        std::thread::spawn(|| {}).join().unwrap();
        assert_eq!(production(), 42);
    }
}

#[test]
fn top_level_test_fn_is_also_skipped() {
    let _ = std::fs::read("scratch.bin");
}
