//! True negative for `fs-seam`: a file named `vfs.rs` IS the seam and
//! may touch the real filesystem freely.

pub fn real_read(path: &str) -> std::io::Result<Vec<u8>> {
    std::fs::read(path)
}

pub fn real_open(path: &str) -> std::io::Result<std::fs::File> {
    std::fs::File::open(path)
}
