//! Workspace walking: find the `.rs` files the rules apply to.
//!
//! Production sources only — `src/**` at the workspace root and under
//! each `crates/*/`. Vendored shims, build output, integration tests,
//! benches, examples, and lint fixtures are out of scope: the rules
//! guard the engine's production seams, and integration tests are free
//! to use real files, real clocks, and panics.

use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] =
    &["vendor", "target", "tests", "benches", "examples", "fixtures", ".git"];

/// Collect all production `.rs` files under `root`, workspace-relative,
/// sorted for deterministic output.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let top_src = root.join("src");
    if top_src.is_dir() {
        walk(&top_src, &mut out)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        // lint: allow(fs-seam): the analyzer is host tooling; it walks the real source tree by design
        for entry in std::fs::read_dir(&crates)? {
            let dir = entry?.path();
            let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !dir.is_dir() || SKIP_DIRS.contains(&name) {
                continue;
            }
            let src = dir.join("src");
            if src.is_dir() {
                walk(&src, &mut out)?;
            }
        }
    }
    for p in &mut out {
        if let Ok(rel) = p.strip_prefix(root) {
            *p = rel.to_path_buf();
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    // lint: allow(fs-seam): the analyzer is host tooling; it walks the real source tree by design
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
