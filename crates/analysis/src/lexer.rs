//! A minimal hand-rolled Rust lexer — just enough token structure for the
//! seam lints, with **no external dependencies** (the same offline
//! constraint as the vendored shims).
//!
//! The token stream keeps comments (the `SAFETY:` and `lint: allow(...)`
//! rules read them) and tracks 1-based line numbers for diagnostics. It
//! understands the lexical shapes that could otherwise produce false
//! matches: string literals (including raw strings with `#` fences), char
//! literals vs lifetimes, and nested block comments. It does not parse —
//! rules match token patterns, not grammar.

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Punctuation. `::` is one token; everything else is a single char.
    Punct,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char literal (`'x'`, `'\n'`).
    Char,
    /// Lifetime (`'a`) or loop label.
    Lifetime,
    /// Numeric literal.
    Num,
    /// Line or block comment, text included.
    Comment,
}

/// One lexed token: kind, verbatim text, and the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
}

/// Tokenize `src`. Unrecognized bytes become single-char `Punct` tokens —
/// a lint pass degrades gracefully on exotic input rather than failing.
pub fn tokenize(src: &str) -> Vec<Token> {
    let bytes: Vec<char> = src.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_continue = |c: char| c.is_alphanumeric() || c == '_';

    while i < bytes.len() {
        let c = bytes[i];
        let start_line = line;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Comment,
                    text: bytes[start..i].iter().collect(),
                    line: start_line,
                });
            }
            '/' if bytes.get(i + 1) == Some(&'*') => {
                let start = i;
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Comment,
                    text: bytes[start..i].iter().collect(),
                    line: start_line,
                });
            }
            '"' => {
                let (text, nl) = lex_string(&bytes, &mut i, 0);
                line += nl;
                tokens.push(Token { kind: TokenKind::Str, text, line: start_line });
            }
            'r' | 'b' if is_raw_or_byte_string(&bytes, i) => {
                let mut j = i;
                while bytes[j] == 'r' || bytes[j] == 'b' {
                    j += 1;
                }
                let mut fences = 0usize;
                while bytes.get(j) == Some(&'#') {
                    fences += 1;
                    j += 1;
                }
                // j is at the opening quote.
                let prefix: String = bytes[i..j].iter().collect();
                i = j;
                let (text, nl) = if prefix.contains('#') || prefix.contains('r') {
                    lex_raw_string(&bytes, &mut i, fences)
                } else {
                    lex_string(&bytes, &mut i, 0)
                };
                line += nl;
                tokens.push(Token {
                    kind: TokenKind::Str,
                    text: format!("{prefix}{text}"),
                    line: start_line,
                });
            }
            '\'' => {
                // Lifetime ('a, 'static) vs char literal ('x', '\n').
                let next = bytes.get(i + 1).copied();
                let after = bytes.get(i + 2).copied();
                let is_lifetime = matches!(next, Some(n) if is_ident_start(n))
                    && after != Some('\'');
                if is_lifetime {
                    let start = i;
                    i += 1;
                    while i < bytes.len() && is_ident_continue(bytes[i]) {
                        i += 1;
                    }
                    tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: bytes[start..i].iter().collect(),
                        line: start_line,
                    });
                } else {
                    let start = i;
                    i += 1;
                    while i < bytes.len() {
                        match bytes[i] {
                            '\\' => i += 2,
                            '\'' => {
                                i += 1;
                                break;
                            }
                            '\n' => break, // stray quote; don't eat the file
                            _ => i += 1,
                        }
                    }
                    tokens.push(Token {
                        kind: TokenKind::Char,
                        text: bytes[start..i.min(bytes.len())].iter().collect(),
                        line: start_line,
                    });
                }
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: bytes[start..i].iter().collect(),
                    line: start_line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_alphanumeric() || bytes[i] == '_' || bytes[i] == '.')
                {
                    // `1..10` — stop before a range operator.
                    if bytes[i] == '.' && bytes.get(i + 1) == Some(&'.') {
                        break;
                    }
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Num,
                    text: bytes[start..i].iter().collect(),
                    line: start_line,
                });
            }
            ':' if bytes.get(i + 1) == Some(&':') => {
                i += 2;
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: "::".to_string(),
                    line: start_line,
                });
            }
            c => {
                i += 1;
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: c.to_string(),
                    line: start_line,
                });
            }
        }
    }
    tokens
}

/// Is the `r`/`b` at `i` the prefix of a raw/byte string literal (rather
/// than the start of an identifier like `result`)?
fn is_raw_or_byte_string(bytes: &[char], i: usize) -> bool {
    let mut j = i;
    while matches!(bytes.get(j), Some('r') | Some('b')) && j - i < 2 {
        j += 1;
    }
    let mut k = j;
    while bytes.get(k) == Some(&'#') {
        k += 1;
    }
    // Require at least one non-ident prefix shape: r", br", r#", b".
    bytes.get(k) == Some(&'"') && (k > j || j > i)
}

/// Lex a regular (escaped) string starting at the opening quote.
/// Returns (text, newlines-consumed).
fn lex_string(bytes: &[char], i: &mut usize, _fences: usize) -> (String, u32) {
    let start = *i;
    let mut nl = 0u32;
    *i += 1; // opening quote
    while *i < bytes.len() {
        match bytes[*i] {
            '\\' => *i += 2,
            '"' => {
                *i += 1;
                break;
            }
            '\n' => {
                nl += 1;
                *i += 1;
            }
            _ => *i += 1,
        }
    }
    (bytes[start..(*i).min(bytes.len())].iter().collect(), nl)
}

/// Lex a raw string starting at the opening quote, closed by `"` followed
/// by `fences` `#` characters. Returns (text, newlines-consumed).
fn lex_raw_string(bytes: &[char], i: &mut usize, fences: usize) -> (String, u32) {
    let start = *i;
    let mut nl = 0u32;
    *i += 1; // opening quote
    while *i < bytes.len() {
        if bytes[*i] == '\n' {
            nl += 1;
            *i += 1;
            continue;
        }
        if bytes[*i] == '"' {
            let mut k = *i + 1;
            let mut seen = 0usize;
            while seen < fences && bytes.get(k) == Some(&'#') {
                seen += 1;
                k += 1;
            }
            if seen == fences {
                *i = k;
                break;
            }
        }
        *i += 1;
    }
    (bytes[start..(*i).min(bytes.len())].iter().collect(), nl)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_paths_and_lines() {
        let toks = tokenize("std::fs::File\nInstant::now()");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["std", "::", "fs", "::", "File", "Instant", "::", "now", "(", ")"]);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[5].line, 2);
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let x = "std::fs::File"; call()"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || (t != "fs" && t != "File")));
    }

    #[test]
    fn raw_strings_with_fences() {
        let toks = kinds(r###"let x = r#"Instant::now() "quoted""#; y"###);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "y"));
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "Instant"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 2);
    }

    #[test]
    fn comments_are_tokens_with_text() {
        let toks = tokenize("// lint: allow(fs-seam): tooling\nx(); /* SAFETY: fine */ y();");
        let comments: Vec<&Token> =
            toks.iter().filter(|t| t.kind == TokenKind::Comment).collect();
        assert_eq!(comments.len(), 2);
        assert!(comments[0].text.contains("lint: allow"));
        assert_eq!(comments[0].line, 1);
        assert!(comments[1].text.contains("SAFETY"));
        assert_eq!(comments[1].line, 2);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still comment */ ident");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].1, "ident");
    }

    #[test]
    fn double_colon_is_one_token() {
        let toks = kinds("a::b:c");
        let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, ["a", "::", "b", ":", "c"]);
    }
}
