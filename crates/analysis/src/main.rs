//! CLI for the seam lints.
//!
//! ```text
//! swan-analyze --workspace [ROOT]   # scan production sources under ROOT (default ".")
//! swan-analyze FILE [FILE ...]      # scan specific files (used by the fixture tests)
//! ```
//!
//! Prints one `file:line: rule: message` per finding, sorted, and exits
//! non-zero if there are any — so CI can gate on it.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!("usage: swan-analyze --workspace [ROOT] | swan-analyze FILE [FILE ...]");
        return if args.is_empty() { ExitCode::from(2) } else { ExitCode::SUCCESS };
    }

    let findings = if args[0] == "--workspace" {
        let root = args.get(1).map(String::as_str).unwrap_or(".");
        match swan_analyze::analyze_workspace(Path::new(root)) {
            Ok((findings, scanned)) => {
                eprintln!("swan-analyze: scanned {scanned} files under {root}");
                findings
            }
            Err(e) => {
                eprintln!("swan-analyze: error scanning {root}: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut findings = Vec::new();
        for file in &args {
            // lint: allow(fs-seam): the analyzer is host tooling; it reads the real source tree by design
            match std::fs::read_to_string(file) {
                Ok(src) => findings.extend(swan_analyze::analyze_file(file, &src)),
                Err(e) => {
                    eprintln!("swan-analyze: error reading {file}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        findings
    };

    for f in &findings {
        println!("{}", f.render());
    }
    if findings.is_empty() {
        eprintln!("swan-analyze: no findings");
        ExitCode::SUCCESS
    } else {
        eprintln!("swan-analyze: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
