//! `swan-analyze` — workspace lint pass for the SWAN engine's seams.
//!
//! The engine's crash-consistency and determinism guarantees rest on a
//! few architectural seams: all disk I/O flows through `Vfs`, all time
//! through `Clock`, all threads through the worker pool, and every
//! long-lived lock carries a rank from `swan_pool::lockrank`. Those
//! seams are what let the fault-sim tests inject torn writes and virtual
//! clocks — one stray `std::fs::File` and the simulation silently stops
//! covering that path. This crate makes the seams machine-checked.
//!
//! See `ANALYSIS.md` at the workspace root for the rule catalog, the
//! lock-rank table, and the allowlist syntax. The companion runtime
//! check — the lockdep lock-order validator — lives in the vendored
//! `parking_lot` shim and is enabled with `SWAN_LOCKDEP=1`.
//!
//! Built with a small hand-rolled lexer and zero dependencies, so it
//! runs in the same offline environment as the rest of the workspace.

pub mod lexer;
pub mod rules;
pub mod scan;

pub use rules::{analyze_file, Finding};

use std::path::Path;

/// Analyze every production source file under `root`. Returns findings
/// sorted by (file, line, rule) plus the number of files scanned.
pub fn analyze_workspace(root: &Path) -> std::io::Result<(Vec<Finding>, usize)> {
    let files = scan::workspace_files(root)?;
    let mut findings = Vec::new();
    for rel in &files {
        // lint: allow(fs-seam): the analyzer is host tooling; it reads the real source tree by design
        let src = std::fs::read_to_string(root.join(rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        findings.extend(rules::analyze_file(&rel_str, &src));
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
    });
    Ok((findings, files.len()))
}
