//! The seven seam rules, an allowlist engine, and `#[cfg(test)]` region
//! skipping — all operating on the token stream from [`crate::lexer`].
//!
//! | rule            | what it enforces                                              |
//! |-----------------|---------------------------------------------------------------|
//! | `fs-seam`       | no `std::fs` / `File::*` outside `vfs.rs` — disk I/O goes through `Vfs` |
//! | `clock-seam`    | no `Instant::now` / `SystemTime::now` / `thread::sleep` outside `swan_pool::time` |
//! | `thread-seam`   | no `thread::spawn` outside `swan_pool`                        |
//! | `no-panic-paths`| no `.unwrap()` / `.expect()` / `panic!`-family on commit/recovery files |
//! | `safety-comment`| every `unsafe` carries a `// SAFETY:` comment within 5 lines  |
//! | `lock-rank`     | shim `Mutex::new` / `RwLock::new` must be `with_rank` instead |
//! | `no-row-materialize` | no `materialize_row(..)` calls or `Row::` construction inside columnar kernel modules — rows materialize at the engine boundary only |
//!
//! Escape hatch: `// lint: allow(rule-name): justification` on the same
//! line as the flagged code or the line directly above. The justification
//! is **required** — a bare `allow` suppresses nothing and is itself
//! reported.

use crate::lexer::{Token, TokenKind};

/// One diagnostic: where, which rule, and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

impl Finding {
    /// Render as `file:line: rule: message` — the golden-file format.
    pub fn render(&self) -> String {
        format!("{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// Commit/recovery-path files where the `no-panic-paths` rule applies.
/// These are the files a crash-consistency bug would live in; a panic
/// there can tear a commit in half. The paged store (pager, B-tree,
/// buffer pool) sits on the checkpoint/recovery path, so it qualifies.
const CRITICAL_FILES: &[&str] = &[
    "wal.rs",
    "txn.rs",
    "storage.rs",
    "db.rs",
    "shared.rs",
    "vfs.rs",
    "pager.rs",
    "btree.rs",
    "bufpool.rs",
];

/// All rule names, for validating `allow(...)` entries.
const RULE_NAMES: &[&str] = &[
    "fs-seam",
    "clock-seam",
    "thread-seam",
    "no-panic-paths",
    "safety-comment",
    "lock-rank",
    "no-row-materialize",
];

/// Columnar kernel modules where `no-row-materialize` applies: code here
/// operates on column slices; per-row materialization belongs at the
/// engine boundary (and defeats the point of the columnar layout).
const COLUMNAR_FILES: &[&str] = &["columnar.rs"];

/// A parsed `// lint: allow(rule): justification` comment.
struct Allow {
    rule: String,
    line: u32,
    has_justification: bool,
}

/// Analyze one file's source. `rel_path` is the workspace-relative path
/// used in diagnostics; rule applicability is derived from it.
pub fn analyze_file(rel_path: &str, src: &str) -> Vec<Finding> {
    let tokens = crate::lexer::tokenize(src);
    let in_test = test_region_mask(&tokens);
    let allows = parse_allows(rel_path, &tokens);

    let norm = rel_path.replace('\\', "/");
    let file_name = norm.rsplit('/').next().unwrap_or(&norm);
    let in_pool = norm.contains("crates/pool/src");
    let is_pool_time = in_pool && file_name == "time.rs";
    let is_vfs = file_name == "vfs.rs";
    let is_critical = CRITICAL_FILES.contains(&file_name);
    let is_columnar = COLUMNAR_FILES.contains(&file_name);

    // Code-only view (indices back into `tokens`) so matchers never trip
    // on comment text, and comments stay available for SAFETY lookups.
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| tokens[i].kind != TokenKind::Comment)
        .collect();

    let mut findings = Vec::new();
    let mut push = |allows: &[Allow], rule: &'static str, line: u32, message: String| {
        if !is_allowed(allows, rule, line) {
            findings.push(Finding { file: rel_path.to_string(), line, rule, message });
        }
    };

    let ident = |ci: usize| -> Option<&str> {
        let t = &tokens[code[ci]];
        (t.kind == TokenKind::Ident).then_some(t.text.as_str())
    };
    let punct = |ci: usize, p: &str| -> bool {
        let t = &tokens[code[ci]];
        t.kind == TokenKind::Punct && t.text == p
    };

    for ci in 0..code.len() {
        let ti = code[ci];
        if in_test[ti] {
            continue;
        }
        let tok = &tokens[ti];
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let line = tok.line;
        let next_is = |off: usize, want: &str| {
            ci + off < code.len() && ident(ci + off) == Some(want)
        };
        let next_punct = |off: usize, want: &str| ci + off < code.len() && punct(ci + off, want);
        let prev_punct = |want: &str| ci > 0 && punct(ci - 1, want);
        let prev_is = |want: &str| ci > 0 && ident(ci - 1) == Some(want);

        match tok.text.as_str() {
            // ---- fs-seam ------------------------------------------------
            "std" if !is_vfs && next_punct(1, "::") && next_is(2, "fs") => {
                push(
                    &allows,
                    "fs-seam",
                    line,
                    "direct `std::fs` use; route disk I/O through the `Vfs` seam (vfs.rs)"
                        .to_string(),
                );
            }
            "File" if !is_vfs && next_punct(1, "::") => {
                push(
                    &allows,
                    "fs-seam",
                    line,
                    "direct `File::*` use; route disk I/O through the `Vfs` seam (vfs.rs)"
                        .to_string(),
                );
            }
            // ---- clock-seam ---------------------------------------------
            "Instant" | "SystemTime"
                if !is_pool_time && next_punct(1, "::") && next_is(2, "now") =>
            {
                push(
                    &allows,
                    "clock-seam",
                    line,
                    format!(
                        "`{}::now()` reads the wall clock; use the `Clock` seam (swan_pool::time)",
                        tok.text
                    ),
                );
            }
            "thread" if !is_pool_time && next_punct(1, "::") && next_is(2, "sleep") => {
                push(
                    &allows,
                    "clock-seam",
                    line,
                    "`thread::sleep` blocks on real time; use `Clock::sleep` (swan_pool::time)"
                        .to_string(),
                );
            }
            // ---- thread-seam --------------------------------------------
            "thread" if !in_pool && next_punct(1, "::") && next_is(2, "spawn") => {
                push(
                    &allows,
                    "thread-seam",
                    line,
                    "`thread::spawn` outside swan_pool; use the worker pool so shutdown and \
                     panics stay centralized"
                        .to_string(),
                );
            }
            // ---- no-panic-paths -----------------------------------------
            "unwrap" | "expect"
                if is_critical && prev_punct(".") && next_punct(1, "(") =>
            {
                push(
                    &allows,
                    "no-panic-paths",
                    line,
                    format!(
                        "`.{}()` on a commit/recovery path; return a typed `Error` with context \
                         instead of panicking",
                        tok.text
                    ),
                );
            }
            "panic" | "unreachable" | "unimplemented" | "todo"
                if is_critical && next_punct(1, "!") =>
            {
                push(
                    &allows,
                    "no-panic-paths",
                    line,
                    format!(
                        "`{}!` on a commit/recovery path; return a typed `Error` with context \
                         instead of panicking",
                        tok.text
                    ),
                );
            }
            // ---- no-row-materialize -------------------------------------
            // The *definition* of `materialize_row` (preceded by `fn`) is
            // the sanctioned boundary; calls inside kernel code are the
            // hazard — each one walks every column for one row and
            // allocates, defeating the columnar layout.
            "materialize_row"
                if is_columnar && next_punct(1, "(") && !prev_is("fn") =>
            {
                push(
                    &allows,
                    "no-row-materialize",
                    line,
                    "`materialize_row` call inside a columnar kernel module; operate on \
                     column slices and materialize rows only at the engine boundary"
                        .to_string(),
                );
            }
            "Row" if is_columnar && next_punct(1, "::") => {
                push(
                    &allows,
                    "no-row-materialize",
                    line,
                    "`Row::` construction inside a columnar kernel module; kernels return \
                     verdicts/column data, the engine boundary materializes rows"
                        .to_string(),
                );
            }
            // ---- safety-comment -----------------------------------------
            "unsafe" => {
                if !has_safety_comment(&tokens, line) {
                    push(
                        &allows,
                        "safety-comment",
                        line,
                        "`unsafe` without a `// SAFETY:` comment within 5 lines above it"
                            .to_string(),
                    );
                }
            }
            // ---- lock-rank ----------------------------------------------
            "Mutex" | "RwLock"
                if !prev_punct("::") && next_punct(1, "::") && next_is(2, "new") =>
            {
                push(
                    &allows,
                    "lock-rank",
                    line,
                    format!(
                        "`{}::new` creates an unranked lock; use `{}::with_rank(name, rank, ..)` \
                         with a rank from swan_pool::lockrank",
                        tok.text, tok.text
                    ),
                );
            }
            _ => {}
        }
    }

    // Malformed or dead allow entries are findings themselves: an escape
    // hatch that doesn't say *why*, or names a rule that doesn't exist,
    // is worse than no escape hatch.
    for a in &allows {
        if !RULE_NAMES.contains(&a.rule.as_str()) {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: a.line,
                rule: "allowlist",
                message: format!(
                    "`allow({})` names an unknown rule (known: {})",
                    a.rule,
                    RULE_NAMES.join(", ")
                ),
            });
        } else if !a.has_justification {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: a.line,
                rule: "allowlist",
                message: format!(
                    "`allow({})` is missing a justification; write \
                     `// lint: allow({}): <why this is safe here>`",
                    a.rule, a.rule
                ),
            });
        }
    }

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Mark every token inside a `#[cfg(test)]` or `#[test]` item. The
/// attribute pattern is matched exactly — `#[cfg(not(test))]` is *not*
/// a test region. The skipped span runs to the end of the item: the
/// matching `}` of its first brace, or a `;` for brace-less items.
fn test_region_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| tokens[i].kind != TokenKind::Comment)
        .collect();
    let text = |ci: usize| tokens[code[ci]].text.as_str();

    let mut ci = 0usize;
    while ci < code.len() {
        let is_attr_start = text(ci) == "#"
            && ci + 1 < code.len()
            && text(ci + 1) == "[";
        let is_cfg_test = is_attr_start
            && ci + 6 < code.len()
            && text(ci + 2) == "cfg"
            && text(ci + 3) == "("
            && text(ci + 4) == "test"
            && text(ci + 5) == ")"
            && text(ci + 6) == "]";
        let is_test_attr = is_attr_start
            && ci + 3 < code.len()
            && text(ci + 2) == "test"
            && text(ci + 3) == "]";
        if !(is_cfg_test || is_test_attr) {
            ci += 1;
            continue;
        }
        let attr_end = if is_cfg_test { ci + 6 } else { ci + 3 };
        // Walk to the item body: first `{` opens it; a `;` before any `{`
        // ends a brace-less item (e.g. `#[cfg(test)] mod tests;`).
        let mut cj = attr_end + 1;
        let mut body_open = None;
        while cj < code.len() {
            match text(cj) {
                "{" => {
                    body_open = Some(cj);
                    break;
                }
                ";" => break,
                _ => cj += 1,
            }
        }
        let span_end_ci = if let Some(open) = body_open {
            let mut depth = 0i32;
            let mut ck = open;
            loop {
                match text(ck) {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                ck += 1;
                if ck >= code.len() {
                    ck = code.len() - 1;
                    break;
                }
            }
            ck
        } else {
            cj.min(code.len() - 1)
        };
        for c in ci..=span_end_ci {
            mask[code[c]] = true;
        }
        ci = span_end_ci + 1;
    }
    mask
}

/// Is there a comment containing `SAFETY` on `unsafe_line` or within the
/// 5 lines above it?
fn has_safety_comment(tokens: &[Token], unsafe_line: u32) -> bool {
    let low = unsafe_line.saturating_sub(5);
    tokens.iter().any(|t| {
        t.kind == TokenKind::Comment
            && t.line >= low
            && t.line <= unsafe_line
            && t.text.contains("SAFETY")
    })
}

/// Parse all `// lint: allow(rule): justification` comments. Only plain
/// comments count — doc comments (`///`, `//!`, `/**`, `/*!`) are prose
/// and may *mention* the syntax without activating it.
fn parse_allows(_rel_path: &str, tokens: &[Token]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::Comment {
            continue;
        }
        let is_doc = t.text.starts_with("///")
            || t.text.starts_with("//!")
            || t.text.starts_with("/**")
            || t.text.starts_with("/*!");
        if is_doc {
            continue;
        }
        let Some(pos) = t.text.find("lint: allow(") else { continue };
        let rest = &t.text[pos + "lint: allow(".len()..];
        let Some(close) = rest.find(')') else { continue };
        let rule = rest[..close].trim().to_string();
        let after = &rest[close + 1..];
        let has_justification = after
            .strip_prefix(':')
            .map(|j| !j.trim().is_empty())
            .unwrap_or(false);
        allows.push(Allow { rule, line: t.line, has_justification });
    }
    allows
}

/// A finding at `line` is suppressed by a well-formed allow for the same
/// rule on the same line or the line directly above.
fn is_allowed(allows: &[Allow], rule: &str, line: u32) -> bool {
    allows.iter().any(|a| {
        a.has_justification && a.rule == rule && (a.line == line || a.line + 1 == line)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        analyze_file(path, src)
    }

    #[test]
    fn fs_seam_flags_std_fs_and_file() {
        let f = run("crates/x/src/foo.rs", "fn f() { let _ = std::fs::read(\"a\"); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "fs-seam");
        let f = run("crates/x/src/foo.rs", "fn f() { let _ = File::open(\"a\"); }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "fs-seam");
    }

    #[test]
    fn fs_seam_exempts_vfs_rs() {
        let f = run("crates/sqlengine/src/vfs.rs", "fn f() { let _ = std::fs::read(\"a\"); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn clock_seam_flags_now_and_sleep_but_not_pool_time() {
        let src = "fn f() { let _ = Instant::now(); thread::sleep(d); SystemTime::now(); }";
        let f = run("crates/llm/src/model.rs", src);
        assert_eq!(f.iter().filter(|x| x.rule == "clock-seam").count(), 3, "{f:?}");
        let f = run("crates/pool/src/time.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn thread_seam_flags_spawn_but_not_pool() {
        let src = "fn f() { thread::spawn(|| {}); }";
        let f = run("crates/llm/src/parallel.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "thread-seam");
        let f = run("crates/pool/src/lib.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn no_panic_paths_only_on_critical_files() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"boom\"); }";
        let f = run("crates/sqlengine/src/wal.rs", src);
        assert_eq!(f.iter().filter(|x| x.rule == "no-panic-paths").count(), 3, "{f:?}");
        let f = run("crates/sqlengine/src/parser.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn no_panic_paths_covers_the_paged_store() {
        let src = "fn f() { x.unwrap(); }";
        for file in ["pager.rs", "btree.rs", "bufpool.rs"] {
            let f = run(&format!("crates/sqlengine/src/{file}"), src);
            assert_eq!(
                f.iter().filter(|x| x.rule == "no-panic-paths").count(),
                1,
                "{file}: {f:?}"
            );
        }
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let f = run("crates/sqlengine/src/db.rs", "fn f() { x.unwrap_or_else(|| 0); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn safety_comment_required_within_five_lines() {
        let bad = "fn f() {\n    unsafe { g(); }\n}";
        let f = run("crates/pool/src/lib.rs", bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "safety-comment");
        let good = "fn f() {\n    // SAFETY: g has no preconditions here.\n    unsafe { g(); }\n}";
        assert!(run("crates/pool/src/lib.rs", good).is_empty());
    }

    #[test]
    fn lock_rank_flags_bare_new_but_not_qualified_paths() {
        let f = run("crates/core/src/udf.rs", "fn f() { let m = Mutex::new(0); }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "lock-rank");
        let f = run(
            "crates/core/src/udf.rs",
            "fn f() { let m = std::sync::Mutex::new(0); let r = RwLock::with_rank(\"r\", 1, 0); }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn no_row_materialize_flags_calls_not_definition() {
        let src = "pub fn materialize_row(i: usize) -> Row { x(i) }\n\
                   fn k(s: &ColumnSet) { let _ = s.materialize_row(0); let r = Row::from(v); }";
        let f = run("crates/sqlengine/src/columnar.rs", src);
        assert_eq!(f.iter().filter(|x| x.rule == "no-row-materialize").count(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.line == 2), "{f:?}");
        // Outside columnar kernel modules the rule is inert.
        let f = run("crates/sqlengine/src/exec.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn no_row_materialize_ignores_type_positions() {
        let src = "pub fn from_rows(rows: &[Row], width: usize) -> Vec<Row> { build(rows) }";
        let f = run("crates/sqlengine/src/columnar.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allowlist_suppresses_with_justification() {
        let src = "// lint: allow(fs-seam): tooling binary reads sources directly\n\
                   fn f() { let _ = std::fs::read(\"a\"); }";
        assert!(run("crates/x/src/foo.rs", src).is_empty());
        let same_line =
            "fn f() { let _ = std::fs::read(\"a\"); } // lint: allow(fs-seam): tooling";
        assert!(run("crates/x/src/foo.rs", same_line).is_empty());
    }

    #[test]
    fn allow_without_justification_reports_and_does_not_suppress() {
        let src = "// lint: allow(fs-seam)\nfn f() { let _ = std::fs::read(\"a\"); }";
        let f = run("crates/x/src/foo.rs", src);
        let rules: Vec<&str> = f.iter().map(|x| x.rule).collect();
        assert!(rules.contains(&"fs-seam"), "{f:?}");
        assert!(rules.contains(&"allowlist"), "{f:?}");
    }

    #[test]
    fn allow_unknown_rule_reports() {
        let src = "// lint: allow(no-such-rule): because\nfn f() {}";
        let f = run("crates/x/src/foo.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "allowlist");
    }

    #[test]
    fn cfg_test_regions_are_skipped() {
        let src = "fn prod() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       use std::fs;\n\
                       fn t() { let _ = std::fs::read(\"a\"); x.unwrap(); }\n\
                   }";
        assert!(run("crates/sqlengine/src/wal.rs", src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_skipped() {
        let src = "#[cfg(not(test))]\nfn prod() { let _ = std::fs::read(\"a\"); }";
        let f = run("crates/x/src/foo.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "fs-seam");
    }

    #[test]
    fn test_attr_fn_is_skipped_but_code_after_is_not() {
        let src = "#[test]\nfn t() { let _ = std::fs::read(\"a\"); }\n\
                   fn prod() { let _ = std::fs::read(\"b\"); }";
        let f = run("crates/x/src/foo.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
    }
}
