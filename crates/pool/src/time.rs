//! The clock seam under every deadline and backoff in the workspace.
//!
//! Mirrors the `Vfs` design one layer down: code that needs to *read*
//! time or *wait* does so through a [`Clock`], so production uses the
//! monotonic OS clock ([`RealClock`]) while deterministic harnesses use
//! [`SimClock`] — virtual time whose `sleep` advances the clock
//! instantly. The LLM fault sweep (`tests/llm_fault_sim.rs`) runs
//! thousands of timeout/backoff/circuit-breaker schedules in
//! milliseconds of wall time because nothing ever really sleeps, and
//! every "did the retry respect the deadline?" assertion is exact
//! instead of racy.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic clock: an opaque "now" (duration since the clock's own
/// epoch) plus the ability to wait. Implementations must be cheap to
/// query — deadline checks sit inside row loops.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Time elapsed since this clock's epoch.
    fn now(&self) -> Duration;
    /// Block (really or virtually) for `d`.
    fn sleep(&self, d: Duration);
}

/// Shared handle to a clock.
pub type ClockHandle = Arc<dyn Clock>;

/// The production clock: [`Instant`]-based monotonic time, real sleeps.
#[derive(Debug)]
pub struct RealClock {
    epoch: Instant,
}

impl RealClock {
    pub fn new() -> Self {
        RealClock { epoch: Instant::now() }
    }

    /// A shared handle — the common constructor.
    pub fn handle() -> ClockHandle {
        Arc::new(RealClock::new())
    }
}

impl Default for RealClock {
    fn default() -> Self {
        RealClock::new()
    }
}

impl Clock for RealClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn sleep(&self, d: Duration) {
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

/// Deterministic virtual time: `now` is an atomic nanosecond counter and
/// `sleep(d)` advances it by `d` *instantly*. Schedules that would take
/// minutes of backoff run in microseconds, and two runs of the same
/// schedule observe identical timestamps.
///
/// Virtual time is shared through clones of the handle: a transport
/// simulating a slow response and a retry loop sleeping out its backoff
/// advance the *same* counter, so their interleaving is visible to both.
#[derive(Debug, Default)]
pub struct SimClock {
    nanos: AtomicU64,
}

impl SimClock {
    pub fn new() -> Self {
        SimClock::default()
    }

    /// A shared handle starting at virtual time zero.
    pub fn handle() -> Arc<SimClock> {
        Arc::new(SimClock::new())
    }

    /// Advance virtual time without sleeping (fault-script helper).
    pub fn advance(&self, d: Duration) {
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::SeqCst);
    }
}

impl Clock for SimClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotonic() {
        let c = RealClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn sim_clock_sleep_advances_instantly() {
        let c = SimClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        let wall = Instant::now();
        c.sleep(Duration::from_secs(3600));
        assert_eq!(c.now(), Duration::from_secs(3600));
        assert!(wall.elapsed() < Duration::from_millis(100), "virtual sleep must not block");
        c.advance(Duration::from_millis(5));
        assert_eq!(c.now(), Duration::from_secs(3600) + Duration::from_millis(5));
    }

    #[test]
    fn sim_clock_is_shared_through_the_handle() {
        let c = SimClock::handle();
        let clock: ClockHandle = c.clone();
        clock.sleep(Duration::from_millis(250));
        assert_eq!(c.now(), Duration::from_millis(250));
    }
}
