//! Cooperative cancellation and statement deadlines.
//!
//! A [`CancelToken`] is a cheap, cloneable handle carrying two pieces of
//! state: an explicit *cancelled* flag anyone holding a clone can set,
//! and an optional *deadline* read against a shared [`Clock`]. Work
//! that may run long — morsel loops in the SQL executor, LLM retry
//! loops, single-flight waiters — calls [`CancelToken::check`] at its
//! natural batch boundaries and unwinds cleanly with a
//! [`CancelReason`] when the statement's time is up.
//!
//! Tokens cross pool threads two ways: captured explicitly by the
//! fan-out closures (the executor clones the token into every worker
//! context), or through the **current-token** thread-local that
//! [`with_current`] scopes around a statement so layers without a
//! parameter path to the executor (the resilient model wrapper, deep
//! inside a `ScalarUdf::invoke`) can still observe the statement's
//! deadline via [`current`].

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::time::ClockHandle;

/// Why a [`CancelToken::check`] failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// Someone called [`CancelToken::cancel`].
    Cancelled,
    /// The deadline passed on the token's clock.
    DeadlineExceeded,
}

impl fmt::Display for CancelReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CancelReason::Cancelled => write!(f, "cancelled"),
            CancelReason::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

struct TokenState {
    cancelled: AtomicBool,
    /// Absolute deadline on `clock` (None = unbounded).
    deadline: Option<Duration>,
    clock: Option<ClockHandle>,
}

/// Cloneable cancellation/deadline handle; all clones share one state.
#[derive(Clone)]
pub struct CancelToken {
    state: Arc<TokenState>,
}

impl fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .field("deadline", &self.state.deadline)
            .finish()
    }
}

impl CancelToken {
    /// A token that never expires on its own (it can still be
    /// [`cancel`](CancelToken::cancel)led). The common default: checks
    /// against it are a single relaxed atomic load.
    pub fn unbounded() -> Self {
        CancelToken {
            state: Arc::new(TokenState {
                cancelled: AtomicBool::new(false),
                deadline: None,
                clock: None,
            }),
        }
    }

    /// A token that expires `timeout` from now on `clock`.
    pub fn with_timeout(clock: ClockHandle, timeout: Duration) -> Self {
        let deadline = clock.now() + timeout;
        CancelToken {
            state: Arc::new(TokenState {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
                clock: Some(clock),
            }),
        }
    }

    /// Flip the cancelled flag; every clone observes it.
    pub fn cancel(&self) {
        self.state.cancelled.store(true, Ordering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        self.state.cancelled.load(Ordering::Relaxed)
    }

    /// The clock this token's deadline is read against, if it has one.
    pub fn clock(&self) -> Option<&ClockHandle> {
        self.state.clock.as_ref()
    }

    /// Time left until the deadline (None = unbounded). Zero means the
    /// deadline already passed.
    pub fn remaining(&self) -> Option<Duration> {
        let deadline = self.state.deadline?;
        let clock = self.state.clock.as_ref()?;
        Some(deadline.saturating_sub(clock.now()))
    }

    /// The cooperative check: `Ok` to keep working, `Err` with the
    /// reason once the token is cancelled or past its deadline.
    pub fn check(&self) -> Result<(), CancelReason> {
        if self.is_cancelled() {
            return Err(CancelReason::Cancelled);
        }
        if let (Some(deadline), Some(clock)) =
            (self.state.deadline, self.state.clock.as_ref())
        {
            if clock.now() >= deadline {
                return Err(CancelReason::DeadlineExceeded);
            }
        }
        Ok(())
    }
}

thread_local! {
    /// The statement-scoped token, visible to layers with no parameter
    /// path from the executor (UDF internals, the resilient model).
    static CURRENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Run `f` with `token` installed as this thread's current token,
/// restoring the previous one (nesting-safe) afterwards — including on
/// unwind.
pub fn with_current<R>(token: &CancelToken, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<CancelToken>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let prev = CURRENT.with(|c| c.borrow_mut().replace(token.clone()));
    let _restore = Restore(prev);
    f()
}

/// The token installed by the nearest enclosing [`with_current`], if any.
/// Pool workers do NOT inherit the submitting thread's token — fan-out
/// code must re-install it in each worker closure.
pub fn current() -> Option<CancelToken> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Check the current token (no-op `Ok` when none is installed).
pub fn check_current() -> Result<(), CancelReason> {
    CURRENT.with(|c| match &*c.borrow() {
        Some(token) => token.check(),
        None => Ok(()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimClock;

    #[test]
    fn unbounded_token_only_fails_when_cancelled() {
        let t = CancelToken::unbounded();
        assert_eq!(t.check(), Ok(()));
        assert_eq!(t.remaining(), None);
        let clone = t.clone();
        clone.cancel();
        assert_eq!(t.check(), Err(CancelReason::Cancelled));
    }

    #[test]
    fn deadline_expires_on_the_clock() {
        let clock = SimClock::handle();
        let t = CancelToken::with_timeout(clock.clone(), Duration::from_millis(100));
        assert_eq!(t.check(), Ok(()));
        assert_eq!(t.remaining(), Some(Duration::from_millis(100)));
        clock.advance(Duration::from_millis(99));
        assert_eq!(t.check(), Ok(()));
        clock.advance(Duration::from_millis(1));
        assert_eq!(t.check(), Err(CancelReason::DeadlineExceeded));
        assert_eq!(t.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn cancel_wins_over_deadline() {
        let clock = SimClock::handle();
        let t = CancelToken::with_timeout(clock.clone(), Duration::from_secs(10));
        t.cancel();
        clock.advance(Duration::from_secs(20));
        assert_eq!(t.check(), Err(CancelReason::Cancelled));
    }

    #[test]
    fn current_token_scopes_and_restores() {
        assert!(current().is_none());
        assert_eq!(check_current(), Ok(()));
        let outer = CancelToken::unbounded();
        with_current(&outer, || {
            assert!(current().is_some());
            let inner = CancelToken::unbounded();
            inner.cancel();
            with_current(&inner, || {
                assert_eq!(check_current(), Err(CancelReason::Cancelled));
            });
            // Restored to the (uncancelled) outer token.
            assert_eq!(check_current(), Ok(()));
        });
        assert!(current().is_none());
    }

    #[test]
    fn current_token_restored_on_unwind() {
        let t = CancelToken::unbounded();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_current(&t, || panic!("boom"));
        }));
        assert!(caught.is_err());
        assert!(current().is_none(), "unwind must not leak the token");
    }

    #[test]
    fn workers_do_not_inherit_current_without_reinstall() {
        let t = CancelToken::unbounded();
        t.cancel();
        with_current(&t, || {
            let seen: Vec<bool> = crate::parallel_items(4, 4, |_| current().is_some());
            // Inline execution (reentrant/1-worker) may see it; dedicated
            // pool threads must not. Either way, re-installing explicitly
            // is what fan-out code does:
            let reinstalled: Vec<Result<(), CancelReason>> = crate::parallel_items(4, 4, |_| {
                with_current(&t, check_current)
            });
            assert!(reinstalled.iter().all(|r| *r == Err(CancelReason::Cancelled)));
            drop(seen);
        });
    }
}
