//! # swan-pool — the shared compute pool
//!
//! A **persistent, bounded worker pool** used by every parallel subsystem
//! in the workspace: the LLM layer fans prompt batches through it
//! (`swan_llm::parallel::complete_many`) and the SQL executor drives
//! morsel-parallel operators over it (`swan_sqlengine::exec_parallel`).
//! It generalizes the order-preserving pool that previously lived inside
//! `swan_llm`: the pool itself knows nothing about prompts or rows — it
//! runs borrowed closures.
//!
//! Design points, unchanged from the LLM-local ancestor:
//!
//! * the pool is created lazily on first use and reused forever — no
//!   per-call (let alone per-item) thread spawning;
//! * a call submits at most `workers` jobs that *steal* item indices from
//!   a shared counter, so per-call concurrency stays capped while
//!   latency-skewed batches still balance across the whole set;
//! * claimed indices give a worker exclusive access to pre-sized result
//!   slots, which preserves input order without a reordering pass;
//! * `workers <= 1` runs inline on the caller thread (the sequential
//!   baseline for every parallelism ablation), and **reentrant** use from
//!   inside a pool worker also runs inline — a fixed pool that waited on
//!   itself could deadlock;
//! * a panicking job never kills a pool thread; the panic is re-raised on
//!   the submitting thread after every sibling job has finished.
//!
//! # Thread-count configuration
//!
//! [`configured_threads`] answers "how parallel should work be by
//! default": the `SWAN_THREADS` environment variable when set (clamped to
//! at least 1), otherwise [`std::thread::available_parallelism`].
//! `SWAN_THREADS=1` therefore reproduces fully serial execution across
//! the whole workspace.
//!
//! # Time and cancellation
//!
//! The crate also hosts the two primitives every long-running path in
//! the workspace shares (it is the one crate both the LLM layer and the
//! SQL executor depend on): the [`time`] module's [`Clock`] seam
//! (production [`RealClock`] vs the deterministic virtual-time
//! [`SimClock`] the LLM fault sweep runs on) and the [`cancel`]
//! module's [`CancelToken`] — the cooperative statement
//! deadline/cancellation handle morsel loops, retry loops and
//! single-flight waiters check between units of work.

pub mod cancel;
pub mod lockrank;
pub mod time;

pub use cancel::{CancelReason, CancelToken};
pub use time::{Clock, ClockHandle, RealClock, SimClock};

use parking_lot::{Condvar, Mutex};
use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, OnceLock};

/// Default number of workers for parallel work: the `SWAN_THREADS`
/// environment variable when set and parseable (minimum 1), otherwise the
/// machine's available parallelism. Read per call — cheap, and tests can
/// flip the variable between statements.
pub fn configured_threads() -> usize {
    match std::env::var("SWAN_THREADS") {
        // An unparseable value falls back to the machine default (as the
        // unset case does) rather than silently forcing serial execution.
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) => n.max(1),
            Err(_) => default_parallelism(),
        },
        Err(_) => default_parallelism(),
    }
}

fn default_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// True while running on a pool worker thread. Callers that would submit
/// nested pool work should (and [`run_workers`] does) run it inline
/// instead — a fully-loaded fixed pool waiting on itself can deadlock.
pub fn is_pool_worker() -> bool {
    IS_POOL_WORKER.with(|w| w.get())
}

/// Run `job(worker_index)` on up to `workers` pool threads and wait for
/// all of them. `workers <= 1` — or a call from inside a pool worker —
/// runs `job(0)` inline on the caller thread. A panic in any job is
/// re-raised on the calling thread after every job has finished.
///
/// The jobs are expected to coordinate work-stealing among themselves
/// (typically via a shared [`AtomicUsize`] item counter); helpers like
/// [`parallel_items`] and [`parallel_morsels`] package that pattern.
pub fn run_workers<F>(workers: usize, job: F)
where
    F: Fn(usize) + Sync,
{
    let workers = workers.max(1);
    if workers == 1 || is_pool_worker() {
        job(0);
        return;
    }
    // Everything that can panic *before* any job is submitted — lazy pool
    // creation (thread spawning can fail) and job boxing — happens before
    // the latch guard is armed: a panic here must propagate, not leave
    // the guard waiting on jobs that will never run.
    let p = pool();
    let job = &job;
    let jobs: Vec<Job<'_>> = (0..workers)
        .map(|w| {
            let j: Job<'_> = Box::new(move || job(w));
            j
        })
        .collect();
    let latch = Latch::new(workers);
    {
        // SAFETY-ordering: the guard is dropped (and thus waits for every
        // submitted job) before the borrows held by the jobs can die — on
        // the normal path *and* on any unwind out of this block.
        let _guard = WaitOnDrop(&latch);
        p.run_scoped(jobs, &latch);
    }
    latch.check_panic();
}

/// Like [`parallel_morsels`], but each worker first builds a private
/// context with `init` and every morsel it processes receives `&mut` to
/// it — so per-worker setup (a scratch buffer, a worker-local cache
/// clone) is paid once per *worker*, not once per morsel. `init` runs on
/// the worker thread; the context never crosses threads.
pub fn parallel_morsels_with<C, T, I, F>(
    count: usize,
    morsel: usize,
    workers: usize,
    init: I,
    f: F,
) -> Vec<T>
where
    T: Send,
    I: Fn() -> C + Sync,
    F: Fn(&mut C, std::ops::Range<usize>) -> T + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let chunk = morsel.max(1);
    let n_chunks = count.div_ceil(chunk);
    let workers = workers.max(1).min(n_chunks);
    if workers == 1 || is_pool_worker() {
        let mut ctx = init();
        return (0..n_chunks)
            .map(|i| f(&mut ctx, i * chunk..((i + 1) * chunk).min(count)))
            .collect();
    }
    let slots: Vec<Slot<T>> = (0..n_chunks).map(|_| Slot(UnsafeCell::new(None))).collect();
    let next = AtomicUsize::new(0);
    {
        let slots = &slots;
        let next = &next;
        let init = &init;
        let f = &f;
        run_workers(workers, move |_| {
            let mut ctx = init();
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_chunks {
                    break;
                }
                let out = f(&mut ctx, i * chunk..((i + 1) * chunk).min(count));
                // SAFETY: index `i` was claimed exactly once, so this
                // worker has exclusive access to slot `i`; the caller
                // reads only after `run_workers` has waited for every job.
                unsafe { *slots[i].0.get() = Some(out) };
            }
        });
    }
    slots
        .into_iter()
        .map(|s| s.0.into_inner().expect("every chunk slot filled"))
        .collect()
}

/// Map `f` over `0..count` on up to `workers` pool threads, returning the
/// results **in input order**. Items are claimed one at a time from a
/// shared counter (good for latency-skewed items such as model calls).
pub fn parallel_items<T, F>(count: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_chunks(count, 1, workers, |range| f(range.start))
}

/// Split `0..count` into fixed-size morsels of `morsel` items, map `f`
/// over the morsels on up to `workers` pool threads, and return one result
/// per morsel **in morsel order**. Workers steal morsel indices from a
/// shared counter, so a skewed morsel does not serialize its neighbours.
///
/// This is the executor's building block: because outputs come back in
/// morsel (= input) order, concatenating them reproduces the serial
/// operator's row order exactly.
pub fn parallel_morsels<T, F>(count: usize, morsel: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> T + Sync,
{
    parallel_chunks(count, morsel.max(1), workers, f)
}

fn parallel_chunks<T, F>(count: usize, chunk: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> T + Sync,
{
    parallel_morsels_with(count, chunk, workers, || (), |(), range| f(range))
}

/// One result slot. `Sync` is sound because each index is claimed by
/// exactly one worker (via the shared counter) before being written, and
/// the caller only reads after the pool latch has settled.
struct Slot<T>(UnsafeCell<Option<T>>);

// SAFETY: each slot index is claimed by exactly one worker before being
// written (see the doc comment above), so no two threads ever touch the
// same cell concurrently, and readers are ordered after the latch wait.
unsafe impl<T: Send> Sync for Slot<T> {}

// ---- the worker pool -------------------------------------------------------

type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

/// A fixed set of worker threads fed from one shared queue.
struct WorkerPool {
    queue: mpsc::Sender<ScopedJob>,
    size: usize,
}

/// A job whose borrows have been erased; the submitting call guarantees it
/// completes (via its latch) before the borrowed data goes out of scope.
struct ScopedJob {
    job: Job<'static>,
    latch: Arc<LatchState>,
}

static POOL: OnceLock<WorkerPool> = OnceLock::new();

thread_local! {
    /// Set for the lifetime of a pool worker thread; used to detect
    /// reentrant pool use and run it inline instead of deadlocking a
    /// fully-loaded fixed pool.
    static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn pool() -> &'static WorkerPool {
    POOL.get_or_init(|| {
        // LLM calls are latency-bound, not CPU-bound, so the pool is allowed
        // to exceed the core count; it stays bounded regardless of how many
        // calls or items flow through it. The floor keeps headroom above the
        // §6 parallelism ablation's worker sweep even on small CI machines.
        let size = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .max(16)
            .min(64);
        WorkerPool::with_size(size)
    })
}

/// Number of threads in the shared pool (its global concurrency bound).
pub fn pool_size() -> usize {
    pool().size
}

impl WorkerPool {
    fn with_size(size: usize) -> Self {
        let (tx, rx) = mpsc::channel::<ScopedJob>();
        let rx = Arc::new(Mutex::with_rank("pool_queue", lockrank::POOL_QUEUE, rx));
        for i in 0..size {
            let rx = rx.clone();
            std::thread::Builder::new()
                .name(format!("swan-pool-worker-{i}"))
                .spawn(move || {
                    IS_POOL_WORKER.with(|w| w.set(true));
                    loop {
                        let next = {
                            let guard = rx.lock();
                            guard.recv()
                        };
                        let Ok(scoped) = next else { break };
                        // Keep the worker alive across panicking jobs; the
                        // panic is re-raised on the submitting thread.
                        let panicked = catch_unwind(AssertUnwindSafe(scoped.job)).is_err();
                        scoped.latch.count_down(panicked);
                    }
                })
                .expect("spawn pool worker thread");
        }
        WorkerPool { queue: tx, size }
    }

    /// Submit scoped jobs. SAFETY contract: the caller must wait on `latch`
    /// before any data borrowed by the jobs is dropped — [`run_workers`]
    /// enforces this with a [`WaitOnDrop`] guard covering every exit path.
    fn run_scoped(&self, jobs: Vec<Job<'_>>, latch: &Latch) {
        for job in jobs {
            // SAFETY: erasing the borrow lifetime of a Box<dyn FnOnce> is
            // layout-sound (a fat pointer does not depend on the lifetime
            // parameter) and use-sound by this function's contract: the
            // caller waits on `latch` before any borrowed data dies.
            let job: Job<'static> = unsafe { std::mem::transmute(job) };
            let scoped = ScopedJob { job, latch: latch.state.clone() };
            if let Err(mpsc::SendError(scoped)) = self.queue.send(scoped) {
                // Queue closed (cannot happen while the pool is alive, but
                // never leave a latch slot dangling): run inline instead.
                let panicked = catch_unwind(AssertUnwindSafe(scoped.job)).is_err();
                scoped.latch.count_down(panicked);
            }
        }
    }
}

// ---- completion latch ------------------------------------------------------

struct LatchState {
    remaining: Mutex<usize>,
    all_done: Condvar,
    panicked: AtomicBool,
}

/// Counts outstanding jobs of one `run_workers` call.
struct Latch {
    state: Arc<LatchState>,
}

/// Drop guard: waits for every job of a call to finish before the stack
/// frame (and the borrows the jobs hold) can unwind away. Never panics
/// from `drop` — panic propagation happens separately via
/// [`Latch::check_panic`] on the normal path.
struct WaitOnDrop<'a>(&'a Latch);

impl Drop for WaitOnDrop<'_> {
    fn drop(&mut self) {
        self.0.wait();
    }
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            state: Arc::new(LatchState {
                remaining: Mutex::with_rank("pool_latch", lockrank::POOL_LATCH, count),
                all_done: Condvar::new(),
                panicked: AtomicBool::new(false),
            }),
        }
    }

    /// Block until every job has finished.
    fn wait(&self) {
        let mut remaining = self.state.remaining.lock();
        while *remaining > 0 {
            remaining = self.state.all_done.wait(remaining);
        }
    }

    /// Re-raise a worker-job panic on the calling thread.
    fn check_panic(&self) {
        if self.state.panicked.load(Ordering::SeqCst) {
            panic!("pool worker job panicked");
        }
    }
}

impl LatchState {
    fn count_down(&self, panicked: bool) {
        if panicked {
            self.panicked.store(true, Ordering::SeqCst);
        }
        let mut remaining = self.remaining.lock();
        *remaining -= 1;
        if *remaining == 0 {
            self.all_done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::{Duration, Instant};

    #[test]
    fn parallel_items_preserves_order() {
        let out = parallel_items(100, 8, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_morsels_cover_exactly_once() {
        let ranges = parallel_morsels(1003, 64, 8, |r| r);
        let mut expect_start = 0;
        for r in &ranges {
            assert_eq!(r.start, expect_start, "morsels in order, no gaps");
            expect_start = r.end;
        }
        assert_eq!(expect_start, 1003);
    }

    #[test]
    fn empty_input() {
        assert!(parallel_items(0, 4, |i| i).is_empty());
        assert!(parallel_morsels(0, 16, 4, |r| r).is_empty());
    }

    #[test]
    fn single_worker_runs_inline() {
        let id = std::thread::current().id();
        run_workers(1, |w| {
            assert_eq!(w, 0);
            assert_eq!(std::thread::current().id(), id, "inline on the caller");
        });
    }

    #[test]
    fn actually_runs_concurrently() {
        let in_flight = AtomicU64::new(0);
        let max_in_flight = AtomicU64::new(0);
        parallel_items(16, 8, |_| {
            let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
            max_in_flight.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(5));
            in_flight.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(max_in_flight.load(Ordering::SeqCst) >= 2, "no concurrency observed");
    }

    /// Two adjacent slow items must land on different workers (index
    /// stealing), not in one worker's contiguous chunk.
    #[test]
    fn skewed_latencies_balance_across_workers() {
        let t = Instant::now();
        parallel_items(4, 2, |i| {
            if i < 2 {
                std::thread::sleep(Duration::from_millis(200));
            }
        });
        let elapsed = t.elapsed();
        // Static half/half chunking would serialize both slow items in one
        // chunk (~400ms); stealing runs them concurrently (~200ms).
        assert!(elapsed < Duration::from_millis(350), "slow items were not balanced: {elapsed:?}");
    }

    #[test]
    fn reentrant_use_runs_inline_without_deadlock() {
        // More outer items than pool threads would previously be able to
        // wedge every worker inside the nested wait.
        let out = parallel_items(80, 64, |i| {
            let inner = parallel_items(3, 4, move |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        assert_eq!(out.len(), 80);
        assert_eq!(out[7], 70 + 71 + 72);
    }

    #[test]
    fn worker_panic_propagates_without_killing_the_pool() {
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            parallel_items(3, 3, |i| {
                if i == 1 {
                    panic!("simulated job crash");
                }
            });
        }));
        assert!(caught.is_err(), "panic must propagate to the caller");

        // The pool survives and keeps serving.
        let out = parallel_items(8, 4, |i| i);
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn pool_size_is_fixed_across_calls() {
        let before = pool_size();
        for _ in 0..5 {
            parallel_items(6, 3, |i| i);
        }
        assert_eq!(pool_size(), before);
    }

    #[test]
    fn configured_threads_honours_env() {
        // Serialized via the env var name being test-unique is impossible;
        // just assert the parse contract on the current environment.
        let n = configured_threads();
        assert!(n >= 1);
    }

    #[test]
    fn unparseable_swan_threads_falls_back_to_machine_default() {
        // NOTE: process-global env; the only other reader in this binary
        // (`configured_threads_honours_env`) asserts `>= 1`, which both
        // the override and the fallback satisfy.
        std::env::set_var("SWAN_THREADS", "auto");
        let n = configured_threads();
        std::env::remove_var("SWAN_THREADS");
        assert_eq!(
            n,
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
            "a junk SWAN_THREADS value must not silently force serial execution"
        );
    }

    #[test]
    fn per_worker_init_runs_once_per_worker() {
        let inits = AtomicU64::new(0);
        let out = parallel_morsels_with(
            1000,
            10,
            4,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                0usize
            },
            |local, range| {
                *local += range.len();
                range.len()
            },
        );
        assert_eq!(out.iter().sum::<usize>(), 1000);
        assert!(
            inits.load(Ordering::SeqCst) <= 4,
            "context init must be per worker, not per morsel (100 morsels here)"
        );
    }
}
