//! The workspace lock hierarchy.
//!
//! Every long-lived lock in the engine is constructed with
//! `parking_lot::Mutex::with_rank` / `RwLock::with_rank` using a rank from
//! this table. Ranks are a total order over lock *classes*: a thread may
//! only acquire a lock whose rank is **>=** every rank it already holds
//! (equal ranks are for classes whose members are taken in a deterministic
//! internal order, like the per-table writer locks, which are always taken
//! in sorted table-name order). The runtime validator in the vendored
//! `parking_lot` shim enforces this on every `cargo test` run and whenever
//! `SWAN_LOCKDEP=1`; `swan-analyze` statically requires every long-lived
//! lock to declare a rank.
//!
//! This module is the single source of truth for rank *numbers*; the
//! human-readable "who may hold what while taking what" table lives in
//! `ANALYSIS.md` and must be kept in sync. Lower rank = outer lock
//! (acquired first). Gaps are deliberate — new locks slot in without
//! renumbering.
//!
//! It lives in `swan_pool` because that is the one crate every lock-holding
//! crate already depends on; the shim itself stays policy-free.

/// Per-table writer mutexes (`SharedDb`). One class; multi-table commits
/// acquire members in sorted table-name order, which equal-rank
/// same-class tracking permits.
pub const TABLE_WRITER: u32 = 10;

/// Group-commit queue state (`CommitQueue.state`). Taken by committers
/// while holding their writer locks; the leader re-takes it after the
/// WAL fsync to hand out follower results.
pub const COMMIT_QUEUE: u32 = 20;

/// The write-ahead log (`Mutex<Wal>`). Held across append + fsync and
/// across checkpoints; may take the catalog and VFS locks below it.
pub const WAL: u32 = 30;

/// The paged-storage core (`pager::Pager.inner`: page file handle, slot
/// map, free list, per-table tree roots). Taken under the WAL lock when
/// commits apply deltas to the B-trees and when checkpoints flush dirty
/// pages; takes the buffer pool and the VFS below it. Never taken while
/// holding `CATALOG` or `MVCC_HISTORY`.
pub const PAGER: u32 = 32;

/// The page buffer pool (`bufpool::BufferPool`): frame table, pin counts,
/// clock hand, eviction stats. Taken under `PAGER`; evicting a dirty
/// frame issues a page write, so the VFS lock sits below it.
pub const BUF_POOL: u32 = 34;

/// SimFs shared state (fault plan, file images). Leaf of the I/O stack:
/// taken by VFS operations issued under the WAL lock.
pub const VFS_SIM: u32 = 40;

/// The catalog (`RwLock<Catalog>`): snapshot reads and commit installs.
pub const CATALOG: u32 = 50;

/// The UDF registry (`RwLock<UdfRegistry>`).
pub const UDF_REGISTRY: u32 = 51;

/// Optimizer configuration (`RwLock<OptimizerConfig>`).
pub const OPTIMIZER: u32 = 52;

/// Statement timeout configuration.
pub const STATEMENT_TIMEOUT: u32 = 53;

/// The engine clock handle (`RwLock<ClockHandle>`).
pub const CLOCK: u32 = 54;

/// MVCC commit history + snapshot pins (`shared::Shared.history`).
/// Above `CATALOG`: `BEGIN` pins the history sequence under the catalog
/// read lock and installs record their write sets under the catalog
/// write lock, so history is always the inner lock of the pair.
pub const MVCC_HISTORY: u32 = 56;

/// Per-query scalar-subquery memo cache (`exec::SubqueryCache`).
pub const SUBQUERY_CACHE: u32 = 60;

/// UDF single-flight table (`udf::Shared.in_flight`).
pub const UDF_FLIGHT: u32 = 70;

/// UDF answer cache (`udf::Shared.answers`). The documented order is
/// `in_flight` then `answers`, never the reverse.
pub const UDF_ANSWERS: u32 = 71;

/// UDF stale-value cache (`udf::Shared.stale`), taken under `answers`
/// when degrading to stale results.
pub const UDF_STALE: u32 = 72;

/// UDF cache statistics (`udf::Shared.stats`).
pub const UDF_STATS: u32 = 73;

/// LLM response cache (`CachedModel.state`). Never held across a model
/// call.
pub const LLM_CACHE: u32 = 80;

/// Circuit-breaker state (`ResilientModel`). Never held across a model
/// call.
pub const LLM_BREAKER: u32 = 81;

/// SimTransport fault plan.
pub const SIM_TRANSPORT: u32 = 82;

/// Pool job queue receiver. Held only while a worker blocks in `recv`,
/// never while running a job.
pub const POOL_QUEUE: u32 = 90;

/// Pool completion latch. Waited on by submitters that may hold writer
/// locks (rank 10) and by workers holding nothing.
pub const POOL_LATCH: u32 = 91;

/// Parallel-executor merge sink (per-query result collection).
pub const MERGE_SINK: u32 = 95;

/// The `SharedDb` table-lock map. A leaf: taken briefly under a writer
/// lock when pruning idle entries.
pub const TABLE_LOCK_MAP: u32 = 190;

/// Per-commit-request result slot (`CommitRequest.done`). The deepest
/// leaf: waiters take it under the queue lock, the leader takes it after
/// the fsync while still holding writer locks.
pub const COMMIT_DONE: u32 = 200;
