//! Table 4 — average F1 factuality of HQDL-generated data,
//! model × {0,1,3,5}-shot.

use swan_core::experiment::{evaluate_hqdl, pct, render_table, Harness};
use swan_llm::ModelKind;

/// Paper Table 4 averages.
const PAPER: &[(ModelKind, usize, f64)] = &[
    (ModelKind::Gpt35Turbo, 0, 0.209),
    (ModelKind::Gpt35Turbo, 1, 0.373),
    (ModelKind::Gpt35Turbo, 3, 0.414),
    (ModelKind::Gpt35Turbo, 5, 0.427),
    (ModelKind::Gpt4Turbo, 0, 0.293),
    (ModelKind::Gpt4Turbo, 1, 0.470),
    (ModelKind::Gpt4Turbo, 3, 0.471),
    (ModelKind::Gpt4Turbo, 5, 0.482),
];

fn main() {
    let h = Harness::from_env();
    println!("Table 4: average F1 factuality of HQDL-generated data (measured vs paper)");
    println!();

    let mut rows = Vec::new();
    for (model, shots, paper) in PAPER {
        let e = evaluate_hqdl(&h.benchmark, h.kb.clone(), &h.gold, *model, *shots, 4);
        rows.push(vec![
            model.label().to_string(),
            format!("{shots}-shot"),
            pct(e.average_f1()),
            pct(*paper),
        ]);
    }

    println!(
        "{}",
        render_table(&["Model", "Demos", "Average F1 (measured)", "Paper"], &rows)
    );
    println!("Shape checks: F1 rises steeply 0->1 shot then plateaus; GPT-4 > GPT-3.5");
    println!("at every shot count (paper 5.3).");
}
