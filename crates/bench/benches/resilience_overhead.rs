//! No-fault overhead of the resilience layer.
//!
//! [`ResilientModel`] sits on every model call in a resilient pipeline:
//! a breaker admission check, a deadline computation, and an outcome
//! record per attempt. This bench runs the same `udf_fallback`-style
//! workload — `llm_map` in a JOIN ON over a subquery source, engine
//! batching on, 8 workers — through a raw [`SimulatedModel`] and through
//! the same model wrapped in `ResilientModel` (direct transport, real
//! clock, default policies), and reports the fault-free overhead. The
//! acceptance envelope is **< 5%**; anything above means bookkeeping is
//! leaking onto the per-call hot path.
//!
//! Each repetition builds a fresh runner so the model is actually called
//! (a warm answer cache would measure nothing); the reported number is
//! the fastest repetition of each arm, which is the most stable estimate
//! of the true cost under scheduler noise.

use std::sync::Arc;
use std::time::Instant;

use swan_core::experiment::{render_table, Harness};
use swan_core::udf::{UdfConfig, UdfRunner};
use swan_llm::{LanguageModel, ModelKind, ResilientModel, SimulatedModel};

const FALLBACK_SQL: &str =
    "SELECT COUNT(*) FROM (SELECT superhero_name, full_name FROM superhero) h \
     JOIN alignment a \
     ON llm_map('What is the moral alignment of the superhero?', \
                h.superhero_name, h.full_name) = a.alignment";

const REPS: usize = 5;

fn main() {
    let h = Harness::from_env();
    let domain = h.domain("superhero");
    let heroes = domain.curated.catalog().get("superhero").unwrap().len();
    let config = UdfConfig { workers: 8, ..Default::default() };

    println!("Resilience-layer overhead on the no-fault path");
    println!("(Super Hero, GPT-3.5 Turbo, {heroes} heroes, batch 5, 8 workers, best of {REPS})");
    println!();

    let mut best = [f64::INFINITY; 2];
    let mut calls = [0u64; 2];
    for _ in 0..REPS {
        for (arm, resilient) in [(0usize, false), (1, true)] {
            let sim = Arc::new(SimulatedModel::new(ModelKind::Gpt35Turbo, h.kb.clone()));
            let mut runner = if resilient {
                let wrapped = ResilientModel::wrap(sim.clone() as Arc<dyn LanguageModel>);
                UdfRunner::with_resilient(domain, wrapped, config)
            } else {
                UdfRunner::new(domain, sim.clone(), config)
            };
            let t = Instant::now();
            runner.run_sql(FALLBACK_SQL).expect("no-fault workload runs");
            let secs = t.elapsed().as_secs_f64();
            if secs < best[arm] {
                best[arm] = secs;
            }
            calls[arm] = sim.usage().calls;
        }
    }

    let overhead = (best[1] / best[0] - 1.0) * 100.0;
    println!(
        "{}",
        render_table(
            &["Model", "LLM calls", "Wall clock", "Overhead"],
            &[
                vec![
                    "raw SimulatedModel".into(),
                    calls[0].to_string(),
                    format!("{:.2} ms", best[0] * 1e3),
                    "—".into(),
                ],
                vec![
                    "ResilientModel (no faults)".into(),
                    calls[1].to_string(),
                    format!("{:.2} ms", best[1] * 1e3),
                    format!("{overhead:+.2}%"),
                ],
            ],
        )
    );
    println!(
        "Acceptance envelope: < 5% — the resilient arm pays one breaker \
         admission + deadline computation + outcome record per call."
    );
}
