//! Table 2 — HQDL execution accuracy on SWAN, model × {0,1,3,5}-shot ×
//! four databases, with the paper's values inline for comparison.

use swan_core::experiment::{evaluate_hqdl, pct, render_table, Harness};
use swan_llm::ModelKind;

/// Paper Table 2 values, `[shots][db]` with db order
/// (California Schools, Super Hero, Formula One, European Football, Overall).
const PAPER: &[(ModelKind, usize, [f64; 5])] = &[
    (ModelKind::Gpt35Turbo, 0, [0.500, 0.133, 0.167, 0.167, 0.242]),
    (ModelKind::Gpt35Turbo, 1, [0.500, 0.233, 0.467, 0.267, 0.367]),
    (ModelKind::Gpt35Turbo, 3, [0.467, 0.200, 0.467, 0.333, 0.367]),
    (ModelKind::Gpt35Turbo, 5, [0.533, 0.200, 0.467, 0.333, 0.383]),
    (ModelKind::Gpt4Turbo, 0, [0.500, 0.233, 0.367, 0.167, 0.316]),
    (ModelKind::Gpt4Turbo, 1, [0.433, 0.233, 0.500, 0.233, 0.350]),
    (ModelKind::Gpt4Turbo, 3, [0.500, 0.267, 0.500, 0.267, 0.383]),
    (ModelKind::Gpt4Turbo, 5, [0.567, 0.233, 0.500, 0.300, 0.400]),
];

fn main() {
    let h = Harness::from_env();
    println!("Table 2: HQDL execution accuracy on SWAN (measured vs paper)");
    println!();

    let mut rows = Vec::new();
    for (model, shots, paper) in PAPER {
        let e = evaluate_hqdl(&h.benchmark, h.kb.clone(), &h.gold, *model, *shots, 4);
        let db_ex = |name: &str| {
            e.per_db
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, t)| t.accuracy())
                .unwrap_or(0.0)
        };
        rows.push(vec![
            model.label().to_string(),
            format!("{shots}-shot"),
            format!("{} ({})", pct(db_ex("California Schools")), pct(paper[0])),
            format!("{} ({})", pct(db_ex("Super Hero")), pct(paper[1])),
            format!("{} ({})", pct(db_ex("Formula One")), pct(paper[2])),
            format!("{} ({})", pct(db_ex("European Football")), pct(paper[3])),
            format!("{} ({})", pct(e.overall.accuracy()), pct(paper[4])),
        ]);
    }

    println!(
        "{}",
        render_table(
            &[
                "Model",
                "Demos",
                "CA Schools (paper)",
                "Super Hero (paper)",
                "Formula One (paper)",
                "Eur. Football (paper)",
                "Overall (paper)",
            ],
            &rows,
        )
    );
    println!("Shape checks: EX rises with shots; GPT-4 >= GPT-3.5 overall;");
    println!("CA Schools highest, Super Hero lowest (LIMIT-clause effect, paper 5.3).");
}
