//! Columnar vs row execution on the hot scan shapes: filter + project,
//! SUM/GROUP BY aggregation, the sf1 hash join from `join_scaling`, and
//! ORDER BY … LIMIT top-k. Every workload runs twice — `columnar: true`
//! (typed column kernels, selection bitmaps, vectorized join keys) and
//! `columnar: false` (the row path, bit-for-bit the pre-columnar
//! engine) — so the speedup *is* the pairwise ratio, measured
//! interleaved in one process.
//!
//! Reference numbers live in crates/sqlengine/PERF.md ("Columnar
//! execution"); if a columnar row of the pair stops beating its row
//! twin, the kernels have regressed (or stopped engaging — check
//! `OptimizerConfig::columnar` and the kernel's supported shapes first).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use swan_sqlengine::{Database, OptimizerConfig, Value};

const SCAN_ROWS: usize = 50_000;
const FACT_ROWS: usize = 20_000;
const DIM_ROWS: usize = 2_000;

const MODES: &[(&str, bool)] = &[("columnar", true), ("row", false)];

fn config(columnar: bool) -> OptimizerConfig {
    OptimizerConfig { columnar, threads: 1, ..Default::default() }
}

/// One wide scan table: an integer key, a low-cardinality group, a real
/// measure, a dictionary-friendly text column (997 distinct values) and
/// a 0/1 flag column, with a sprinkling of NULLs in the measure so the
/// validity bitmaps are live.
fn scan_db(columnar: bool) -> Database {
    let mut db = Database::new();
    db.execute(
        "CREATE TABLE scan (id INTEGER PRIMARY KEY, grp INTEGER, val REAL, name TEXT, flag INTEGER)",
    )
    .unwrap();

    let mut rng: u64 = 0x5EED;
    let mut next = || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let t = db.catalog_mut().get_mut("scan").unwrap();
    for i in 0..SCAN_ROWS {
        let v = next();
        t.insert_row(vec![
            Value::Integer(i as i64),
            Value::Integer((v % 64) as i64),
            if v % 13 == 0 {
                Value::Null
            } else {
                Value::Real((v % 10_000) as f64 / 100.0)
            },
            Value::text(format!("name-{}", v % 997)),
            Value::Integer((v % 2) as i64),
        ])
        .unwrap();
    }
    db.set_optimizer(config(columnar));
    db
}

/// The `join_scaling` sf1 shape: 20k fact rows into a 2k dimension.
fn join_db(columnar: bool) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE fact (id INTEGER PRIMARY KEY, grp INTEGER, name TEXT)").unwrap();
    db.execute("CREATE TABLE dim (id INTEGER PRIMARY KEY, label TEXT)").unwrap();
    let mut rng: u64 = 0x5EED;
    let mut next = || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let fact = db.catalog_mut().get_mut("fact").unwrap();
    for i in 0..FACT_ROWS {
        fact.insert_row(vec![
            Value::Integer(i as i64),
            Value::Integer((next() % DIM_ROWS as u64) as i64),
            Value::text(format!("name-{}", next() % 997)),
        ])
        .unwrap();
    }
    let dim = db.catalog_mut().get_mut("dim").unwrap();
    for i in 0..DIM_ROWS {
        dim.insert_row(vec![Value::Integer(i as i64), Value::text(format!("label-{i}"))])
            .unwrap();
    }
    db.set_optimizer(config(columnar));
    db
}

fn bench_filter_project(c: &mut Criterion) {
    for &(mode, columnar) in MODES {
        let db = scan_db(columnar);
        c.bench_function(&format!("filter_project_{mode}"), |b| {
            b.iter(|| {
                black_box(
                    db.query("SELECT id, val + 1.0 FROM scan WHERE val > 50.0 AND grp < 40")
                        .unwrap(),
                )
            })
        });
    }
}

fn bench_sum_group(c: &mut Criterion) {
    for &(mode, columnar) in MODES {
        let db = scan_db(columnar);
        c.bench_function(&format!("sum_group_{mode}"), |b| {
            b.iter(|| {
                black_box(
                    db.query(
                        "SELECT grp, COUNT(*), SUM(val), MIN(val), MAX(val) \
                         FROM scan GROUP BY grp",
                    )
                    .unwrap(),
                )
            })
        });
    }
}

fn bench_hash_join_sf1(c: &mut Criterion) {
    for &(mode, columnar) in MODES {
        let db = join_db(columnar);
        c.bench_function(&format!("hash_join_sf1_{mode}"), |b| {
            b.iter(|| {
                black_box(
                    db.query("SELECT COUNT(*) FROM fact t JOIN dim u ON t.grp = u.id").unwrap(),
                )
            })
        });
    }
}

fn bench_topk(c: &mut Criterion) {
    for &(mode, columnar) in MODES {
        let db = scan_db(columnar);
        c.bench_function(&format!("topk_filtered_{mode}"), |b| {
            b.iter(|| {
                black_box(
                    db.query(
                        "SELECT id, val FROM scan WHERE flag = 1 ORDER BY val LIMIT 10",
                    )
                    .unwrap(),
                )
            })
        });
    }
}

criterion_group!(
    benches,
    bench_filter_project,
    bench_sum_group,
    bench_hash_join_sf1,
    bench_topk
);
criterion_main!(benches);
