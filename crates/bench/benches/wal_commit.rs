//! WAL commit latency and checkpoint cost.
//!
//! What the "Durability" section of `crates/sqlengine/PERF.md` reports:
//!
//! * **commit latency vs batch size** — one `BEGIN … COMMIT` transaction
//!   inserting N rows, fsync on. The per-row cost should fall sharply
//!   with N: the fsync and the `Begin/Delta/Commit` framing amortize
//!   over the batch, and a pure-INSERT transaction logs only the
//!   appended rows (the `Append` delta), not the table;
//! * **no-sync commit** — the same shape with `sync: false`, isolating
//!   the fsync from the codec + install cost;
//! * **auto-commit** — a bare INSERT on a durable database (one
//!   single-statement transaction per row), the baseline batching beats;
//! * **checkpoint cost** — a commit that also rewrites the log as one
//!   full-catalog checkpoint image at 10k rows: the price paid (rarely)
//!   to bound log size and recovery time.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, Criterion};
use swan_sqlengine::{Database, DurabilityConfig, SharedDb};

fn temp_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("swan-wal-bench-{tag}-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

fn fresh_ids(n: usize) -> std::ops::Range<u64> {
    let start = NEXT_ID.fetch_add(n as u64, Ordering::Relaxed);
    start..start + n as u64
}

/// One transaction inserting `batch` rows, committed (and fsynced when
/// `sync`) as a unit.
fn commit_batch(db: &mut Database, batch: usize) {
    db.execute("BEGIN").unwrap();
    for id in fresh_ids(batch) {
        db.execute(&format!("INSERT INTO t VALUES ({id}, 'payload-{id}', {id})")).unwrap();
    }
    db.execute("COMMIT").unwrap();
}

fn open(tag: &str, sync: bool) -> (Database, PathBuf) {
    let path = temp_path(tag);
    let config = DurabilityConfig { checkpoint_bytes: u64::MAX, sync, ..Default::default() };
    let mut db = Database::open_with(&path, config).unwrap();
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, v INTEGER)").unwrap();
    (db, path)
}

fn bench_wal_commit(c: &mut Criterion) {
    // Commit latency vs transaction batch size (fsync on).
    for batch in [1usize, 10, 100, 1000] {
        let (mut db, path) = open(&format!("sync-{batch}"), true);
        c.bench_function(&format!("wal_commit/sync/batch_{batch}"), |b| {
            b.iter(|| commit_batch(&mut db, batch))
        });
        drop(db);
        let _ = std::fs::remove_file(&path);
    }

    // The same batches without fsync: codec + append + install only.
    for batch in [1usize, 100] {
        let (mut db, path) = open(&format!("nosync-{batch}"), false);
        c.bench_function(&format!("wal_commit/nosync/batch_{batch}"), |b| {
            b.iter(|| commit_batch(&mut db, batch))
        });
        drop(db);
        let _ = std::fs::remove_file(&path);
    }

    // Auto-commit baseline: every INSERT is its own durable transaction.
    {
        let (mut db, path) = open("autocommit", true);
        c.bench_function("wal_commit/autocommit_insert", |b| {
            b.iter(|| {
                let id = fresh_ids(1).start;
                db.execute(&format!("INSERT INTO t VALUES ({id}, 'payload-{id}', {id})"))
                    .unwrap();
            })
        });
        drop(db);
        let _ = std::fs::remove_file(&path);
    }

    // Checkpoint cost at 10k rows: checkpoint_bytes = 1 forces every
    // commit to rewrite the log as one catalog image, so each iteration
    // pays commit + checkpoint. The UPDATE keeps the table size fixed.
    {
        let path = temp_path("checkpoint");
        let config = DurabilityConfig { checkpoint_bytes: 1, ..Default::default() };
        let mut db = Database::open_with(&path, config).unwrap();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, v INTEGER)").unwrap();
        db.execute("BEGIN").unwrap();
        for id in 0..10_000u64 {
            db.execute(&format!("INSERT INTO t VALUES ({id}, 'payload-{id}', {id})")).unwrap();
        }
        db.execute("COMMIT").unwrap();
        c.bench_function("wal_commit/commit_plus_checkpoint_10k_rows", |b| {
            b.iter(|| db.execute("UPDATE t SET v = v + 1 WHERE id = 17").unwrap())
        });
        drop(db);
        let _ = std::fs::remove_file(&path);
    }

    // Contended group commit: 8 threads auto-commit single-row inserts
    // (each its own table, so no conflicts), fsync on. One iteration =
    // 8 concurrent commits. The group-commit queue lets one leader carry
    // several committers per fsync; the printed commits-per-fsync ratio
    // is the amortization factor (1.0 = no batching — the `nogroup`
    // variant pins that floor for comparison).
    for (label, group) in [("group", true), ("nogroup", false)] {
        let path = temp_path(&format!("contended-{label}"));
        let config = DurabilityConfig { group_commit: group, ..Default::default() };
        let db = SharedDb::open_with(&path, config).unwrap();
        for t in 0..8 {
            db.execute(&format!("CREATE TABLE t{t} (id INTEGER PRIMARY KEY, v INTEGER)"))
                .unwrap();
        }
        let before = db.commit_stats();
        c.bench_function(&format!("wal_commit/contended_8_committers/{label}"), |b| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for t in 0..8u64 {
                        let session = db.clone();
                        s.spawn(move || {
                            let id = fresh_ids(1).start;
                            session
                                .execute(&format!("INSERT INTO t{t} VALUES ({id}, {t})"))
                                .unwrap();
                        });
                    }
                });
            })
        });
        let stats = db.commit_stats();
        let commits = stats.commits - before.commits;
        let batches = stats.batches - before.batches;
        println!(
            "wal_commit/contended_8_committers/{label}: {commits} commits / {batches} \
             fsyncs = {:.2} commits-per-fsync (max batch {})",
            commits as f64 / batches.max(1) as f64,
            stats.max_batch,
        );
        drop(db);
        let _ = std::fs::remove_file(&path);
    }

    // Recovery: reopen a log holding one 10k-row committed table.
    {
        let path = temp_path("recovery");
        let config = DurabilityConfig { checkpoint_bytes: u64::MAX, sync: false, ..Default::default() };
        {
            let mut db = Database::open_with(&path, config).unwrap();
            db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, v INTEGER)")
                .unwrap();
            db.execute("BEGIN").unwrap();
            for id in 0..10_000u64 {
                db.execute(&format!("INSERT INTO t VALUES ({id}, 'payload-{id}', {id})"))
                    .unwrap();
            }
            db.execute("COMMIT").unwrap();
        }
        c.bench_function("wal_commit/recover_10k_rows", |b| {
            b.iter(|| {
                let db = Database::open_with(&path, config).unwrap();
                assert_eq!(db.catalog().row_count("t"), Some(10_000));
            })
        });
        let _ = std::fs::remove_file(&path);
    }
}

criterion_group!(benches, bench_wal_commit);
criterion_main!(benches);
