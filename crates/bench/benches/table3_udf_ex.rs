//! Table 3 — hybrid-query-UDF (BlendSQL-style) execution accuracy on
//! SWAN with GPT-3.5 Turbo, 0-shot and 5-shot.

use swan_core::experiment::{evaluate_udf, pct, render_table, Harness};
use swan_core::udf::UdfConfig;
use swan_llm::ModelKind;

/// Paper Table 3 (db order: CA Schools, Super Hero, Formula One,
/// European Football, Overall).
const PAPER: &[(usize, [f64; 5])] = &[
    (0, [0.100, 0.233, 0.300, 0.100, 0.183]),
    (5, [0.133, 0.233, 0.433, 0.033, 0.208]),
];

fn main() {
    let h = Harness::from_env();
    println!("Table 3: HQ UDFs execution accuracy on SWAN (measured vs paper)");
    println!();

    let mut rows = Vec::new();
    for (shots, paper) in PAPER {
        let config = UdfConfig { shots: *shots, ..Default::default() };
        let e = evaluate_udf(&h.benchmark, h.kb.clone(), &h.gold, ModelKind::Gpt35Turbo, config);
        let db_ex = |name: &str| {
            e.per_db
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, t)| t.accuracy())
                .unwrap_or(0.0)
        };
        rows.push(vec![
            "GPT-3.5 Turbo".to_string(),
            format!("{shots}-shot"),
            format!("{} ({})", pct(db_ex("California Schools")), pct(paper[0])),
            format!("{} ({})", pct(db_ex("Super Hero")), pct(paper[1])),
            format!("{} ({})", pct(db_ex("Formula One")), pct(paper[2])),
            format!("{} ({})", pct(db_ex("European Football")), pct(paper[3])),
            format!("{} ({})", pct(e.overall.accuracy()), pct(paper[4])),
        ]);
    }

    println!(
        "{}",
        render_table(
            &[
                "Model",
                "Demos",
                "CA Schools (paper)",
                "Super Hero (paper)",
                "Formula One (paper)",
                "Eur. Football (paper)",
                "Overall (paper)",
            ],
            &rows,
        )
    );
    println!("Shape check: UDF EX below HQDL EX at the same settings (paper 5.4 —");
    println!("single-cell prediction loses the whole-row chain-of-thought effect,");
    println!("and batch-5 prompts are more error-prone).");
}
