//! Morsel-driven parallel execution scaling: the scale-1.0 join,
//! aggregation, filter/projection and top-k workloads at thread counts
//! {1, 2, 4, 8}, plus a latency-bound UDF filter where worker threads
//! overlap waits (the LLM-traffic shape) — the case that scales even
//! when cores are scarce.
//!
//! `t1` rows run the serial engine (no `Plan::Parallel` node is
//! inserted); `tN` rows run the morsel-parallel executor with N
//! partitions. Compare within a workload: CPU-bound speedup is bounded
//! by the machine's core count (`nproc`), latency-bound speedup by the
//! worker count. Numbers are recorded in `crates/sqlengine/PERF.md`
//! ("Parallel execution").
//!
//! Thread-count override: `SWAN_THREADS` changes nothing here — the
//! bench pins `OptimizerConfig::threads` explicitly per case.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use swan_sqlengine::{Database, OptimizerConfig, ScalarUdf, Value};

const FACT: usize = 20_000;
const DIM: usize = 2_000;
/// Rows for the latency-bound UDF case (50µs per row: ~100ms serial).
const UDF_ROWS: usize = 2_000;

const THREADS: &[usize] = &[1, 2, 4, 8];

fn setup_db(fact_rows: usize, dim_rows: usize) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE fact (id INTEGER PRIMARY KEY, grp INTEGER, n INTEGER, name TEXT)")
        .unwrap();
    db.execute("CREATE TABLE dim (id INTEGER PRIMARY KEY, label TEXT)").unwrap();

    let mut rng: u64 = 0x5EED;
    let mut next = || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };

    let fact = db.catalog_mut().get_mut("fact").unwrap();
    for i in 0..fact_rows {
        fact.insert_row(vec![
            Value::Integer(i as i64),
            Value::Integer((next() % dim_rows as u64) as i64),
            Value::Integer((next() % 1000) as i64),
            Value::text(format!("name-{}", next() % 997)),
        ])
        .unwrap();
    }
    let dim = db.catalog_mut().get_mut("dim").unwrap();
    for i in 0..dim_rows {
        dim.insert_row(vec![Value::Integer(i as i64), Value::text(format!("label-{i}"))])
            .unwrap();
    }
    db
}

fn with_threads(db: &Database, threads: usize) -> Database {
    let mut db = db.clone();
    db.set_optimizer(OptimizerConfig {
        threads,
        parallel_threshold: if threads == 1 { usize::MAX } else { 1 },
        ..Default::default()
    });
    db
}

/// A latency-bound row predicate: 50µs of simulated wait per call (a
/// remote lookup / model round-trip shape). Deliberately *not* marked
/// expensive, so it is evaluated per row inside the (parallel) filter
/// rather than batched — this isolates morsel fan-out itself.
struct SlowPredicate;

impl ScalarUdf for SlowPredicate {
    fn name(&self) -> &str {
        "slow_pred"
    }
    fn invoke(&self, args: &[Value]) -> swan_sqlengine::Result<Value> {
        std::thread::sleep(Duration::from_micros(50));
        Ok(Value::Integer((args[0].as_i64().unwrap_or(0) % 5 == 0) as i64))
    }
}

fn bench_join(c: &mut Criterion) {
    let base = setup_db(FACT, DIM);
    for &t in THREADS {
        let db = with_threads(&base, t);
        c.bench_function(&format!("par_join_20k_t{t}"), |b| {
            b.iter(|| {
                black_box(
                    db.query("SELECT COUNT(*) FROM fact f JOIN dim d ON f.grp = d.id").unwrap(),
                )
            })
        });
    }
}

fn bench_aggregate(c: &mut Criterion) {
    let base = setup_db(FACT, DIM);
    for &t in THREADS {
        let db = with_threads(&base, t);
        c.bench_function(&format!("par_group_by_20k_t{t}"), |b| {
            b.iter(|| {
                black_box(
                    db.query(
                        "SELECT d.label, COUNT(*), SUM(f.n) FROM fact f \
                         JOIN dim d ON f.grp = d.id GROUP BY d.label",
                    )
                    .unwrap(),
                )
            })
        });
    }
}

fn bench_filter_project(c: &mut Criterion) {
    let base = setup_db(FACT, DIM);
    for &t in THREADS {
        let db = with_threads(&base, t);
        c.bench_function(&format!("par_filter_project_20k_t{t}"), |b| {
            b.iter(|| {
                black_box(
                    db.query(
                        "SELECT f.id, UPPER(f.name), f.n * 2 + 1 FROM fact f \
                         WHERE f.n % 7 < 3 AND f.name LIKE 'name-1%'",
                    )
                    .unwrap(),
                )
            })
        });
    }
}

fn bench_topk(c: &mut Criterion) {
    let base = setup_db(FACT, DIM);
    for &t in THREADS {
        let db = with_threads(&base, t);
        c.bench_function(&format!("par_topk_20k_t{t}"), |b| {
            b.iter(|| {
                black_box(
                    db.query("SELECT id, n FROM fact ORDER BY n LIMIT 10").unwrap(),
                )
            })
        });
    }
}

/// The hybrid-query shape the paper targets: a join + aggregation whose
/// filter pays a per-row wait (model call / remote lookup). Worker
/// threads overlap the waits, so this scales with the thread count even
/// on a single core — the speedup regime SWAN queries actually live in.
fn bench_latency_bound_join_agg(c: &mut Criterion) {
    let mut base = setup_db(UDF_ROWS, DIM);
    base.register_udf(std::sync::Arc::new(SlowPredicate));
    for &t in THREADS {
        let db = with_threads(&base, t);
        c.bench_function(&format!("par_hybrid_join_agg_2k_t{t}"), |b| {
            b.iter(|| {
                black_box(
                    db.query(
                        "SELECT d.label, COUNT(*), SUM(f.n) FROM fact f \
                         JOIN dim d ON f.grp = d.id \
                         WHERE slow_pred(f.n) GROUP BY d.label",
                    )
                    .unwrap(),
                )
            })
        });
    }
}

criterion_group!(
    parallel_scaling,
    bench_join,
    bench_aggregate,
    bench_filter_project,
    bench_topk,
    bench_latency_bound_join_agg,
);
criterion_main!(parallel_scaling);
