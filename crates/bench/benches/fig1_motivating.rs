//! Figure 1 — the motivating example: answering a beyond-database
//! question with the database alone (left side: no answer) versus hybrid
//! querying over the database and an LLM (right side: the Marvel heroes).


use swan_core::hqdl::{materialize, HqdlConfig};
use swan_data::{GenConfig, SwanBenchmark};
use swan_llm::{LanguageModel, ModelKind, SimulatedModel};
use swan_sqlengine::display::format_table;
use swan_sqlengine::exec::Relation;
use swan_sqlengine::plan::RelSchema;

fn main() {
    let scale = std::env::var("SWAN_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.05);
    let domain =
        SwanBenchmark::generate_domain(&GenConfig::with_scale(scale), "superhero").unwrap();
    let kb = swan_data::build_knowledge(std::slice::from_ref(&domain));

    println!("Figure 1: answering \"List all hero names from the Marvel Universe\"");
    println!();
    println!("Schema: superhero(hero_name, full_name) — publisher info was curated away.");
    println!();

    // Left side: the database alone cannot answer.
    println!("== Database only ==");
    let direct = domain
        .curated
        .query("SELECT T1.superhero_name FROM superhero T1 JOIN publisher p ON 1 = 1");
    match direct {
        Ok(_) => println!("unexpectedly answered"),
        Err(e) => println!("no answer: {e}"),
    }
    println!();

    // Right side: hybrid querying — treat the LLM as a table and join.
    println!("== Hybrid querying (database JOIN LLM) ==");
    let model = SimulatedModel::new(ModelKind::Gpt4Turbo, kb);
    let run = materialize(&domain, &model, &HqdlConfig { shots: 5, workers: 4 });
    let result = run
        .database
        .query(
            "SELECT T1.superhero_name, T1.full_name FROM superhero T1 \
             JOIN llm_superhero L ON L.superhero_name = T1.superhero_name \
             AND L.full_name = T1.full_name \
             WHERE L.publisher_name = 'Marvel Comics' \
             ORDER BY T1.superhero_name LIMIT 10",
        )
        .expect("hybrid query runs");
    let rel = Relation {
        schema: RelSchema::qualified(
            "result",
            result.columns.clone(),
        ),
        rows: result.rows.clone(),
    };
    println!("{}", format_table(&rel));
    println!("({} rows shown; LLM usage: {:?})", result.rows.len(), model.usage());

    // Ground truth for comparison.
    let gold = domain
        .original
        .query(
            "SELECT COUNT(*) FROM superhero s JOIN publisher p \
             ON s.publisher_id = p.id WHERE p.publisher_name = 'Marvel Comics'",
        )
        .unwrap();
    println!(
        "ground truth: {} Marvel heroes in the original database",
        gold.rows[0][0].render()
    );
}
