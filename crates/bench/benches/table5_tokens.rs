//! Table 5 — total input/output tokens used by HQDL vs HQ UDFs for the
//! zero-shot experiments, with a scale-adjusted comparison against the
//! paper's totals (6.3M/1.5M for HQDL; 23M/2M for UDFs).

use swan_core::experiment::{evaluate_hqdl, evaluate_udf, render_table, Harness};
use swan_core::udf::UdfConfig;
use swan_llm::{ModelKind, Pricing};

fn fmt_m(tokens: u64) -> String {
    format!("{:.2} M", tokens as f64 / 1e6)
}

fn main() {
    let scale = std::env::var("SWAN_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.05);
    let h = Harness::new(scale);

    let hqdl = evaluate_hqdl(&h.benchmark, h.kb.clone(), &h.gold, ModelKind::Gpt35Turbo, 0, 4);
    let udf = evaluate_udf(
        &h.benchmark,
        h.kb.clone(),
        &h.gold,
        ModelKind::Gpt35Turbo,
        UdfConfig::default(),
    );

    // Token volume scales with entity count, i.e. linearly with scale.
    let scaled = |t: u64| (t as f64 / scale) as u64;

    println!("Table 5: total tokens for the zero-shot experiments (scale = {scale})");
    println!();
    let rows = vec![
        vec![
            "HQDL".to_string(),
            fmt_m(hqdl.usage.input_tokens),
            fmt_m(hqdl.usage.output_tokens),
            format!(
                "{} / {}",
                fmt_m(scaled(hqdl.usage.input_tokens)),
                fmt_m(scaled(hqdl.usage.output_tokens))
            ),
            "6.30 M / 1.50 M".to_string(),
            format!("{}", hqdl.usage.calls),
        ],
        vec![
            "HQ UDFs".to_string(),
            fmt_m(udf.usage.input_tokens),
            fmt_m(udf.usage.output_tokens),
            format!(
                "{} / {}",
                fmt_m(scaled(udf.usage.input_tokens)),
                fmt_m(scaled(udf.usage.output_tokens))
            ),
            "23.00 M / 2.00 M".to_string(),
            format!("{}", udf.usage.calls),
        ],
    ];
    println!(
        "{}",
        render_table(
            &[
                "Algorithm",
                "Input",
                "Output",
                "Scale-adjusted in/out",
                "Paper in/out",
                "LLM calls",
            ],
            &rows,
        )
    );

    let ratio_in = udf.usage.input_tokens as f64 / hqdl.usage.input_tokens.max(1) as f64;
    let ratio_out = udf.usage.output_tokens as f64 / hqdl.usage.output_tokens.max(1) as f64;
    println!("UDF / HQDL input-token ratio:  {ratio_in:.1}x (paper: 3.6x)");
    println!("UDF / HQDL output-token ratio: {ratio_out:.1}x (paper: 1.3x)");
    println!(
        "GPT-3.5 cost at paper pricing: HQDL ${:.2}, UDFs ${:.2}",
        hqdl.usage.cost(&Pricing::GPT35_TURBO),
        udf.usage.cost(&Pricing::GPT35_TURBO)
    );
    println!();
    println!("Why UDFs cost more (paper 5.5): prompts repeat the question and examples");
    println!("per batch, and cross-question reuse only works for identical prompt text —");
    println!("e.g. the tallest-player heights cannot answer the taller-than-180cm question.");
}
