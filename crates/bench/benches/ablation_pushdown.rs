//! Ablation A4 (paper §4.2) — predicate pushdown in the UDF pre-pass:
//! with pushdown, cheap WHERE conjuncts restrict which keys are sent to
//! the LLM; without it, the system generates values for every row (the
//! §5.5 "generated heights for all players" failure).

use std::sync::Arc;

use swan_core::experiment::{render_table, Harness};
use swan_core::udf::{UdfConfig, UdfRunner};
use swan_llm::{LanguageModel, ModelKind, SimulatedModel};

fn main() {
    let h = Harness::from_env();
    let domain = h.domain("formula_1");
    let drivers = domain.curated.catalog().get("drivers").unwrap().len();

    // Point-lookup questions benefit most: q01-q05 filter on a single
    // driver by name.
    let point_lookups: Vec<_> = domain.questions.iter().take(5).collect();

    println!("Ablation A4: UDF predicate pushdown on Formula One point lookups");
    println!("({drivers} drivers; 5 single-driver questions)");
    println!();

    let mut rows = Vec::new();
    for (label, pushdown) in [("on (BlendSQL-style)", true), ("off", false)] {
        let model = Arc::new(SimulatedModel::new(ModelKind::Gpt35Turbo, h.kb.clone()));
        let mut runner = UdfRunner::new(
            domain,
            model.clone(),
            UdfConfig { pushdown, ..Default::default() },
        );
        for q in &point_lookups {
            runner.run_sql(&q.udf_sql).expect("question runs");
        }
        let usage = model.usage();
        rows.push(vec![
            label.to_string(),
            runner.stats().prefetched_keys.to_string(),
            usage.calls.to_string(),
            format!("{:.1}k", usage.input_tokens as f64 / 1e3),
        ]);
    }

    println!(
        "{}",
        render_table(&["Pushdown", "Keys generated", "LLM calls", "Input tokens"], &rows)
    );
    println!("Expected shape: pushdown touches ~1 key per point lookup; without it,");
    println!("every driver is generated for every question.");
}
