//! Ablation A3 (paper §6) — parallel LLM calls: HQDL materialization
//! latency vs worker count, with a simulated per-call API latency.

use std::sync::Arc;
use std::time::{Duration, Instant};

use swan_core::experiment::{render_table, Harness};
use swan_core::hqdl::{materialize, HqdlConfig};
use swan_llm::{Completion, LanguageModel, LlmResult, ModelKind, SimulatedModel, UsageMeter};

/// Wraps the simulator with a fixed per-call latency, emulating a remote
/// API endpoint so parallelism has something to hide.
struct RemoteLatency {
    inner: SimulatedModel,
    delay: Duration,
}

impl LanguageModel for RemoteLatency {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn complete(&self, prompt: &str) -> LlmResult<Completion> {
        std::thread::sleep(self.delay);
        self.inner.complete(prompt)
    }
    fn usage_meter(&self) -> &UsageMeter {
        self.inner.usage_meter()
    }
}

fn main() {
    let h = Harness::from_env();
    let domain = h.domain("superhero");
    let heroes = domain.curated.catalog().get("superhero").unwrap().len();

    println!("Ablation A3: HQDL materialization latency vs parallel workers");
    println!("({heroes} heroes, simulated 2ms API latency per call)");
    println!();

    let mut rows = Vec::new();
    let mut baseline = None;
    for workers in [1usize, 2, 4, 8] {
        let model = Arc::new(RemoteLatency {
            inner: SimulatedModel::new(ModelKind::Gpt35Turbo, h.kb.clone()),
            delay: Duration::from_millis(2),
        });
        let start = Instant::now();
        let run = materialize(domain, model.as_ref(), &HqdlConfig { shots: 0, workers });
        let elapsed = start.elapsed();
        let base = *baseline.get_or_insert(elapsed.as_secs_f64());
        rows.push(vec![
            workers.to_string(),
            format!("{:.2}s", elapsed.as_secs_f64()),
            format!("{:.2}x", base / elapsed.as_secs_f64()),
            run.generated_cells.to_string(),
        ]);
    }

    println!(
        "{}",
        render_table(&["Workers", "Latency", "Speedup", "Cells generated"], &rows)
    );
    println!("Expected shape: near-linear speedup until call latency is hidden.");
}
