//! Join scaling: hash join vs nested-loop join across scale factors, plus a
//! three-table chain whose written order is deliberately bad (big ⋈ mid ⋈
//! tiny) so statistics-driven join reordering has something to fix.
//!
//! Scale factor 1.0 corresponds to a 20k-row fact table joining a 2k-row
//! dimension — the size regime the SWAN evaluation runs at production
//! scale. The nested-loop variant forces the executor off the equi-join
//! fast path with an `OR 0` residual, and only runs at the small scales
//! (it is quadratic by construction).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use swan_sqlengine::{Database, Value};

const BASE_FACT: usize = 20_000;
const BASE_DIM: usize = 2_000;
const TINY: usize = 20;

/// Scale factors mirroring the SWAN GenConfig sweep.
const SCALES: &[f64] = &[0.02, 0.1, 0.5, 1.0];

fn setup_db(scale: f64) -> Database {
    let fact_rows = ((BASE_FACT as f64 * scale) as usize).max(10);
    let dim_rows = ((BASE_DIM as f64 * scale) as usize).max(5);

    let mut db = Database::new();
    db.execute("CREATE TABLE fact (id INTEGER PRIMARY KEY, grp INTEGER, name TEXT)").unwrap();
    db.execute("CREATE TABLE dim (id INTEGER PRIMARY KEY, label TEXT)").unwrap();
    db.execute("CREATE TABLE tiny (id INTEGER PRIMARY KEY, tag TEXT)").unwrap();

    let mut rng: u64 = 0x5EED;
    let mut next = || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };

    let fact = db.catalog_mut().get_mut("fact").unwrap();
    for i in 0..fact_rows {
        fact.insert_row(vec![
            Value::Integer(i as i64),
            Value::Integer((next() % dim_rows as u64) as i64),
            Value::text(format!("name-{}", next() % 997)),
        ])
        .unwrap();
    }
    let dim = db.catalog_mut().get_mut("dim").unwrap();
    for i in 0..dim_rows {
        dim.insert_row(vec![Value::Integer(i as i64), Value::text(format!("label-{i}"))])
            .unwrap();
    }
    let tiny = db.catalog_mut().get_mut("tiny").unwrap();
    for i in 0..TINY {
        tiny.insert_row(vec![Value::Integer(i as i64), Value::text(format!("tag-{i}"))])
            .unwrap();
    }
    db
}

fn bench_hash_join(c: &mut Criterion) {
    for &scale in SCALES {
        let db = setup_db(scale);
        c.bench_function(&format!("hash_join_sf{scale}"), |b| {
            b.iter(|| {
                black_box(
                    db.query("SELECT COUNT(*) FROM fact t JOIN dim u ON t.grp = u.id").unwrap(),
                )
            })
        });
    }
}

fn bench_nested_loop_join(c: &mut Criterion) {
    // Quadratic: only the small scales are tractable, which is exactly the
    // hash-vs-nested-loop story this bench exists to tell.
    for &scale in &SCALES[..2] {
        let db = setup_db(scale);
        c.bench_function(&format!("nested_loop_join_sf{scale}"), |b| {
            b.iter(|| {
                // `OR 0` defeats the equi-join splitter without changing
                // the result set.
                black_box(
                    db.query("SELECT COUNT(*) FROM fact t JOIN dim u ON (t.grp = u.id OR 0)")
                        .unwrap(),
                )
            })
        });
    }
}

fn bench_join_chain(c: &mut Criterion) {
    for &scale in SCALES {
        let db = setup_db(scale);
        c.bench_function(&format!("join_chain_worst_order_sf{scale}"), |b| {
            b.iter(|| {
                black_box(
                    db.query(
                        "SELECT COUNT(*) FROM fact f \
                         JOIN dim d ON f.grp = d.id \
                         JOIN tiny t ON d.id = t.id",
                    )
                    .unwrap(),
                )
            })
        });
    }
}

criterion_group!(benches, bench_hash_join, bench_nested_loop_join, bench_join_chain);
criterion_main!(benches);
