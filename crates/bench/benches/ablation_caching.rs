//! Ablation A2 (paper §4.3/§5.5) — caching policy on the height-reuse
//! scenario: first "What is the height of the tallest player?", then a
//! differently-phrased sweep over the same attribute ("taller than
//! 180cm"). BlendSQL's exact-prompt cache cannot reuse the first
//! question's generations; a semantic (query-rewriting) cache can; HQDL
//! materialization makes reuse trivial.

use std::sync::Arc;

use swan_core::experiment::{render_table, Harness};
use swan_core::hqdl::{materialize, HqdlConfig};
use swan_core::udf::{CacheScope, UdfConfig, UdfRunner};
use swan_llm::{LanguageModel, ModelKind, SimulatedModel};

const Q1: &str = "SELECT MAX(llm_map('What is the height of the player in centimeters?', T1.player_name)) FROM player T1";
const Q2: &str = "SELECT T1.player_name FROM player T1 \
                  WHERE llm_map('How tall is the player in centimeters?', T1.player_name) > 180";

fn main() {
    let h = Harness::from_env();
    let domain = h.domain("european_football");
    let players = domain.curated.catalog().get("player").unwrap().len();

    println!("Ablation A2: caching policy on the 5.5 height-reuse scenario");
    println!("({players} players; Q1 = tallest player, Q2 = taller than 180cm, paraphrased)");
    println!();

    let mut rows = Vec::new();
    for (label, scope) in [
        ("none (per question)", CacheScope::PerQuestion),
        ("exact prompt (BlendSQL)", CacheScope::ExactPrompt),
        ("semantic (query rewriting)", CacheScope::Semantic),
    ] {
        let model = Arc::new(SimulatedModel::new(ModelKind::Gpt35Turbo, h.kb.clone()));
        let mut runner = UdfRunner::new(
            domain,
            model.clone(),
            UdfConfig { cache: scope, ..Default::default() },
        );
        runner.run_sql(Q1).expect("Q1 runs");
        let after_q1 = model.usage();
        runner.run_sql(Q2).expect("Q2 runs");
        let total = model.usage();
        let q2_tokens = total.input_tokens - after_q1.input_tokens;
        rows.push(vec![
            label.to_string(),
            format!("{:.0}k", after_q1.input_tokens as f64 / 1e3),
            format!("{:.0}k", q2_tokens as f64 / 1e3),
            runner.stats().cache_hits.to_string(),
        ]);
    }

    // HQDL materialization: generate once, answer both questions by SQL.
    {
        let model = SimulatedModel::new(ModelKind::Gpt35Turbo, h.kb.clone());
        let run = materialize(domain, &model, &HqdlConfig { shots: 0, workers: 4 });
        let after_gen = model.usage();
        run.database
            .query("SELECT MAX(L.height) FROM llm_player L")
            .unwrap();
        run.database
            .query("SELECT T1.player_name FROM player T1 \
                    JOIN llm_player L ON L.player_name = T1.player_name WHERE L.height > 180")
            .unwrap();
        let total = model.usage();
        rows.push(vec![
            "materialized (HQDL)".to_string(),
            format!("{:.0}k", after_gen.input_tokens as f64 / 1e3),
            format!("{:.0}k", (total.input_tokens - after_gen.input_tokens) as f64 / 1e3),
            format!("{players} (schema reuse)"),
        ]);
    }

    println!(
        "{}",
        render_table(
            &["Cache policy", "Q1 input tokens", "Q2 input tokens", "Q2 reused answers"],
            &rows,
        )
    );
    println!("Expected shape: exact-prompt pays Q2 in full (paraphrase miss, paper 5.5);");
    println!("semantic and materialized answer Q2 at (near-)zero marginal cost.");
}
