//! Fallback-path batching — engine-level `invoke_batch` vs per-row calls.
//!
//! The AST pre-pass bails on whole query classes (compound SELECTs,
//! subquery sources, unqualified keys, non-literal questions, `llm_map`
//! inside JOIN ON); before engine-level batching those classes degraded to
//! one sequential model call per row. This bench runs a workload the
//! pre-pass must bail on — `llm_map` in a JOIN ON over a subquery source —
//! and reports model-call counts and wall clock for the per-row path
//! (`batch_expensive_udfs` off) vs the vectorized path (default): calls
//! should collapse from `distinct_keys` to `ceil(distinct_keys /
//! batch_size)` and wall clock with it (the batched calls also fan out
//! across `UdfConfig::workers`).

use std::sync::Arc;
use std::time::{Duration, Instant};

use swan_core::experiment::{render_table, Harness};
use swan_core::udf::{UdfConfig, UdfRunner};
use swan_llm::{Completion, LanguageModel, LlmResult, ModelKind, SimulatedModel, UsageMeter};
use swan_sqlengine::OptimizerConfig;

/// Adds per-call latency to the (instant) simulated model, standing in for
/// a network round-trip: LLM traffic is latency-bound, so this is what the
/// wall-clock numbers mean in practice.
struct LatencyModel {
    inner: Arc<SimulatedModel>,
    latency: Duration,
}

impl LanguageModel for LatencyModel {
    fn name(&self) -> &str {
        "latency-sim"
    }
    fn complete(&self, prompt: &str) -> LlmResult<Completion> {
        std::thread::sleep(self.latency);
        self.inner.complete(prompt)
    }
    fn usage_meter(&self) -> &UsageMeter {
        self.inner.usage_meter()
    }
}

/// A query shape the pre-pass cannot handle: the key columns come from a
/// subquery source, and the call sits in a JOIN ON condition.
const FALLBACK_SQL: &str =
    "SELECT COUNT(*) FROM (SELECT superhero_name, full_name FROM superhero) h \
     JOIN alignment a \
     ON llm_map('What is the moral alignment of the superhero?', \
                h.superhero_name, h.full_name) = a.alignment";

fn main() {
    let h = Harness::from_env();
    let domain = h.domain("superhero");
    let heroes = domain.curated.catalog().get("superhero").unwrap().len() as u64;
    let config = UdfConfig { workers: 8, ..Default::default() };

    println!("Fallback-path batching: llm_map in JOIN ON over a subquery source");
    println!("(Super Hero, GPT-3.5 Turbo, {heroes} heroes, batch 5, 8 workers)");
    println!();

    let mut rows = Vec::new();
    for (label, batched, latency_ms) in [
        ("per-row fallback", false, 0u64),
        ("engine invoke_batch", true, 0),
        ("per-row fallback, 2ms/call", false, 2),
        ("engine invoke_batch, 2ms/call", true, 2),
    ] {
        let sim = Arc::new(SimulatedModel::new(ModelKind::Gpt35Turbo, h.kb.clone()));
        let model: Arc<dyn LanguageModel> = if latency_ms == 0 {
            sim.clone()
        } else {
            Arc::new(LatencyModel { inner: sim.clone(), latency: Duration::from_millis(latency_ms) })
        };
        let mut runner = UdfRunner::new(domain, model, config);
        if !batched {
            runner.database_mut().set_optimizer(OptimizerConfig {
                batch_expensive_udfs: false,
                ..Default::default()
            });
        }
        let t = Instant::now();
        runner.run_sql(FALLBACK_SQL).expect("fallback workload runs");
        let elapsed = t.elapsed();
        let stats = runner.stats();
        rows.push(vec![
            label.to_string(),
            sim.usage().calls.to_string(),
            stats.fallback_calls.to_string(),
            stats.prefetched_keys.to_string(),
            format!("{:.1} ms", elapsed.as_secs_f64() * 1e3),
        ]);
    }

    println!(
        "{}",
        render_table(
            &["Execution", "LLM calls", "Fallback calls", "Batched keys", "Wall clock"],
            &rows,
        )
    );
    println!(
        "Expected shape: calls fall from {heroes} to ceil({heroes}/5) = {}; a call-count \
         regression here means the engine batching rule stopped covering the fallback path.",
        heroes.div_ceil(5)
    );
}
