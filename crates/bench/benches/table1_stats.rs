//! Table 1 — statistics of the databases in SWAN.
//!
//! Regenerates the benchmark at `SWAN_SCALE` (default 1.0, the paper's
//! scale) and prints tables / rows-per-table / dropped-column counts next
//! to the paper's numbers.

use swan_core::experiment::render_table;
use swan_data::{GenConfig, SwanBenchmark};

fn main() {
    let scale = std::env::var("SWAN_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0);
    let start = std::time::Instant::now();
    let bench = SwanBenchmark::generate(&GenConfig::with_scale(scale));
    let gen_time = start.elapsed();

    // Paper values: (db, tables, rows/table, dropped).
    let paper = [
        ("European Football", 7, 31_828, 12),
        ("Formula One", 13, 39_561, 12),
        ("California Schools", 3, 9_980, 12),
        ("Super Hero", 10, 1_061, 11),
    ];

    let mut rows = Vec::new();
    for (name, p_tables, p_rows, p_dropped) in paper {
        let d = bench
            .domains
            .iter()
            .find(|d| d.display_name == name)
            .expect("domain exists");
        // Table 1 describes the databases before curation (its table
        // count includes the later-dropped tables).
        let names = d.original.catalog().table_names();
        let total: usize = names
            .iter()
            .map(|n| d.original.catalog().get(n).map_or(0, |t| t.len()))
            .sum();
        rows.push(vec![
            name.to_string(),
            format!("{} (paper {})", names.len(), p_tables),
            format!("{} (paper {})", total / names.len().max(1), p_rows),
            format!("{} (paper {})", d.curation.dropped_count(), p_dropped),
        ]);
    }

    println!("Table 1: Statistics of databases in SWAN (scale = {scale})");
    println!("(statistics of the original databases, before curation, as in the paper)");
    println!();
    println!(
        "{}",
        render_table(&["Database", "Tables", "Rows/Table", "Cols Dropped"], &rows)
    );
    println!("questions: {} (30 per database)", bench.question_count());
    println!("generation time: {gen_time:?}");
}
