//! Criterion microbenchmarks for the substrates: SQL parsing, hash joins,
//! aggregation, LIKE filtering, tokenization, prompt round-trips, and the
//! LLM response cache.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use swan_llm::{count_tokens, CachePolicy, CachedModel, LanguageModel};
use swan_sqlengine::{Database, Value};

fn setup_db(rows: usize) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, grp INTEGER, name TEXT, v REAL)")
        .unwrap();
    let mut rng: u64 = 0x12345;
    let mut next = || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let table = db.catalog_mut().get_mut("t").unwrap();
    for i in 0..rows {
        table
            .insert_row(vec![
                Value::Integer(i as i64),
                Value::Integer((next() % 100) as i64),
                Value::text(format!("name-{}", next() % 1000)),
                Value::Real((next() % 10_000) as f64 / 100.0),
            ])
            .unwrap();
    }
    db.execute("CREATE TABLE u (id INTEGER PRIMARY KEY, label TEXT)").unwrap();
    let u = db.catalog_mut().get_mut("u").unwrap();
    for i in 0..rows / 10 {
        u.insert_row(vec![Value::Integer(i as i64), Value::text(format!("label-{i}"))])
            .unwrap();
    }
    db
}

fn bench_parser(c: &mut Criterion) {
    let sql = "SELECT T1.school_name, AVG(s.avg_scr_math) AS m FROM schools T1 \
               JOIN satscores s ON s.cds_code = T1.cds_code \
               WHERE T1.county = 'Los Angeles' AND s.num_tst_takr > 100 \
               GROUP BY T1.school_name HAVING COUNT(*) > 1 \
               ORDER BY m DESC, T1.school_name LIMIT 5";
    c.bench_function("parse_complex_select", |b| {
        b.iter(|| swan_sqlengine::parser::parse_statement(black_box(sql)).unwrap())
    });
}

fn bench_join(c: &mut Criterion) {
    let db = setup_db(10_000);
    c.bench_function("hash_join_10k_x_1k", |b| {
        b.iter(|| {
            db.query("SELECT COUNT(*) FROM t JOIN u ON t.grp = u.id").unwrap()
        })
    });
}

fn bench_aggregate(c: &mut Criterion) {
    let db = setup_db(10_000);
    c.bench_function("group_by_100_groups_10k_rows", |b| {
        b.iter(|| {
            db.query("SELECT grp, COUNT(*), AVG(v), MAX(v) FROM t GROUP BY grp").unwrap()
        })
    });
}

fn bench_filter(c: &mut Criterion) {
    let db = setup_db(10_000);
    c.bench_function("like_filter_10k_rows", |b| {
        b.iter(|| db.query("SELECT COUNT(*) FROM t WHERE name LIKE '%42%'").unwrap())
    });
}

fn bench_order_limit(c: &mut Criterion) {
    let db = setup_db(10_000);
    c.bench_function("order_by_limit_10k_rows", |b| {
        b.iter(|| db.query("SELECT id FROM t ORDER BY v DESC LIMIT 10").unwrap())
    });
}

fn bench_tokenizer(c: &mut Criterion) {
    let prompt = "Your task is to fill in the missing values in the target entry from the \
                  superhero database. Return a single row with no explanation. The columns \
                  are: superhero_name, full_name, eye_colour, hair_colour, publisher_name."
        .repeat(4);
    c.bench_function("tokenize_1kb_prompt", |b| {
        b.iter(|| count_tokens(black_box(&prompt)))
    });
}

fn bench_prompt_roundtrip(c: &mut Criterion) {
    let prompt = swan_llm::RowCompletionPrompt {
        db: "superhero".into(),
        columns: (0..10).map(|i| format!("col{i}")).collect(),
        key_len: 2,
        value_lists: vec![(
            "col5".into(),
            (0..12).map(|i| format!("Publisher {i}")).collect(),
        )],
        examples: vec![],
        target_key: vec!["Iron Falcon".into(), "Carlos Garcia".into()],
    };
    let text = prompt.render();
    c.bench_function("row_prompt_parse", |b| {
        b.iter(|| swan_llm::RowCompletionPrompt::parse(black_box(&text)).unwrap())
    });
}

fn bench_cache(c: &mut Criterion) {
    struct Echo(swan_llm::UsageMeter);
    impl LanguageModel for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn complete(&self, prompt: &str) -> swan_llm::LlmResult<swan_llm::Completion> {
            let tokens = swan_llm::TokenCount::of(prompt, "ok");
            self.0.record(tokens);
            Ok(swan_llm::Completion { text: "ok".into(), tokens })
        }
        fn usage_meter(&self) -> &swan_llm::UsageMeter {
            &self.0
        }
    }
    let model = CachedModel::new(Echo(swan_llm::UsageMeter::new()), CachePolicy::Exact);
    model.complete("a warm prompt that will be hit repeatedly").unwrap();
    c.bench_function("cache_hit_lookup", |b| {
        b.iter(|| model.complete(black_box("a warm prompt that will be hit repeatedly")).unwrap())
    });
}

criterion_group!(
    benches,
    bench_parser,
    bench_join,
    bench_aggregate,
    bench_filter,
    bench_order_limit,
    bench_tokenizer,
    bench_prompt_roundtrip,
    bench_cache
);
criterion_main!(benches);
