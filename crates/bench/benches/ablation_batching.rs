//! Ablation A1 (paper §4.3/§5.4) — batch size vs accuracy and call count.
//!
//! BlendSQL defaults to batch 5: fewer calls, but "processing multiple
//! entries in a single call may lead to inaccuracies". This ablation
//! sweeps the batch size on the Super Hero domain.

use std::sync::Arc;

use swan_core::experiment::{pct, render_table, Harness};
use swan_core::metrics::{execution_match, sql_is_ordered, ExTally};
use swan_core::udf::{UdfConfig, UdfRunner};
use swan_llm::{LanguageModel, ModelKind, SimulatedModel};

fn main() {
    let h = Harness::from_env();
    let domain = h.domain("superhero");

    println!("Ablation A1: UDF batch size vs execution accuracy and LLM calls");
    println!("(Super Hero, GPT-3.5 Turbo, 0-shot)");
    println!();

    let mut rows = Vec::new();
    for batch in [1usize, 2, 5, 10, 20] {
        let model = Arc::new(SimulatedModel::new(ModelKind::Gpt35Turbo, h.kb.clone()));
        let mut runner = UdfRunner::new(
            domain,
            model.clone(),
            UdfConfig { batch_size: batch, ..Default::default() },
        );
        let mut tally = ExTally::default();
        for q in &domain.questions {
            let ok = match runner.run_sql(&q.udf_sql) {
                Ok(result) => {
                    execution_match(h.gold.get(&q.id), &result, sql_is_ordered(&q.gold_sql))
                }
                Err(_) => false,
            };
            tally.record(ok);
        }
        let usage = model.usage();
        rows.push(vec![
            batch.to_string(),
            pct(tally.accuracy()),
            usage.calls.to_string(),
            format!("{:.2} M", usage.input_tokens as f64 / 1e6),
        ]);
    }

    println!(
        "{}",
        render_table(&["Batch size", "EX", "LLM calls", "Input tokens"], &rows)
    );
    println!("Expected shape: calls fall ~1/batch; accuracy degrades as batches grow.");
}
