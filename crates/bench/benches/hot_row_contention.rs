//! Transaction throughput under row contention.
//!
//! The false-conflict fix in one bench: 8 committers run `BEGIN … UPDATE
//! … COMMIT` transactions against **one** table, fsync on.
//!
//! * **disjoint_rows** — each committer updates its own primary key.
//!   Under the old table-granular validation every racing pair aborted
//!   one side; with row-level write sets the printed abort count must be
//!   **0** and throughput is bounded by the group-commit fsync, not by
//!   retries.
//! * **same_row** — all 8 committers update primary key 0: the true-
//!   conflict control. First committer wins, the rest retry, so the
//!   abort count is large and throughput pays for it. The gap between
//!   the two rows is the cost the bug used to impose on workloads that
//!   never actually conflicted.
//!
//! Each scenario prints committed transactions, conflict aborts,
//! commits-per-fsync, and leader→committer install handbacks (see
//! `DurabilityConfig::handback_deltas`).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, Criterion};
use swan_sqlengine::{DurabilityConfig, Error, SharedDb};

const COMMITTERS: usize = 8;

fn temp_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("swan-hotrow-bench-{tag}-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// One benchmark iteration: 8 threads each run one transactional
/// read-modify-write against the row `key(t)` selects, retrying on
/// conflict until the commit lands.
fn run_round(db: &SharedDb, aborts: &AtomicU64, key: impl Fn(usize) -> usize + Sync) {
    std::thread::scope(|s| {
        for t in 0..COMMITTERS {
            let handle = db.clone();
            let key = &key;
            s.spawn(move || {
                let id = key(t);
                loop {
                    let mut session = handle.session();
                    session.execute("BEGIN").unwrap();
                    session
                        .execute(&format!("UPDATE hot SET n = n + 1 WHERE id = {id}"))
                        .unwrap();
                    match session.execute("COMMIT") {
                        Ok(_) => break,
                        Err(Error::Conflict(_)) => {
                            aborts.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected commit error: {e}"),
                    }
                }
            });
        }
    });
}

fn bench_scenario(c: &mut Criterion, label: &str, key: impl Fn(usize) -> usize + Sync) {
    let path = temp_path(label);
    let db = SharedDb::open_with(&path, DurabilityConfig::default()).unwrap();
    db.execute("CREATE TABLE hot (id INTEGER PRIMARY KEY, n INTEGER)").unwrap();
    let seed: Vec<String> = (0..COMMITTERS).map(|t| format!("({t}, 0)")).collect();
    db.execute(&format!("INSERT INTO hot VALUES {}", seed.join(", "))).unwrap();

    let aborts = AtomicU64::new(0);
    let before = db.commit_stats();
    c.bench_function(&format!("hot_row_contention/{label}"), |b| {
        b.iter(|| run_round(&db, &aborts, &key))
    });
    let stats = db.commit_stats();
    let commits = stats.commits - before.commits;
    let batches = stats.batches - before.batches;
    let handbacks = stats.handback_installs - before.handback_installs;
    println!(
        "hot_row_contention/{label}: {commits} commits, {} conflict aborts, \
         {:.2} commits-per-fsync (max batch {}), {handbacks} handback installs",
        aborts.load(Ordering::Relaxed),
        commits as f64 / batches.max(1) as f64,
        stats.max_batch,
    );
    if label == "disjoint_rows" {
        assert_eq!(
            aborts.load(Ordering::Relaxed),
            0,
            "disjoint-row committers must never conflict"
        );
    }
    drop(db);
    let _ = std::fs::remove_file(&path);
}

fn bench_hot_row_contention(c: &mut Criterion) {
    // The fixed case: one table, 8 disjoint primary keys, zero aborts.
    bench_scenario(c, "disjoint_rows", |t| t);
    // The control: a genuinely hot row still aborts and retries.
    bench_scenario(c, "same_row", |_| 0);
}

criterion_group!(benches, bench_hot_row_contention);
criterion_main!(benches);
