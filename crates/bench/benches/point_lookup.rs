//! Primary-key serving on a 1M-row table: point probes, small ranges and
//! pk ORDER BY … LIMIT top-k, each run twice — `index` (the planner's
//! `IndexScan` / ordered-pk paths) and `scan` (`index_scan: false`, the
//! full-scan engine those rewrites replace) — so the speedup *is* the
//! pairwise ratio, measured interleaved in one process.
//!
//! Two non-criterion tables follow the timed runs:
//!
//! * **headline ratio** — wall-clock index-vs-scan ratio for the point
//!   probe; the bench asserts the ≥10× contract, so a planner regression
//!   that stops engaging the index fails the run instead of quietly
//!   printing slower numbers;
//! * **checkpoint write amplification** — bytes written to the page file
//!   by a checkpoint after k point updates vs the full-image checkpoint,
//!   counted on SimFs. The incremental figure is O(k) pages; the ratio
//!   is the write amplification the paged store removed.
//!
//! Reference numbers live in crates/sqlengine/PERF.md ("Paged storage").

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use swan_sqlengine::{Database, DurabilityConfig, OptimizerConfig, SimFs, Value};

const ROWS: usize = 1_000_000;

const MODES: &[(&str, bool)] = &[("index", true), ("scan", false)];

/// 1M rows of (pk, group, measure), served from memory (serving never
/// touches the pager; durability is benched separately below).
fn build_db(index_scan: bool) -> Database {
    let mut db = Database::new();
    db.set_optimizer(OptimizerConfig { index_scan, threads: 1, ..Default::default() });
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, grp INTEGER, val REAL)").unwrap();
    let t = db.catalog_mut().get_mut("t").unwrap();
    for i in 0..ROWS {
        t.insert_row(vec![
            Value::Integer(i as i64),
            Value::Integer((i % 64) as i64),
            Value::Real((i % 10_000) as f64 / 100.0),
        ])
        .unwrap();
    }
    db
}

const POINT: &str = "SELECT val FROM t WHERE id = 987654";
const RANGE: &str = "SELECT id, val FROM t WHERE id BETWEEN 500000 AND 500063";
const TOPK: &str = "SELECT id, val FROM t ORDER BY id LIMIT 10";

fn bench_point_lookup(c: &mut Criterion) {
    for &(label, index_scan) in MODES {
        let db = build_db(index_scan);
        c.bench_function(&format!("point_lookup/pk_eq_1m/{label}"), |b| {
            b.iter(|| black_box(db.query(POINT).unwrap()))
        });
        c.bench_function(&format!("point_lookup/pk_between_64_of_1m/{label}"), |b| {
            b.iter(|| black_box(db.query(RANGE).unwrap()))
        });
        c.bench_function(&format!("point_lookup/pk_order_limit_10_of_1m/{label}"), |b| {
            b.iter(|| black_box(db.query(TOPK).unwrap()))
        });
    }

    headline_ratio();
    checkpoint_write_amplification();
}

/// Wall-clock point-probe ratio with the ≥10× floor asserted.
fn headline_ratio() {
    let indexed = build_db(true);
    let scanned = build_db(false);
    let time = |db: &Database, iters: u32| {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(db.query(POINT).unwrap());
        }
        start.elapsed().as_secs_f64() / iters as f64
    };
    // Warm both paths, then measure: many probe iterations, fewer scans.
    time(&indexed, 10);
    time(&scanned, 2);
    let probe = time(&indexed, 2000);
    let scan = time(&scanned, 20);
    let ratio = scan / probe;
    println!(
        "point_lookup/headline: pk probe {:.2}us vs full scan {:.0}us on {ROWS} rows = {ratio:.0}x",
        probe * 1e6,
        scan * 1e6,
    );
    assert!(
        ratio >= 10.0,
        "pk point lookup must beat the full scan by >=10x on 1M rows, got {ratio:.1}x \
         (index scan disengaged?)"
    );
}

/// Page-file bytes written by a checkpoint after k point updates vs the
/// full-image checkpoint, counted on SimFs.
fn checkpoint_write_amplification() {
    const WAL: &str = "/sim/bench.wal";
    const TABLE_ROWS: usize = 50_000;
    const K: usize = 3;

    let fs = SimFs::new();
    let config = DurabilityConfig {
        checkpoint_bytes: u64::MAX,
        paged: true,
        ..Default::default()
    };
    let mut db =
        Database::open_on(Arc::new(fs.clone()), PathBuf::from(WAL), config).unwrap();
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, grp INTEGER, val REAL)").unwrap();
    let mut i = 0usize;
    while i < TABLE_ROWS {
        let end = (i + 500).min(TABLE_ROWS);
        let mut stmt = String::from("INSERT INTO t VALUES ");
        for (j, id) in (i..end).enumerate() {
            if j > 0 {
                stmt.push(',');
            }
            stmt.push_str(&format!("({id}, {}, {}.25)", id % 64, id % 10_000));
        }
        db.execute(&stmt).unwrap();
        i = end;
    }

    let page_bytes = |from: usize| -> u64 {
        let pages_path = format!("{WAL}.pages");
        fs.ops()[from..]
            .iter()
            .filter_map(|line| {
                let rest = line.strip_prefix("write ")?;
                let (path, tail) = rest.split_once(" @")?;
                (path == pages_path)
                    .then(|| tail.split_once('+')?.1.parse::<u64>().ok())
                    .flatten()
            })
            .sum()
    };

    let mark = fs.ops().len();
    let start = Instant::now();
    db.checkpoint().unwrap();
    let full_time = start.elapsed();
    let full = page_bytes(mark);

    for id in [17usize, 25_000, 49_999] {
        db.execute(&format!("UPDATE t SET val = val + 1 WHERE id = {id}")).unwrap();
    }
    let mark = fs.ops().len();
    let start = Instant::now();
    db.checkpoint().unwrap();
    let incr_time = start.elapsed();
    let incr = page_bytes(mark);

    println!(
        "point_lookup/checkpoint_amplification: full image {full} B ({:.1}ms), \
         after {K} updates {incr} B ({:.1}ms) = {:.0}x write amplification removed",
        full_time.as_secs_f64() * 1e3,
        incr_time.as_secs_f64() * 1e3,
        full as f64 / incr.max(1) as f64,
    );
    assert!(
        incr * 4 < full,
        "incremental checkpoint ({incr} B) must stay far below the full image ({full} B)"
    );
}

criterion_group!(benches, bench_point_lookup);
criterion_main!(benches);
