//! swan-bench has no library code; all content lives in the bench targets.
