//! Hybrid-query UDFs (paper §4.2) — the BlendSQL-style solution.
//!
//! `llm_map('question', key...)` is registered as an *expensive* scalar
//! UDF on the curated database. Before executing a question's SQL, the
//! [`UdfRunner`] performs the BlendSQL-style pre-pass:
//!
//! 1. find every `llm_map` call in the statement;
//! 2. determine the key columns' base table and — when predicate
//!    pushdown is enabled (§4.2: "pushing down predicates to avoid
//!    generating unnecessary data entries") — the cheap WHERE conjuncts
//!    that restrict it;
//! 3. collect the distinct key tuples, batch them (BlendSQL's default
//!    batch size is 5, §5.4) into [`UdfPrompt`]s, and fill the answer
//!    store.
//!
//! During execution, `llm_map` reads the store; a missing key falls back
//! to a single-key model call. The answer-store key policy implements the
//! caching spectrum of §4.3/§5.5 (see [`CacheScope`]).

use std::sync::Arc;

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use swan_data::DomainData;
use swan_llm::knowledge::normalize_question;
use swan_llm::{parallel, LanguageModel, UdfExample, UdfPrompt};
use swan_sqlengine::ast::{
    Expr, SelectBody, SelectItem, SelectStmt, Statement, TableRef,
};
use swan_sqlengine::exec::{run_select, ExecCtx};
use swan_sqlengine::plan::{split_conjuncts, RelSchema};
use swan_sqlengine::{parser, Database, Error, QueryResult, Result, ScalarUdf, Value};

use crate::hqdl::infer_value;

/// How the answer store keys cached LLM results across questions (§5.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheScope {
    /// No reuse at all: the store is cleared before every question.
    PerQuestion,
    /// BlendSQL's behaviour: reuse only when the prompt's question text
    /// is (modulo whitespace/case) identical. Paraphrases miss.
    ExactPrompt,
    /// §4.3's query-rewriting idea: resolve the question to a canonical
    /// attribute first, so paraphrases share entries.
    Semantic,
}

/// UDF-solution configuration.
#[derive(Debug, Clone, Copy)]
pub struct UdfConfig {
    /// Few-shot demonstrations in each prompt (0 or 5 in Table 3).
    pub shots: usize,
    /// Keys per batched prompt (BlendSQL default: 5).
    pub batch_size: usize,
    /// Pre-pass predicate pushdown on/off (ablation A4).
    pub pushdown: bool,
    /// Cross-question caching policy (ablation A2).
    pub cache: CacheScope,
    /// Parallel LLM workers for the pre-pass.
    pub workers: usize,
}

impl Default for UdfConfig {
    fn default() -> Self {
        UdfConfig {
            shots: 0,
            batch_size: 5,
            pushdown: true,
            cache: CacheScope::ExactPrompt,
            workers: 1,
        }
    }
}

/// Execution statistics for cost analysis.
#[derive(Debug, Clone, Copy, Default)]
pub struct UdfStats {
    /// Keys answered through batched pre-pass calls.
    pub prefetched_keys: u64,
    /// Keys already present in the answer store when prefetch ran.
    pub cache_hits: u64,
    /// Per-row fallback model calls during execution.
    pub fallback_calls: u64,
}

/// Domain metadata the runner needs (question → attribute, value lists,
/// few-shot pools). This is the hybrid system's own metadata, provided by
/// the benchmark (§3.5), not the model's knowledge.
struct DomainMeta {
    db: String,
    question_attr: HashMap<String, String>,
    value_lists: HashMap<String, Vec<String>>,
    examples: HashMap<String, Vec<UdfExample>>,
}

impl DomainMeta {
    fn build(domain: &DomainData, max_examples: usize) -> Self {
        let mut question_attr = HashMap::new();
        for p in &domain.phrases {
            question_attr.insert(normalize_question(&p.text), p.attribute.clone());
        }
        let mut value_lists = HashMap::new();
        for e in &domain.curation.expansions {
            for g in &e.generated {
                if let Some(vs) = &g.value_list {
                    value_lists.insert(g.name.clone(), vs.clone());
                }
            }
        }
        let mut examples: HashMap<String, Vec<UdfExample>> = HashMap::new();
        for f in &domain.facts {
            let pool = examples.entry(f.attribute.clone()).or_default();
            if pool.len() < max_examples {
                pool.push(UdfExample { key: f.key.clone(), answer: f.value.condensed() });
            }
        }
        DomainMeta {
            db: domain.name.clone(),
            question_attr,
            value_lists,
            examples,
        }
    }

    fn attribute_of(&self, question: &str) -> Option<&String> {
        self.question_attr.get(&normalize_question(question))
    }
}

/// Shared state between the runner and the registered `llm_map` UDF.
struct Shared {
    meta: DomainMeta,
    model: Arc<dyn LanguageModel>,
    config: UdfConfig,
    answers: Mutex<HashMap<(String, Vec<String>), Value>>,
    stats: Mutex<UdfStats>,
    fallback_calls: AtomicU64,
}

impl Shared {
    /// Store key under the configured cache scope.
    fn cache_key(&self, question: &str, key: &[String]) -> (String, Vec<String>) {
        let part = match self.config.cache {
            CacheScope::Semantic => self
                .meta
                .attribute_of(question)
                .cloned()
                .unwrap_or_else(|| normalize_question(question)),
            // Prompt-text identity (BlendSQL): the "[qNN]" tag marking
            // which question produced the prompt stays in the key, so
            // per-question phrasings never share entries (§5.5).
            _ => question.trim().to_ascii_lowercase(),
        };
        (part, key.to_vec())
    }

    fn prompt_for(&self, question: &str, keys: Vec<Vec<String>>) -> UdfPrompt {
        let attr = self.meta.attribute_of(question);
        let value_list = attr.and_then(|a| self.meta.value_lists.get(a)).cloned();
        let examples = attr
            .and_then(|a| self.meta.examples.get(a))
            .map(|pool| pool.iter().take(self.config.shots).cloned().collect())
            .unwrap_or_default();
        UdfPrompt {
            db: self.meta.db.clone(),
            question: question.to_string(),
            value_list,
            examples,
            keys,
        }
    }

    /// Single-key fallback call (cache miss during execution).
    fn fetch_single(&self, question: &str, key: &[String]) -> Result<Value> {
        let prompt = self.prompt_for(question, vec![key.to_vec()]).render();
        let completion = self
            .model
            .complete(&prompt)
            .map_err(|e| Error::Udf { name: "llm_map".into(), message: e.to_string() })?;
        let answer = swan_llm::prompt::parse_udf_response(&completion.text)
            .into_iter()
            .next()
            .unwrap_or_default();
        self.fallback_calls.fetch_add(1, Ordering::Relaxed);
        let value = infer_value(&answer);
        self.answers
            .lock()
            .insert(self.cache_key(question, key), value.clone());
        Ok(value)
    }
}

/// The `llm_map` scalar function.
struct LlmMapUdf {
    shared: Arc<Shared>,
}

impl ScalarUdf for LlmMapUdf {
    fn name(&self) -> &str {
        "llm_map"
    }

    fn invoke(&self, args: &[Value]) -> Result<Value> {
        if args.len() < 2 {
            return Err(Error::Udf {
                name: "llm_map".into(),
                message: "usage: llm_map(question, key, ...)".into(),
            });
        }
        let question = args[0]
            .as_str()
            .ok_or_else(|| Error::Udf {
                name: "llm_map".into(),
                message: "first argument must be the question text".into(),
            })?
            .to_string();
        if args[1..].iter().any(Value::is_null) {
            return Ok(Value::Null); // NULL keys have no LLM answer.
        }
        let key: Vec<String> = args[1..].iter().map(Value::render).collect();
        let cache_key = self.shared.cache_key(&question, &key);
        if let Some(v) = self.shared.answers.lock().get(&cache_key) {
            return Ok(v.clone());
        }
        self.shared.fetch_single(&question, &key)
    }

    fn is_expensive(&self) -> bool {
        true
    }
}

/// Runs the benchmark's UDF-form hybrid queries over one domain.
pub struct UdfRunner {
    db: Database,
    shared: Arc<Shared>,
}

impl UdfRunner {
    pub fn new(domain: &DomainData, model: Arc<dyn LanguageModel>, config: UdfConfig) -> Self {
        let shared = Arc::new(Shared {
            meta: DomainMeta::build(domain, config.shots.max(5)),
            model,
            config,
            answers: Mutex::new(HashMap::new()),
            stats: Mutex::new(UdfStats::default()),
            fallback_calls: AtomicU64::new(0),
        });
        let mut db = domain.curated.clone();
        db.register_udf(Arc::new(LlmMapUdf { shared: shared.clone() }));
        UdfRunner { db, shared }
    }

    /// Execute one UDF-form hybrid query. Non-SELECT statements (useful
    /// in the interactive shell) execute directly without a pre-pass.
    pub fn run_sql(&mut self, udf_sql: &str) -> Result<QueryResult> {
        if self.shared.config.cache == CacheScope::PerQuestion {
            self.shared.answers.lock().clear();
        }
        let stmt = parser::parse_statement(udf_sql)?;
        let Statement::Select(select) = &stmt else {
            return self.db.execute(udf_sql);
        };
        self.prefetch(select)?;
        self.db.query(udf_sql)
    }

    /// The curated database this runner queries (with `llm_map` registered).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutable access (e.g. to overlay HQDL-materialized tables).
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> UdfStats {
        let mut s = *self.shared.stats.lock();
        s.fallback_calls = self.shared.fallback_calls.load(Ordering::Relaxed);
        s
    }

    /// Number of distinct cached answers.
    pub fn cached_answers(&self) -> usize {
        self.shared.answers.lock().len()
    }

    // ---- pre-pass ----------------------------------------------------------

    fn prefetch(&self, stmt: &SelectStmt) -> Result<()> {
        let SelectBody::Simple(core) = &stmt.body else {
            return Ok(()); // compound UDF queries: rely on fallback calls
        };
        let mut calls: Vec<(String, Vec<Expr>)> = Vec::new();
        let mut collect = |e: &Expr| {
            e.walk(&mut |x| {
                if let Expr::Function { name, args, .. } = x {
                    if name.eq_ignore_ascii_case("llm_map") && args.len() >= 2 {
                        if let Expr::Literal(Value::Text(q)) = &args[0] {
                            let key = (q.to_string(), args[1..].to_vec());
                            if !calls.contains(&key) {
                                calls.push(key);
                            }
                        }
                    }
                }
            });
        };
        for item in &core.projection {
            if let SelectItem::Expr { expr, .. } = item {
                collect(expr);
            }
        }
        if let Some(f) = &core.filter {
            collect(f);
        }
        for g in &core.group_by {
            collect(g);
        }
        if let Some(h) = &core.having {
            collect(h);
        }
        for o in &stmt.order_by {
            collect(&o.expr);
        }

        for (question, key_exprs) in calls {
            self.prefetch_call(core, &question, &key_exprs)?;
        }
        Ok(())
    }

    fn prefetch_call(
        &self,
        core: &swan_sqlengine::ast::SelectCore,
        question: &str,
        key_exprs: &[Expr],
    ) -> Result<()> {
        // The key columns must all be plain column references over one
        // table alias; otherwise fall back to per-row calls.
        let mut qualifier: Option<String> = None;
        for e in key_exprs {
            match e {
                Expr::Column { table: Some(t), .. } => {
                    if let Some(q) = &qualifier {
                        if !q.eq_ignore_ascii_case(t) {
                            return Ok(());
                        }
                    } else {
                        qualifier = Some(t.clone());
                    }
                }
                _ => return Ok(()),
            }
        }
        let Some(qualifier) = qualifier else { return Ok(()) };
        let Some(from) = &core.from else { return Ok(()) };
        let Some((table_name, alias)) = find_table(from, &qualifier) else {
            return Ok(());
        };

        // Pushdown: cheap conjuncts fully resolvable against this table.
        let filter = if self.shared.config.pushdown {
            let table = self.db.catalog().get_required(&table_name)?;
            let schema = RelSchema::qualified(&alias, table.column_names());
            let pushable: Vec<Expr> = core
                .filter
                .iter()
                .flat_map(split_conjuncts)
                .filter(|c| !contains_function(c) && schema.covers(c))
                .collect();
            swan_sqlengine::plan::conjoin(pushable)
        } else {
            None
        };

        // SELECT DISTINCT <keys> FROM <table> AS <alias> [WHERE pushable]
        let key_query = SelectStmt {
            body: SelectBody::Simple(Box::new(swan_sqlengine::ast::SelectCore {
                distinct: true,
                projection: key_exprs
                    .iter()
                    .map(|e| SelectItem::Expr { expr: e.clone(), alias: None })
                    .collect(),
                from: Some(TableRef::Table {
                    name: table_name,
                    alias: Some(alias),
                }),
                filter,
                group_by: vec![],
                having: None,
            })),
            order_by: vec![],
            limit: None,
            offset: None,
        };
        let ctx = ExecCtx::new(self.db.catalog(), self.db.udfs());
        let keys_rel = run_select(&key_query, &ctx, None)?;

        // Split into cached / needed.
        let mut needed: Vec<Vec<String>> = Vec::new();
        {
            let answers = self.shared.answers.lock();
            let mut stats = self.shared.stats.lock();
            for row in &keys_rel.rows {
                if row.iter().any(Value::is_null) {
                    continue;
                }
                let key: Vec<String> = row.iter().map(Value::render).collect();
                if answers.contains_key(&self.shared.cache_key(question, &key)) {
                    stats.cache_hits += 1;
                } else {
                    needed.push(key);
                }
            }
        }
        if needed.is_empty() {
            return Ok(());
        }

        // Batch and fan out.
        let batch = self.shared.config.batch_size.max(1);
        let chunks: Vec<Vec<Vec<String>>> =
            needed.chunks(batch).map(|c| c.to_vec()).collect();
        let prompts: Vec<String> = chunks
            .iter()
            .map(|keys| self.shared.prompt_for(question, keys.clone()).render())
            .collect();
        let completions =
            parallel::complete_many(self.shared.model.as_ref(), &prompts, self.shared.config.workers);

        let mut answers = self.shared.answers.lock();
        let mut stats = self.shared.stats.lock();
        for (keys, completion) in chunks.iter().zip(completions) {
            let Ok(completion) = completion else { continue };
            let lines = swan_llm::prompt::parse_udf_response(&completion.text);
            // Align line i with key i; short responses (batch glitches,
            // §5.4) leave trailing keys unanswered — execution falls back.
            for (key, line) in keys.iter().zip(lines) {
                answers.insert(self.shared.cache_key(question, key), infer_value(&line));
                stats.prefetched_keys += 1;
            }
        }
        Ok(())
    }
}

/// Find the `(table_name, alias)` in a FROM tree answering to `qualifier`.
fn find_table(t: &TableRef, qualifier: &str) -> Option<(String, String)> {
    match t {
        TableRef::Table { name, alias } => {
            let a = alias.as_deref().unwrap_or(name);
            if a.eq_ignore_ascii_case(qualifier) {
                Some((name.clone(), a.to_string()))
            } else {
                None
            }
        }
        TableRef::Subquery { .. } => None,
        TableRef::Join { left, right, .. } => {
            find_table(left, qualifier).or_else(|| find_table(right, qualifier))
        }
    }
}

fn contains_function(e: &Expr) -> bool {
    let mut found = false;
    e.walk(&mut |x| {
        if matches!(x, Expr::Function { .. }) {
            found = true;
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use swan_data::{GenConfig, SwanBenchmark};
    use swan_llm::{ModelKind, SimulatedModel};

    fn runner(scale: f64, config: UdfConfig) -> (swan_data::DomainData, UdfRunner) {
        let d = SwanBenchmark::generate_domain(&GenConfig::with_scale(scale), "superhero").unwrap();
        let kb = swan_data::build_knowledge(std::slice::from_ref(&d));
        let model = Arc::new(SimulatedModel::new(ModelKind::Gpt4Turbo, kb));
        let r = UdfRunner::new(&d, model, config);
        (d, r)
    }

    #[test]
    fn runs_a_simple_udf_question() {
        let (d, mut r) = runner(0.05, UdfConfig::default());
        let q = &d.questions[0]; // publisher membership
        let result = r.run_sql(&q.udf_sql).expect("udf query runs");
        assert!(!result.columns.is_empty());
        let stats = r.stats();
        assert!(stats.prefetched_keys > 0, "pre-pass fetched keys in batch");
    }

    #[test]
    fn batching_reduces_model_calls() {
        let d = SwanBenchmark::generate_domain(&GenConfig::with_scale(0.05), "superhero").unwrap();
        let kb = swan_data::build_knowledge(std::slice::from_ref(&d));
        let heroes = d.curated.catalog().get("superhero").unwrap().len() as u64;

        let model = Arc::new(SimulatedModel::new(ModelKind::Gpt4Turbo, kb.clone()));
        let mut r = UdfRunner::new(
            &d,
            model.clone(),
            UdfConfig { batch_size: 5, ..Default::default() },
        );
        r.run_sql(&d.questions[0].udf_sql).unwrap();
        let batched_calls = model.usage().calls;
        assert!(batched_calls >= heroes / 5, "at least ceil(n/5) calls");
        assert!(
            batched_calls < heroes,
            "batching must reduce calls: {batched_calls} vs {heroes} heroes"
        );
    }

    #[test]
    fn exact_cache_reuses_identical_prompts_only() {
        let (d, mut r) = runner(0.05, UdfConfig::default());
        // Re-running the same question hits the cache for every hero...
        r.run_sql(&d.questions[0].udf_sql).unwrap();
        let after_first = r.stats();
        assert_eq!(after_first.cache_hits, 0);
        r.run_sql(&d.questions[0].udf_sql).unwrap();
        let after_rerun = r.stats();
        assert!(after_rerun.cache_hits > 0, "identical prompt text reuses");
        // ...but a different question about the same attribute (different
        // "[qNN]" tag, i.e. different prompt text) misses entirely —
        // BlendSQL's weakness from paper §5.5.
        let hits_before_q2 = after_rerun.cache_hits;
        r.run_sql(&d.questions[1].udf_sql).unwrap();
        assert_eq!(
            r.stats().cache_hits,
            hits_before_q2,
            "per-question prompts cannot share cache entries"
        );
    }

    #[test]
    fn per_question_scope_never_reuses() {
        let (d, mut r) = runner(
            0.05,
            UdfConfig { cache: CacheScope::PerQuestion, ..Default::default() },
        );
        r.run_sql(&d.questions[0].udf_sql).unwrap();
        r.run_sql(&d.questions[1].udf_sql).unwrap();
        assert_eq!(r.stats().cache_hits, 0);
    }

    #[test]
    fn pushdown_restricts_point_lookups() {
        // Formula 1 q01 is a point lookup (WHERE forename/surname =
        // constants): with pushdown only 1 key is fetched.
        let d = SwanBenchmark::generate_domain(&GenConfig::with_scale(0.05), "formula_1").unwrap();
        let kb = swan_data::build_knowledge(std::slice::from_ref(&d));

        let model = Arc::new(SimulatedModel::new(ModelKind::Gpt4Turbo, kb.clone()));
        let mut with = UdfRunner::new(&d, model, UdfConfig::default());
        with.run_sql(&d.questions[0].udf_sql).unwrap();
        assert_eq!(with.stats().prefetched_keys, 1, "pushdown narrows to one driver");

        let model = Arc::new(SimulatedModel::new(ModelKind::Gpt4Turbo, kb));
        let mut without =
            UdfRunner::new(&d, model, UdfConfig { pushdown: false, ..Default::default() });
        without.run_sql(&d.questions[0].udf_sql).unwrap();
        let drivers = d.curated.catalog().get("drivers").unwrap().len() as u64;
        assert_eq!(
            without.stats().prefetched_keys,
            drivers,
            "without pushdown every driver is generated (§5.5)"
        );
    }

    #[test]
    fn semantic_scope_shares_paraphrases() {
        // Two football questions use different height phrasings; the
        // semantic scope resolves both to `height`.
        let d =
            SwanBenchmark::generate_domain(&GenConfig::with_scale(0.02), "european_football").unwrap();
        let kb = swan_data::build_knowledge(std::slice::from_ref(&d));
        let model = Arc::new(SimulatedModel::new(ModelKind::Gpt4Turbo, kb));
        let mut r = UdfRunner::new(
            &d,
            model,
            UdfConfig { cache: CacheScope::Semantic, ..Default::default() },
        );
        let players = d.curated.catalog().get("player").unwrap().len() as u64;
        // q01 asks MAX height with one phrasing.
        r.run_sql(&d.questions[0].udf_sql).unwrap();
        assert_eq!(r.stats().prefetched_keys, players);
        // A paraphrased sweep over the same attribute: all hits.
        let paraphrase = "SELECT T1.player_name FROM player T1 \
             WHERE llm_map('How tall is the player in centimeters?', T1.player_name) > 180";
        r.run_sql(paraphrase).unwrap();
        assert_eq!(r.stats().cache_hits, players, "paraphrase fully reused");
    }

    #[test]
    fn fallback_single_call_on_unprefetchable_key() {
        let (_, mut r) = runner(0.05, UdfConfig::default());
        // llm_map over a literal key: the pre-pass cannot see a table, so
        // invoke() falls back to a single call.
        let out = r
            .run_sql(
                "SELECT llm_map('Which publisher published the superhero?', 'Nobody', 'No One')",
            )
            .unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(r.stats().fallback_calls, 1);
    }

    #[test]
    fn null_keys_yield_null() {
        let (_, mut r) = runner(0.05, UdfConfig::default());
        let out = r
            .run_sql("SELECT llm_map('Which publisher published the superhero?', NULL, 'x')")
            .unwrap();
        assert!(out.rows[0][0].is_null());
        assert_eq!(r.stats().fallback_calls, 0, "no model call for NULL keys");
    }
}
