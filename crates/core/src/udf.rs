//! Hybrid-query UDFs (paper §4.2) — the BlendSQL-style solution.
//!
//! `llm_map('question', key...)` is registered as an *expensive* scalar
//! UDF on the curated database. Before executing a question's SQL, the
//! [`UdfRunner`] performs the BlendSQL-style pre-pass:
//!
//! 1. find every `llm_map` call in the statement;
//! 2. determine the key columns' base table and — when predicate
//!    pushdown is enabled (§4.2: "pushing down predicates to avoid
//!    generating unnecessary data entries") — the cheap WHERE conjuncts
//!    that restrict it;
//! 3. collect the distinct key tuples, batch them (BlendSQL's default
//!    batch size is 5, §5.4) into [`UdfPrompt`]s, and fill the answer
//!    store.
//!
//! During execution, `llm_map` reads the store. Query shapes the pre-pass
//! bails on (compound SELECTs, subquery sources, unqualified key columns,
//! non-literal questions, `llm_map` inside JOIN ON) are still batched:
//! the engine's vectorized execution hands each operator's distinct
//! argument tuples to [`ScalarUdf::invoke_batch`], which chunks uncached
//! keys per [`UdfConfig::batch_size`] and fans the prompts out across
//! `UdfConfig::workers`. Only keys a short batch response leaves
//! unanswered fall back to single-key model calls, and those are
//! single-flighted across concurrent rows. The answer-store key policy
//! implements the caching spectrum of §4.3/§5.5 (see [`CacheScope`]).

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use swan_pool::lockrank;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex as StdMutex};

use swan_data::DomainData;
use swan_llm::knowledge::normalize_question;
use swan_llm::{parallel, BreakerState, LanguageModel, LlmError, ResilientModel, UdfExample, UdfPrompt};
use swan_sqlengine::ast::{
    Expr, SelectBody, SelectItem, SelectStmt, Statement, TableRef,
};
use swan_sqlengine::exec::{run_select, ExecCtx};
use swan_sqlengine::plan::{split_conjuncts, RelSchema};
use swan_sqlengine::{parser, Database, Error, QueryResult, Result, ScalarUdf, Value};

use crate::hqdl::infer_value;

/// How the answer store keys cached LLM results across questions (§5.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheScope {
    /// No reuse at all: the store is cleared before every question.
    PerQuestion,
    /// BlendSQL's behaviour: reuse only when the prompt's question text
    /// is (modulo whitespace/case) identical. Paraphrases miss.
    ExactPrompt,
    /// §4.3's query-rewriting idea: resolve the question to a canonical
    /// attribute first, so paraphrases share entries.
    Semantic,
}

/// What a failed (post-retry) model call degrades to, instead of failing
/// the whole statement. A statement-deadline failure
/// ([`LlmError::Deadline`]) is **never** degraded — the statement aborts
/// with [`Error::Deadline`] under every policy, because the deadline
/// belongs to the statement, not the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OnModelFailure {
    /// Surface the model error; the statement fails (the default).
    #[default]
    Fail,
    /// The row's answer becomes NULL. Never cached: a later statement
    /// retries the key.
    Null,
    /// Serve the last known-good answer for this key — surviving even
    /// [`CacheScope::PerQuestion`] store clears — falling back to NULL
    /// when the key has never been answered. Never re-cached either.
    StaleCache,
}

/// UDF-solution configuration.
#[derive(Debug, Clone, Copy)]
pub struct UdfConfig {
    /// Few-shot demonstrations in each prompt (0 or 5 in Table 3).
    pub shots: usize,
    /// Keys per batched prompt (BlendSQL default: 5).
    pub batch_size: usize,
    /// Pre-pass predicate pushdown on/off (ablation A4).
    pub pushdown: bool,
    /// Cross-question caching policy (ablation A2).
    pub cache: CacheScope,
    /// Parallel LLM workers for the pre-pass.
    pub workers: usize,
    /// Degradation policy for model calls that still fail after the
    /// resilience layer's retries.
    pub on_model_failure: OnModelFailure,
}

impl Default for UdfConfig {
    fn default() -> Self {
        UdfConfig {
            shots: 0,
            batch_size: 5,
            pushdown: true,
            cache: CacheScope::ExactPrompt,
            workers: 1,
            on_model_failure: OnModelFailure::Fail,
        }
    }
}

/// Execution statistics for cost analysis.
#[derive(Debug, Clone, Copy, Default)]
pub struct UdfStats {
    /// Keys answered through batched model calls — the AST pre-pass or
    /// the engine's vectorized `invoke_batch` execution.
    pub prefetched_keys: u64,
    /// Keys already present in the answer store when prefetch ran.
    pub cache_hits: u64,
    /// Answer-store hits during execution: rows served from previously
    /// fetched answers at `invoke`/`invoke_batch` time, including reuse
    /// across concurrent rows coalesced by the single-flight fallback.
    pub exec_cache_hits: u64,
    /// Per-row fallback model calls during execution (attempts, whether
    /// or not the model answered).
    pub fallback_calls: u64,
    /// Failed model calls absorbed by [`UdfConfig::on_model_failure`]
    /// (degraded to NULL or a stale answer) instead of failing the
    /// statement.
    pub degraded: u64,
    /// The resilience layer's per-endpoint circuit-breaker state, when
    /// the runner was built with [`UdfRunner::with_resilient`].
    pub breaker: Option<BreakerState>,
}

/// Domain metadata the runner needs (question → attribute, value lists,
/// few-shot pools). This is the hybrid system's own metadata, provided by
/// the benchmark (§3.5), not the model's knowledge.
struct DomainMeta {
    db: String,
    question_attr: HashMap<String, String>,
    value_lists: HashMap<String, Vec<String>>,
    examples: HashMap<String, Vec<UdfExample>>,
}

impl DomainMeta {
    fn build(domain: &DomainData, max_examples: usize) -> Self {
        let mut question_attr = HashMap::new();
        for p in &domain.phrases {
            question_attr.insert(normalize_question(&p.text), p.attribute.clone());
        }
        let mut value_lists = HashMap::new();
        for e in &domain.curation.expansions {
            for g in &e.generated {
                if let Some(vs) = &g.value_list {
                    value_lists.insert(g.name.clone(), vs.clone());
                }
            }
        }
        let mut examples: HashMap<String, Vec<UdfExample>> = HashMap::new();
        for f in &domain.facts {
            let pool = examples.entry(f.attribute.clone()).or_default();
            if pool.len() < max_examples {
                pool.push(UdfExample { key: f.key.clone(), answer: f.value.condensed() });
            }
        }
        DomainMeta {
            db: domain.name.clone(),
            question_attr,
            value_lists,
            examples,
        }
    }

    fn attribute_of(&self, question: &str) -> Option<&String> {
        self.question_attr.get(&normalize_question(question))
    }
}

/// An answer-store key under the configured [`CacheScope`].
type CacheKey = (String, Vec<String>);

/// One in-flight model fetch for a cache key. The leader (the thread that
/// created the flight) publishes its outcome here; waiters receive it
/// directly — a leader's *error* is delivered to every waiter instead of
/// leaving them to retry as surprise leaders (or hang). The flight is
/// removed from the map once resolved, so *later* calls for the same key
/// start a fresh flight and may retry.
#[derive(Default)]
struct Flight {
    /// `None` while the fetch is in flight. `Ok(Some(v))` = answered;
    /// `Ok(None)` = the flight ended without answering this key (a short
    /// batch response) — the waiter retries with its own flight;
    /// `Err(e)` = the leader's failure, propagated to every waiter.
    outcome: StdMutex<Option<Result<Option<Value>>>>,
    done: Condvar,
}

impl Flight {
    /// Publish the leader's outcome and wake every waiter.
    fn resolve(&self, outcome: Result<Option<Value>>) {
        *self.outcome.lock().unwrap_or_else(|p| p.into_inner()) = Some(outcome);
        self.done.notify_all();
    }

    /// Wait for the leader's outcome, honoring the calling statement's
    /// cancel token: a waiter whose deadline fires while parked returns
    /// [`Error::Deadline`] instead of staying parked behind a slow flight.
    fn wait(&self) -> Result<Option<Value>> {
        let token = swan_pool::cancel::current();
        let mut outcome = self.outcome.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(r) = outcome.as_ref() {
                return r.clone();
            }
            if let Some(t) = &token {
                if let Err(reason) = t.check() {
                    return Err(Error::from(reason));
                }
            }
            let wait = self
                .done
                .wait_timeout(outcome, Duration::from_millis(10))
                .unwrap_or_else(|p| p.into_inner());
            outcome = wait.0;
        }
    }
}

/// Shared state between the runner and the registered `llm_map` UDF.
struct Shared {
    meta: DomainMeta,
    model: Arc<dyn LanguageModel>,
    /// The resilience wrapper's handle when the runner was built with
    /// [`UdfRunner::with_resilient`] — exposes breaker state in stats.
    resilient: Option<Arc<ResilientModel>>,
    config: UdfConfig,
    answers: Mutex<HashMap<CacheKey, Value>>,
    /// Last known-good answer per key, written on every successful model
    /// answer and **surviving** [`CacheScope::PerQuestion`] store clears:
    /// the [`OnModelFailure::StaleCache`] degradation source.
    stale: Mutex<HashMap<CacheKey, Value>>,
    stats: Mutex<UdfStats>,
    fallback_calls: AtomicU64,
    exec_hits: AtomicU64,
    degraded: AtomicU64,
    /// Cache keys currently being fetched, mapped to their [`Flight`].
    /// Concurrent rows asking for the same key wait on the flight instead
    /// of issuing duplicate model calls (single-flight). Lock ordering
    /// (lockdep ranks `udf_flight` < `udf_answers`): `in_flight` may take
    /// `answers` briefly, never the reverse.
    in_flight: Mutex<HashMap<CacheKey, Arc<Flight>>>,
}

impl Shared {
    /// Store key under the configured cache scope.
    fn cache_key(&self, question: &str, key: &[String]) -> (String, Vec<String>) {
        let part = match self.config.cache {
            CacheScope::Semantic => self
                .meta
                .attribute_of(question)
                .cloned()
                .unwrap_or_else(|| normalize_question(question)),
            // Prompt-text identity (BlendSQL): the "[qNN]" tag marking
            // which question produced the prompt stays in the key, so
            // per-question phrasings never share entries (§5.5).
            _ => question.trim().to_ascii_lowercase(),
        };
        (part, key.to_vec())
    }

    fn prompt_for(&self, question: &str, keys: Vec<Vec<String>>) -> UdfPrompt {
        let attr = self.meta.attribute_of(question);
        let value_list = attr.and_then(|a| self.meta.value_lists.get(a)).cloned();
        let examples = attr
            .and_then(|a| self.meta.examples.get(a))
            .map(|pool| pool.iter().take(self.config.shots).cloned().collect())
            .unwrap_or_default();
        UdfPrompt {
            db: self.meta.db.clone(),
            question: question.to_string(),
            value_list,
            examples,
            keys,
        }
    }

    /// Record a successful answer: the live store *and* the last-known-
    /// good store (degradation source). Only ever called with a value the
    /// model actually produced — failed calls never populate either.
    fn remember(&self, cache_key: &CacheKey, value: &Value) {
        self.answers.lock().insert(cache_key.clone(), value.clone());
        self.stale.lock().insert(cache_key.clone(), value.clone());
    }

    /// Single-key fallback call (cache miss during execution),
    /// single-flighted: concurrent rows asking for the same key wait for
    /// the one in-flight model call instead of each paying their own, and
    /// receive the leader's outcome — error included.
    fn fetch_single(&self, question: &str, key: &[String]) -> Result<Value> {
        let cache_key = self.cache_key(question, key);
        loop {
            if let Some(v) = self.answers.lock().get(&cache_key) {
                self.exec_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(v.clone());
            }
            // Join an existing flight, or register ourselves as leader.
            let joined = {
                let mut fl = self.in_flight.lock();
                match fl.get(&cache_key) {
                    Some(f) => Some(f.clone()),
                    None => {
                        // Re-check under the map lock: a completing flight
                        // caches its answer *before* removing itself.
                        if let Some(v) = self.answers.lock().get(&cache_key) {
                            self.exec_hits.fetch_add(1, Ordering::Relaxed);
                            return Ok(v.clone());
                        }
                        fl.insert(cache_key.clone(), Arc::new(Flight::default()));
                        None
                    }
                }
            };
            let Some(flight) = joined else {
                // We lead: perform the call, publish the outcome to any
                // waiters, and retire the flight so later calls retry
                // rather than inherit a stale error.
                let result = self.fetch_uncoalesced(question, key, &cache_key);
                let flight = {
                    let mut fl = self.in_flight.lock();
                    fl.remove(&cache_key)
                };
                if let Some(f) = flight {
                    f.resolve(result.clone().map(Some));
                }
                return result;
            };
            match flight.wait()? {
                Some(v) => {
                    self.exec_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(v);
                }
                // The flight (a batch) ended without this key: retry
                // with a fresh flight of our own.
                None => continue,
            }
        }
    }

    fn fetch_uncoalesced(
        &self,
        question: &str,
        key: &[String],
        cache_key: &CacheKey,
    ) -> Result<Value> {
        let prompt = self.prompt_for(question, vec![key.to_vec()]).render();
        self.fallback_calls.fetch_add(1, Ordering::Relaxed);
        match self.model.complete(&prompt) {
            Ok(completion) => {
                let answer = swan_llm::prompt::parse_udf_response(&completion.text)
                    .into_iter()
                    .next()
                    .unwrap_or_default();
                let value = infer_value(&answer);
                self.remember(cache_key, &value);
                Ok(value)
            }
            Err(e) => self.degrade(cache_key, e),
        }
    }

    /// Apply [`UdfConfig::on_model_failure`] to a model call that still
    /// failed after the resilience layer's retries. A statement-deadline
    /// failure always aborts the statement — degrading it would silently
    /// turn "too slow" into wrong answers.
    fn degrade(&self, cache_key: &CacheKey, e: LlmError) -> Result<Value> {
        if e == LlmError::Deadline {
            return Err(Error::Deadline);
        }
        let fail = || Error::Udf { name: "llm_map".into(), message: e.to_string() };
        match self.config.on_model_failure {
            OnModelFailure::Fail => Err(fail()),
            OnModelFailure::Null => {
                self.degraded.fetch_add(1, Ordering::Relaxed);
                Ok(Value::Null)
            }
            OnModelFailure::StaleCache => {
                self.degraded.fetch_add(1, Ordering::Relaxed);
                Ok(self.stale.lock().get(cache_key).cloned().unwrap_or(Value::Null))
            }
        }
    }

    /// Batched fetch for the engine's vectorized execution path: chunk the
    /// uncached keys of each question per `batch_size` and fan the prompts
    /// out through the parallel worker pool — the same shape the AST
    /// pre-pass uses, but driven by the operator's actual input batch, so
    /// query shapes the pre-pass bails on (compound SELECTs, subquery
    /// sources, non-literal questions, `llm_map` in JOIN ON) still get
    /// batched calls.
    fn fetch_batch(&self, question: &str, needed: &[Vec<String>]) {
        // Reserve the keys in the single-flight map; keys another thread
        // is already fetching (per-row or in its own batch) are dropped
        // from this batch — their rows fall back to `fetch_single`, which
        // waits on that flight instead of paying a duplicate call.
        let mine: Vec<(Vec<String>, CacheKey, Arc<Flight>)> = {
            let mut fl = self.in_flight.lock();
            // Re-check the answer store under the map lock (the same
            // idiom as `fetch_single`): a flight that completed after the
            // caller's miss-scan cached its answers *before* retiring, so
            // a key that is neither in flight nor cached is genuinely
            // ours to fetch — without this, two sessions racing the same
            // batch each pay the full set of model calls.
            let answers = self.answers.lock();
            needed
                .iter()
                .filter_map(|key| {
                    let ck = self.cache_key(question, key);
                    if fl.contains_key(&ck) || answers.contains_key(&ck) {
                        return None;
                    }
                    let f = Arc::new(Flight::default());
                    fl.insert(ck.clone(), f.clone());
                    Some((key.clone(), ck, f))
                })
                .collect()
        };
        if mine.is_empty() {
            return;
        }
        let batch = self.config.batch_size.max(1);
        let keys_only: Vec<Vec<String>> = mine.iter().map(|(k, _, _)| k.clone()).collect();
        let chunks: Vec<Vec<Vec<String>>> =
            keys_only.chunks(batch).map(|c| c.to_vec()).collect();
        let prompts: Vec<String> = chunks
            .iter()
            .map(|keys| self.prompt_for(question, keys.clone()).render())
            .collect();
        let completions =
            parallel::complete_many(self.model.as_ref(), &prompts, self.config.workers);

        {
            let mut answers = self.answers.lock();
            let mut stale = self.stale.lock();
            let mut stats = self.stats.lock();
            for (keys, completion) in chunks.iter().zip(completions) {
                // Failed chunks cache nothing; their rows retry (and
                // degrade if configured) through `fetch_single`.
                let Ok(completion) = completion else { continue };
                let lines = swan_llm::prompt::parse_udf_response(&completion.text);
                // Short responses leave trailing keys unanswered; the
                // caller falls back to single-key calls for those.
                for (key, line) in keys.iter().zip(lines) {
                    let ck = self.cache_key(question, key);
                    let value = infer_value(&line);
                    answers.insert(ck.clone(), value.clone());
                    stale.insert(ck, value);
                    stats.prefetched_keys += 1;
                }
            }
        }
        // Retire the flights, delivering each key's answer (or `None` for
        // keys a failed/short chunk left unanswered — waiters retry).
        let mut fl = self.in_flight.lock();
        let answers = self.answers.lock();
        for (_, ck, flight) in &mine {
            fl.remove(ck);
            flight.resolve(Ok(answers.get(ck).cloned()));
        }
    }
}

/// The `llm_map` scalar function.
struct LlmMapUdf {
    shared: Arc<Shared>,
}

impl ScalarUdf for LlmMapUdf {
    fn name(&self) -> &str {
        "llm_map"
    }

    fn invoke(&self, args: &[Value]) -> Result<Value> {
        let Some((question, key)) = parse_args(args)? else {
            return Ok(Value::Null); // NULL keys have no LLM answer.
        };
        let cache_key = self.shared.cache_key(&question, &key);
        if let Some(v) = self.shared.answers.lock().get(&cache_key) {
            self.shared.exec_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(v.clone());
        }
        self.shared.fetch_single(&question, &key)
    }

    /// Vectorized execution: called by the engine once per operator batch
    /// with the distinct argument tuples of a call site. Uncached keys are
    /// grouped by question, chunked per `UdfConfig::batch_size` and fanned
    /// out through the parallel worker pool; anything a short batch
    /// response leaves unanswered falls back to a single-key call.
    fn invoke_batch(&self, rows: &[Vec<Value>]) -> Result<Vec<Value>> {
        let shared = &self.shared;
        let mut out: Vec<Option<Value>> = vec![None; rows.len()];
        // (row index, question, key) for rows the answer store misses,
        // grouped by question in first-seen order.
        let mut questions: Vec<String> = Vec::new();
        let mut pending: HashMap<String, Vec<(usize, Vec<String>)>> = HashMap::new();
        for (i, args) in rows.iter().enumerate() {
            let Some((question, key)) = parse_args(args)? else {
                out[i] = Some(Value::Null);
                continue;
            };
            if let Some(v) = shared.answers.lock().get(&shared.cache_key(&question, &key)) {
                shared.exec_hits.fetch_add(1, Ordering::Relaxed);
                out[i] = Some(v.clone());
                continue;
            }
            if !pending.contains_key(&question) {
                questions.push(question.clone());
            }
            pending.entry(question).or_default().push((i, key));
        }

        for question in &questions {
            let entries = &pending[question];
            let mut seen = HashSet::new();
            let needed: Vec<Vec<String>> = entries
                .iter()
                .filter(|(_, k)| seen.insert(k.clone()))
                .map(|(_, k)| k.clone())
                .collect();
            shared.fetch_batch(question, &needed);
        }

        for (question, entries) in questions.iter().map(|q| (q, &pending[q])) {
            for (i, key) in entries {
                let hit = shared
                    .answers
                    .lock()
                    .get(&shared.cache_key(question, key))
                    .cloned();
                out[*i] = Some(match hit {
                    Some(v) => v,
                    None => shared.fetch_single(question, key)?,
                });
            }
        }
        Ok(out
            .into_iter()
            .map(|v| v.expect("every batch slot filled"))
            .collect())
    }

    fn is_expensive(&self) -> bool {
        true
    }
}

/// Validate an `llm_map` argument tuple: `Ok(None)` marks a NULL key
/// (whose answer is NULL without any model call).
fn parse_args(args: &[Value]) -> Result<Option<(String, Vec<String>)>> {
    if args.len() < 2 {
        return Err(Error::Udf {
            name: "llm_map".into(),
            message: "usage: llm_map(question, key, ...)".into(),
        });
    }
    let question = args[0]
        .as_str()
        .ok_or_else(|| Error::Udf {
            name: "llm_map".into(),
            message: "first argument must be the question text".into(),
        })?
        .to_string();
    if args[1..].iter().any(Value::is_null) {
        return Ok(None);
    }
    let key: Vec<String> = args[1..].iter().map(Value::render).collect();
    Ok(Some((question, key)))
}

/// Runs the benchmark's UDF-form hybrid queries over one domain.
pub struct UdfRunner {
    db: Database,
    shared: Arc<Shared>,
}

impl UdfRunner {
    pub fn new(domain: &DomainData, model: Arc<dyn LanguageModel>, config: UdfConfig) -> Self {
        Self::build(domain, model, None, config)
    }

    /// Build a runner whose model calls go through a [`ResilientModel`]
    /// (retries, per-call timeouts, circuit breaker). The breaker's state
    /// shows up in [`UdfRunner::stats`].
    pub fn with_resilient(
        domain: &DomainData,
        model: Arc<ResilientModel>,
        config: UdfConfig,
    ) -> Self {
        Self::build(domain, model.clone(), Some(model), config)
    }

    fn build(
        domain: &DomainData,
        model: Arc<dyn LanguageModel>,
        resilient: Option<Arc<ResilientModel>>,
        config: UdfConfig,
    ) -> Self {
        let shared = Arc::new(Shared {
            meta: DomainMeta::build(domain, config.shots.max(5)),
            model,
            resilient,
            config,
            answers: Mutex::with_rank("udf_answers", lockrank::UDF_ANSWERS, HashMap::new()),
            stale: Mutex::with_rank("udf_stale", lockrank::UDF_STALE, HashMap::new()),
            stats: Mutex::with_rank("udf_stats", lockrank::UDF_STATS, UdfStats::default()),
            fallback_calls: AtomicU64::new(0),
            exec_hits: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            in_flight: Mutex::with_rank("udf_flight", lockrank::UDF_FLIGHT, HashMap::new()),
        });
        let mut db = domain.curated.clone();
        db.register_udf(Arc::new(LlmMapUdf { shared: shared.clone() }));
        UdfRunner { db, shared }
    }

    /// Execute one UDF-form hybrid query. Non-SELECT statements (useful
    /// in the interactive shell) execute directly without a pre-pass.
    pub fn run_sql(&mut self, udf_sql: &str) -> Result<QueryResult> {
        if self.shared.config.cache == CacheScope::PerQuestion {
            self.shared.answers.lock().clear();
        }
        let stmt = parser::parse_statement(udf_sql)?;
        let Statement::Select(select) = &stmt else {
            return self.db.execute(udf_sql);
        };
        self.prefetch(select)?;
        self.db.query(udf_sql)
    }

    /// The curated database this runner queries (with `llm_map` registered).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutable access (e.g. to overlay HQDL-materialized tables).
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> UdfStats {
        let mut s = *self.shared.stats.lock();
        s.fallback_calls = self.shared.fallback_calls.load(Ordering::Relaxed);
        s.exec_cache_hits = self.shared.exec_hits.load(Ordering::Relaxed);
        s.degraded = self.shared.degraded.load(Ordering::Relaxed);
        s.breaker = self.shared.resilient.as_ref().map(|r| r.breaker_state());
        s
    }

    /// Number of distinct cached answers.
    pub fn cached_answers(&self) -> usize {
        self.shared.answers.lock().len()
    }

    // ---- pre-pass ----------------------------------------------------------

    fn prefetch(&self, stmt: &SelectStmt) -> Result<()> {
        let SelectBody::Simple(core) = &stmt.body else {
            return Ok(()); // compound UDF queries: rely on fallback calls
        };
        let mut calls: Vec<(String, Vec<Expr>)> = Vec::new();
        let mut collect = |e: &Expr| {
            e.walk(&mut |x| {
                if let Expr::Function { name, args, .. } = x {
                    if name.eq_ignore_ascii_case("llm_map") && args.len() >= 2 {
                        if let Expr::Literal(Value::Text(q)) = &args[0] {
                            let key = (q.to_string(), args[1..].to_vec());
                            if !calls.contains(&key) {
                                calls.push(key);
                            }
                        }
                    }
                }
            });
        };
        for item in &core.projection {
            if let SelectItem::Expr { expr, .. } = item {
                collect(expr);
            }
        }
        // JOIN ON conditions are as batchable as WHERE conjuncts; the FROM
        // tree must be walked too or `llm_map` in an ON clause is
        // invisible to the pre-pass.
        if let Some(from) = &core.from {
            collect_join_on(from, &mut collect);
        }
        if let Some(f) = &core.filter {
            collect(f);
        }
        for g in &core.group_by {
            collect(g);
        }
        if let Some(h) = &core.having {
            collect(h);
        }
        for o in &stmt.order_by {
            collect(&o.expr);
        }

        for (question, key_exprs) in calls {
            self.prefetch_call(core, &question, &key_exprs)?;
        }
        Ok(())
    }

    fn prefetch_call(
        &self,
        core: &swan_sqlengine::ast::SelectCore,
        question: &str,
        key_exprs: &[Expr],
    ) -> Result<()> {
        // The key columns must all be plain column references over one
        // table alias; otherwise fall back to per-row calls.
        let mut qualifier: Option<String> = None;
        for e in key_exprs {
            match e {
                Expr::Column { table: Some(t), .. } => {
                    if let Some(q) = &qualifier {
                        if !q.eq_ignore_ascii_case(t) {
                            return Ok(());
                        }
                    } else {
                        qualifier = Some(t.clone());
                    }
                }
                _ => return Ok(()),
            }
        }
        let Some(qualifier) = qualifier else { return Ok(()) };
        let Some(from) = &core.from else { return Ok(()) };
        let Some((table_name, alias)) = find_table(from, &qualifier) else {
            return Ok(());
        };

        // Pushdown: cheap conjuncts fully resolvable against this table.
        let filter = if self.shared.config.pushdown {
            let table = self.db.catalog().get_required(&table_name)?;
            let schema = RelSchema::qualified(&alias, table.column_names());
            let pushable: Vec<Expr> = core
                .filter
                .iter()
                .flat_map(split_conjuncts)
                .filter(|c| !contains_function(c) && schema.covers(c))
                .collect();
            swan_sqlengine::plan::conjoin(pushable)
        } else {
            None
        };

        // SELECT DISTINCT <keys> FROM <table> AS <alias> [WHERE pushable]
        let key_query = SelectStmt {
            body: SelectBody::Simple(Box::new(swan_sqlengine::ast::SelectCore {
                distinct: true,
                projection: key_exprs
                    .iter()
                    .map(|e| SelectItem::Expr { expr: e.clone(), alias: None })
                    .collect(),
                from: Some(TableRef::Table {
                    name: table_name,
                    alias: Some(alias),
                }),
                filter,
                group_by: vec![],
                having: None,
            })),
            order_by: vec![],
            limit: None,
            offset: None,
        };
        let ctx = ExecCtx::new(self.db.catalog(), self.db.udfs());
        let keys_rel = run_select(&key_query, &ctx, None)?;

        // Split into cached / needed.
        let mut needed: Vec<Vec<String>> = Vec::new();
        {
            let answers = self.shared.answers.lock();
            let mut stats = self.shared.stats.lock();
            for row in &keys_rel.rows {
                if row.iter().any(Value::is_null) {
                    continue;
                }
                let key: Vec<String> = row.iter().map(Value::render).collect();
                if answers.contains_key(&self.shared.cache_key(question, &key)) {
                    stats.cache_hits += 1;
                } else {
                    needed.push(key);
                }
            }
        }
        // Batch and fan out (short responses — batch glitches, §5.4 —
        // leave trailing keys unanswered; execution falls back).
        self.shared.fetch_batch(question, &needed);
        Ok(())
    }
}

/// Walk a FROM tree, feeding every JOIN ON condition to `collect`.
fn collect_join_on(t: &TableRef, collect: &mut impl FnMut(&Expr)) {
    if let TableRef::Join { left, right, on, .. } = t {
        collect_join_on(left, collect);
        collect_join_on(right, collect);
        if let Some(on) = on {
            collect(on);
        }
    }
}

/// Find the `(table_name, alias)` in a FROM tree answering to `qualifier`.
fn find_table(t: &TableRef, qualifier: &str) -> Option<(String, String)> {
    match t {
        TableRef::Table { name, alias } => {
            let a = alias.as_deref().unwrap_or(name);
            if a.eq_ignore_ascii_case(qualifier) {
                Some((name.clone(), a.to_string()))
            } else {
                None
            }
        }
        TableRef::Subquery { .. } => None,
        TableRef::Join { left, right, .. } => {
            find_table(left, qualifier).or_else(|| find_table(right, qualifier))
        }
    }
}

fn contains_function(e: &Expr) -> bool {
    let mut found = false;
    e.walk(&mut |x| {
        if matches!(x, Expr::Function { .. }) {
            found = true;
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use swan_data::{GenConfig, SwanBenchmark};
    use swan_llm::{ModelKind, SimulatedModel};

    fn runner(scale: f64, config: UdfConfig) -> (swan_data::DomainData, UdfRunner) {
        let d = SwanBenchmark::generate_domain(&GenConfig::with_scale(scale), "superhero").unwrap();
        let kb = swan_data::build_knowledge(std::slice::from_ref(&d));
        let model = Arc::new(SimulatedModel::new(ModelKind::Gpt4Turbo, kb));
        let r = UdfRunner::new(&d, model, config);
        (d, r)
    }

    #[test]
    fn runs_a_simple_udf_question() {
        let (d, mut r) = runner(0.05, UdfConfig::default());
        let q = &d.questions[0]; // publisher membership
        let result = r.run_sql(&q.udf_sql).expect("udf query runs");
        assert!(!result.columns.is_empty());
        let stats = r.stats();
        assert!(stats.prefetched_keys > 0, "pre-pass fetched keys in batch");
    }

    #[test]
    fn batching_reduces_model_calls() {
        let d = SwanBenchmark::generate_domain(&GenConfig::with_scale(0.05), "superhero").unwrap();
        let kb = swan_data::build_knowledge(std::slice::from_ref(&d));
        let heroes = d.curated.catalog().get("superhero").unwrap().len() as u64;

        let model = Arc::new(SimulatedModel::new(ModelKind::Gpt4Turbo, kb.clone()));
        let mut r = UdfRunner::new(
            &d,
            model.clone(),
            UdfConfig { batch_size: 5, ..Default::default() },
        );
        r.run_sql(&d.questions[0].udf_sql).unwrap();
        let batched_calls = model.usage().calls;
        assert!(batched_calls >= heroes / 5, "at least ceil(n/5) calls");
        assert!(
            batched_calls < heroes,
            "batching must reduce calls: {batched_calls} vs {heroes} heroes"
        );
    }

    #[test]
    fn exact_cache_reuses_identical_prompts_only() {
        let (d, mut r) = runner(0.05, UdfConfig::default());
        // Re-running the same question hits the cache for every hero...
        r.run_sql(&d.questions[0].udf_sql).unwrap();
        let after_first = r.stats();
        assert_eq!(after_first.cache_hits, 0);
        r.run_sql(&d.questions[0].udf_sql).unwrap();
        let after_rerun = r.stats();
        assert!(after_rerun.cache_hits > 0, "identical prompt text reuses");
        // ...but a different question about the same attribute (different
        // "[qNN]" tag, i.e. different prompt text) misses entirely —
        // BlendSQL's weakness from paper §5.5.
        let hits_before_q2 = after_rerun.cache_hits;
        r.run_sql(&d.questions[1].udf_sql).unwrap();
        assert_eq!(
            r.stats().cache_hits,
            hits_before_q2,
            "per-question prompts cannot share cache entries"
        );
    }

    #[test]
    fn per_question_scope_never_reuses() {
        let (d, mut r) = runner(
            0.05,
            UdfConfig { cache: CacheScope::PerQuestion, ..Default::default() },
        );
        r.run_sql(&d.questions[0].udf_sql).unwrap();
        r.run_sql(&d.questions[1].udf_sql).unwrap();
        assert_eq!(r.stats().cache_hits, 0);
    }

    #[test]
    fn pushdown_restricts_point_lookups() {
        // Formula 1 q01 is a point lookup (WHERE forename/surname =
        // constants): with pushdown only 1 key is fetched.
        let d = SwanBenchmark::generate_domain(&GenConfig::with_scale(0.05), "formula_1").unwrap();
        let kb = swan_data::build_knowledge(std::slice::from_ref(&d));

        let model = Arc::new(SimulatedModel::new(ModelKind::Gpt4Turbo, kb.clone()));
        let mut with = UdfRunner::new(&d, model, UdfConfig::default());
        with.run_sql(&d.questions[0].udf_sql).unwrap();
        assert_eq!(with.stats().prefetched_keys, 1, "pushdown narrows to one driver");

        let model = Arc::new(SimulatedModel::new(ModelKind::Gpt4Turbo, kb));
        let mut without =
            UdfRunner::new(&d, model, UdfConfig { pushdown: false, ..Default::default() });
        without.run_sql(&d.questions[0].udf_sql).unwrap();
        let drivers = d.curated.catalog().get("drivers").unwrap().len() as u64;
        assert_eq!(
            without.stats().prefetched_keys,
            drivers,
            "without pushdown every driver is generated (§5.5)"
        );
    }

    #[test]
    fn semantic_scope_shares_paraphrases() {
        // Two football questions use different height phrasings; the
        // semantic scope resolves both to `height`.
        let d =
            SwanBenchmark::generate_domain(&GenConfig::with_scale(0.02), "european_football").unwrap();
        let kb = swan_data::build_knowledge(std::slice::from_ref(&d));
        let model = Arc::new(SimulatedModel::new(ModelKind::Gpt4Turbo, kb));
        let mut r = UdfRunner::new(
            &d,
            model,
            UdfConfig { cache: CacheScope::Semantic, ..Default::default() },
        );
        let players = d.curated.catalog().get("player").unwrap().len() as u64;
        // q01 asks MAX height with one phrasing.
        r.run_sql(&d.questions[0].udf_sql).unwrap();
        assert_eq!(r.stats().prefetched_keys, players);
        // A paraphrased sweep over the same attribute: all hits.
        let paraphrase = "SELECT T1.player_name FROM player T1 \
             WHERE llm_map('How tall is the player in centimeters?', T1.player_name) > 180";
        r.run_sql(paraphrase).unwrap();
        assert_eq!(r.stats().cache_hits, players, "paraphrase fully reused");
    }

    #[test]
    fn unprefetchable_key_is_batched_not_single_fetched() {
        let (_, mut r) = runner(0.05, UdfConfig::default());
        // llm_map over a literal key: the pre-pass cannot see a table, but
        // the engine's vectorized execution still answers it through one
        // batched call — no per-row fallback.
        let out = r
            .run_sql(
                "SELECT llm_map('Which publisher published the superhero?', 'Nobody', 'No One')",
            )
            .unwrap();
        assert_eq!(out.rows.len(), 1);
        let stats = r.stats();
        assert_eq!(stats.fallback_calls, 0, "batched execution, not fetch_single");
        assert_eq!(stats.prefetched_keys, 1, "the one key came through a batch");
    }

    #[test]
    fn fallback_single_call_when_engine_batching_disabled() {
        let (_, mut r) = runner(0.05, UdfConfig::default());
        r.database_mut().set_optimizer(swan_sqlengine::OptimizerConfig {
            batch_expensive_udfs: false,
            ..Default::default()
        });
        // With the engine rule ablated, the old per-row fallback remains.
        let out = r
            .run_sql(
                "SELECT llm_map('Which publisher published the superhero?', 'Nobody', 'No One')",
            )
            .unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(r.stats().fallback_calls, 1);
    }

    /// Regression: `llm_map` inside a JOIN ON condition must be visible to
    /// the AST pre-pass (the FROM tree was never walked), so every hero is
    /// prefetched in batch and execution needs zero fallback calls even
    /// with the engine's own batching ablated.
    #[test]
    fn prepass_sees_llm_map_in_join_on() {
        let (d, mut r) = runner(0.05, UdfConfig::default());
        r.database_mut().set_optimizer(swan_sqlengine::OptimizerConfig {
            batch_expensive_udfs: false,
            ..Default::default()
        });
        let heroes = d.curated.catalog().get("superhero").unwrap().len() as u64;
        r.run_sql(
            "SELECT COUNT(*) FROM superhero T1 JOIN alignment a \
             ON llm_map('What is the moral alignment of the superhero?', \
                        T1.superhero_name, T1.full_name) = a.alignment",
        )
        .unwrap();
        let stats = r.stats();
        assert_eq!(stats.prefetched_keys, heroes, "pre-pass saw the JOIN ON call");
        assert_eq!(stats.fallback_calls, 0, "no per-row calls left to make");
    }

    /// Acceptance: a query the pre-pass cannot handle (`llm_map` in a JOIN
    /// ON over a subquery source) still issues ceil(distinct_keys /
    /// batch_size) model calls — the engine's vectorized execution batches
    /// what the pre-pass bails on.
    #[test]
    fn join_on_over_subquery_source_is_batched() {
        let d = SwanBenchmark::generate_domain(&GenConfig::with_scale(0.05), "superhero").unwrap();
        let kb = swan_data::build_knowledge(std::slice::from_ref(&d));
        let model = Arc::new(SimulatedModel::new(ModelKind::Gpt4Turbo, kb));
        let mut r = UdfRunner::new(&d, model.clone(), UdfConfig::default());
        let heroes = d.curated.catalog().get("superhero").unwrap().len() as u64;

        r.run_sql(
            "SELECT COUNT(*) FROM (SELECT superhero_name, full_name FROM superhero) h \
             JOIN alignment a \
             ON llm_map('What is the moral alignment of the superhero?', \
                        h.superhero_name, h.full_name) = a.alignment",
        )
        .unwrap();
        let calls = model.usage().calls;
        assert_eq!(
            calls,
            heroes.div_ceil(5),
            "one batched call per 5 distinct keys, not one per row"
        );
        assert_eq!(r.stats().fallback_calls, 0);
    }

    /// Execution-time answer-store hits are counted (they used to be
    /// invisible in `UdfStats`).
    #[test]
    fn execution_cache_hits_are_counted() {
        let (d, mut r) = runner(0.05, UdfConfig::default());
        r.run_sql(&d.questions[0].udf_sql).unwrap();
        let stats = r.stats();
        assert!(
            stats.exec_cache_hits > 0,
            "execution reads the prefetched answers through the store"
        );
        assert_eq!(stats.cache_hits, 0, "prefetch-time hits stay separate");
    }

    /// Concurrent rows asking for the same uncached key must coalesce into
    /// one model call (single-flight), not one call each.
    #[test]
    fn concurrent_same_key_fallbacks_single_flight() {
        use swan_llm::UsageMeter;

        /// Adds latency so concurrent fallbacks genuinely overlap.
        struct SlowModel {
            inner: Arc<SimulatedModel>,
        }
        impl swan_llm::LanguageModel for SlowModel {
            fn name(&self) -> &str {
                "slow-sim"
            }
            fn complete(&self, prompt: &str) -> swan_llm::LlmResult<swan_llm::Completion> {
                std::thread::sleep(std::time::Duration::from_millis(30));
                self.inner.complete(prompt)
            }
            fn usage_meter(&self) -> &UsageMeter {
                self.inner.usage_meter()
            }
        }

        let d = SwanBenchmark::generate_domain(&GenConfig::with_scale(0.05), "superhero").unwrap();
        let kb = swan_data::build_knowledge(std::slice::from_ref(&d));
        let inner = Arc::new(SimulatedModel::new(ModelKind::Gpt4Turbo, kb));
        let mut r = UdfRunner::new(&d, Arc::new(SlowModel { inner: inner.clone() }), UdfConfig::default());
        // Per-row path (engine batching off) so every row goes through
        // `fetch_single`.
        r.database_mut().set_optimizer(swan_sqlengine::OptimizerConfig {
            batch_expensive_udfs: false,
            ..Default::default()
        });
        let db = r.database();
        let sql = "SELECT llm_map('Which publisher published the superhero?', 'Solo', 'Key')";
        let results: Vec<String> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| db.query(sql).unwrap().rows[0][0].render()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.windows(2).all(|w| w[0] == w[1]), "one answer for all rows");
        assert_eq!(inner.usage().calls, 1, "concurrent identical keys coalesced");
        assert_eq!(r.stats().fallback_calls, 1);
        assert_eq!(r.stats().exec_cache_hits, 3, "the three waiters hit the store");
    }

    #[test]
    fn null_keys_yield_null() {
        let (_, mut r) = runner(0.05, UdfConfig::default());
        let out = r
            .run_sql("SELECT llm_map('Which publisher published the superhero?', NULL, 'x')")
            .unwrap();
        assert!(out.rows[0][0].is_null());
        assert_eq!(r.stats().fallback_calls, 0, "no model call for NULL keys");
    }
}
