//! HQDL — Hybrid Query over Database and LLM (paper §4.1).
//!
//! The schema-expansion solution: for every expansion the benchmark
//! defines, HQDL prompts the language model once per entity with the
//! §4.1.1 row-completion prompt (zero- or few-shot), extracts the
//! returned row CSV-style, and materializes the rows into `llm_*` tables
//! inside the curated database. One-to-many values arrive condensed
//! ("Agility, Super Strength, Super Speed"). After materialization the
//! hybrid SQL of each question is an ordinary query.

use std::collections::HashMap;

use swan_data::{DomainData, Expansion};
use swan_llm::{
    parallel, LanguageModel, KnownValue, RowCompletionPrompt, RowExample,
};
use swan_sqlengine::{Column, Database, Table, Value};

/// HQDL configuration.
#[derive(Debug, Clone, Copy)]
pub struct HqdlConfig {
    /// Few-shot demonstration count (0, 1, 3, 5 in the paper).
    pub shots: usize,
    /// Worker threads for parallel LLM calls (§6 future work; 1 =
    /// sequential, the paper's setting).
    pub workers: usize,
}

impl Default for HqdlConfig {
    fn default() -> Self {
        HqdlConfig { shots: 0, workers: 1 }
    }
}

/// Outcome of materializing one domain.
#[derive(Debug)]
pub struct HqdlRun {
    /// Curated database plus the materialized `llm_*` tables.
    pub database: Database,
    /// Rows whose response could not be aligned to the schema (format
    /// errors, §5.3) — they are dropped by extraction.
    pub malformed_rows: usize,
    /// Total cells generated (excluding keys).
    pub generated_cells: usize,
}

/// Materialize every expansion of `domain` using `model`.
///
/// This is the expensive step whose token usage Table 5 reports; read the
/// model's [`UsageMeter`](swan_llm::UsageMeter) before/after to account
/// for it.
pub fn materialize(
    domain: &DomainData,
    model: &dyn LanguageModel,
    config: &HqdlConfig,
) -> HqdlRun {
    let mut database = domain.curated.clone();
    let mut malformed = 0usize;
    let mut cells = 0usize;

    let truth = TruthIndex::build(domain);

    for expansion in &domain.curation.expansions {
        let keys = expansion_key_rows(&domain.curated, expansion);
        let examples = truth.examples(expansion, config.shots);

        // Render one prompt per entity.
        let prompts: Vec<String> = keys
            .iter()
            .map(|(rendered, _)| {
                RowCompletionPrompt {
                    db: domain.name.clone(),
                    columns: expansion.all_columns(),
                    key_len: expansion.key_columns.len(),
                    value_lists: expansion
                        .generated
                        .iter()
                        .filter_map(|g| {
                            g.value_list.as_ref().map(|vs| (g.name.clone(), vs.clone()))
                        })
                        .collect(),
                    examples: examples.clone(),
                    target_key: rendered.clone(),
                }
                .render()
            })
            .collect();

        let completions = parallel::complete_many(model, &prompts, config.workers);

        // Data extraction (§4.1): parse each response as a quoted row and
        // keep only rows with the right arity and matching keys.
        let width = expansion.all_columns().len();
        let mut table = Table::new(
            expansion.table.clone(),
            expansion.all_columns().into_iter().map(Column::new).collect(),
            &[],
        )
        .expect("expansion schema is valid");

        for ((_, stored), completion) in keys.iter().zip(completions) {
            let Ok(completion) = completion else {
                malformed += 1;
                continue;
            };
            let fields =
                swan_llm::prompt::row_values(&swan_llm::prompt::parse_row(&completion.text));
            if fields.len() != width {
                malformed += 1;
                continue;
            }
            let mut row: Vec<Value> = Vec::with_capacity(width);
            // Trust the *database's* key values over the model's echo so
            // joins stay sound even when the model mangles the key — and
            // keep their stored storage class: re-inferring the type from
            // the rendered text would retype a text key that happens to
            // parse as a number ("007" → Integer(7)) and break the join
            // against its Text base column.
            for k in stored {
                row.push(k.clone());
            }
            for field in &fields[expansion.key_columns.len()..] {
                row.push(infer_value(field));
                cells += 1;
            }
            table.insert_row(row).expect("expansion rows are unconstrained");
        }
        database.catalog_mut().put_table(table);
    }

    HqdlRun { database, malformed_rows: malformed, generated_cells: cells }
}

/// Distinct key tuples of an expansion's base table, in storage order.
pub fn expansion_keys(curated: &Database, expansion: &Expansion) -> Vec<Vec<String>> {
    expansion_key_rows(curated, expansion)
        .into_iter()
        .map(|(rendered, _)| rendered)
        .collect()
}

/// Distinct key tuples of an expansion's base table, in storage order,
/// as `(rendered, stored)` pairs: the rendered form feeds prompts, the
/// stored values keep the base column's storage class when the key is
/// re-inserted into the materialized table (so text keys that parse as
/// numbers still join).
pub fn expansion_key_rows(
    curated: &Database,
    expansion: &Expansion,
) -> Vec<(Vec<String>, Vec<Value>)> {
    let table = curated
        .catalog()
        .get(&expansion.base_table)
        .expect("expansion base table exists in curated db");
    let idx: Vec<usize> = expansion
        .key_columns
        .iter()
        .map(|c| table.column_index(c).expect("key column exists"))
        .collect();
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for row in &table.rows {
        let rendered: Vec<String> = idx.iter().map(|&i| row[i].render()).collect();
        if rendered.iter().any(String::is_empty) {
            continue; // NULL keys cannot anchor a PK-FK relationship (§3.4).
        }
        if seen.insert(rendered.clone()) {
            let stored: Vec<Value> = idx.iter().map(|&i| row[i].clone()).collect();
            out.push((rendered, stored));
        }
    }
    out
}

/// Parse a generated text cell into a typed value, so materialized
/// numerics (heights, years) join and compare against integer columns.
pub fn infer_value(s: &str) -> Value {
    let t = s.trim();
    if t.is_empty() {
        return Value::Null;
    }
    if let Ok(i) = t.parse::<i64>() {
        return Value::Integer(i);
    }
    if let Ok(f) = t.parse::<f64>() {
        return Value::Real(f);
    }
    Value::text(t)
}

/// Ground-truth index for constructing few-shot example rows (§5.2:
/// "static examples randomly selected from the original database").
struct TruthIndex {
    map: HashMap<(Vec<String>, String), KnownValue>,
}

impl TruthIndex {
    fn build(domain: &DomainData) -> Self {
        let mut map = HashMap::with_capacity(domain.facts.len());
        for f in &domain.facts {
            map.insert((f.key.clone(), f.attribute.clone()), f.value.clone());
        }
        TruthIndex { map }
    }

    /// `shots` fully-truthful example rows taken from the tail of the key
    /// space (deterministic "random" sample).
    fn examples(&self, expansion: &Expansion, shots: usize) -> Vec<RowExample> {
        if shots == 0 {
            return Vec::new();
        }
        // Collect the distinct keys present in the truth map for this
        // expansion's attributes.
        let first_attr = match expansion.generated.first() {
            Some(g) => &g.name,
            None => return Vec::new(),
        };
        let mut keys: Vec<&Vec<String>> = self
            .map
            .keys()
            .filter(|(_, a)| a == first_attr)
            .map(|(k, _)| k)
            .filter(|k| k.len() == expansion.key_columns.len())
            .collect();
        keys.sort();
        keys.reverse();
        keys.truncate(shots);

        keys.into_iter()
            .map(|key| {
                let mut answer = key.clone();
                for g in &expansion.generated {
                    let cell = self
                        .map
                        .get(&(key.clone(), g.name.clone()))
                        .map(|v| v.condensed())
                        .unwrap_or_default();
                    answer.push(cell);
                }
                RowExample { key: key.clone(), answer }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swan_data::{GenConfig, SwanBenchmark};
    use swan_llm::{ModelKind, SimulatedModel};

    fn domain() -> DomainData {
        SwanBenchmark::generate_domain(&GenConfig::with_scale(0.05), "superhero").unwrap()
    }

    #[test]
    fn infer_value_types() {
        assert_eq!(infer_value("42"), Value::Integer(42));
        assert_eq!(infer_value("3.5"), Value::Real(3.5));
        assert_eq!(infer_value(" DC Comics "), Value::text("DC Comics"));
        assert!(infer_value("").is_null());
        assert!(infer_value("  ").is_null());
    }

    #[test]
    fn expansion_keys_distinct_and_ordered() {
        let d = domain();
        let keys = expansion_keys(&d.curated, &d.curation.expansions[0]);
        let heroes = d.curated.catalog().get("superhero").unwrap().len();
        assert_eq!(keys.len(), heroes, "hero keys are unique");
        assert!(keys.iter().all(|k| k.len() == 2));
    }

    #[test]
    fn materialize_creates_llm_table() {
        let d = domain();
        let kb = swan_data::build_knowledge(std::slice::from_ref(&d));
        let model = SimulatedModel::new(ModelKind::Gpt4Turbo, kb);
        let run = materialize(&d, &model, &HqdlConfig { shots: 5, workers: 1 });
        let t = run.database.catalog().get("llm_superhero").expect("materialized");
        assert_eq!(t.width(), 10);
        let heroes = d.curated.catalog().get("superhero").unwrap().len();
        assert!(t.len() + run.malformed_rows >= heroes);
        assert!(run.generated_cells > 0);
        // Usage was recorded.
        assert!(model.usage().input_tokens > 0);
        assert_eq!(model.usage().calls as usize, heroes);
    }

    #[test]
    fn few_shot_examples_are_truthful_rows() {
        let d = domain();
        let truth = TruthIndex::build(&d);
        let ex = truth.examples(&d.curation.expansions[0], 3);
        assert_eq!(ex.len(), 3);
        for e in &ex {
            assert_eq!(e.answer.len(), 10);
            assert_eq!(&e.answer[..2], &e.key[..]);
            // The publisher field is a real publisher.
            assert!(swan_data::superhero::PUBLISHERS.contains(&e.answer[5].as_str()));
        }
    }

    /// Regression: a text key that parses as a number ("007") must keep
    /// its Text storage class in the materialized table — re-inferring the
    /// type from the rendered key retyped it to Integer(7) and the llm_*
    /// row no longer joined against its base column.
    #[test]
    fn materialize_preserves_text_key_storage_class() {
        use swan_data::{CurationSpec, Expansion, GenColumn};
        use swan_llm::{Completion, LanguageModel, LlmResult, UsageMeter};
        use swan_sqlengine::Database;

        /// Echoes a well-formed completion row for every prompt.
        struct RowEcho(UsageMeter);
        impl LanguageModel for RowEcho {
            fn name(&self) -> &str {
                "row-echo"
            }
            fn complete(&self, _prompt: &str) -> LlmResult<Completion> {
                Ok(Completion { text: "'007', 'alias-x'".into(), tokens: Default::default() })
            }
            fn usage_meter(&self) -> &UsageMeter {
                &self.0
            }
        }

        let mut curated = Database::new();
        curated.execute("CREATE TABLE agent (code TEXT)").unwrap();
        curated.execute("INSERT INTO agent VALUES ('007'), ('8')").unwrap();
        let domain = DomainData {
            name: "agents".into(),
            display_name: "Agents".into(),
            original: curated.clone(),
            curated,
            curation: CurationSpec {
                dropped_columns: vec![],
                dropped_tables: vec![],
                expansions: vec![Expansion {
                    table: "llm_agent".into(),
                    base_table: "agent".into(),
                    key_columns: vec!["code".into()],
                    generated: vec![GenColumn::free_form("alias")],
                }],
            },
            facts: vec![],
            popularity: vec![],
            phrases: vec![],
            questions: vec![],
        };

        let run = materialize(&domain, &RowEcho(UsageMeter::new()), &HqdlConfig::default());
        let t = run.database.catalog().get("llm_agent").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows[0][0], Value::text("007"), "key keeps Text storage class");
        assert_eq!(t.rows[1][0], Value::text("8"));
        let joined = run
            .database
            .query("SELECT COUNT(*) FROM agent a JOIN llm_agent l ON a.code = l.code")
            .unwrap();
        assert_eq!(joined.rows[0][0], Value::Integer(2), "both keys join their base rows");
    }

    #[test]
    fn parallel_materialization_same_rows_as_sequential() {
        let d = SwanBenchmark::generate_domain(&GenConfig::with_scale(0.02), "superhero").unwrap();
        let kb = swan_data::build_knowledge(std::slice::from_ref(&d));
        let m1 = SimulatedModel::new(ModelKind::Gpt35Turbo, kb.clone());
        let m2 = SimulatedModel::new(ModelKind::Gpt35Turbo, kb);
        let seq = materialize(&d, &m1, &HqdlConfig { shots: 1, workers: 1 });
        let par = materialize(&d, &m2, &HqdlConfig { shots: 1, workers: 4 });
        let a = seq.database.catalog().get("llm_superhero").unwrap();
        let b = par.database.catalog().get("llm_superhero").unwrap();
        assert_eq!(a.rows, b.rows, "parallelism must not change results");
    }
}
