//! Experiment orchestration: everything needed to regenerate the paper's
//! evaluation tables (the bench targets in `swan-bench` are thin wrappers
//! around these functions).

use std::collections::HashMap;
use std::sync::Arc;

use swan_data::{build_knowledge, DomainData, SwanBenchmark};
use swan_llm::{LanguageModel, ModelKind, SimulatedModel, StaticKnowledge, UsageReport};
use swan_sqlengine::QueryResult;

use crate::hqdl::{materialize, HqdlConfig};
use crate::metrics::{
    execution_match, factuality, sql_is_ordered, ExTally, FactualityReport,
};
use crate::udf::{UdfConfig, UdfRunner, UdfStats};

/// Ground-truth answers: gold SQL executed on the original databases.
/// Computed once and shared across every (model, shots) condition.
pub struct GoldSet {
    answers: HashMap<String, QueryResult>,
}

impl GoldSet {
    pub fn compute(benchmark: &SwanBenchmark) -> Self {
        let mut answers = HashMap::new();
        for d in &benchmark.domains {
            for q in &d.questions {
                let r = d
                    .original
                    .query(&q.gold_sql)
                    .unwrap_or_else(|e| panic!("gold query {} failed: {e}", q.id));
                answers.insert(q.id.clone(), r);
            }
        }
        GoldSet { answers }
    }

    pub fn get(&self, question_id: &str) -> &QueryResult {
        &self.answers[question_id]
    }
}

/// One HQDL condition (model × shots) evaluated over all domains:
/// the data behind one row of Table 2 and Table 4.
#[derive(Debug)]
pub struct HqdlEvaluation {
    pub model: ModelKind,
    pub shots: usize,
    /// (db display name, EX tally), in benchmark order.
    pub per_db: Vec<(String, ExTally)>,
    pub overall: ExTally,
    /// (db display name, factuality), in benchmark order.
    pub factuality: Vec<(String, FactualityReport)>,
    /// LLM usage for the full materialization (Table 5).
    pub usage: UsageReport,
}

impl HqdlEvaluation {
    /// Mean of the per-database average F1s (Table 4's "Average").
    pub fn average_f1(&self) -> f64 {
        if self.factuality.is_empty() {
            return 0.0;
        }
        self.factuality.iter().map(|(_, f)| f.average_f1()).sum::<f64>()
            / self.factuality.len() as f64
    }
}

/// Evaluate HQDL at one (model, shots) condition.
pub fn evaluate_hqdl(
    benchmark: &SwanBenchmark,
    kb: Arc<StaticKnowledge>,
    gold: &GoldSet,
    model_kind: ModelKind,
    shots: usize,
    workers: usize,
) -> HqdlEvaluation {
    let model = SimulatedModel::new(model_kind, kb);
    let config = HqdlConfig { shots, workers };

    let mut per_db = Vec::new();
    let mut fact = Vec::new();
    let mut overall = ExTally::default();

    for domain in &benchmark.domains {
        let run = materialize(domain, &model, &config);
        let mut tally = ExTally::default();
        for q in &domain.questions {
            let ok = match run.database.query(&q.hybrid_sql) {
                Ok(result) => {
                    execution_match(gold.get(&q.id), &result, sql_is_ordered(&q.gold_sql))
                }
                Err(_) => false,
            };
            tally.record(ok);
            overall.record(ok);
        }
        per_db.push((domain.display_name.clone(), tally));
        fact.push((domain.display_name.clone(), factuality(domain, &run.database)));
    }

    HqdlEvaluation {
        model: model_kind,
        shots,
        per_db,
        overall,
        factuality: fact,
        usage: model.usage(),
    }
}

/// One UDF condition evaluated over all domains (Table 3 rows).
#[derive(Debug)]
pub struct UdfEvaluation {
    pub model: ModelKind,
    pub config: UdfConfig,
    pub per_db: Vec<(String, ExTally)>,
    pub overall: ExTally,
    pub usage: UsageReport,
    pub stats: UdfStats,
}

/// Evaluate the UDF solution at one condition.
pub fn evaluate_udf(
    benchmark: &SwanBenchmark,
    kb: Arc<StaticKnowledge>,
    gold: &GoldSet,
    model_kind: ModelKind,
    config: UdfConfig,
) -> UdfEvaluation {
    let model = Arc::new(SimulatedModel::new(model_kind, kb));

    let mut per_db = Vec::new();
    let mut overall = ExTally::default();
    let mut stats = UdfStats::default();

    for domain in &benchmark.domains {
        // One runner per domain: the cache persists across the domain's
        // 30 questions (BlendSQL behaviour).
        let mut runner = UdfRunner::new(domain, model.clone(), config);
        let mut tally = ExTally::default();
        for q in &domain.questions {
            let ok = match runner.run_sql(&q.udf_sql) {
                Ok(result) => {
                    execution_match(gold.get(&q.id), &result, sql_is_ordered(&q.gold_sql))
                }
                Err(_) => false,
            };
            tally.record(ok);
            overall.record(ok);
        }
        let s = runner.stats();
        stats.prefetched_keys += s.prefetched_keys;
        stats.cache_hits += s.cache_hits;
        stats.fallback_calls += s.fallback_calls;
        per_db.push((domain.display_name.clone(), tally));
    }

    UdfEvaluation {
        model: model_kind,
        config,
        per_db,
        overall,
        usage: model.usage(),
        stats,
    }
}

/// Shared setup for the bench targets: benchmark + knowledge + gold.
pub struct Harness {
    pub benchmark: SwanBenchmark,
    pub kb: Arc<StaticKnowledge>,
    pub gold: GoldSet,
}

impl Harness {
    /// Build at a given scale. Scale 1.0 reproduces Table 1; benches
    /// default to a smaller scale for wall-clock sanity (the shapes are
    /// scale-invariant; see EXPERIMENTS.md).
    pub fn new(scale: f64) -> Self {
        let benchmark = SwanBenchmark::generate(&swan_data::GenConfig::with_scale(scale));
        let kb = build_knowledge(&benchmark.domains);
        let gold = GoldSet::compute(&benchmark);
        Harness { benchmark, kb, gold }
    }

    /// Scale from the `SWAN_SCALE` environment variable (default 0.05).
    pub fn from_env() -> Self {
        let scale = std::env::var("SWAN_SCALE")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(0.05);
        Self::new(scale)
    }

    pub fn domain(&self, name: &str) -> &DomainData {
        self.benchmark.domain(name).expect("known domain")
    }
}

/// Format a ratio as a percentage with one decimal, e.g. `40.0%`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Render an aligned text table (bench output).
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let emit = |out: &mut String, cells: Vec<String>| {
        let line: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths.get(i).copied().unwrap_or(0)))
            .collect();
        out.push_str(line.join("  ").trim_end());
        out.push('\n');
    };
    emit(&mut out, headers.iter().map(|h| h.to_string()).collect());
    emit(&mut out, widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        emit(&mut out, row.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harness() -> Harness {
        Harness::new(0.02)
    }

    #[test]
    fn gold_set_covers_all_questions() {
        let h = harness();
        for d in &h.benchmark.domains {
            for q in &d.questions {
                let _ = h.gold.get(&q.id); // would panic if missing
            }
        }
    }

    #[test]
    fn hqdl_evaluation_end_to_end() {
        let h = harness();
        let e = evaluate_hqdl(&h.benchmark, h.kb.clone(), &h.gold, ModelKind::Gpt4Turbo, 5, 2);
        assert_eq!(e.overall.total, 120);
        assert_eq!(e.per_db.len(), 4);
        assert!(e.overall.accuracy() > 0.05, "some questions must pass");
        assert!(e.average_f1() > 0.2, "5-shot GPT-4 F1 is substantial");
        assert!(e.usage.input_tokens > 0);
    }

    #[test]
    fn udf_evaluation_end_to_end() {
        let h = harness();
        let e = evaluate_udf(
            &h.benchmark,
            h.kb.clone(),
            &h.gold,
            ModelKind::Gpt35Turbo,
            UdfConfig::default(),
        );
        assert_eq!(e.overall.total, 120);
        assert!(e.usage.calls > 0);
        assert!(e.stats.prefetched_keys > 0);
    }

    #[test]
    fn render_table_alignment() {
        let s = render_table(
            &["Model", "EX"],
            &[
                vec!["GPT-3.5 Turbo".into(), "24.2%".into()],
                vec!["GPT-4 Turbo".into(), "31.6%".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Model"));
        assert!(lines[2].contains("24.2%"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.4), "40.0%");
        assert_eq!(pct(0.4823), "48.2%");
    }
}
