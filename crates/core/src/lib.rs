//! # swan-core
//!
//! The paper's two hybrid-querying solutions and the evaluation harness:
//!
//! * [`hqdl`] — schema expansion (§4.1): LLM-materialized `llm_*` tables,
//!   then plain SQL;
//! * [`udf`] — hybrid-query UDFs (§4.2, BlendSQL-style): `llm_map` calls
//!   inline in SQL with batched pre-fetch, predicate pushdown, and a
//!   configurable caching policy (§4.3/§5.5);
//! * [`metrics`] — execution accuracy and data-factuality F1 (§5.1);
//! * [`experiment`] — orchestration that regenerates every table of the
//!   paper's evaluation (Tables 1–5) plus the ablations in DESIGN.md.

pub mod experiment;
pub mod hqdl;
pub mod metrics;
pub mod udf;

pub use hqdl::{materialize, HqdlConfig, HqdlRun};
pub use metrics::{execution_match, factuality, ExTally, FactualityReport};
pub use udf::{CacheScope, OnModelFailure, UdfConfig, UdfRunner, UdfStats};
