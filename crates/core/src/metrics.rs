//! Evaluation metrics (paper §5.1): execution accuracy (EX), data
//! factuality (cell-level F1), and token accounting lives in
//! [`swan_llm::usage`].

use std::collections::HashMap;

use swan_data::DomainData;
use swan_llm::KnownValue;
use swan_sqlengine::{Database, QueryResult, Value};

/// Compare two result cells. Numerics compare with a small relative
/// tolerance (AVG on both sides may differ in float representation);
/// everything else compares by rendered text.
pub fn cell_eq(a: &Value, b: &Value) -> bool {
    if a.is_null() || b.is_null() {
        return a.is_null() && b.is_null();
    }
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => {
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= 1e-9 * scale
        }
        _ => a.render() == b.render(),
    }
}

fn row_eq(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| cell_eq(x, y))
}

/// Execution accuracy for one question: do the hybrid query's results
/// match the gold results? Ordered comparison when the gold SQL carries
/// an ORDER BY; multiset comparison otherwise (§5.1).
pub fn execution_match(gold: &QueryResult, hybrid: &QueryResult, ordered: bool) -> bool {
    if gold.rows.len() != hybrid.rows.len() {
        return false;
    }
    if ordered {
        return gold.rows.iter().zip(&hybrid.rows).all(|(a, b)| row_eq(a, b));
    }
    // Multiset comparison via canonical sorted rendering.
    let canon = |r: &QueryResult| -> Vec<Vec<String>> {
        let mut rows: Vec<Vec<String>> = r
            .rows
            .iter()
            .map(|row| row.iter().map(canonical_cell).collect())
            .collect();
        rows.sort();
        rows
    };
    canon(gold) == canon(hybrid)
}

/// Canonical text for multiset comparison: numerics normalize through
/// f64 formatting so Integer 3 and Real 3.0 agree.
fn canonical_cell(v: &Value) -> String {
    if v.is_null() {
        return "\u{0}NULL".into();
    }
    match v.as_f64() {
        Some(x) if x.is_finite() => format!("{:.9e}", x),
        _ => v.render(),
    }
}

/// Does a SQL string contain an ORDER BY clause? (Decides ordered vs
/// multiset comparison.)
pub fn sql_is_ordered(sql: &str) -> bool {
    sql.to_ascii_uppercase().contains("ORDER BY")
}

/// Per-database execution-accuracy tally.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExTally {
    pub correct: usize,
    pub total: usize,
}

impl ExTally {
    pub fn record(&mut self, ok: bool) {
        self.correct += ok as usize;
        self.total += 1;
    }

    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }
}

/// Cell-level data-factuality report for one domain (Table 4).
#[derive(Debug, Clone, Copy, Default)]
pub struct FactualityReport {
    /// Sum of per-cell F1 scores.
    pub f1_sum: f64,
    /// Number of cells scored.
    pub cells: usize,
}

impl FactualityReport {
    pub fn average_f1(&self) -> f64 {
        if self.cells == 0 {
            0.0
        } else {
            self.f1_sum / self.cells as f64
        }
    }

    pub fn merge(&mut self, other: &FactualityReport) {
        self.f1_sum += other.f1_sum;
        self.cells += other.cells;
    }
}

/// Score the factuality of HQDL-materialized tables against ground truth
/// (§5.1): exact string match per cell; one-to-many cells score the F1 of
/// the generated set against the true set.
pub fn factuality(domain: &DomainData, materialized: &Database) -> FactualityReport {
    // Index ground truth.
    let mut truth: HashMap<(&[String], &str), &KnownValue> =
        HashMap::with_capacity(domain.facts.len());
    for f in &domain.facts {
        truth.insert((f.key.as_slice(), f.attribute.as_str()), &f.value);
    }

    let mut report = FactualityReport::default();
    for expansion in &domain.curation.expansions {
        let Some(table) = materialized.catalog().get(&expansion.table) else {
            continue;
        };
        let key_len = expansion.key_columns.len();
        let multi: Vec<bool> = expansion
            .generated
            .iter()
            .map(|g| g.class == swan_llm::AttrClass::MultiValue)
            .collect();
        for row in &table.rows {
            let key: Vec<String> = row[..key_len].iter().map(Value::render).collect();
            for (gi, g) in expansion.generated.iter().enumerate() {
                let generated = row[key_len + gi].render();
                let Some(true_value) = truth.get(&(key.as_slice(), g.name.as_str())) else {
                    continue;
                };
                let f1 = match true_value {
                    KnownValue::One(v) => {
                        if !multi[gi] {
                            (generated == *v) as u8 as f64
                        } else {
                            set_f1(&split_list(&generated), &split_list(v))
                        }
                    }
                    KnownValue::Many(vs) => set_f1(&split_list(&generated), vs),
                };
                report.f1_sum += f1;
                report.cells += 1;
            }
        }
        // Rows dropped by extraction (format errors) score zero for each
        // of their generated cells.
        let expected = domain
            .curated
            .catalog()
            .get(&expansion.base_table)
            .map_or(0, |t| t.len());
        if expected > table.len() {
            report.cells += (expected - table.len()) * expansion.generated.len();
        }
    }
    report
}

/// Split a condensed one-to-many cell back into its items.
pub fn split_list(s: &str) -> Vec<String> {
    s.split(',')
        .map(|x| x.trim().to_string())
        .filter(|x| !x.is_empty())
        .collect()
}

/// Set-F1 of two value lists (order-insensitive, duplicates collapsed).
pub fn set_f1(generated: &[String], truth: &[String]) -> f64 {
    use std::collections::HashSet;
    let g: HashSet<&String> = generated.iter().collect();
    let t: HashSet<&String> = truth.iter().collect();
    if g.is_empty() && t.is_empty() {
        return 1.0;
    }
    if g.is_empty() || t.is_empty() {
        return 0.0;
    }
    let overlap = g.intersection(&t).count() as f64;
    if overlap == 0.0 {
        return 0.0;
    }
    let precision = overlap / g.len() as f64;
    let recall = overlap / t.len() as f64;
    2.0 * precision * recall / (precision + recall)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qr(rows: Vec<Vec<Value>>) -> QueryResult {
        QueryResult {
            columns: vec!["c".into()],
            rows: rows.into_iter().map(Into::into).collect(),
            rows_affected: 0,
        }
    }

    #[test]
    fn cell_eq_numeric_tolerance() {
        assert!(cell_eq(&Value::Integer(3), &Value::Real(3.0)));
        assert!(cell_eq(&Value::Real(0.1 + 0.2), &Value::Real(0.3)));
        assert!(!cell_eq(&Value::Integer(3), &Value::Integer(4)));
        assert!(cell_eq(&Value::Null, &Value::Null));
        assert!(!cell_eq(&Value::Null, &Value::Integer(0)));
        assert!(cell_eq(&Value::text("abc"), &Value::text("abc")));
        // Numeric-looking text matches numbers (materialized vs original).
        assert!(cell_eq(&Value::text("42"), &Value::Integer(42)));
    }

    #[test]
    fn execution_match_multiset() {
        let gold = qr(vec![vec![1.into()], vec![2.into()]]);
        let hyb = qr(vec![vec![2.into()], vec![1.into()]]);
        assert!(execution_match(&gold, &hyb, false), "unordered match");
        assert!(!execution_match(&gold, &hyb, true), "ordered mismatch");
        let short = qr(vec![vec![1.into()]]);
        assert!(!execution_match(&gold, &short, false));
    }

    #[test]
    fn execution_match_duplicates_matter() {
        let gold = qr(vec![vec![1.into()], vec![1.into()], vec![2.into()]]);
        let hyb = qr(vec![vec![1.into()], vec![2.into()], vec![2.into()]]);
        assert!(!execution_match(&gold, &hyb, false), "multiset, not set");
    }

    #[test]
    fn ordered_detection() {
        assert!(sql_is_ordered("SELECT a FROM t ORDER BY a"));
        assert!(sql_is_ordered("select a from t order by a limit 5"));
        assert!(!sql_is_ordered("SELECT a FROM t"));
    }

    #[test]
    fn set_f1_cases() {
        let v = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(set_f1(&v(&["a", "b"]), &v(&["a", "b"])), 1.0);
        assert_eq!(set_f1(&v(&[]), &v(&[])), 1.0);
        assert_eq!(set_f1(&v(&["a"]), &v(&[])), 0.0);
        assert_eq!(set_f1(&v(&["x"]), &v(&["a"])), 0.0);
        // Half precision, full recall: F1 = 2*0.5*1/(1.5) = 2/3.
        let f = set_f1(&v(&["a", "x"]), &v(&["a"]));
        assert!((f - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn split_list_trims() {
        assert_eq!(split_list("Agility, Super Strength , Stamina"), vec![
            "Agility",
            "Super Strength",
            "Stamina"
        ]);
        assert!(split_list("").is_empty());
    }

    #[test]
    fn ex_tally_accuracy() {
        let mut t = ExTally::default();
        t.record(true);
        t.record(false);
        t.record(true);
        assert_eq!(t.total, 3);
        assert!((t.accuracy() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(ExTally::default().accuracy(), 0.0);
    }

    #[test]
    fn factuality_full_pipeline_smoke() {
        use swan_data::{GenConfig, SwanBenchmark};
        use swan_llm::{ModelKind, SimulatedModel};
        let d = SwanBenchmark::generate_domain(&GenConfig::with_scale(0.05), "superhero").unwrap();
        let kb = swan_data::build_knowledge(std::slice::from_ref(&d));
        let model = SimulatedModel::new(ModelKind::Gpt4Turbo, kb);
        let run = crate::hqdl::materialize(
            &d,
            &model,
            &crate::hqdl::HqdlConfig { shots: 5, workers: 1 },
        );
        let report = factuality(&d, &run.database);
        let f1 = report.average_f1();
        assert!(report.cells > 0);
        assert!(
            (0.25..0.95).contains(&f1),
            "5-shot GPT-4 factuality should be substantial but imperfect: {f1}"
        );
    }

    #[test]
    fn factuality_perfect_when_truth_is_materialized() {
        use swan_data::{GenConfig, SwanBenchmark};
        // Materialize ground truth directly: F1 must be 1.0.
        let d = SwanBenchmark::generate_domain(&GenConfig::with_scale(0.05), "superhero").unwrap();
        let mut db = d.curated.clone();
        let e = &d.curation.expansions[0];
        let mut table = swan_sqlengine::Table::new(
            e.table.clone(),
            e.all_columns().into_iter().map(swan_sqlengine::Column::new).collect(),
            &[],
        )
        .unwrap();
        let mut truth: HashMap<(Vec<String>, String), String> = HashMap::new();
        for f in &d.facts {
            truth.insert((f.key.clone(), f.attribute.clone()), f.value.condensed());
        }
        for key in crate::hqdl::expansion_keys(&d.curated, e) {
            let mut row: Vec<Value> = key.iter().map(|k| Value::text(k.clone())).collect();
            for g in &e.generated {
                row.push(Value::text(
                    truth.get(&(key.clone(), g.name.clone())).cloned().unwrap_or_default(),
                ));
            }
            table.insert_row(row).unwrap();
        }
        db.catalog_mut().put_table(table);
        let report = factuality(&d, &db);
        assert!((report.average_f1() - 1.0).abs() < 1e-12);
    }
}
