//! Property-based tests for the SQL engine (proptest).
//!
//! Reproducibility: every property's case stream is deterministic per
//! test name, shifted by the `SWAN_SEED` environment variable (default
//! 0). A failing property prints the seed and case number; re-running
//! with that `SWAN_SEED` exported replays the identical stream.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use swan_sqlengine::optimizer::fold_expr;
use swan_sqlengine::parser::{parse_expression, parse_statement};
use swan_sqlengine::value::Value;
use swan_sqlengine::{Database, OptimizerConfig, QueryResult, ScalarUdf};

/// Every optimizer rule switched off: the reference executor.
/// `threads: 1` also pins execution to the serial engine.
fn all_rules_off() -> OptimizerConfig {
    OptimizerConfig {
        pushdown: false,
        order_expensive_last: false,
        fold_constants: false,
        reorder_joins: false,
        prune_columns: false,
        batch_expensive_udfs: false,
        threads: 1,
        ..Default::default()
    }
}

/// Schemas shaped like the four SWAN domains (a fact table, a dimension,
/// and a small lookup each), populated deterministically from a seed so
/// optimized-vs-unoptimized runs see identical data.
const DOMAINS: &[(&str, &str, &str, &str)] = &[
    (
        "superhero",
        "CREATE TABLE superhero (id INTEGER PRIMARY KEY, publisher_id INTEGER, height_cm INTEGER, hero_name TEXT)",
        "CREATE TABLE publisher (id INTEGER PRIMARY KEY, publisher_name TEXT)",
        "superhero s JOIN publisher p ON s.publisher_id = p.id",
    ),
    (
        "formula_1",
        "CREATE TABLE results (id INTEGER PRIMARY KEY, driver_id INTEGER, points INTEGER, status TEXT)",
        "CREATE TABLE drivers (id INTEGER PRIMARY KEY, surname TEXT)",
        "results s JOIN drivers p ON s.driver_id = p.id",
    ),
    (
        "california_schools",
        "CREATE TABLE satscores (id INTEGER PRIMARY KEY, school_id INTEGER, avg_scr_math INTEGER, rtype TEXT)",
        "CREATE TABLE schools (id INTEGER PRIMARY KEY, school_name TEXT)",
        "satscores s JOIN schools p ON s.school_id = p.id",
    ),
    (
        "european_football",
        "CREATE TABLE player_attributes (id INTEGER PRIMARY KEY, player_id INTEGER, overall_rating INTEGER, foot TEXT)",
        "CREATE TABLE player (id INTEGER PRIMARY KEY, player_name TEXT)",
        "player_attributes s JOIN player p ON s.player_id = p.id",
    ),
];

/// Build one SWAN-shaped domain database. `fact` rows link into `dim`
/// (including some dangling/NULL keys so LEFT-join and NULL semantics get
/// exercised), `tiny` is a 4-row lookup joined by modulus.
fn domain_db(domain: usize, rows: &[(i64, i64, String)]) -> Database {
    let (_, fact_ddl, dim_ddl, _) = DOMAINS[domain];
    let mut db = Database::new();
    db.execute(fact_ddl).unwrap();
    db.execute(dim_ddl).unwrap();
    db.execute("CREATE TABLE tiny (k INTEGER PRIMARY KEY, tag TEXT)").unwrap();

    let dim_name = dim_table(domain);
    let dim_rows = (rows.len() / 3).max(2);
    {
        let dim = db.catalog_mut().get_mut(dim_name).unwrap();
        for i in 0..dim_rows {
            dim.insert_row(vec![Value::Integer(i as i64), Value::text(format!("name-{i}"))])
                .unwrap();
        }
    }
    {
        let fact = db.catalog_mut().get_mut(fact_table(domain)).unwrap();
        for (i, (raw, n, s)) in rows.iter().enumerate() {
            // Some keys dangle past the dimension, some are NULL.
            let fk = match raw.rem_euclid(10) {
                0 => Value::Null,
                _ => Value::Integer(raw.rem_euclid(dim_rows as i64 + 3)),
            };
            fact.insert_row(vec![
                Value::Integer(i as i64),
                fk,
                Value::Integer(*n),
                Value::text(s.clone()),
            ])
            .unwrap();
        }
    }
    {
        let tiny = db.catalog_mut().get_mut("tiny").unwrap();
        for k in 0..4i64 {
            tiny.insert_row(vec![Value::Integer(k), Value::text(format!("tag-{k}"))]).unwrap();
        }
    }
    db
}

fn fact_table(domain: usize) -> &'static str {
    ["superhero", "results", "satscores", "player_attributes"][domain]
}

fn dim_table(domain: usize) -> &'static str {
    ["publisher", "drivers", "schools", "player"][domain]
}

fn fact_num(domain: usize) -> &'static str {
    ["height_cm", "points", "avg_scr_math", "overall_rating"][domain]
}

fn fact_fk(domain: usize) -> &'static str {
    ["publisher_id", "driver_id", "school_id", "player_id"][domain]
}

/// A deterministic "expensive" UDF standing in for an LLM call: the value
/// is a pure function of the arguments, and every evaluated tuple is
/// counted whether it arrives through per-row `invoke` or a vectorized
/// `invoke_batch`.
#[derive(Default)]
struct TagUdf {
    tuples: AtomicU64,
}

impl ScalarUdf for TagUdf {
    fn name(&self) -> &str {
        "slow_tag"
    }
    fn invoke(&self, args: &[Value]) -> swan_sqlengine::Result<Value> {
        self.tuples.fetch_add(1, Ordering::SeqCst);
        let tag = args.iter().map(Value::render).collect::<Vec<_>>().join("-");
        Ok(Value::text(format!("v{tag}")))
    }
    fn is_expensive(&self) -> bool {
        true
    }
}

fn assert_same_results(sql: &str, opt: &QueryResult, off: &QueryResult) {
    assert_eq!(opt.columns, off.columns, "column names differ for {sql}");
    assert_eq!(opt.rows, off.rows, "rows differ for {sql}");
}

/// Build a small database with a deterministic content derived from the
/// proptest-generated rows.
fn db_with_rows(rows: &[(i64, i64, String)]) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, n INTEGER, s TEXT)").unwrap();
    let table = db.catalog_mut().get_mut("t").unwrap();
    for (i, (_, n, s)) in rows.iter().enumerate() {
        table
            .insert_row(vec![
                Value::Integer(i as i64),
                Value::Integer(*n),
                Value::text(s.clone()),
            ])
            .unwrap();
    }
    db
}

proptest! {
    /// The parser must never panic, on any input.
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = parse_statement(&input);
        let _ = parse_expression(&input);
    }

    /// Parse(expr) must never panic on structured SQL-ish strings either.
    #[test]
    fn parser_handles_sqlish_tokens(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("SELECT".to_string()),
                Just("FROM".to_string()),
                Just("WHERE".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just(",".to_string()),
                Just("*".to_string()),
                Just("'x'".to_string()),
                Just("1".to_string()),
                Just("t".to_string()),
                Just("=".to_string()),
                Just("AND".to_string()),
            ],
            0..24,
        )
    ) {
        let sql = parts.join(" ");
        let _ = parse_statement(&sql);
    }

    /// ORDER BY returns a permutation of the unordered result, sorted.
    #[test]
    fn order_by_is_a_sorted_permutation(
        rows in proptest::collection::vec((any::<i64>(), -100i64..100, "[a-z]{0,6}"), 0..40)
    ) {
        let db = db_with_rows(&rows);
        let unordered = db.query("SELECT n FROM t").unwrap();
        let ordered = db.query("SELECT n FROM t ORDER BY n").unwrap();
        prop_assert_eq!(unordered.rows.len(), ordered.rows.len());
        let mut expect: Vec<i64> = unordered.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        expect.sort();
        let got: Vec<i64> = ordered.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        prop_assert_eq!(expect, got);
    }

    /// LIMIT never yields more rows than asked, and is a prefix of the
    /// ordered result.
    #[test]
    fn limit_is_a_prefix(
        rows in proptest::collection::vec((any::<i64>(), -100i64..100, "[a-z]{0,6}"), 0..40),
        k in 0usize..10
    ) {
        let db = db_with_rows(&rows);
        let all = db.query("SELECT id FROM t ORDER BY n, id").unwrap();
        let limited = db.query(&format!("SELECT id FROM t ORDER BY n, id LIMIT {k}")).unwrap();
        prop_assert_eq!(limited.rows.len(), k.min(all.rows.len()));
        for (a, b) in all.rows.iter().zip(&limited.rows) {
            prop_assert_eq!(&a[0], &b[0]);
        }
    }

    /// The optimizer must not change query results (pushdown + folding
    /// vs nothing), across a family of filters.
    #[test]
    fn optimizer_preserves_semantics(
        rows in proptest::collection::vec((any::<i64>(), -50i64..50, "[a-z]{0,4}"), 0..30),
        threshold in -50i64..50
    ) {
        let sql = format!(
            "SELECT t1.id FROM t t1 JOIN t t2 ON t1.id = t2.id \
             WHERE t1.n > {threshold} AND t2.s LIKE 'a%' ORDER BY t1.id"
        );
        let mut on = db_with_rows(&rows);
        on.set_optimizer(OptimizerConfig::default());
        let mut off = db_with_rows(&rows);
        off.set_optimizer(all_rules_off());
        let a = on.query(&sql).unwrap();
        let b = off.query(&sql).unwrap();
        prop_assert_eq!(a.rows, b.rows);
    }

    /// COUNT(*) equals the number of inserted rows; WHERE partitions it.
    #[test]
    fn count_partitions(
        rows in proptest::collection::vec((any::<i64>(), -50i64..50, "[a-z]{0,4}"), 0..40),
        pivot in -50i64..50
    ) {
        let db = db_with_rows(&rows);
        let total = db.query("SELECT COUNT(*) FROM t").unwrap().rows[0][0].as_i64().unwrap();
        prop_assert_eq!(total as usize, rows.len());
        let above = db
            .query(&format!("SELECT COUNT(*) FROM t WHERE n > {pivot}"))
            .unwrap()
            .rows[0][0].as_i64().unwrap();
        let below_eq = db
            .query(&format!("SELECT COUNT(*) FROM t WHERE n <= {pivot}"))
            .unwrap()
            .rows[0][0].as_i64().unwrap();
        prop_assert_eq!(above + below_eq, total, "no NULLs, so the two halves partition");
    }

    /// DISTINCT yields unique rows and preserves membership.
    #[test]
    fn distinct_unique_and_complete(
        rows in proptest::collection::vec((any::<i64>(), -8i64..8, "[ab]{0,2}"), 0..40)
    ) {
        let db = db_with_rows(&rows);
        let d = db.query("SELECT DISTINCT n FROM t").unwrap();
        let mut seen = std::collections::HashSet::new();
        for r in &d.rows {
            prop_assert!(seen.insert(r[0].as_i64().unwrap()), "duplicate in DISTINCT");
        }
        let all: std::collections::HashSet<i64> =
            rows.iter().map(|(_, n, _)| *n).collect();
        prop_assert_eq!(seen, all);
    }

    /// Constant folding agrees with direct evaluation on literal trees.
    #[test]
    fn fold_agrees_with_eval(a in -1000i64..1000, b in -1000i64..1000, c in -1000i64..1000) {
        let sql = format!("({a} + {b}) * {c} - {a}");
        let folded = fold_expr(parse_expression(&sql).unwrap());
        let db = Database::new();
        let direct = db.query(&format!("SELECT {sql}")).unwrap();
        if let swan_sqlengine::ast::Expr::Literal(v) = folded {
            prop_assert_eq!(v, direct.rows[0][0].clone());
        } else {
            // Overflow prevented folding; direct evaluation must also be
            // checked (query would error) — nothing to compare.
        }
    }

    /// UNION is idempotent: `q UNION q` has the same rows as `SELECT DISTINCT q`.
    #[test]
    fn union_idempotent(
        rows in proptest::collection::vec((any::<i64>(), -10i64..10, "[a-z]{0,3}"), 0..30)
    ) {
        let db = db_with_rows(&rows);
        let twice = db
            .query("SELECT n FROM t UNION SELECT n FROM t ORDER BY 1")
            .unwrap();
        let once = db.query("SELECT DISTINCT n FROM t ORDER BY 1").unwrap();
        prop_assert_eq!(twice.rows, once.rows);
    }

    /// Full-pipeline optimizer equivalence over the four SWAN domains:
    /// every rule on (pushdown, join reordering, column pruning, constant
    /// folding) vs every rule off must produce identical `QueryResult`s on
    /// randomized join/filter/aggregate queries — including three-way
    /// chains written in a deliberately bad order and comma-joins whose
    /// WHERE conjuncts the optimizer folds into join conditions.
    #[test]
    fn optimizer_full_equivalence_on_swan_domains(
        rows in proptest::collection::vec((any::<i64>(), -40i64..120, "[a-m]{0,5}"), 2..40),
        domain in 0usize..4,
        threshold in -40i64..120,
        shape in 0usize..6,
    ) {
        let (_, _, _, join) = DOMAINS[domain];
        let fact = fact_table(domain);
        let dim = dim_table(domain);
        let num = fact_num(domain);
        let fk = fact_fk(domain);
        let sql = match shape {
            // Two-way equi-join, filtered, projected.
            0 => format!(
                "SELECT s.id, p.id FROM {join} WHERE s.{num} > {threshold} ORDER BY s.id"
            ),
            // COUNT(*) join: the column-pruning fast path.
            1 => format!("SELECT COUNT(*) FROM {join} WHERE s.{num} <= {threshold}"),
            // Three-way chain written worst-first (reorder target).
            2 => format!(
                "SELECT COUNT(*) FROM {fact} s JOIN {dim} p ON s.{fk} = p.id \
                 JOIN tiny t ON p.id = t.k"
            ),
            // Comma-join: WHERE equi-conjunct becomes a join condition.
            3 => format!(
                "SELECT s.id FROM {fact} s, {dim} p, tiny t \
                 WHERE s.{fk} = p.id AND p.id = t.k AND s.{num} > {threshold} \
                 ORDER BY s.id"
            ),
            // LEFT join (reorder boundary + NULL padding semantics).
            4 => format!(
                "SELECT s.id, p.id FROM {fact} s LEFT JOIN {dim} p ON s.{fk} = p.id \
                 WHERE s.{num} > {threshold} ORDER BY s.id"
            ),
            // Aggregation over a join.
            _ => format!(
                "SELECT p.id, COUNT(*), MAX(s.{num}) FROM {join} \
                 GROUP BY p.id ORDER BY p.id"
            ),
        };

        let mut on = domain_db(domain, &rows);
        on.set_optimizer(OptimizerConfig::default());
        let mut off = domain_db(domain, &rows);
        off.set_optimizer(all_rules_off());
        let a = on.query(&sql).unwrap();
        let b = off.query(&sql).unwrap();
        assert_same_results(&sql, &a, &b);
    }

    /// Interned-text representation equivalence: a table loaded through
    /// `Arc<str>` interning behaves exactly like one loaded from owned
    /// `String`s (the seed representation), the engine's text operations
    /// agree with `str` semantics, and value clones share storage.
    #[test]
    fn interned_values_match_seed_semantics(
        strings in proptest::collection::vec("[ -~]{0,12}", 1..24),
        needle in "[a-m]{1,2}",
    ) {
        let build = |interned: bool| {
            let mut db = Database::new();
            db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, s TEXT)").unwrap();
            let table = db.catalog_mut().get_mut("t").unwrap();
            for (i, s) in strings.iter().enumerate() {
                let v = if interned {
                    // Shared-allocation path: the same Arc<str> interned.
                    Value::text(std::sync::Arc::<str>::from(s.as_str()))
                } else {
                    // Seed-style construction from an owned String.
                    Value::from(s.clone())
                };
                table.insert_row(vec![Value::Integer(i as i64), v]).unwrap();
            }
            db
        };
        let a = build(true);
        let b = build(false);
        for sql in [
            "SELECT s FROM t ORDER BY s, id".to_string(),
            "SELECT COUNT(DISTINCT s) FROM t".to_string(),
            "SELECT UPPER(s), LENGTH(s) FROM t ORDER BY id".to_string(),
            format!("SELECT id FROM t WHERE s LIKE '%{needle}%' ORDER BY id"),
        ] {
            let ra = a.query(&sql).unwrap();
            let rb = b.query(&sql).unwrap();
            assert_same_results(&sql, &ra, &rb);
        }

        // Text clones are pointer bumps sharing one allocation.
        let v = Value::text(strings[0].clone());
        let w = v.clone();
        match (v.as_shared_str(), w.as_shared_str()) {
            (Some(x), Some(y)) => prop_assert!(std::sync::Arc::ptr_eq(x, y)),
            _ => prop_assert!(strings[0].is_empty() || v.as_str().is_some()),
        }
    }

    /// Batched expensive-UDF execution returns exactly the rows of
    /// per-row `invoke` across the four SWAN domain query shapes
    /// (projection, WHERE, JOIN ON, HAVING), and never evaluates more
    /// argument tuples than the per-row path.
    #[test]
    fn batched_udf_execution_matches_per_row(
        rows in proptest::collection::vec((any::<i64>(), -40i64..120, "[a-m]{0,5}"), 2..40),
        domain in 0usize..4,
        threshold in -40i64..120,
        shape in 0usize..4,
    ) {
        let (_, _, _, join) = DOMAINS[domain];
        let fact = fact_table(domain);
        let num = fact_num(domain);
        let fk = fact_fk(domain);
        let sql = match shape {
            // Expensive call in the projection.
            0 => format!(
                "SELECT s.id, slow_tag('p', s.{num}) FROM {fact} s ORDER BY s.id"
            ),
            // Expensive conjunct in WHERE next to a cheap one.
            1 => format!(
                "SELECT s.id FROM {join} WHERE s.{num} > {threshold} \
                 AND slow_tag('w', p.id) LIKE 'vw%' ORDER BY s.id"
            ),
            // Expensive call inside a JOIN ON condition.
            2 => format!(
                "SELECT s.id, t.tag FROM {fact} s JOIN tiny t \
                 ON slow_tag('j', s.{fk}) = slow_tag('j', t.k) \
                 ORDER BY s.id, t.tag"
            ),
            // Expensive call in HAVING over grouped output.
            _ => format!(
                "SELECT p.id, COUNT(*) FROM {join} GROUP BY p.id \
                 HAVING slow_tag('h', p.id) LIKE 'vh%' ORDER BY p.id"
            ),
        };

        let batched_udf = Arc::new(TagUdf::default());
        let mut batched = domain_db(domain, &rows);
        batched.register_udf(batched_udf.clone());
        batched.set_optimizer(OptimizerConfig::default());

        let per_row_udf = Arc::new(TagUdf::default());
        let mut per_row = domain_db(domain, &rows);
        per_row.register_udf(per_row_udf.clone());
        per_row.set_optimizer(OptimizerConfig {
            batch_expensive_udfs: false,
            ..Default::default()
        });

        let a = batched.query(&sql).unwrap();
        let b = per_row.query(&sql).unwrap();
        assert_same_results(&sql, &a, &b);
        let batched_tuples = batched_udf.tuples.load(Ordering::SeqCst);
        let per_row_tuples = per_row_udf.tuples.load(Ordering::SeqCst);
        prop_assert!(
            batched_tuples <= per_row_tuples,
            "{sql}: batched evaluated {batched_tuples} tuples, per-row {per_row_tuples}"
        );
    }

    /// LIKE with a literal substring pattern agrees with str::contains.
    #[test]
    fn like_contains_agreement(
        rows in proptest::collection::vec((any::<i64>(), 0i64..2, "[a-c]{0,5}"), 0..30),
        needle in "[a-c]{1,2}"
    ) {
        let db = db_with_rows(&rows);
        let got = db
            .query(&format!("SELECT s FROM t WHERE s LIKE '%{needle}%'"))
            .unwrap();
        let expect = rows.iter().filter(|(_, _, s)| s.contains(&needle)).count();
        prop_assert_eq!(got.rows.len(), expect);
    }
}
