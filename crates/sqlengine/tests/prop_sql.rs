//! Property-based tests for the SQL engine (proptest).

use proptest::prelude::*;
use swan_sqlengine::optimizer::fold_expr;
use swan_sqlengine::parser::{parse_expression, parse_statement};
use swan_sqlengine::value::Value;
use swan_sqlengine::{Database, OptimizerConfig};

/// Build a small database with a deterministic content derived from the
/// proptest-generated rows.
fn db_with_rows(rows: &[(i64, i64, String)]) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, n INTEGER, s TEXT)").unwrap();
    let table = db.catalog_mut().get_mut("t").unwrap();
    for (i, (_, n, s)) in rows.iter().enumerate() {
        table
            .insert_row(vec![
                Value::Integer(i as i64),
                Value::Integer(*n),
                Value::Text(s.clone()),
            ])
            .unwrap();
    }
    db
}

proptest! {
    /// The parser must never panic, on any input.
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = parse_statement(&input);
        let _ = parse_expression(&input);
    }

    /// Parse(expr) must never panic on structured SQL-ish strings either.
    #[test]
    fn parser_handles_sqlish_tokens(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("SELECT".to_string()),
                Just("FROM".to_string()),
                Just("WHERE".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just(",".to_string()),
                Just("*".to_string()),
                Just("'x'".to_string()),
                Just("1".to_string()),
                Just("t".to_string()),
                Just("=".to_string()),
                Just("AND".to_string()),
            ],
            0..24,
        )
    ) {
        let sql = parts.join(" ");
        let _ = parse_statement(&sql);
    }

    /// ORDER BY returns a permutation of the unordered result, sorted.
    #[test]
    fn order_by_is_a_sorted_permutation(
        rows in proptest::collection::vec((any::<i64>(), -100i64..100, "[a-z]{0,6}"), 0..40)
    ) {
        let db = db_with_rows(&rows);
        let unordered = db.query("SELECT n FROM t").unwrap();
        let ordered = db.query("SELECT n FROM t ORDER BY n").unwrap();
        prop_assert_eq!(unordered.rows.len(), ordered.rows.len());
        let mut expect: Vec<i64> = unordered.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        expect.sort();
        let got: Vec<i64> = ordered.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        prop_assert_eq!(expect, got);
    }

    /// LIMIT never yields more rows than asked, and is a prefix of the
    /// ordered result.
    #[test]
    fn limit_is_a_prefix(
        rows in proptest::collection::vec((any::<i64>(), -100i64..100, "[a-z]{0,6}"), 0..40),
        k in 0usize..10
    ) {
        let db = db_with_rows(&rows);
        let all = db.query("SELECT id FROM t ORDER BY n, id").unwrap();
        let limited = db.query(&format!("SELECT id FROM t ORDER BY n, id LIMIT {k}")).unwrap();
        prop_assert_eq!(limited.rows.len(), k.min(all.rows.len()));
        for (a, b) in all.rows.iter().zip(&limited.rows) {
            prop_assert_eq!(&a[0], &b[0]);
        }
    }

    /// The optimizer must not change query results (pushdown + folding
    /// vs nothing), across a family of filters.
    #[test]
    fn optimizer_preserves_semantics(
        rows in proptest::collection::vec((any::<i64>(), -50i64..50, "[a-z]{0,4}"), 0..30),
        threshold in -50i64..50
    ) {
        let sql = format!(
            "SELECT t1.id FROM t t1 JOIN t t2 ON t1.id = t2.id \
             WHERE t1.n > {threshold} AND t2.s LIKE 'a%' ORDER BY t1.id"
        );
        let mut on = db_with_rows(&rows);
        on.set_optimizer(OptimizerConfig::default());
        let mut off = db_with_rows(&rows);
        off.set_optimizer(OptimizerConfig {
            pushdown: false,
            order_expensive_last: false,
            fold_constants: false,
        });
        let a = on.query(&sql).unwrap();
        let b = off.query(&sql).unwrap();
        prop_assert_eq!(a.rows, b.rows);
    }

    /// COUNT(*) equals the number of inserted rows; WHERE partitions it.
    #[test]
    fn count_partitions(
        rows in proptest::collection::vec((any::<i64>(), -50i64..50, "[a-z]{0,4}"), 0..40),
        pivot in -50i64..50
    ) {
        let db = db_with_rows(&rows);
        let total = db.query("SELECT COUNT(*) FROM t").unwrap().rows[0][0].as_i64().unwrap();
        prop_assert_eq!(total as usize, rows.len());
        let above = db
            .query(&format!("SELECT COUNT(*) FROM t WHERE n > {pivot}"))
            .unwrap()
            .rows[0][0].as_i64().unwrap();
        let below_eq = db
            .query(&format!("SELECT COUNT(*) FROM t WHERE n <= {pivot}"))
            .unwrap()
            .rows[0][0].as_i64().unwrap();
        prop_assert_eq!(above + below_eq, total, "no NULLs, so the two halves partition");
    }

    /// DISTINCT yields unique rows and preserves membership.
    #[test]
    fn distinct_unique_and_complete(
        rows in proptest::collection::vec((any::<i64>(), -8i64..8, "[ab]{0,2}"), 0..40)
    ) {
        let db = db_with_rows(&rows);
        let d = db.query("SELECT DISTINCT n FROM t").unwrap();
        let mut seen = std::collections::HashSet::new();
        for r in &d.rows {
            prop_assert!(seen.insert(r[0].as_i64().unwrap()), "duplicate in DISTINCT");
        }
        let all: std::collections::HashSet<i64> =
            rows.iter().map(|(_, n, _)| *n).collect();
        prop_assert_eq!(seen, all);
    }

    /// Constant folding agrees with direct evaluation on literal trees.
    #[test]
    fn fold_agrees_with_eval(a in -1000i64..1000, b in -1000i64..1000, c in -1000i64..1000) {
        let sql = format!("({a} + {b}) * {c} - {a}");
        let folded = fold_expr(parse_expression(&sql).unwrap());
        let db = Database::new();
        let direct = db.query(&format!("SELECT {sql}")).unwrap();
        if let swan_sqlengine::ast::Expr::Literal(v) = folded {
            prop_assert_eq!(v, direct.rows[0][0].clone());
        } else {
            // Overflow prevented folding; direct evaluation must also be
            // checked (query would error) — nothing to compare.
        }
    }

    /// UNION is idempotent: `q UNION q` has the same rows as `SELECT DISTINCT q`.
    #[test]
    fn union_idempotent(
        rows in proptest::collection::vec((any::<i64>(), -10i64..10, "[a-z]{0,3}"), 0..30)
    ) {
        let db = db_with_rows(&rows);
        let twice = db
            .query("SELECT n FROM t UNION SELECT n FROM t ORDER BY 1")
            .unwrap();
        let once = db.query("SELECT DISTINCT n FROM t ORDER BY 1").unwrap();
        prop_assert_eq!(twice.rows, once.rows);
    }

    /// LIKE with a literal substring pattern agrees with str::contains.
    #[test]
    fn like_contains_agreement(
        rows in proptest::collection::vec((any::<i64>(), 0i64..2, "[a-c]{0,5}"), 0..30),
        needle in "[a-c]{1,2}"
    ) {
        let db = db_with_rows(&rows);
        let got = db
            .query(&format!("SELECT s FROM t WHERE s LIKE '%{needle}%'"))
            .unwrap();
        let expect = rows.iter().filter(|(_, _, s)| s.contains(&needle)).count();
        prop_assert_eq!(got.rows.len(), expect);
    }
}
