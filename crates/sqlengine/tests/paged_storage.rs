//! Integration tests for the paged durable store: the checkpoint
//! write-amplification bound (the bug this store exists to fix), recovery
//! round-trips, legacy-image migration, and `paged: false` equivalence.
//!
//! The headline assertion is byte-counted, not vibes: after `k` point
//! updates, the next checkpoint may write O(k) pages to the page file —
//! never the whole database image.

use std::path::PathBuf;
use std::sync::Arc;

use swan_sqlengine::{Database, DurabilityConfig, SimFs};

const WAL: &str = "/sim/paged.wal";
const PAGE: u64 = 4096;

/// Huge checkpoint budget: checkpoints happen only when the test says so.
fn manual_checkpoints(paged: bool) -> DurabilityConfig {
    DurabilityConfig {
        checkpoint_bytes: u64::MAX,
        paged,
        ..Default::default()
    }
}

fn open_sim(fs: &SimFs, config: DurabilityConfig) -> Database {
    Database::open_on(Arc::new(fs.clone()), PathBuf::from(WAL), config).unwrap()
}

/// Bytes written to the page file (`<wal>.pages`) by ops `[from..]` of the
/// SimFs trace. Log appends and meta renames go to other paths, so this
/// isolates exactly the slotted-page flush traffic.
fn page_file_bytes(fs: &SimFs, from: usize) -> u64 {
    let pages_path = format!("{WAL}.pages");
    fs.ops()[from..]
        .iter()
        .filter_map(|line| {
            let rest = line.strip_prefix("write ")?;
            let (path, tail) = rest.split_once(" @")?;
            if path != pages_path {
                return None;
            }
            tail.split_once('+')?.1.parse::<u64>().ok()
        })
        .sum()
}

/// Canonical dump used to compare database states byte for byte.
fn dump(db: &Database) -> String {
    let mut out = String::new();
    for name in db.catalog().table_names() {
        let r = db.query(&format!("SELECT * FROM {name} ORDER BY 1")).unwrap();
        out.push_str(&format!("== {name} ({}) ==\n", r.columns.join(",")));
        for row in &r.rows {
            let cells: Vec<String> = row.iter().map(|v| format!("{v:?}")).collect();
            out.push_str(&cells.join("\u{1}"));
            out.push('\n');
        }
    }
    out
}

/// Load `n` rows of ~200 bytes each (≈ 50 KiB per 256 rows — the whole
/// working set stays far inside the default 256-page pool, so the only
/// page-file writes are checkpoint flushes, never mid-transaction
/// evictions).
fn load_rows(db: &mut Database, n: usize) {
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, body TEXT)")
        .unwrap();
    let mut i = 0usize;
    while i < n {
        let mut stmt = String::from("INSERT INTO t VALUES ");
        let end = (i + 128).min(n);
        for (j, id) in (i..end).enumerate() {
            if j > 0 {
                stmt.push(',');
            }
            stmt.push_str(&format!("({id}, '{:x>180}')", id));
        }
        db.execute(&stmt).unwrap();
        i = end;
    }
}

#[test]
fn incremental_checkpoint_writes_o_of_k_pages() {
    let fs = SimFs::new();
    let mut db = open_sim(&fs, manual_checkpoints(true));
    load_rows(&mut db, 2000);

    // First checkpoint materialises the whole tree: O(database) writes,
    // paid once. Record its cost as the O(database) yardstick.
    let mark = fs.ops().len();
    db.checkpoint().unwrap();
    let full_bytes = page_file_bytes(&fs, mark);
    let stats = db.pager_stats().expect("pager enabled");
    assert!(
        stats.pages >= 50,
        "2000 rows × ~200 B must span many pages, got {}",
        stats.pages
    );
    assert!(
        full_bytes >= stats.pages / 2 * PAGE,
        "the first checkpoint writes the whole database: {full_bytes} bytes for {} pages",
        stats.pages
    );

    // k = 3 point updates dirty O(k) leaf pages (plus a bounded number of
    // interior/meta pages). The follow-up checkpoint must flush only those.
    let k = 3u64;
    let mark = fs.ops().len();
    for id in [17, 920, 1843] {
        db.execute(&format!("UPDATE t SET body = 'small-{id}' WHERE id = {id}"))
            .unwrap();
    }
    db.checkpoint().unwrap();
    let incr_bytes = page_file_bytes(&fs, mark);
    let incr_pages = incr_bytes / PAGE;
    assert!(incr_bytes > 0, "a dirty tree must flush something");
    // Generous O(k) slack: k leaves + the root spine + the table-meta page.
    assert!(
        incr_pages <= 4 * k + 6,
        "checkpoint after {k} updates wrote {incr_pages} pages — that is O(database), not O(k)"
    );
    assert!(
        incr_bytes * 4 < full_bytes,
        "incremental checkpoint ({incr_bytes} B) must be far below a full image ({full_bytes} B)"
    );

    // An empty checkpoint is free on the page file: nothing is dirty.
    let mark = fs.ops().len();
    db.checkpoint().unwrap();
    assert_eq!(
        page_file_bytes(&fs, mark),
        0,
        "a clean pager has nothing to flush"
    );

    // And the flushed state is the recovered state.
    let expected = dump(&db);
    drop(db);
    let db = open_sim(&fs, manual_checkpoints(true));
    assert_eq!(dump(&db), expected, "reboot must reproduce the checkpointed state");
}

#[test]
fn recovery_replays_tail_commits_over_the_checkpoint() {
    let fs = SimFs::new();
    let mut db = open_sim(&fs, manual_checkpoints(true));
    load_rows(&mut db, 300);
    db.checkpoint().unwrap();
    // Post-checkpoint commits live only in the log tail.
    db.execute("UPDATE t SET body = 'tail' WHERE id = 7").unwrap();
    db.execute("DELETE FROM t WHERE id = 8").unwrap();
    db.execute("INSERT INTO t VALUES (300, 'tail-insert')").unwrap();
    let expected = dump(&db);
    drop(db);

    let db = open_sim(&fs, manual_checkpoints(true));
    assert_eq!(dump(&db), expected, "checkpoint + tail replay must round-trip");
}

#[test]
fn legacy_image_migrates_into_the_paged_store() {
    let fs = SimFs::new();
    // Write durable state with the pager off: legacy whole-image format.
    let mut db = open_sim(&fs, manual_checkpoints(false));
    load_rows(&mut db, 200);
    db.checkpoint().unwrap();
    db.execute("UPDATE t SET body = 'post-ckpt' WHERE id = 5").unwrap();
    assert!(db.pager_stats().is_none(), "pager off: no stats");
    let expected = dump(&db);
    drop(db);

    // Reopen paged: recovery must read the legacy image, and the first
    // checkpoint owns the one-time O(database) migration into pages.
    let db = open_sim(&fs, manual_checkpoints(true));
    assert_eq!(dump(&db), expected, "legacy image must load under the pager");
    db.checkpoint().unwrap();
    assert!(db.pager_stats().unwrap().pages > 0, "migration built pages");
    drop(db);

    // From here on the paged store is the root of trust.
    let db = open_sim(&fs, manual_checkpoints(true));
    assert_eq!(dump(&db), expected, "migrated state must round-trip");
}

#[test]
fn pager_off_is_behavior_identical_on_the_same_workload() {
    let script: Vec<String> = {
        let mut s = vec![
            "CREATE TABLE t (id INTEGER PRIMARY KEY, v REAL)".to_string(),
            "CREATE TABLE u (a TEXT, b INTEGER)".to_string(),
        ];
        for i in 0..120i64 {
            s.push(format!("INSERT INTO t VALUES ({i}, {}.5)", i * 3));
            s.push(format!("INSERT INTO u VALUES ('s{}', {})", i % 7, i));
        }
        s.push("UPDATE t SET v = v * 2 WHERE id % 5 = 0".to_string());
        s.push("DELETE FROM u WHERE b > 100".to_string());
        s
    };

    let mut dumps = Vec::new();
    for paged in [true, false] {
        let fs = SimFs::new();
        let mut db = open_sim(&fs, manual_checkpoints(paged));
        for stmt in &script {
            db.execute(stmt).unwrap();
        }
        db.checkpoint().unwrap();
        drop(db);
        let db = open_sim(&fs, manual_checkpoints(paged));
        dumps.push(dump(&db));
    }
    assert_eq!(
        dumps[0], dumps[1],
        "paged and legacy durability must expose identical database state"
    );
}
