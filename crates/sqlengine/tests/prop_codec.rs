//! Property-based round-trip tests for the binary row codec
//! (`storage::encode_table` / `storage::decode_table`), the encoding the
//! write-ahead log persists every commit through.
//!
//! The central property: for *any* table — adversarial float bit
//! patterns (NaN payloads, `-0.0`, infinities), repeated interned text,
//! NULLs, zero-width rows (a table with no columns), with or without a
//! primary key — `decode(encode(t)) == t` structurally, the decode
//! consumes exactly the encoding, repeated text re-shares one `Arc<str>`
//! allocation, and a decoded table with a primary key has a working
//! rebuilt index.
//!
//! The same properties hold for the **column codec**
//! ([`columnar::encode_column_set`] / [`columnar::decode_column_set`]):
//! bit-exact reals, validity bitmaps, a text dictionary that decodes to
//! one shared `Arc<str>` per distinct string, empty columns, and clean
//! rejection of every truncation.

use std::sync::Arc;

use proptest::prelude::*;
use proptest::TestRng;
use swan_sqlengine::columnar::{decode_column_set, encode_column_set, ColumnSet};
use swan_sqlengine::storage::{decode_table, encode_table, TextInterner};
use swan_sqlengine::value::Row;
use swan_sqlengine::{Column, Table, Value};

/// A small pool of text values, deliberately repetitive so interning has
/// something to share, with a few adversarial shapes mixed in.
const TEXT_POOL: &[&str] = &[
    "", "a", "shared", "shared", "müller-lüdenscheidt", "0", "NULL", "line\nbreak", "πλάσμα",
];

/// Adversarial reals: NaN bit patterns (including a payload NaN), signed
/// zeros and infinities, denormals.
fn real_for(rng: &mut TestRng) -> f64 {
    match rng.next_u64() % 8 {
        0 => f64::NAN,
        1 => f64::from_bits(0x7FF8_0000_DEAD_BEEF), // payload NaN
        2 => -0.0,
        3 => 0.0,
        4 => f64::INFINITY,
        5 => f64::NEG_INFINITY,
        6 => f64::MIN_POSITIVE / 2.0, // subnormal
        _ => f64::from_bits(rng.next_u64()), // anything, NaNs included
    }
}

fn value_for(rng: &mut TestRng) -> Value {
    match rng.next_u64() % 4 {
        0 => Value::Null,
        1 => Value::Integer(rng.next_u64() as i64),
        2 => Value::Real(real_for(rng)),
        _ => Value::text(TEXT_POOL[(rng.next_u64() % TEXT_POOL.len() as u64) as usize]),
    }
}

/// Build a deterministic arbitrary table. With a primary key, column 0
/// is a unique integer id so constraints hold by construction.
fn table_for(seed: u64, ncols: usize, nrows: usize, with_pk: bool) -> Table {
    let mut rng = TestRng::seeded("prop_codec::table", seed);
    let with_pk = with_pk && ncols > 0;
    let columns: Vec<Column> = (0..ncols)
        .map(|i| {
            let decl = match rng.next_u64() % 3 {
                0 => None,
                1 => Some("INTEGER".to_string()),
                _ => Some("TEXT".to_string()),
            };
            Column { name: format!("c{i}"), decl_type: decl, not_null: false }
        })
        .collect();
    let pk: Vec<String> = if with_pk { vec!["c0".to_string()] } else { Vec::new() };
    let mut t = Table::new(format!("t{seed}"), columns, &pk).unwrap();
    for r in 0..nrows {
        let mut row: Vec<Value> = (0..ncols).map(|_| value_for(&mut rng)).collect();
        if with_pk {
            row[0] = Value::Integer(r as i64); // unique, never NULL
        }
        t.insert_row(row).unwrap();
    }
    t.version = rng.next_u64();
    t
}

/// Arbitrary rows for the column codec. `typed` columns stick to one
/// value type each (so `from_rows` classifies them as I64/F64/Bool/Text
/// columns with validity bitmaps); untyped columns mix types per cell
/// (the Mixed fallback). NULLs appear throughout either way.
fn rows_for(seed: u64, ncols: usize, nrows: usize, typed: bool) -> Vec<Row> {
    let mut rng = TestRng::seeded("prop_codec::columns", seed);
    let kinds: Vec<u64> = (0..ncols).map(|_| rng.next_u64() % 4).collect();
    (0..nrows)
        .map(|_| {
            (0..ncols)
                .map(|c| {
                    if rng.next_u64() % 4 == 0 {
                        return Value::Null;
                    }
                    let kind = if typed { kinds[c] } else { rng.next_u64() % 4 };
                    match kind {
                        0 => Value::Integer(rng.next_u64() as i64),
                        1 => Value::Real(real_for(&mut rng)),
                        2 => Value::Integer((rng.next_u64() % 2) as i64), // Bool-shaped
                        _ => Value::text(
                            TEXT_POOL[(rng.next_u64() % TEXT_POOL.len() as u64) as usize],
                        ),
                    }
                })
                .collect()
        })
        .collect()
}

/// Strict cell equality: same variant, reals compared by raw bits (so
/// NaN == same-payload NaN and -0.0 != 0.0).
fn value_bits_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Real(x), Value::Real(y)) => x.to_bits() == y.to_bits(),
        (Value::Null, Value::Null) => true,
        (Value::Integer(x), Value::Integer(y)) => x == y,
        (Value::Text(x), Value::Text(y)) => x == y,
        _ => false,
    }
}

proptest! {
    /// decode(encode(t)) == t, the decode consumes the whole buffer, and
    /// equal text cells share one allocation after decoding.
    #[test]
    fn table_codec_round_trips(
        seed in 0u64..u64::MAX,
        ncols in 0usize..5,
        nrows in 0usize..24,
        with_pk in 0u8..2,
    ) {
        let table = table_for(seed, ncols, nrows, with_pk == 1);

        let mut buf = Vec::new();
        encode_table(&mut buf, &table);
        let mut pos = 0;
        let mut interner = TextInterner::new();
        let back = decode_table(&buf, &mut pos, &mut interner).expect("decode");
        prop_assert_eq!(pos, buf.len(), "decode must consume the whole encoding");
        prop_assert!(back == table, "round trip must be lossless:\n{table:?}\nvs\n{back:?}");

        // Interning: any two equal text cells decode to the same Arc.
        let mut by_text: Vec<(&str, &Arc<str>)> = Vec::new();
        for row in &back.rows {
            for v in row.iter() {
                if let Value::Text(s) = v {
                    match by_text.iter().find(|(t, _)| *t == s.as_ref()) {
                        Some((_, first)) => prop_assert!(
                            Arc::ptr_eq(first, s),
                            "equal text {s:?} must share one allocation"
                        ),
                        None => by_text.push((s.as_ref(), s)),
                    }
                }
            }
        }

        // A decoded primary key has a working rebuilt index.
        if with_pk == 1 && ncols > 0 && nrows > 0 {
            prop_assert!(back.find_by_pk(&[Value::Integer(0)]).is_some());
            prop_assert!(back.find_by_pk(&[Value::Integer(nrows as i64)]).is_none());
        }
    }

    /// Zero-width rows (a table with no columns) survive the round trip
    /// with their row count intact — the shape column-pruned COUNT(*)
    /// plans materialize.
    #[test]
    fn zero_width_tables_round_trip(nrows in 0usize..64, seed in 0u64..u64::MAX) {
        let mut t = Table::new("empty_shape", Vec::new(), &[]).unwrap();
        for _ in 0..nrows {
            t.insert_row(Vec::new()).unwrap();
        }
        t.version = seed;
        let mut buf = Vec::new();
        encode_table(&mut buf, &t);
        let mut pos = 0;
        let mut interner = TextInterner::new();
        let back = decode_table(&buf, &mut pos, &mut interner).expect("decode");
        prop_assert_eq!(pos, buf.len());
        prop_assert_eq!(back.rows.len(), nrows);
        prop_assert!(back == t);
    }

    /// Column codec: `decode(encode(set)) == set` bit-for-bit — NaN
    /// payloads and `-0.0` survive as raw IEEE bits, validity bitmaps
    /// round trip, the decode consumes exactly the encoding — and the
    /// decoded text dictionary shares **one** `Arc<str>` per distinct
    /// string across every cell of the set.
    #[test]
    fn column_codec_round_trips(
        seed in 0u64..u64::MAX,
        ncols in 0usize..5,
        nrows in 0usize..32,
        typed in 0u8..2,
    ) {
        let rows = rows_for(seed, ncols, nrows, typed == 1);
        let set = ColumnSet::from_rows(&rows, ncols);

        let mut buf = Vec::new();
        encode_column_set(&mut buf, &set);
        let mut pos = 0;
        let mut interner = TextInterner::new();
        let back = decode_column_set(&buf, &mut pos, &mut interner).expect("decode");
        prop_assert_eq!(pos, buf.len(), "decode must consume the whole encoding");
        prop_assert!(back == set, "round trip must be lossless:\n{set:?}\nvs\n{back:?}");

        // Lazy row views over the decoded set reproduce every original
        // cell bit-for-bit (NaN payloads, -0.0 included).
        for (i, row) in rows.iter().enumerate() {
            let got = back.materialize_row(i);
            prop_assert_eq!(got.len(), row.len());
            for (a, b) in row.iter().zip(got.iter()) {
                prop_assert!(
                    value_bits_eq(a, b),
                    "cell diverged at row {i}: {a:?} vs {b:?}"
                );
            }
        }

        // Dictionary interning: equal text cells anywhere in the decoded
        // set share one allocation.
        let mut by_text: Vec<(String, Arc<str>)> = Vec::new();
        for i in 0..back.len() {
            for v in back.materialize_row(i).iter() {
                if let Value::Text(s) = v {
                    match by_text.iter().find(|(t, _)| t == s.as_ref()) {
                        Some((_, first)) => prop_assert!(
                            Arc::ptr_eq(first, s),
                            "equal text {s:?} must share one allocation"
                        ),
                        None => by_text.push((s.to_string(), s.clone())),
                    }
                }
            }
        }
    }

    /// Truncating a column-set encoding anywhere must fail cleanly —
    /// never panic, never yield a set.
    #[test]
    fn truncated_column_encodings_are_rejected(
        seed in 0u64..u64::MAX,
        ncols in 1usize..4,
        nrows in 1usize..8,
        typed in 0u8..2,
    ) {
        let rows = rows_for(seed, ncols, nrows, typed == 1);
        let set = ColumnSet::from_rows(&rows, ncols);
        let mut buf = Vec::new();
        encode_column_set(&mut buf, &set);
        let mut rng = TestRng::seeded("prop_codec::colcut", seed);
        for _ in 0..8 {
            let cut = (rng.next_u64() as usize) % buf.len();
            let mut pos = 0;
            let mut interner = TextInterner::new();
            prop_assert!(
                decode_column_set(&buf[..cut], &mut pos, &mut interner).is_err(),
                "a {cut}-byte prefix of a {}-byte encoding must not decode",
                buf.len()
            );
        }
    }

    /// Truncating an encoding anywhere must fail cleanly, never panic or
    /// yield a table (the WAL relies on this to reject torn frames whose
    /// checksum happens to be unlucky).
    #[test]
    fn truncated_encodings_are_rejected(
        seed in 0u64..u64::MAX,
        ncols in 1usize..4,
        nrows in 1usize..8,
    ) {
        let table = table_for(seed, ncols, nrows, true);
        let mut buf = Vec::new();
        encode_table(&mut buf, &table);
        let mut rng = TestRng::seeded("prop_codec::cut", seed);
        // A handful of random cuts per case (the exhaustive sweep lives
        // in the unit tests; this adds arbitrary-table coverage).
        for _ in 0..8 {
            let cut = (rng.next_u64() as usize) % buf.len();
            let mut pos = 0;
            let mut interner = TextInterner::new();
            prop_assert!(
                decode_table(&buf[..cut], &mut pos, &mut interner).is_err(),
                "a {cut}-byte prefix of a {}-byte encoding must not decode",
                buf.len()
            );
        }
    }
}
