//! Concurrency stress tests for [`SharedDb`]: N threads issue mixed
//! reads and writes against one shared database and the suite asserts
//! **no lost updates** (per-table writer serialization makes
//! read-modify-write statements atomic), **no poisoned locks** (a
//! session panicking mid-statement leaves the database fully usable),
//! and **snapshot consistency** (readers always observe a complete,
//! point-in-time state, never a torn one).
//!
//! The transaction section stresses multi-statement `BEGIN … COMMIT`
//! spans: write-write conflicts abort exactly one of two racing
//! committers (first committer wins), conflicted sessions make progress
//! by retrying, and snapshot readers can never observe a half-installed
//! multi-table commit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use swan_sqlengine::value::Value;
use swan_sqlengine::{Error, ScalarUdf, SharedDb};

const THREADS: usize = 8;
const ITERS: usize = 40;

#[test]
fn concurrent_counter_updates_are_never_lost() {
    let db = SharedDb::new();
    db.execute("CREATE TABLE counters (id INTEGER PRIMARY KEY, n INTEGER)").unwrap();
    db.execute("INSERT INTO counters VALUES (0, 0)").unwrap();

    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let session = db.clone();
            s.spawn(move || {
                for _ in 0..ITERS {
                    // Classic lost-update shape: read-modify-write.
                    session.execute("UPDATE counters SET n = n + 1 WHERE id = 0").unwrap();
                }
            });
        }
    });

    let r = db.query("SELECT n FROM counters WHERE id = 0").unwrap();
    assert_eq!(
        r.scalar(),
        Some(&Value::Integer((THREADS * ITERS) as i64)),
        "every increment must be observed (no lost updates)"
    );
}

#[test]
fn mixed_readers_and_writers_stay_consistent() {
    let db = SharedDb::new();
    db.execute("CREATE TABLE log (id INTEGER PRIMARY KEY, thread INTEGER)").unwrap();

    std::thread::scope(|s| {
        // Writers insert disjoint key ranges concurrently.
        for t in 0..THREADS {
            let session = db.clone();
            s.spawn(move || {
                for i in 0..ITERS {
                    let id = (t * ITERS + i) as i64;
                    session
                        .execute(&format!("INSERT INTO log VALUES ({id}, {t})"))
                        .unwrap();
                }
            });
        }
        // Readers observe monotonically consistent snapshots: a count and
        // a grouped sum taken from one snapshot must agree with each other.
        for _ in 0..2 {
            let session = db.clone();
            s.spawn(move || {
                for _ in 0..ITERS {
                    let snap = session.snapshot();
                    let count =
                        snap.query("SELECT COUNT(*) FROM log").unwrap().scalar().unwrap().clone();
                    let summed = snap
                        .query("SELECT SUM(c) FROM (SELECT COUNT(*) AS c FROM log GROUP BY thread) g")
                        .unwrap();
                    let summed = match summed.scalar() {
                        Some(Value::Null) | None => Value::Integer(0),
                        Some(v) => match v.as_i64() {
                            Some(n) => Value::Integer(n),
                            None => Value::Integer(0),
                        },
                    };
                    assert_eq!(
                        count, summed,
                        "snapshot must be internally consistent (not torn)"
                    );
                }
            });
        }
    });

    let total = db.query("SELECT COUNT(*) FROM log").unwrap();
    assert_eq!(total.scalar(), Some(&Value::Integer((THREADS * ITERS) as i64)));
    // Per-thread partitions are complete.
    let per = db
        .query("SELECT thread, COUNT(*) FROM log GROUP BY thread ORDER BY thread")
        .unwrap();
    assert_eq!(per.rows.len(), THREADS);
    for row in &per.rows {
        assert_eq!(row[1], Value::Integer(ITERS as i64));
    }
}

#[test]
fn writers_to_different_tables_do_not_interfere() {
    let db = SharedDb::new();
    for t in 0..4 {
        db.execute(&format!("CREATE TABLE t{t} (id INTEGER PRIMARY KEY)")).unwrap();
    }
    std::thread::scope(|s| {
        for t in 0..4 {
            let session = db.clone();
            s.spawn(move || {
                for i in 0..ITERS {
                    session.execute(&format!("INSERT INTO t{t} VALUES ({i})")).unwrap();
                }
            });
        }
    });
    for t in 0..4 {
        assert_eq!(db.row_count(&format!("t{t}")), Some(ITERS));
    }
}

/// A UDF that panics on demand — simulates a session crashing mid-write
/// while holding its table's write lock.
struct Grenade;

impl ScalarUdf for Grenade {
    fn name(&self) -> &str {
        "grenade"
    }
    fn invoke(&self, args: &[Value]) -> swan_sqlengine::Result<Value> {
        if args.first().and_then(Value::as_i64) == Some(13) {
            panic!("simulated session crash");
        }
        Ok(args.first().cloned().unwrap_or(Value::Null))
    }
}

#[test]
fn panicking_session_does_not_poison_the_database() {
    let db = SharedDb::new();
    db.register_udf(Arc::new(Grenade));
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 1)").unwrap();

    // The panic fires while the INSERT holds t's writer lock.
    let session = db.clone();
    let crashed = std::thread::spawn(move || {
        let _ = session.execute("INSERT INTO t VALUES (2, grenade(13))");
    })
    .join();
    assert!(crashed.is_err(), "the session must have panicked");

    // Every lock recovered; reads and writes keep working, and the
    // crashed statement installed nothing.
    assert_eq!(
        db.query("SELECT COUNT(*) FROM t").unwrap().scalar(),
        Some(&Value::Integer(1)),
        "crashed statement must not commit"
    );
    db.execute("INSERT INTO t VALUES (3, 3)").unwrap();
    db.execute("UPDATE t SET v = v + 1 WHERE id = 1").unwrap();
    assert_eq!(
        db.query("SELECT COUNT(*) FROM t").unwrap().scalar(),
        Some(&Value::Integer(2))
    );
}

// ---------------------------------------------------------------------------
// Multi-statement transactions under concurrency
// ---------------------------------------------------------------------------

/// Two sessions race read-modify-write transactions on the same row:
/// exactly one of each racing pair commits (first committer wins) and
/// every conflicted session retries to completion, so no increment is
/// ever lost and no increment is ever double-applied.
#[test]
fn txn_write_write_conflicts_abort_and_retries_converge() {
    let db = SharedDb::new();
    db.execute("CREATE TABLE counters (id INTEGER PRIMARY KEY, n INTEGER)").unwrap();
    db.execute("INSERT INTO counters VALUES (0, 0)").unwrap();

    let conflicts = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let handle = db.clone();
            let conflicts = &conflicts;
            s.spawn(move || {
                for _ in 0..ITERS {
                    // Retry loop: a conflicted transaction re-runs from a
                    // fresh snapshot until its commit wins.
                    loop {
                        let mut session = handle.session();
                        session.execute("BEGIN").unwrap();
                        session
                            .execute("UPDATE counters SET n = n + 1 WHERE id = 0")
                            .unwrap();
                        match session.execute("COMMIT") {
                            Ok(_) => break,
                            Err(Error::Conflict(_)) => {
                                conflicts.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("unexpected commit error: {e}"),
                        }
                    }
                }
            });
        }
    });

    let r = db.query("SELECT n FROM counters WHERE id = 0").unwrap();
    assert_eq!(
        r.scalar(),
        Some(&Value::Integer((THREADS * ITERS) as i64)),
        "retried transactions must neither lose nor duplicate increments \
         ({} conflicts observed)",
        conflicts.load(Ordering::Relaxed)
    );
}

/// A transaction spanning two tables commits atomically: concurrent
/// snapshot readers must always see the two tables advance in lockstep —
/// a reader observing table A's row i without table B's row i caught a
/// torn commit.
#[test]
fn txn_multi_table_commits_are_never_observed_partially() {
    let db = SharedDb::new();
    db.execute("CREATE TABLE a (id INTEGER PRIMARY KEY)").unwrap();
    db.execute("CREATE TABLE b (id INTEGER PRIMARY KEY)").unwrap();

    std::thread::scope(|s| {
        // One writer commits paired inserts transactionally.
        {
            let handle = db.clone();
            s.spawn(move || {
                for i in 0..(ITERS as i64) {
                    let mut session = handle.session();
                    session.execute("BEGIN").unwrap();
                    session.execute(&format!("INSERT INTO a VALUES ({i})")).unwrap();
                    session.execute(&format!("INSERT INTO b VALUES ({i})")).unwrap();
                    session.execute("COMMIT").unwrap();
                }
            });
        }
        // Readers race snapshots against the commits.
        for _ in 0..4 {
            let handle = db.clone();
            s.spawn(move || {
                for _ in 0..ITERS {
                    let snap = handle.snapshot();
                    let na = snap.query("SELECT COUNT(*) FROM a").unwrap();
                    let nb = snap.query("SELECT COUNT(*) FROM b").unwrap();
                    assert_eq!(
                        na.scalar(),
                        nb.scalar(),
                        "a and b must advance atomically (torn commit observed)"
                    );
                }
            });
        }
    });
    assert_eq!(db.row_count("a"), Some(ITERS));
    assert_eq!(db.row_count("b"), Some(ITERS));
}

/// A transaction's reads are repeatable: concurrent commits by other
/// sessions to *other* tables never change what an open transaction sees,
/// and its own writes stay visible to it alone until commit.
#[test]
fn txn_snapshot_reads_are_stable_under_concurrent_commits() {
    let db = SharedDb::new();
    db.execute("CREATE TABLE stable (id INTEGER PRIMARY KEY)").unwrap();
    db.execute("INSERT INTO stable VALUES (1), (2), (3)").unwrap();
    db.execute("CREATE TABLE churn (id INTEGER PRIMARY KEY)").unwrap();

    std::thread::scope(|s| {
        // Churn writers hammer an unrelated table.
        for t in 0..2 {
            let handle = db.clone();
            s.spawn(move || {
                for i in 0..ITERS {
                    let id = t * ITERS + i;
                    handle.execute(&format!("INSERT INTO churn VALUES ({id})")).unwrap();
                }
            });
        }
        // Transactions repeatedly read their pinned snapshot.
        for _ in 0..2 {
            let handle = db.clone();
            s.spawn(move || {
                for _ in 0..8 {
                    let mut session = handle.session();
                    session.execute("BEGIN").unwrap();
                    let first = session
                        .query("SELECT COUNT(*) FROM stable")
                        .unwrap()
                        .scalar()
                        .unwrap()
                        .clone();
                    let churn0 =
                        session.query("SELECT COUNT(*) FROM churn").unwrap().scalar().unwrap().clone();
                    session.execute("INSERT INTO stable VALUES (99)").unwrap();
                    for _ in 0..4 {
                        std::thread::yield_now();
                        let again = session
                            .query("SELECT COUNT(*) FROM stable")
                            .unwrap()
                            .scalar()
                            .unwrap()
                            .clone();
                        assert_eq!(
                            again.render(),
                            "4",
                            "own write + pinned snapshot ({first} + 1)"
                        );
                        let churn_now = session
                            .query("SELECT COUNT(*) FROM churn")
                            .unwrap()
                            .scalar()
                            .unwrap()
                            .clone();
                        assert_eq!(churn_now, churn0, "snapshot reads must be repeatable");
                    }
                    session.execute("ROLLBACK").unwrap();
                }
            });
        }
    });
    assert_eq!(db.row_count("stable"), Some(3), "rolled-back inserts leave no trace");
    assert_eq!(db.row_count("churn"), Some(2 * ITERS));
}

/// Sessions can run parallel (morsel-driven) queries concurrently: the
/// shared compute pool serves many statements at once, and a
/// statement-scoped expensive UDF is still batched per statement.
#[derive(Default)]
struct CountingTag {
    tuples: AtomicU64,
}

impl ScalarUdf for CountingTag {
    fn name(&self) -> &str {
        "ctag"
    }
    fn invoke(&self, args: &[Value]) -> swan_sqlengine::Result<Value> {
        self.tuples.fetch_add(1, Ordering::SeqCst);
        Ok(Value::text(format!("v{}", args[0].render())))
    }
    fn is_expensive(&self) -> bool {
        true
    }
}

#[test]
fn concurrent_parallel_queries_agree_and_batch() {
    use swan_sqlengine::OptimizerConfig;

    let db = SharedDb::new();
    let tag = Arc::new(CountingTag::default());
    db.register_udf(tag.clone());
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, n INTEGER)").unwrap();
    {
        // Bulk-load through one session snapshot-install cycle.
        for chunk in 0..10 {
            let values: Vec<String> = (0..50)
                .map(|i| {
                    let id = chunk * 50 + i;
                    format!("({id}, {})", id % 7)
                })
                .collect();
            db.execute(&format!("INSERT INTO t VALUES {}", values.join(", "))).unwrap();
        }
    }
    db.set_optimizer(OptimizerConfig { threads: 4, parallel_threshold: 1, ..Default::default() });

    let expected = db.query("SELECT id FROM t WHERE ctag(n) = 'v3' ORDER BY id").unwrap();
    let baseline = tag.tuples.load(Ordering::SeqCst);
    assert!(baseline <= 7, "statement batching: ≤ one call per distinct n, got {baseline}");

    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let session = db.clone();
            let expected = &expected;
            s.spawn(move || {
                let r = session
                    .query("SELECT id FROM t WHERE ctag(n) = 'v3' ORDER BY id")
                    .unwrap();
                assert_eq!(r.rows, expected.rows, "concurrent sessions agree");
            });
        }
    });
    // Each statement pays at most the 7 distinct tuples; a UDF with its
    // own cross-statement store (llm_map) would coalesce further — that
    // guarantee is exercised in the workspace-level concurrency test.
    let total = tag.tuples.load(Ordering::SeqCst);
    assert!(
        total <= baseline + (THREADS as u64) * 7,
        "per-statement batching must hold under concurrency, got {total}"
    );
}

// ---------------------------------------------------------------------------
// Group commit: concurrent committers share fsyncs
// ---------------------------------------------------------------------------

/// 8 committers hammer a durable database whose (simulated) fsync takes
/// real time. The group-commit queue must amortize: strictly fewer log
/// appends (= fsyncs) than commits, no acknowledged commit lost across a
/// reopen, and every commit's effect intact.
#[test]
fn group_commit_amortizes_fsyncs_under_contention() {
    use std::path::PathBuf;
    use std::time::Duration;
    use swan_sqlengine::{DurabilityConfig, SimFs};

    const COMMITS_PER_THREAD: usize = 25;

    let fs = SimFs::new();
    fs.set_sync_delay(Duration::from_micros(300));
    let path = PathBuf::from("/sim/group.wal");
    let db =
        SharedDb::open_on(Arc::new(fs.clone()), &path, DurabilityConfig::default()).unwrap();
    for t in 0..THREADS {
        db.execute(&format!("CREATE TABLE t{t} (id INTEGER PRIMARY KEY, v INTEGER)"))
            .unwrap();
    }
    let setup = db.commit_stats();
    assert_eq!(setup.commits, THREADS as u64, "one commit per CREATE TABLE");

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let session = db.clone();
            s.spawn(move || {
                for i in 0..COMMITS_PER_THREAD {
                    session
                        .execute(&format!("INSERT INTO t{t} VALUES ({i}, {})", i * t))
                        .unwrap();
                }
            });
        }
    });

    let stats = db.commit_stats();
    let commits = (THREADS * COMMITS_PER_THREAD) as u64 + setup.commits;
    assert_eq!(stats.commits, commits, "every commit acknowledged exactly once");
    assert!(
        stats.batches < stats.commits,
        "contended committers must share at least one fsync: {stats:?}"
    );
    assert!(stats.max_batch >= 2, "some batch must carry multiple groups: {stats:?}");
    assert!(stats.commits_per_fsync() > 1.0, "{stats:?}");

    // Everything acknowledged is durable: reopen from the synced image
    // only (the adversarial crash) and recount.
    let db2 = SharedDb::open_on(
        Arc::new(fs.reboot(false)),
        &path,
        DurabilityConfig::default(),
    )
    .unwrap();
    for t in 0..THREADS {
        assert_eq!(db2.row_count(&format!("t{t}")), Some(COMMITS_PER_THREAD));
    }
}

/// Regression pin for a seam escape `swan-analyze` rule (2) caught:
/// SimFs's slow-disk model used to call `std::thread::sleep` directly, so
/// no virtual-clock sweep could cover it — a sync delay always burned
/// wall time. It now sleeps through the `Clock` seam: on a `SimClock`
/// an hour of simulated fsync latency advances virtual time instantly.
#[test]
fn sync_delay_routes_through_clock_seam() {
    use std::path::PathBuf;
    use std::time::{Duration, Instant};
    use swan_pool::{Clock as _, SimClock};
    use swan_sqlengine::{DurabilityConfig, SimFs};

    let fs = SimFs::new();
    let clock = SimClock::handle();
    fs.set_clock(clock.clone());
    // A full second per fsync: unmistakable if it ever hits the wall
    // clock again.
    fs.set_sync_delay(Duration::from_secs(1));
    let path = PathBuf::from("/sim/clocked.wal");
    let wall = Instant::now();
    let db =
        SharedDb::open_on(Arc::new(fs.clone()), &path, DurabilityConfig::default()).unwrap();
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)").unwrap();
    for i in 0..5 {
        db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
    }
    assert!(
        clock.now() >= Duration::from_secs(6),
        "each commit's fsync must pay the simulated delay in virtual time, got {:?}",
        clock.now()
    );
    assert!(
        wall.elapsed() < Duration::from_secs(2),
        "simulated fsync latency must not consume wall time, took {:?}",
        wall.elapsed()
    );
    // The slow-disk model stayed a faithful disk: everything recovers.
    let db2 =
        SharedDb::open_on(Arc::new(fs.reboot(false)), &path, DurabilityConfig::default())
            .unwrap();
    assert_eq!(db2.row_count("t"), Some(5));
}

/// The `group_commit: false` escape hatch keeps the PR-4 one-fsync-per-
/// commit path: exactly one batch per commit, same durability.
#[test]
fn group_commit_disabled_is_one_fsync_per_commit() {
    use std::path::PathBuf;
    use swan_sqlengine::{DurabilityConfig, SimFs};

    let fs = SimFs::new();
    let path = PathBuf::from("/sim/nogroup.wal");
    let config = DurabilityConfig { group_commit: false, ..Default::default() };
    let db = SharedDb::open_on(Arc::new(fs.clone()), &path, config).unwrap();
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)").unwrap();

    std::thread::scope(|s| {
        for t in 0..4 {
            let session = db.clone();
            s.spawn(move || {
                for i in 0..10 {
                    session.execute(&format!("INSERT INTO t VALUES ({})", t * 100 + i)).unwrap();
                }
            });
        }
    });

    let stats = db.commit_stats();
    assert_eq!(stats.commits, 41);
    assert_eq!(stats.batches, stats.commits, "no batching when disabled: {stats:?}");
    let db2 = SharedDb::open_on(Arc::new(fs.reboot(false)), &path, config).unwrap();
    assert_eq!(db2.row_count("t"), Some(40));
}

/// A transaction commit and auto-commits from other sessions batch
/// together without torn installs: the multi-table transaction appears
/// atomically even when its group shares a batch.
#[test]
fn txn_commits_batch_with_autocommits_atomically() {
    use std::path::PathBuf;
    use std::time::Duration;
    use swan_sqlengine::{DurabilityConfig, SimFs};

    let fs = SimFs::new();
    fs.set_sync_delay(Duration::from_micros(200));
    let path = PathBuf::from("/sim/mixed.wal");
    let db =
        SharedDb::open_on(Arc::new(fs.clone()), &path, DurabilityConfig::default()).unwrap();
    db.execute("CREATE TABLE a (id INTEGER PRIMARY KEY)").unwrap();
    db.execute("CREATE TABLE b (id INTEGER PRIMARY KEY)").unwrap();
    db.execute("CREATE TABLE side (id INTEGER PRIMARY KEY)").unwrap();

    std::thread::scope(|s| {
        // Transactional committers: a and b move in lockstep. Conflict
        // detection is row-granular (snapshot isolation, first committer
        // wins), so these disjoint-key inserts rebase rather than abort;
        // the retry loop stays as a guard for true overlaps.
        for t in 0..3usize {
            let shared = db.clone();
            s.spawn(move || {
                for i in 0..12 {
                    let id = t * 1000 + i;
                    loop {
                        let mut session = shared.session();
                        session.execute("BEGIN").unwrap();
                        session.execute(&format!("INSERT INTO a VALUES ({id})")).unwrap();
                        session.execute(&format!("INSERT INTO b VALUES ({id})")).unwrap();
                        match session.execute("COMMIT") {
                            Ok(_) => break,
                            Err(Error::Conflict(_)) => continue,
                            Err(e) => panic!("commit failed: {e}"),
                        }
                    }
                }
            });
        }
        // Auto-commit noise on a third table to fill batches.
        for t in 0..3usize {
            let shared = db.clone();
            s.spawn(move || {
                for i in 0..12 {
                    shared
                        .execute(&format!("INSERT INTO side VALUES ({})", t * 1000 + i))
                        .unwrap();
                }
            });
        }
    });

    assert_eq!(db.row_count("a"), Some(36));
    assert_eq!(db.row_count("b"), Some(36));
    assert_eq!(db.row_count("side"), Some(36));

    // Recovery sees the same atomic state.
    let db2 = SharedDb::open_on(
        Arc::new(fs.reboot(false)),
        &path,
        DurabilityConfig::default(),
    )
    .unwrap();
    assert_eq!(db2.row_count("a"), Some(36));
    assert_eq!(db2.row_count("b"), Some(36));
    assert_eq!(db2.row_count("side"), Some(36));
}

// ---------------------------------------------------------------------------
// MVCC version-chain GC: pins retain history, the watermark truncates it
// ---------------------------------------------------------------------------

/// A long-lived transaction pins the commit history: every commit that
/// lands while it is open stays retained (its snapshot reads remain
/// repeatable), and the moment the pin drops the watermark advances and
/// the whole chain is truncated.
#[test]
fn long_lived_snapshot_pins_history_until_it_closes() {
    let db = SharedDb::new();
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, n INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (0, 0)").unwrap();

    let mut reader = db.session();
    reader.execute("BEGIN").unwrap();
    let before = reader.query("SELECT n FROM t WHERE id = 0").unwrap().scalar().unwrap().clone();

    // Churn from other sessions while the reader's snapshot is pinned.
    for i in 1..=20 {
        db.execute(&format!("UPDATE t SET n = {i} WHERE id = 0")).unwrap();
    }
    let pinned = db.mvcc_stats();
    assert_eq!(pinned.pinned_snapshots, 1, "the open transaction holds one pin");
    assert_eq!(
        pinned.history_entries, 20,
        "every commit since the pinned snapshot is retained: {pinned:?}"
    );

    // Repeatable reads: the churn is invisible to the pinned snapshot.
    let after = reader.query("SELECT n FROM t WHERE id = 0").unwrap().scalar().unwrap().clone();
    assert_eq!(after, before, "pinned snapshot must not observe concurrent commits");
    reader.execute("ROLLBACK").unwrap();

    let unpinned = db.mvcc_stats();
    assert_eq!(unpinned.pinned_snapshots, 0);
    assert_eq!(
        unpinned.history_entries, 0,
        "dropping the last pin must truncate the version chain: {unpinned:?}"
    );
    assert_eq!(unpinned.watermark, unpinned.committed_seq, "watermark catches up");
}

/// With no open snapshots, commit history is garbage-collected inline:
/// memory stays bounded (empty, in fact) no matter how much write churn
/// the database absorbs.
#[test]
fn history_stays_empty_under_churn_without_pins() {
    let db = SharedDb::new();
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, n INTEGER)").unwrap();
    let seed: Vec<String> = (0..THREADS).map(|t| format!("({t}, 0)")).collect();
    db.execute(&format!("INSERT INTO t VALUES {}", seed.join(", "))).unwrap();

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let handle = db.clone();
            s.spawn(move || {
                for _ in 0..ITERS {
                    loop {
                        let mut session = handle.session();
                        session.execute("BEGIN").unwrap();
                        session
                            .execute(&format!("UPDATE t SET n = n + 1 WHERE id = {t}"))
                            .unwrap();
                        match session.execute("COMMIT") {
                            Ok(_) => break,
                            Err(Error::Conflict(_)) => continue,
                            Err(e) => panic!("unexpected commit error: {e}"),
                        }
                    }
                }
            });
        }
    });

    let stats = db.mvcc_stats();
    assert_eq!(stats.pinned_snapshots, 0, "no transaction left open: {stats:?}");
    assert_eq!(
        stats.history_entries, 0,
        "GC must truncate the chain as soon as commits are unpinned: {stats:?}"
    );
    assert!(
        stats.committed_seq >= (THREADS * ITERS) as u64,
        "every commit was sequenced: {stats:?}"
    );
    // And the workload itself was correct.
    let r = db.query("SELECT SUM(n) FROM t").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Integer((THREADS * ITERS) as i64)));
}

/// A session dropped mid-transaction (no COMMIT/ROLLBACK) must release
/// its snapshot pin, or the GC watermark would stall forever.
#[test]
fn dropped_session_releases_its_snapshot_pin() {
    let db = SharedDb::new();
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)").unwrap();

    {
        let mut session = db.session();
        session.execute("BEGIN").unwrap();
        session.execute("INSERT INTO t VALUES (1)").unwrap();
        assert_eq!(db.mvcc_stats().pinned_snapshots, 1);
        // Dropped without ending the transaction.
    }
    assert_eq!(db.mvcc_stats().pinned_snapshots, 0, "Drop must unpin");

    db.execute("INSERT INTO t VALUES (2)").unwrap();
    assert_eq!(db.mvcc_stats().history_entries, 0, "watermark must not stall");
    assert_eq!(db.row_count("t"), Some(1), "the abandoned transaction installed nothing");
}

// ---------------------------------------------------------------------------
// Group commit handback: big batches install outside the leader
// ---------------------------------------------------------------------------

/// With a low handback threshold, a contended group-commit leader hands
/// catalog installs back to the waiting committers instead of applying
/// the whole batch itself — and nothing is lost or reordered doing so.
#[test]
fn leader_hands_back_installs_on_contended_batches() {
    use std::path::PathBuf;
    use std::time::Duration;
    use swan_sqlengine::{DurabilityConfig, SimFs};

    const COMMITS_PER_THREAD: usize = 25;

    let fs = SimFs::new();
    // A slow fsync piles committers into multi-request batches.
    fs.set_sync_delay(Duration::from_micros(500));
    let path = PathBuf::from("/sim/handback.wal");
    let config = DurabilityConfig { handback_deltas: 1, ..Default::default() };
    let db = SharedDb::open_on(Arc::new(fs.clone()), &path, config).unwrap();
    for t in 0..THREADS {
        db.execute(&format!("CREATE TABLE h{t} (id INTEGER PRIMARY KEY, v INTEGER)"))
            .unwrap();
    }

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let session = db.clone();
            s.spawn(move || {
                for i in 0..COMMITS_PER_THREAD {
                    session
                        .execute(&format!("INSERT INTO h{t} VALUES ({i}, {})", i * 2))
                        .unwrap();
                }
            });
        }
    });

    let stats = db.commit_stats();
    assert_eq!(
        stats.commits,
        (THREADS * (COMMITS_PER_THREAD + 1)) as u64,
        "every commit acknowledged exactly once: {stats:?}"
    );
    assert!(
        stats.max_batch >= 2,
        "the sync delay must have formed at least one multi-request batch: {stats:?}"
    );
    assert!(
        stats.handback_installs > 0,
        "threshold 1 hands every multi-request batch back: {stats:?}"
    );

    // Handed-back installs are exactly as durable and as complete as
    // leader-applied ones.
    for t in 0..THREADS {
        assert_eq!(db.row_count(&format!("h{t}")), Some(COMMITS_PER_THREAD));
    }
    let db2 = SharedDb::open_on(Arc::new(fs.reboot(false)), &path, config).unwrap();
    for t in 0..THREADS {
        assert_eq!(db2.row_count(&format!("h{t}")), Some(COMMITS_PER_THREAD));
    }
}
