//! Crash-recovery harness for the write-ahead log.
//!
//! The central property (the ISSUE-4 acceptance bar): a database that
//! crashes mid-commit recovers to **either the pre-commit or the
//! post-commit state — never a torn mix**. The harness proves it
//! mechanically: it builds a durable database, runs one final
//! multi-statement transaction, then replays the crash at *every byte
//! offset* of the final commit's WAL record group — truncating the file
//! there, reopening, and diffing a canonical dump of every table against
//! the two legal states (byte-identical query results required).
//!
//! Alongside the torn-tail sweep: reopen round trips, single-session
//! `BEGIN`/`COMMIT`/`ROLLBACK` durability, auto-checkpoint compaction,
//! and the `execute_script` atomicity regression.

use std::path::PathBuf;

use swan_sqlengine::{Database, DurabilityConfig, Error, SharedDb};

/// A unique temp path per test (process + thread disambiguated).
fn temp_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "swan-recovery-{tag}-{}-{:?}.wal",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// Canonical dump: every table (sorted by name), its column names, and
/// every row rendered cell by cell. Byte-identical across equal states.
fn dump(db: &Database) -> String {
    let mut out = String::new();
    for name in db.catalog().table_names() {
        let r = db.query(&format!("SELECT * FROM {name}")).unwrap();
        out.push_str(&format!("== {name} ({}) ==\n", r.columns.join(",")));
        for row in &r.rows {
            let cells: Vec<String> = row.iter().map(|v| format!("{v:?}")).collect();
            out.push_str(&cells.join("\u{1}"));
            out.push('\n');
        }
    }
    out
}

#[test]
fn reopen_recovers_committed_state() {
    let path = temp_path("reopen");
    let before = {
        let mut db = Database::open(&path).unwrap();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, score REAL)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'ada', 3.5), (2, 'bob', -0.0)").unwrap();
        db.execute("UPDATE t SET score = score + 1 WHERE id = 1").unwrap();
        db.execute("DELETE FROM t WHERE id = 2").unwrap();
        dump(&db)
    };
    let db = Database::open(&path).unwrap();
    assert_eq!(dump(&db), before, "recovered state must be byte-identical");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn single_session_txn_commit_and_rollback_are_durable() {
    let path = temp_path("dbtxn");
    {
        let mut db = Database::open(&path).unwrap();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, n INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 10)").unwrap();

        db.execute("BEGIN").unwrap();
        assert!(db.in_transaction());
        db.execute("INSERT INTO t VALUES (2, 20)").unwrap();
        db.execute("UPDATE t SET n = n * 2 WHERE id = 1").unwrap();
        // The session reads its own uncommitted writes.
        assert_eq!(
            db.query("SELECT COUNT(*) FROM t").unwrap().scalar().unwrap().render(),
            "2"
        );
        db.execute("COMMIT").unwrap();

        db.execute("BEGIN TRANSACTION").unwrap();
        db.execute("DELETE FROM t").unwrap();
        db.execute("ROLLBACK").unwrap();
        assert!(!db.in_transaction());

        // Nested/dangling control is an error, not corruption.
        assert!(matches!(db.execute("COMMIT"), Err(Error::Txn(_))));
        assert!(matches!(db.execute("ROLLBACK"), Err(Error::Txn(_))));
    }
    let db = Database::open(&path).unwrap();
    assert_eq!(db.query("SELECT COUNT(*) FROM t").unwrap().scalar().unwrap().render(), "2");
    assert_eq!(
        db.query("SELECT n FROM t WHERE id = 1").unwrap().scalar().unwrap().render(),
        "20"
    );
    let _ = std::fs::remove_file(&path);
}

/// The torn-WAL sweep: truncate at every byte offset of the last commit's
/// record group and reopen. Recovery must always land on exactly the
/// pre-commit or the post-commit state.
#[test]
fn torn_commit_recovers_pre_or_post_state_at_every_offset() {
    let path = temp_path("torn-sweep");

    // Phase 1: the pre-commit state, fully durable.
    {
        let mut db = Database::open(&path).unwrap();
        db.execute("CREATE TABLE acct (id INTEGER PRIMARY KEY, bal INTEGER, tag TEXT)")
            .unwrap();
        db.execute("INSERT INTO acct VALUES (1, 100, 'a'), (2, 50, 'b'), (3, 0, 'a')")
            .unwrap();
        db.execute("CREATE TABLE audit (seq INTEGER PRIMARY KEY, note TEXT)").unwrap();
        db.execute("INSERT INTO audit VALUES (1, 'opened')").unwrap();
    }
    let pre_bytes = std::fs::read(&path).unwrap();
    let pre_dump = dump(&Database::open(&path).unwrap());

    // Phase 2: one multi-statement transaction touching both tables —
    // a transfer plus its audit row, the classic all-or-nothing pair.
    {
        let mut db = Database::open(&path).unwrap();
        db.execute_script(
            "BEGIN;
             UPDATE acct SET bal = bal - 30 WHERE id = 1;
             UPDATE acct SET bal = bal + 30 WHERE id = 2;
             INSERT INTO audit VALUES (2, 'transfer 30: 1 -> 2');
             COMMIT;",
        )
        .unwrap();
    }
    let post_bytes = std::fs::read(&path).unwrap();
    let post_dump = dump(&Database::open(&path).unwrap());
    assert_ne!(pre_dump, post_dump);
    assert!(post_bytes.len() > pre_bytes.len());
    assert_eq!(&post_bytes[..pre_bytes.len()], &pre_bytes[..], "WAL is append-only");

    // Phase 3: crash at every byte offset of the final record group.
    let mut saw_pre = 0usize;
    let mut saw_post = 0usize;
    for cut in pre_bytes.len()..=post_bytes.len() {
        std::fs::write(&path, &post_bytes[..cut]).unwrap();
        let recovered = Database::open(&path).unwrap();
        let d = dump(&recovered);
        if d == pre_dump {
            saw_pre += 1;
        } else if d == post_dump {
            saw_post += 1;
        } else {
            panic!(
                "cut at byte {cut}: torn state!\n-- recovered --\n{d}\n-- pre --\n{pre_dump}\n-- post --\n{post_dump}"
            );
        }

        // Recovery truncated the torn tail: a second open is a no-op and
        // the database accepts new commits from the clean boundary.
        let mut again = Database::open(&path).unwrap();
        assert_eq!(dump(&again), d, "recovery must be idempotent at cut {cut}");
        again.execute("INSERT INTO audit VALUES (90, 'post-recovery write')").unwrap();
        let reread = Database::open(&path).unwrap();
        assert!(
            dump(&reread).contains("post-recovery write"),
            "cut {cut}: writes after recovery must be durable"
        );
    }
    assert!(saw_pre > 0, "some truncations must roll the commit back");
    assert_eq!(saw_post, 1, "only the intact file holds the post state");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn execute_script_txn_atomicity_on_database() {
    let path = temp_path("script-atomic");
    {
        let mut db = Database::open(&path).unwrap();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, n INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 10)").unwrap();

        // Mid-script failure inside BEGIN…COMMIT: whole span rolls back.
        let err = db
            .execute_script(
                "BEGIN;
                 INSERT INTO t VALUES (2, 20);
                 INSERT INTO t VALUES (1, 99);
                 COMMIT;",
            )
            .unwrap_err();
        assert!(matches!(err, Error::Constraint(_)));
        assert!(!db.in_transaction(), "failed script span must close its transaction");
        assert_eq!(db.query("SELECT COUNT(*) FROM t").unwrap().scalar().unwrap().render(), "1");

        // Outside a transaction, per-statement commit is preserved.
        let err = db
            .execute_script("INSERT INTO t VALUES (2, 20); INSERT INTO t VALUES (1, 99);")
            .unwrap_err();
        assert!(matches!(err, Error::Constraint(_)));
        assert_eq!(db.query("SELECT COUNT(*) FROM t").unwrap().scalar().unwrap().render(), "2");

        // A transaction opened before the script survives a failing
        // statement inside the script (SQLite semantics).
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO t VALUES (3, 30)").unwrap();
        let err = db.execute_script("INSERT INTO t VALUES (1, 99);").unwrap_err();
        assert!(matches!(err, Error::Constraint(_)));
        assert!(db.in_transaction(), "pre-existing transaction stays open");
        db.execute("COMMIT").unwrap();
        assert_eq!(db.query("SELECT COUNT(*) FROM t").unwrap().scalar().unwrap().render(), "3");
    }
    // Only the committed effects are durable.
    let db = Database::open(&path).unwrap();
    assert_eq!(db.query("SELECT COUNT(*) FROM t").unwrap().scalar().unwrap().render(), "3");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn auto_checkpoint_compacts_and_preserves_state() {
    let path = temp_path("auto-ckpt");
    let config = DurabilityConfig { checkpoint_bytes: 2048, ..Default::default() };
    let before = {
        let mut db = Database::open_with(&path, config).unwrap();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, blob TEXT)").unwrap();
        for i in 0..200 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, '{}')", "x".repeat(64))).unwrap();
        }
        dump(&db)
    };
    let wal_size = std::fs::metadata(&path).unwrap().len();
    // 200 inserts × ~80 bytes each would exceed 16 KiB uncompacted; the
    // auto-checkpoint keeps the log near one full image of the table.
    assert!(
        wal_size < 64 * 1024,
        "auto-checkpoint must bound the log (got {wal_size} bytes)"
    );
    let db = Database::open_with(&path, config).unwrap();
    assert_eq!(dump(&db), before);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn shared_db_commits_are_durable_across_reopen() {
    let path = temp_path("shared-durable");
    {
        let db = SharedDb::open(&path).unwrap();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, n INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 10), (2, 20)").unwrap();

        // A session transaction: committed atomically, logged atomically.
        let mut session = db.session();
        session.execute("BEGIN").unwrap();
        session.execute("INSERT INTO t VALUES (3, 30)").unwrap();
        session.execute("UPDATE t SET n = 0 WHERE id = 1").unwrap();
        session.execute("COMMIT").unwrap();

        // A rolled-back transaction leaves no trace on disk.
        let mut session = db.session();
        session.execute("BEGIN").unwrap();
        session.execute("DELETE FROM t").unwrap();
        session.execute("ROLLBACK").unwrap();
    }
    let db = SharedDb::open(&path).unwrap();
    assert_eq!(db.row_count("t"), Some(3));
    assert_eq!(
        db.query("SELECT n FROM t WHERE id = 1").unwrap().scalar().unwrap().render(),
        "0"
    );
    let _ = std::fs::remove_file(&path);
}

/// Recovery replays interleaved auto-commits and transactions in commit
/// order: the recovered table equals the in-memory end state exactly.
#[test]
fn interleaved_autocommit_and_txn_replay_in_order() {
    let path = temp_path("interleave");
    let before = {
        let db = SharedDb::open(&path).unwrap();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, n INTEGER)").unwrap();
        for i in 0..10 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, 0)")).unwrap();
        }
        let mut session = db.session();
        session.execute("BEGIN").unwrap();
        session.execute("UPDATE t SET n = n + 1").unwrap();
        // An auto-commit interleaves on a *different* table while the
        // transaction is open (same-table would conflict by design).
        db.execute("CREATE TABLE side (x INTEGER)").unwrap();
        db.execute("INSERT INTO side VALUES (42)").unwrap();
        session.execute("COMMIT").unwrap();
        db.execute("INSERT INTO t VALUES (10, 99)").unwrap();
        dump(&db.snapshot())
    };
    let db = SharedDb::open(&path).unwrap();
    assert_eq!(dump(&db.snapshot()), before);
    let _ = std::fs::remove_file(&path);
}
