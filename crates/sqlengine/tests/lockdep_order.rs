//! Runtime lock-order validation (lockdep) exercised at the engine
//! level. The vendored `parking_lot` shim tracks every ranked lock a
//! thread holds and panics on rank inversion or a lock-order cycle —
//! active in debug builds and whenever `SWAN_LOCKDEP=1` (see
//! ANALYSIS.md for the rank table).
//!
//! Three claims are pinned here:
//! 1. A seeded rank inversion is *detected*, and the panic names both
//!    locks involved — the report a deadlock hunter actually needs.
//! 2. The multi-table transaction commit path stays silent at 8 threads:
//!    the engine sorts table writers before acquiring them, so the
//!    textual statement order inside a transaction cannot invert ranks.
//! 3. The leader/follower group-commit path (commit queue, condvar
//!    hand-off, WAL, sim fs) stays silent at 8 threads.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{lockdep, Mutex};
use swan_sqlengine::value::Value;
use swan_sqlengine::{DurabilityConfig, Error, SharedDb, SimFs};

const THREADS: usize = 8;
const ITERS: usize = 20;

/// Claim 1: acquiring a low-rank lock while holding a high-rank lock
/// panics, and the message names both lock classes.
#[test]
fn seeded_rank_inversion_panics_with_both_lock_names() {
    if !lockdep::enabled() {
        // Release build without SWAN_LOCKDEP=1: the validator is compiled
        // out of the hot path and there is nothing to observe.
        return;
    }

    // Unique class names: the lock-order registry is global and
    // persists across tests in this process.
    static HIGH: Mutex<u32> = Mutex::with_rank("probe_inversion_high", 700, 0);
    static LOW: Mutex<u32> = Mutex::with_rank("probe_inversion_low", 7, 0);

    // A fresh thread keeps this thread's held-lock stack out of the
    // blast radius; unwinding drops the guard and unwinds its stack.
    let result = std::thread::Builder::new()
        .name("inversion-probe".into())
        .spawn(|| {
            let _outer = HIGH.lock();
            let _inner = LOW.lock(); // rank 7 under rank 700: must panic
        })
        .expect("spawn probe thread")
        .join();

    let payload = result.expect_err("rank inversion must panic under lockdep");
    let msg = payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .expect("panic payload should be a string");
    assert!(msg.contains("rank inversion"), "unexpected panic message: {msg}");
    assert!(
        msg.contains("probe_inversion_high") && msg.contains("probe_inversion_low"),
        "panic must name both locks for diagnosability: {msg}"
    );
}

/// Claim 2: 8 threads hammer transactions spanning two tables, half of
/// them writing the tables in the *opposite textual order*. The commit
/// path acquires table writers in sorted order, so lockdep stays silent
/// and every increment survives.
#[test]
fn sorted_multi_table_commits_stay_silent_at_8_threads() {
    let db = SharedDb::new();
    db.execute("CREATE TABLE alpha (id INTEGER PRIMARY KEY, n INTEGER)").unwrap();
    db.execute("CREATE TABLE beta (id INTEGER PRIMARY KEY, n INTEGER)").unwrap();
    for t in 0..THREADS {
        db.execute(&format!("INSERT INTO alpha VALUES ({t}, 0)")).unwrap();
        db.execute(&format!("INSERT INTO beta VALUES ({t}, 0)")).unwrap();
    }

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let handle = db.clone();
            s.spawn(move || {
                for i in 0..ITERS {
                    // Alternate the statement order: if lock acquisition
                    // followed SQL text, threads running (alpha, beta)
                    // against threads running (beta, alpha) would deadlock
                    // or trip lockdep. Sorted acquisition makes both safe.
                    let (first, second) =
                        if (t + i) % 2 == 0 { ("alpha", "beta") } else { ("beta", "alpha") };
                    loop {
                        let mut session = handle.session();
                        session.execute("BEGIN").unwrap();
                        session
                            .execute(&format!("UPDATE {first} SET n = n + 1 WHERE id = {t}"))
                            .unwrap();
                        session
                            .execute(&format!("UPDATE {second} SET n = n + 1 WHERE id = {t}"))
                            .unwrap();
                        match session.execute("COMMIT") {
                            Ok(_) => break,
                            Err(Error::Conflict(_)) => continue,
                            Err(e) => panic!("unexpected commit error: {e}"),
                        }
                    }
                }
            });
        }
    });

    for table in ["alpha", "beta"] {
        let r = db.query(&format!("SELECT SUM(n) FROM {table}")).unwrap();
        assert_eq!(
            r.scalar(),
            Some(&Value::Integer((THREADS * ITERS) as i64)),
            "{table}: transactional increments must all land"
        );
    }
    assert_eq!(lockdep::held_count(), 0, "main thread leaked a lock hold");
}

/// Claim 3: the leader/follower group-commit path — commit queue mutex,
/// condvar hand-off to followers, WAL mutex, sim-fs state — runs clean
/// under lockdep with 8 contending committers and a slow fsync forcing
/// real batching.
#[test]
fn group_commit_stays_silent_at_8_threads() {
    let fs = SimFs::new();
    fs.set_sync_delay(Duration::from_micros(200));
    let path = PathBuf::from("/sim/lockdep_group.wal");
    let db =
        SharedDb::open_on(Arc::new(fs.clone()), &path, DurabilityConfig::default()).unwrap();
    db.execute("CREATE TABLE g (id INTEGER PRIMARY KEY, t INTEGER)").unwrap();

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let session = db.clone();
            s.spawn(move || {
                for i in 0..ITERS {
                    let id = (t * ITERS + i) as i64;
                    session.execute(&format!("INSERT INTO g VALUES ({id}, {t})")).unwrap();
                }
            });
        }
    });

    let stats = db.commit_stats();
    assert_eq!(stats.commits, (THREADS * ITERS) as u64 + 1, "CREATE + every INSERT");
    assert_eq!(db.row_count("g"), Some(THREADS * ITERS));
    assert_eq!(lockdep::held_count(), 0, "main thread leaked a lock hold");
}
