//! Row-level conflict detection: the regression suite for the false-
//! conflict bug. Under table-granular validation, two transactions
//! updating *different rows* of the same table would abort each other;
//! write sets are now tracked per primary key, so disjoint-row
//! transactions commit concurrently and only true row overlaps (or DDL)
//! abort with first-committer-wins.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use swan_sqlengine::value::Value;
use swan_sqlengine::{Error, SharedDb};

fn accounts_db() -> SharedDb {
    let db = SharedDb::new();
    db.execute("CREATE TABLE accounts (id INTEGER PRIMARY KEY, balance INTEGER)").unwrap();
    db.execute("INSERT INTO accounts VALUES (1, 100), (2, 200), (3, 300), (4, 400)").unwrap();
    db
}

/// The original bug, verbatim: two sessions, one table, different PKs.
/// Both transactions overlap in time and both must commit.
#[test]
fn disjoint_row_updates_to_one_table_both_commit() {
    let db = accounts_db();

    let mut s1 = db.session();
    let mut s2 = db.session();
    s1.execute("BEGIN").unwrap();
    s2.execute("BEGIN").unwrap();
    s1.execute("UPDATE accounts SET balance = 101 WHERE id = 1").unwrap();
    s2.execute("UPDATE accounts SET balance = 202 WHERE id = 2").unwrap();
    s1.execute("COMMIT").unwrap();
    // Previously: Error::Conflict ("table changed since txn began") even
    // though the write sets are disjoint. Now s2 rebases onto s1's commit.
    s2.execute("COMMIT").expect("disjoint-row transactions must not conflict");

    let r = db.query("SELECT balance FROM accounts ORDER BY id").unwrap();
    let balances: Vec<_> = r.rows.iter().map(|row| row[0].clone()).collect();
    assert_eq!(
        balances,
        vec![
            Value::Integer(101),
            Value::Integer(202),
            Value::Integer(300),
            Value::Integer(400)
        ],
        "both disjoint commits must land"
    );
}

/// Acceptance bar from the issue: an 8-thread workload where every
/// thread updates its own row of one shared table commits with **zero**
/// conflict aborts.
#[test]
fn eight_threads_on_disjoint_rows_see_zero_conflicts() {
    const THREADS: usize = 8;
    const ITERS: usize = 40;

    let db = SharedDb::new();
    db.execute("CREATE TABLE hot (id INTEGER PRIMARY KEY, n INTEGER)").unwrap();
    let seed: Vec<String> = (0..THREADS).map(|t| format!("({t}, 0)")).collect();
    db.execute(&format!("INSERT INTO hot VALUES {}", seed.join(", "))).unwrap();

    let conflicts = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let handle = db.clone();
            let conflicts = &conflicts;
            s.spawn(move || {
                for _ in 0..ITERS {
                    let mut session = handle.session();
                    session.execute("BEGIN").unwrap();
                    session
                        .execute(&format!("UPDATE hot SET n = n + 1 WHERE id = {t}"))
                        .unwrap();
                    match session.execute("COMMIT") {
                        Ok(_) => {}
                        Err(Error::Conflict(_)) => {
                            conflicts.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected commit error: {e}"),
                    }
                }
            });
        }
    });

    assert_eq!(
        conflicts.load(Ordering::Relaxed),
        0,
        "disjoint-row writers must never abort each other"
    );
    let r = db.query("SELECT SUM(n) FROM hot").unwrap();
    assert_eq!(
        r.scalar(),
        Some(&Value::Integer((THREADS * ITERS) as i64)),
        "zero aborts and zero lost updates"
    );
}

/// True overlaps still abort: both transactions write row 1, the first
/// committer wins, the second gets `Error::Conflict`.
#[test]
fn same_row_writers_still_conflict_first_committer_wins() {
    let db = accounts_db();

    let mut s1 = db.session();
    let mut s2 = db.session();
    s1.execute("BEGIN").unwrap();
    s2.execute("BEGIN").unwrap();
    s1.execute("UPDATE accounts SET balance = balance + 10 WHERE id = 1").unwrap();
    s2.execute("UPDATE accounts SET balance = balance - 10 WHERE id = 1").unwrap();
    s1.execute("COMMIT").unwrap();
    match s2.execute("COMMIT") {
        Err(Error::Conflict(_)) => {}
        other => panic!("second writer of row 1 must abort, got {other:?}"),
    }

    // The loser installed nothing: only the winner's write is visible.
    let r = db.query("SELECT balance FROM accounts WHERE id = 1").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Integer(110)));
}

/// The conflict message names the overlapping rows and renders versions
/// as plain numbers (or `absent`) — never Rust debug forms like
/// `Some(3)` / `None`.
#[test]
fn conflict_message_names_rows_and_renders_versions_plainly() {
    let db = accounts_db();

    let mut s1 = db.session();
    let mut s2 = db.session();
    s1.execute("BEGIN").unwrap();
    s2.execute("BEGIN").unwrap();
    s1.execute("UPDATE accounts SET balance = 0 WHERE id = 3").unwrap();
    s2.execute("UPDATE accounts SET balance = 1 WHERE id = 3").unwrap();
    s1.execute("COMMIT").unwrap();
    let msg = match s2.execute("COMMIT") {
        Err(Error::Conflict(m)) => m,
        other => panic!("expected a conflict, got {other:?}"),
    };

    assert!(msg.contains("rows [3]"), "message must name the conflicting row: {msg}");
    assert!(msg.contains("'accounts'"), "message must name the table: {msg}");
    assert!(msg.contains("first committer wins"), "message must state the policy: {msg}");
    assert!(
        !msg.contains("Some(") && !msg.contains("None"),
        "versions must render as plain numbers or 'absent', not debug forms: {msg}"
    );
}

/// Dropping a table a concurrent transaction wrote remains a (whole-
/// table) conflict: row-level tracking never weakens DDL safety.
#[test]
fn ddl_still_conflicts_at_table_granularity() {
    let db = accounts_db();

    let mut writer = db.session();
    writer.execute("BEGIN").unwrap();
    writer.execute("UPDATE accounts SET balance = 1 WHERE id = 1").unwrap();
    db.execute("DROP TABLE accounts").unwrap();
    let msg = match writer.execute("COMMIT") {
        Err(Error::Conflict(m)) => m,
        other => panic!("writing a dropped table must conflict, got {other:?}"),
    };
    assert!(
        msg.contains("absent"),
        "dropped table renders its live version as 'absent': {msg}"
    );
}

/// Insert/insert on the same new primary key is a row conflict; inserts
/// of different keys are not.
#[test]
fn insert_conflicts_follow_row_granularity() {
    let db = accounts_db();

    // Different new keys: both commit.
    let mut s1 = db.session();
    let mut s2 = db.session();
    s1.execute("BEGIN").unwrap();
    s2.execute("BEGIN").unwrap();
    s1.execute("INSERT INTO accounts VALUES (10, 0)").unwrap();
    s2.execute("INSERT INTO accounts VALUES (11, 0)").unwrap();
    s1.execute("COMMIT").unwrap();
    s2.execute("COMMIT").expect("inserts of distinct keys must both commit");

    // Same new key: the second committer aborts (no silent overwrite).
    let mut s3 = db.session();
    let mut s4 = db.session();
    s3.execute("BEGIN").unwrap();
    s4.execute("BEGIN").unwrap();
    s3.execute("INSERT INTO accounts VALUES (12, 1)").unwrap();
    s4.execute("INSERT INTO accounts VALUES (12, 2)").unwrap();
    s3.execute("COMMIT").unwrap();
    match s4.execute("COMMIT") {
        Err(Error::Conflict(_)) => {}
        other => panic!("duplicate-key racing inserts must conflict, got {other:?}"),
    }
    let r = db.query("SELECT balance FROM accounts WHERE id = 12").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Integer(1)), "first committer's insert wins");
}

/// Mixed disjoint DML — an UPDATE, a DELETE, and an INSERT on different
/// rows — all rebase cleanly onto each other.
#[test]
fn mixed_disjoint_dml_rebases_cleanly() {
    let db = accounts_db();

    let mut upd = db.session();
    let mut del = db.session();
    let mut ins = db.session();
    upd.execute("BEGIN").unwrap();
    del.execute("BEGIN").unwrap();
    ins.execute("BEGIN").unwrap();
    upd.execute("UPDATE accounts SET balance = 999 WHERE id = 1").unwrap();
    del.execute("DELETE FROM accounts WHERE id = 2").unwrap();
    ins.execute("INSERT INTO accounts VALUES (5, 500)").unwrap();
    upd.execute("COMMIT").unwrap();
    del.execute("COMMIT").expect("disjoint DELETE must rebase");
    ins.execute("COMMIT").expect("disjoint INSERT must rebase");

    let r = db.query("SELECT id, balance FROM accounts ORDER BY id").unwrap();
    let got: Vec<(i64, i64)> = r
        .rows
        .iter()
        .map(|row| (row[0].as_i64().unwrap(), row[1].as_i64().unwrap()))
        .collect();
    assert_eq!(got, vec![(1, 999), (3, 300), (4, 400), (5, 500)]);
}

/// Disjoint-row commits survive crash recovery: the rebased installs are
/// logged as row patches, and replaying them reproduces the exact
/// installed state.
#[test]
fn disjoint_commits_recover_identically_from_the_wal() {
    use std::path::PathBuf;
    use swan_sqlengine::{DurabilityConfig, SimFs};

    let fs = SimFs::new();
    let path = PathBuf::from("/sim/rowpatch.wal");
    let db =
        SharedDb::open_on(Arc::new(fs.clone()), &path, DurabilityConfig::default()).unwrap();
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)").unwrap();

    let mut s1 = db.session();
    let mut s2 = db.session();
    s1.execute("BEGIN").unwrap();
    s2.execute("BEGIN").unwrap();
    s1.execute("UPDATE t SET v = 11 WHERE id = 1").unwrap();
    s2.execute("DELETE FROM t WHERE id = 3").unwrap();
    s1.execute("COMMIT").unwrap();
    s2.execute("COMMIT").unwrap();

    let live = db.query("SELECT id, v FROM t ORDER BY id").unwrap();
    let db2 = SharedDb::open_on(
        Arc::new(fs.reboot(false)),
        &path,
        DurabilityConfig::default(),
    )
    .unwrap();
    let recovered = db2.query("SELECT id, v FROM t ORDER BY id").unwrap();
    assert_eq!(recovered.rows, live.rows, "replay must reproduce the installed state");
    assert_eq!(db2.row_count("t"), Some(2));
}
