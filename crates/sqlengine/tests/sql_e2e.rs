//! End-to-end SQL execution tests for the engine: every operator the SWAN
//! benchmark queries rely on, exercised through the public `Database` API.

use std::sync::Arc;

use swan_sqlengine::value::Value;
use swan_sqlengine::{Database, Error, OptimizerConfig, ScalarUdf};

/// A small two-table fixture mirroring the paper's motivating example.
fn hero_db() -> Database {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE superhero (
             id INTEGER PRIMARY KEY,
             hero_name TEXT,
             full_name TEXT,
             publisher_id INTEGER,
             height_cm INTEGER
         );
         CREATE TABLE publisher (id INTEGER PRIMARY KEY, publisher_name TEXT);
         INSERT INTO publisher VALUES (1, 'Marvel Comics'), (2, 'DC Comics'), (3, 'Dark Horse Comics');
         INSERT INTO superhero VALUES
             (1, 'Spider-Man', 'Peter Parker', 1, 178),
             (2, 'Batman', 'Bruce Wayne', 2, 188),
             (3, 'Superman', 'Clark Kent', 2, 191),
             (4, 'Hellboy', 'Anung Un Rama', 3, 180),
             (5, 'Iron Man', 'Tony Stark', 1, 185),
             (6, 'Mystery', NULL, NULL, NULL);",
    )
    .unwrap();
    db
}

fn texts(db: &Database, sql: &str) -> Vec<String> {
    db.query(sql)
        .unwrap()
        .rows
        .iter()
        .map(|r| r.iter().map(|v| v.render()).collect::<Vec<_>>().join("|"))
        .collect()
}

#[test]
fn select_where_order_limit() {
    let db = hero_db();
    let rows = texts(
        &db,
        "SELECT hero_name FROM superhero WHERE height_cm > 180 ORDER BY height_cm DESC LIMIT 2",
    );
    assert_eq!(rows, vec!["Superman", "Batman"]);
}

#[test]
fn inner_join_with_alias() {
    let db = hero_db();
    let rows = texts(
        &db,
        "SELECT T1.hero_name FROM superhero AS T1 \
         JOIN publisher AS T2 ON T1.publisher_id = T2.id \
         WHERE T2.publisher_name = 'Marvel Comics' ORDER BY T1.hero_name",
    );
    assert_eq!(rows, vec!["Iron Man", "Spider-Man"]);
}

#[test]
fn left_join_pads_nulls() {
    let db = hero_db();
    let r = db
        .query(
            "SELECT s.hero_name, p.publisher_name FROM superhero s \
             LEFT JOIN publisher p ON s.publisher_id = p.id \
             WHERE p.publisher_name IS NULL",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0].render(), "Mystery");
    assert!(r.rows[0][1].is_null());
}

#[test]
fn group_by_having_count() {
    let db = hero_db();
    let rows = texts(
        &db,
        "SELECT p.publisher_name, COUNT(*) FROM superhero s \
         JOIN publisher p ON s.publisher_id = p.id \
         GROUP BY p.publisher_name HAVING COUNT(*) >= 2 \
         ORDER BY p.publisher_name",
    );
    assert_eq!(rows, vec!["DC Comics|2", "Marvel Comics|2"]);
}

#[test]
fn aggregates_over_whole_table() {
    let db = hero_db();
    let r = db
        .query(
            "SELECT COUNT(*), COUNT(height_cm), AVG(height_cm), MIN(height_cm), \
             MAX(height_cm), SUM(height_cm) FROM superhero",
        )
        .unwrap();
    let row = &r.rows[0];
    assert_eq!(row[0], Value::Integer(6));
    assert_eq!(row[1], Value::Integer(5), "COUNT(col) skips NULL");
    assert_eq!(row[2], Value::Real(184.4));
    assert_eq!(row[3], Value::Integer(178));
    assert_eq!(row[4], Value::Integer(191));
    assert_eq!(row[5], Value::Integer(922));
}

#[test]
fn aggregate_on_empty_input_yields_one_row() {
    let db = hero_db();
    let r = db.query("SELECT COUNT(*), MAX(height_cm) FROM superhero WHERE id > 100").unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::Integer(0));
    assert!(r.rows[0][1].is_null());
}

#[test]
fn count_distinct_and_group_concat() {
    let db = hero_db();
    let r = db.query("SELECT COUNT(DISTINCT publisher_id) FROM superhero").unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(3));
    let r = db
        .query(
            "SELECT GROUP_CONCAT(hero_name, ', ') FROM superhero WHERE publisher_id = 1",
        )
        .unwrap();
    assert_eq!(r.rows[0][0].render(), "Spider-Man, Iron Man");
}

#[test]
fn distinct_dedupes() {
    let db = hero_db();
    let rows = texts(
        &db,
        "SELECT DISTINCT publisher_id FROM superhero WHERE publisher_id IS NOT NULL ORDER BY publisher_id",
    );
    assert_eq!(rows, vec!["1", "2", "3"]);
}

#[test]
fn order_by_alias_and_ordinal() {
    let db = hero_db();
    let rows = texts(&db, "SELECT hero_name AS h FROM superhero WHERE id <= 3 ORDER BY h");
    assert_eq!(rows, vec!["Batman", "Spider-Man", "Superman"]);
    let rows = texts(&db, "SELECT hero_name, height_cm FROM superhero WHERE id <= 3 ORDER BY 2 DESC");
    assert_eq!(rows[0], "Superman|191");
}

#[test]
fn order_by_expression_not_in_projection() {
    let db = hero_db();
    let rows = texts(
        &db,
        "SELECT hero_name FROM superhero WHERE height_cm IS NOT NULL ORDER BY height_cm LIMIT 1",
    );
    assert_eq!(rows, vec!["Spider-Man"]);
}

#[test]
fn limit_offset_both_forms() {
    let db = hero_db();
    let a = texts(&db, "SELECT id FROM superhero ORDER BY id LIMIT 2 OFFSET 1");
    let b = texts(&db, "SELECT id FROM superhero ORDER BY id LIMIT 1, 2");
    assert_eq!(a, vec!["2", "3"]);
    assert_eq!(a, b);
}

#[test]
fn in_subquery_and_scalar_subquery() {
    let db = hero_db();
    let rows = texts(
        &db,
        "SELECT hero_name FROM superhero WHERE publisher_id IN \
         (SELECT id FROM publisher WHERE publisher_name LIKE '%Marvel%') ORDER BY id",
    );
    assert_eq!(rows, vec!["Spider-Man", "Iron Man"]);
    let rows = texts(
        &db,
        "SELECT hero_name FROM superhero WHERE height_cm = \
         (SELECT MAX(height_cm) FROM superhero)",
    );
    assert_eq!(rows, vec!["Superman"]);
}

#[test]
fn correlated_subquery() {
    let db = hero_db();
    // Heroes taller than the average height of their own publisher.
    let rows = texts(
        &db,
        "SELECT s.hero_name FROM superhero s WHERE s.height_cm > \
         (SELECT AVG(h.height_cm) FROM superhero h WHERE h.publisher_id = s.publisher_id) \
         ORDER BY s.hero_name",
    );
    assert_eq!(rows, vec!["Iron Man", "Superman"]);
}

#[test]
fn exists_and_not_exists() {
    let db = hero_db();
    let rows = texts(
        &db,
        "SELECT p.publisher_name FROM publisher p WHERE EXISTS \
         (SELECT 1 FROM superhero s WHERE s.publisher_id = p.id AND s.height_cm > 190)",
    );
    assert_eq!(rows, vec!["DC Comics"]);
    let rows = texts(
        &db,
        "SELECT COUNT(*) FROM publisher p WHERE NOT EXISTS \
         (SELECT 1 FROM superhero s WHERE s.publisher_id = p.id)",
    );
    assert_eq!(rows, vec!["0"]);
}

#[test]
fn subquery_in_from() {
    let db = hero_db();
    let rows = texts(
        &db,
        "SELECT t.n FROM (SELECT publisher_id, COUNT(*) AS n FROM superhero \
         GROUP BY publisher_id) AS t WHERE t.publisher_id = 2",
    );
    assert_eq!(rows, vec!["2"]);
}

#[test]
fn compound_union_except_intersect() {
    let db = hero_db();
    let rows = texts(
        &db,
        "SELECT hero_name FROM superhero WHERE publisher_id = 1 \
         UNION SELECT hero_name FROM superhero WHERE height_cm > 184 ORDER BY 1",
    );
    assert_eq!(rows, vec!["Batman", "Iron Man", "Spider-Man", "Superman"]);
    let rows = texts(
        &db,
        "SELECT hero_name FROM superhero WHERE publisher_id = 2 \
         EXCEPT SELECT hero_name FROM superhero WHERE height_cm > 190",
    );
    assert_eq!(rows, vec!["Batman"]);
    let rows = texts(
        &db,
        "SELECT hero_name FROM superhero WHERE publisher_id = 2 \
         INTERSECT SELECT hero_name FROM superhero WHERE height_cm > 190",
    );
    assert_eq!(rows, vec!["Superman"]);
}

#[test]
fn case_when_in_projection() {
    let db = hero_db();
    let rows = texts(
        &db,
        "SELECT hero_name, CASE WHEN height_cm >= 185 THEN 'tall' \
         WHEN height_cm IS NULL THEN 'unknown' ELSE 'short' END FROM superhero ORDER BY id",
    );
    assert_eq!(rows[0], "Spider-Man|short");
    assert_eq!(rows[1], "Batman|tall");
    assert_eq!(rows[5], "Mystery|unknown");
}

#[test]
fn update_and_delete() {
    let mut db = hero_db();
    let r = db.execute("UPDATE superhero SET height_cm = height_cm + 1 WHERE publisher_id = 1").unwrap();
    assert_eq!(r.rows_affected, 2);
    assert_eq!(
        db.query("SELECT height_cm FROM superhero WHERE hero_name = 'Spider-Man'").unwrap().rows[0][0],
        Value::Integer(179)
    );
    let r = db.execute("DELETE FROM superhero WHERE publisher_id IS NULL").unwrap();
    assert_eq!(r.rows_affected, 1);
    assert_eq!(db.query("SELECT COUNT(*) FROM superhero").unwrap().rows[0][0], Value::Integer(5));
}

#[test]
fn insert_select_and_alter() {
    let mut db = hero_db();
    db.execute("CREATE TABLE tall (name TEXT)").unwrap();
    let r = db
        .execute("INSERT INTO tall SELECT hero_name FROM superhero WHERE height_cm > 184")
        .unwrap();
    assert_eq!(r.rows_affected, 3);
    db.execute("ALTER TABLE tall ADD COLUMN note TEXT").unwrap();
    let r = db.query("SELECT name, note FROM tall ORDER BY name").unwrap();
    assert_eq!(r.rows.len(), 3);
    assert!(r.rows[0][1].is_null());
}

#[test]
fn insert_named_columns_fills_null() {
    let mut db = hero_db();
    db.execute("INSERT INTO superhero (id, hero_name) VALUES (10, 'Flash')").unwrap();
    let r = db.query("SELECT full_name FROM superhero WHERE id = 10").unwrap();
    assert!(r.rows[0][0].is_null());
}

#[test]
fn pk_violation_reported() {
    let mut db = hero_db();
    let err = db.execute("INSERT INTO superhero VALUES (1, 'Dup', 'Dup', 1, 100)").unwrap_err();
    assert!(matches!(err, Error::Constraint(_)));
}

#[test]
fn udf_callable_from_sql() {
    struct Double;
    impl ScalarUdf for Double {
        fn name(&self) -> &str {
            "double_it"
        }
        fn invoke(&self, args: &[Value]) -> swan_sqlengine::Result<Value> {
            args[0].add(&args[0])
        }
        fn arity(&self) -> Option<usize> {
            Some(1)
        }
    }
    let mut db = hero_db();
    db.register_udf(Arc::new(Double));
    let r = db.query("SELECT double_it(height_cm) FROM superhero WHERE id = 1").unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(356));
    assert!(db.query("SELECT double_it(1, 2)").is_err(), "arity enforced");
}

#[test]
fn optimizer_toggles_do_not_change_results() {
    let sql = "SELECT s.hero_name FROM superhero s \
               JOIN publisher p ON s.publisher_id = p.id \
               WHERE p.publisher_name LIKE '%Comics' AND s.height_cm > 180 \
               ORDER BY s.hero_name";
    let reference = texts(&hero_db(), sql);
    for pushdown in [false, true] {
        for fold in [false, true] {
            for reorder in [false, true] {
                let mut db = hero_db();
                db.set_optimizer(OptimizerConfig {
                    pushdown,
                    order_expensive_last: false,
                    fold_constants: fold,
                    reorder_joins: reorder,
                    prune_columns: fold,
                    batch_expensive_udfs: pushdown,
                    ..Default::default()
                });
                assert_eq!(
                    texts(&db, sql),
                    reference,
                    "pushdown={pushdown} fold={fold} reorder={reorder}"
                );
            }
        }
    }
}

/// Regression: a nested join chain in already-optimal written order (no
/// Permute masking column pruning) must compute its pruned emit indices
/// against the *post-prune* child schemas — the stale-index variant
/// panicked with index-out-of-bounds.
#[test]
fn pruned_nested_join_chain_projects_inner_column() {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE a (x INTEGER, junk TEXT);
         CREATE TABLE b (y INTEGER);
         CREATE TABLE c (z INTEGER);
         INSERT INTO a VALUES (1, 'j');
         INSERT INTO b VALUES (1), (2);
         INSERT INTO c VALUES (1), (2), (3);",
    )
    .unwrap();
    let r = db
        .query("SELECT b.y FROM a JOIN b ON a.x = b.y JOIN c ON b.y = c.z")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::Integer(1));
}

/// Regression: a correlated subquery inside a join's ON condition reads
/// combined-row columns the predicate tree itself never names; the
/// nested-loop scratch row must carry them.
#[test]
fn correlated_subquery_in_on_condition() {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE a (x INTEGER);
         CREATE TABLE b (y INTEGER);
         CREATE TABLE t (k INTEGER);
         INSERT INTO a VALUES (1), (2);
         INSERT INTO b VALUES (10), (20);
         INSERT INTO t VALUES (10);",
    )
    .unwrap();
    let rows = texts(
        &db,
        "SELECT a.x, b.y FROM a LEFT JOIN b ON EXISTS \
         (SELECT 1 FROM t WHERE t.k = b.y) ORDER BY a.x",
    );
    assert_eq!(rows, vec!["1|10", "2|10"], "EXISTS must see b.y per pair");
}

/// Regression: an unqualified column that is ambiguous across the joined
/// tables must raise the same ambiguity error whether or not the optimizer
/// pushes/reorders predicates — it must never silently bind to one side.
#[test]
fn ambiguous_unqualified_column_errors_under_every_config() {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE a (id INTEGER, x INTEGER);
         CREATE TABLE b (id INTEGER, y INTEGER);
         INSERT INTO a VALUES (5, 1);
         INSERT INTO b VALUES (9, 2);",
    )
    .unwrap();
    let sql = "SELECT x FROM a, b WHERE id > 3";
    for optimized in [false, true] {
        let mut db = db.clone();
        if !optimized {
            db.set_optimizer(OptimizerConfig {
                pushdown: false,
                order_expensive_last: false,
                fold_constants: false,
                reorder_joins: false,
                prune_columns: false,
                batch_expensive_udfs: false,
                ..Default::default()
            });
        }
        let err = db.query(sql).unwrap_err();
        assert!(
            matches!(&err, Error::Semantic(m) if m.contains("ambiguous")),
            "optimized={optimized}: expected ambiguity error, got {err:?}"
        );
    }
}

/// Regression: column pruning must compose with join reordering — a
/// worst-order COUNT(*) chain gets both a Permute (from reordering) and
/// pruned emission, and still counts correctly.
#[test]
fn count_star_over_reordered_chain() {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE big (id INTEGER PRIMARY KEY, grp INTEGER);
         CREATE TABLE mid (id INTEGER PRIMARY KEY);
         CREATE TABLE tiny (id INTEGER PRIMARY KEY);",
    )
    .unwrap();
    for i in 0..50 {
        db.execute(&format!("INSERT INTO big VALUES ({i}, {})", i % 5)).unwrap();
    }
    for i in 0..5 {
        db.execute(&format!("INSERT INTO mid VALUES ({i})")).unwrap();
    }
    db.execute("INSERT INTO tiny VALUES (0), (1)").unwrap();
    let sql = "SELECT COUNT(*) FROM big JOIN mid ON big.grp = mid.id \
               JOIN tiny ON mid.id = tiny.id";
    let on = db.query(sql).unwrap();
    let mut off_db = db.clone();
    off_db.set_optimizer(OptimizerConfig {
        pushdown: false,
        order_expensive_last: false,
        fold_constants: false,
        reorder_joins: false,
        prune_columns: false,
        batch_expensive_udfs: false,
        ..Default::default()
    });
    let off = off_db.query(sql).unwrap();
    assert_eq!(on.rows, off.rows);
    assert_eq!(on.rows[0][0], Value::Integer(20), "10 rows per matching grp x 2 tiny");
}

#[test]
fn select_without_from() {
    let db = Database::new();
    let r = db.query("SELECT 1 + 1, 'x' || 'y'").unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(2));
    assert_eq!(r.rows[0][1].render(), "xy");
}

#[test]
fn three_table_join_chain() {
    let mut db = hero_db();
    db.execute_script(
        "CREATE TABLE power (hero_id INTEGER, power_name TEXT);
         INSERT INTO power VALUES (1, 'Wall Crawling'), (1, 'Spider Sense'),
             (3, 'Flight'), (5, 'Powered Armor');",
    )
    .unwrap();
    let rows = texts(
        &db,
        "SELECT s.hero_name, w.power_name, p.publisher_name \
         FROM superhero s JOIN power w ON w.hero_id = s.id \
         JOIN publisher p ON p.id = s.publisher_id \
         WHERE p.publisher_name = 'Marvel Comics' ORDER BY s.hero_name, w.power_name",
    );
    assert_eq!(
        rows,
        vec![
            "Iron Man|Powered Armor|Marvel Comics",
            "Spider-Man|Spider Sense|Marvel Comics",
            "Spider-Man|Wall Crawling|Marvel Comics",
        ]
    );
}

#[test]
fn cross_join_and_comma_join() {
    let db = hero_db();
    let r = db.query("SELECT COUNT(*) FROM publisher a CROSS JOIN publisher b").unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(9));
    let r = db
        .query("SELECT COUNT(*) FROM publisher a, publisher b WHERE a.id = b.id")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(3));
}

#[test]
fn null_handling_in_where() {
    let db = hero_db();
    // NULL height: neither > 100 nor <= 100.
    let r = db.query("SELECT COUNT(*) FROM superhero WHERE height_cm > 100 OR height_cm <= 100").unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(5));
}

#[test]
fn string_functions_in_queries() {
    let db = hero_db();
    let rows = texts(
        &db,
        "SELECT UPPER(SUBSTR(hero_name, 1, 3)) FROM superhero WHERE id = 1",
    );
    assert_eq!(rows, vec!["SPI"]);
}

#[test]
fn result_column_naming() {
    let db = hero_db();
    let r = db.query("SELECT hero_name, hero_name AS h, COUNT(*) FROM superhero").unwrap();
    assert_eq!(r.columns[0], "hero_name");
    assert_eq!(r.columns[1], "h");
    assert_eq!(r.columns[2], "COUNT(*)");
}

#[test]
fn union_all_keeps_duplicates() {
    let db = hero_db();
    let r = db
        .query("SELECT id FROM publisher UNION ALL SELECT id FROM publisher")
        .unwrap();
    assert_eq!(r.rows.len(), 6);
}

#[test]
fn qualified_wildcard_projection() {
    let db = hero_db();
    let r = db
        .query(
            "SELECT p.* FROM superhero s JOIN publisher p ON s.publisher_id = p.id WHERE s.id = 1",
        )
        .unwrap();
    assert_eq!(r.columns, vec!["id", "publisher_name"]);
    assert_eq!(r.rows[0][1].render(), "Marvel Comics");
}

#[test]
fn errors_are_reported_not_panics() {
    let mut db = hero_db();
    assert!(db.execute("SELECT nope FROM superhero").is_err());
    assert!(db.execute("SELECT * FROM missing_table").is_err());
    assert!(db.execute("CREATE TABLE superhero (x TEXT)").is_err());
    assert!(db.query("UPDATE superhero SET id = 1").is_err(), "query() rejects DML");
    assert!(db.execute("SELECT id FROM superhero ORDER BY 99").is_err());
}

// ---- batched expensive-UDF execution ---------------------------------------

/// An expensive UDF that records how it was driven: per-row `invoke`
/// tuples vs vectorized `invoke_batch` batches. Deterministic per input.
struct CountingLlm {
    invokes: std::sync::atomic::AtomicU64,
    batches: std::sync::atomic::AtomicU64,
    batched_tuples: std::sync::atomic::AtomicU64,
}

impl CountingLlm {
    fn new() -> Arc<Self> {
        Arc::new(CountingLlm {
            invokes: Default::default(),
            batches: Default::default(),
            batched_tuples: Default::default(),
        })
    }
}

impl ScalarUdf for CountingLlm {
    fn name(&self) -> &str {
        "llm_tag"
    }
    fn invoke(&self, args: &[Value]) -> swan_sqlengine::Result<Value> {
        self.invokes.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        let tag = args.iter().map(Value::render).collect::<Vec<_>>().join("-");
        Ok(Value::text(format!("v:{tag}")))
    }
    fn invoke_batch(&self, rows: &[Vec<Value>]) -> swan_sqlengine::Result<Vec<Value>> {
        self.batches.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        self.batched_tuples
            .fetch_add(rows.len() as u64, std::sync::atomic::Ordering::SeqCst);
        rows.iter()
            .map(|args| {
                let tag = args.iter().map(Value::render).collect::<Vec<_>>().join("-");
                Ok(Value::text(format!("v:{tag}")))
            })
            .collect()
    }
    fn is_expensive(&self) -> bool {
        true
    }
}

/// A WHERE-clause expensive call is answered by ONE `invoke_batch` over
/// the distinct argument tuples of the rows surviving the cheap conjunct
/// — zero per-row invocations.
#[test]
fn where_clause_udf_is_batched() {
    let udf = CountingLlm::new();
    let mut db = hero_db();
    db.register_udf(udf.clone());
    let rows = texts(
        &db,
        "SELECT hero_name FROM superhero \
         WHERE height_cm > 180 AND llm_tag('p', publisher_id) = 'v:p-2' \
         ORDER BY hero_name",
    );
    assert_eq!(rows, vec!["Batman", "Superman"]);
    assert_eq!(udf.batches.load(std::sync::atomic::Ordering::SeqCst), 1);
    // Cheap conjunct first: only the 3 heroes above 180cm reach the batch
    // (publisher_ids 2, 2, 1), so 2 distinct tuples.
    assert_eq!(udf.batched_tuples.load(std::sync::atomic::Ordering::SeqCst), 2);
    assert_eq!(udf.invokes.load(std::sync::atomic::Ordering::SeqCst), 0);
}

/// An expensive call in a JOIN ON key is batched over the side that
/// computes it — including over a subquery source.
#[test]
fn join_on_udf_over_subquery_source_is_batched() {
    let udf = CountingLlm::new();
    let mut db = hero_db();
    db.register_udf(udf.clone());
    let rows = texts(
        &db,
        "SELECT COUNT(*) FROM (SELECT hero_name, publisher_id FROM superhero) h \
         JOIN publisher p ON llm_tag('q', h.publisher_id) = 'v:q-' || p.id",
    );
    assert_eq!(rows, vec!["5"], "every non-NULL publisher_id matches its publisher");
    // 6 heroes, publisher_ids {1, 2, 3, NULL}: one batch of 4 tuples.
    assert_eq!(udf.batches.load(std::sync::atomic::Ordering::SeqCst), 1);
    assert_eq!(udf.batched_tuples.load(std::sync::atomic::Ordering::SeqCst), 4);
    assert_eq!(udf.invokes.load(std::sync::atomic::Ordering::SeqCst), 0);
}

/// Projection, HAVING, and nested-loop ON sites batch too, and disabling
/// the rule reproduces per-row execution with identical results.
#[test]
fn batched_and_per_row_execution_agree() {
    let queries = [
        "SELECT hero_name, llm_tag('proj', height_cm) FROM superhero ORDER BY hero_name",
        "SELECT publisher_id, COUNT(*) FROM superhero GROUP BY publisher_id \
         HAVING llm_tag('h', publisher_id) <> 'v:h-1' ORDER BY publisher_id",
        "SELECT h.hero_name FROM superhero h JOIN publisher p \
         ON llm_tag('o', h.publisher_id) = 'v:o-2' OR p.id = 1 \
         ORDER BY h.hero_name, p.id",
        "SELECT hero_name FROM superhero WHERE llm_tag('w', id) LIKE 'v:%' ORDER BY 1",
    ];
    for sql in queries {
        let batched_udf = CountingLlm::new();
        let mut batched = hero_db();
        batched.register_udf(batched_udf.clone());

        let per_row_udf = CountingLlm::new();
        let mut per_row = hero_db();
        per_row.register_udf(per_row_udf.clone());
        per_row.set_optimizer(OptimizerConfig {
            batch_expensive_udfs: false,
            ..Default::default()
        });

        assert_eq!(texts(&batched, sql), texts(&per_row, sql), "{sql}");
        let batched_calls = batched_udf.invokes.load(std::sync::atomic::Ordering::SeqCst)
            + batched_udf.batched_tuples.load(std::sync::atomic::Ordering::SeqCst);
        let per_row_calls = per_row_udf.invokes.load(std::sync::atomic::Ordering::SeqCst);
        assert!(
            batched_calls <= per_row_calls,
            "{sql}: batched {batched_calls} > per-row {per_row_calls}"
        );
    }
}

/// Sites in conditionally-evaluated positions are left to the per-row
/// path: batching must not pay for calls CASE would have skipped.
#[test]
fn case_guarded_udf_not_eagerly_batched() {
    let udf = CountingLlm::new();
    let mut db = hero_db();
    db.register_udf(udf.clone());
    let rows = texts(
        &db,
        "SELECT CASE WHEN height_cm > 185 THEN llm_tag('g', hero_name) ELSE 'skip' END \
         FROM superhero ORDER BY id",
    );
    assert_eq!(rows.len(), 6);
    // Only Batman (188) and Superman (191) pass the guard: two per-row
    // invocations, zero eagerly-batched tuples.
    assert_eq!(udf.batched_tuples.load(std::sync::atomic::Ordering::SeqCst), 0);
    assert_eq!(udf.invokes.load(std::sync::atomic::Ordering::SeqCst), 2);
}

/// The result store keys tuples by exact value identity: an Integer and a
/// Real that are SQL-equal still get their own invocations (their
/// rendered argument text differs, so a shared slot would serve one row
/// the other's answer).
#[test]
fn udf_result_store_distinguishes_integer_and_real() {
    let udf = CountingLlm::new();
    let mut db = Database::new();
    db.execute("CREATE TABLE v (x)").unwrap();
    db.execute("INSERT INTO v VALUES (1), (1.0)").unwrap();
    db.register_udf(udf.clone());
    let r = db.query("SELECT llm_tag('t', x) FROM v").unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(
        udf.batched_tuples.load(std::sync::atomic::Ordering::SeqCst),
        2,
        "Integer(1) and Real(1.0) are distinct argument tuples"
    );
}

/// HAVING-rejected groups never pay for projection or sort-key UDF calls:
/// the output-site prefetch runs only over the surviving groups.
#[test]
fn having_rejected_groups_pay_no_projection_calls() {
    let udf = CountingLlm::new();
    let mut db = hero_db();
    db.register_udf(udf.clone());
    let r = db
        .query(
            "SELECT publisher_id, llm_tag('p', publisher_id) FROM superhero \
             GROUP BY publisher_id HAVING COUNT(*) > 10",
        )
        .unwrap();
    assert!(r.rows.is_empty(), "no group has more than 10 heroes");
    assert_eq!(udf.batched_tuples.load(std::sync::atomic::Ordering::SeqCst), 0);
    assert_eq!(udf.invokes.load(std::sync::atomic::Ordering::SeqCst), 0);
}
