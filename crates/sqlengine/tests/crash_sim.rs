//! Deterministic crash-simulation harness over the fault-injecting VFS.
//!
//! Where `wal_recovery.rs` truncates a *finished* log file, this harness
//! attacks the durability path **while it runs**: it replays each
//! schedule with a fault injected at *every* [`SimFs`] operation index —
//! a transient I/O error ([`FaultKind::FailOp`]) and a crash that
//! freezes the filesystem with the in-flight operation torn to three
//! degrees ([`FaultKind::Crash`] × [`Torn`]) — then reboots both disk
//! images a real kernel could leave behind (everything-unsynced-lost and
//! everything-flushed) and checks the crash contract:
//!
//! 1. **Acknowledged commits are never lost** — a commit whose execute
//!    call returned `Ok` was fsynced first, so it must be present after
//!    every reboot;
//! 2. **Recovery is never torn** — the recovered state is byte-identical
//!    (canonical dump) to the state after some prefix of the
//!    acknowledged commit sequence, at most extended by the single
//!    commit that was in flight when the fault hit — never a partial
//!    transaction, never a reordering;
//! 3. **Recovery is idempotent** — reopening the recovered image again
//!    changes nothing.
//!
//! Four schedules cover the paths the ISSUE names: serial commits
//! (auto-commit + multi-statement transactions), the same schedule under
//! aggressive auto-checkpointing (tmp + rename + dir-sync dance),
//! concurrent group commit on a [`SharedDb`], and fault injection inside
//! recovery itself.

use std::path::PathBuf;
use std::sync::Arc;

use swan_sqlengine::{
    Database, DurabilityConfig, FaultKind, SharedDb, SimFs, Torn,
};

const WAL: &str = "/sim/db.wal";

fn wal_path() -> PathBuf {
    PathBuf::from(WAL)
}

/// Every fault the sweep injects at each operation index.
const FAULTS: [FaultKind; 4] = [
    FaultKind::FailOp,
    FaultKind::Crash(Torn::None),
    FaultKind::Crash(Torn::Half),
    FaultKind::Crash(Torn::Full),
];

/// Canonical dump: every table (sorted by name), its column names, and
/// every row rendered cell by cell. Byte-identical across equal states.
fn dump(db: &Database) -> String {
    let mut out = String::new();
    for name in db.catalog().table_names() {
        let r = db.query(&format!("SELECT * FROM {name}")).unwrap();
        out.push_str(&format!("== {name} ({}) ==\n", r.columns.join(",")));
        for row in &r.rows {
            let cells: Vec<String> = row.iter().map(|v| format!("{v:?}")).collect();
            out.push_str(&cells.join("\u{1}"));
            out.push('\n');
        }
    }
    out
}

fn open_sim(fs: &SimFs, config: DurabilityConfig) -> swan_sqlengine::Result<Database> {
    Database::open_on(Arc::new(fs.clone()), wal_path(), config)
}

// ---------------------------------------------------------------------------
// Serial schedules: commits + checkpoints
// ---------------------------------------------------------------------------

/// One commit per step: auto-commit DDL/DML (Put, Append and Drop
/// deltas) and multi-statement `BEGIN … COMMIT` spans (single- and
/// multi-table).
fn commit_steps() -> Vec<&'static str> {
    vec![
        "CREATE TABLE acct (id INTEGER PRIMARY KEY, bal INTEGER, tag TEXT)",
        "INSERT INTO acct VALUES (1, 100, 'a'), (2, 50, 'b'), (3, 0, 'c')",
        "BEGIN;
         UPDATE acct SET bal = bal - 30 WHERE id = 1;
         UPDATE acct SET bal = bal + 30 WHERE id = 2;
         INSERT INTO acct VALUES (4, 1, 'd');
         COMMIT;",
        "CREATE TABLE audit (seq INTEGER PRIMARY KEY, note TEXT)",
        "INSERT INTO audit VALUES (1, 'opened')",
        "BEGIN;
         INSERT INTO audit VALUES (2, 'transfer');
         UPDATE acct SET tag = 'z' WHERE id = 3;
         COMMIT;",
        "DELETE FROM acct WHERE id = 2",
        "DROP TABLE audit",
    ]
}

/// Outcome of one faulted serial run.
struct SerialRun {
    fs: SimFs,
    /// Dump of the state holding exactly the acknowledged commits.
    acked_state: String,
    /// Dump including the commit in flight when the first failure hit
    /// (if that commit was applicable) — a crash may legally persist it.
    with_in_flight: Option<String>,
    any_failed: bool,
}

/// Run the serial schedule with an optional fault, mirroring every
/// *acknowledged* step onto an in-memory shadow database — the ground
/// truth for what recovery must reproduce.
fn run_serial(
    config: DurabilityConfig,
    steps: &[&str],
    faults: &[(u64, FaultKind)],
) -> SerialRun {
    let fs = SimFs::new();
    for &(at, kind) in faults {
        fs.add_fault(at, kind);
    }
    let mut shadow = Database::new();
    let mut with_in_flight = None;
    let mut any_failed = false;
    if let Ok(mut db) = open_sim(&fs, config) {
        for step in steps {
            match db.execute_script(step) {
                Ok(_) => {
                    shadow.execute_script(step).expect("shadow mirrors the live schedule");
                }
                Err(_) => {
                    if !any_failed {
                        // The in-flight commit: a crash may have persisted
                        // its complete group even though it was never
                        // acknowledged.
                        let mut probe = shadow.clone();
                        if probe.execute_script(step).is_ok() {
                            with_in_flight = Some(dump(&probe));
                        }
                    }
                    any_failed = true;
                }
            }
        }
    } else {
        any_failed = true;
    }
    SerialRun { fs, acked_state: dump(&shadow), with_in_flight, any_failed }
}

/// Reboot both kernel images, recover each, and assert the crash
/// contract against the allowed states.
fn check_recovery(fs: &SimFs, config: DurabilityConfig, allowed: &[&String], ctx: &str) {
    for keep_unsynced in [false, true] {
        let image = fs.reboot(keep_unsynced);
        let db = open_sim(&image, config).unwrap_or_else(|e| {
            panic!("{ctx} keep_unsynced={keep_unsynced}: recovery must succeed on a clean reboot: {e}\nops:\n{}",
                fs.ops().join("\n"))
        });
        let recovered = dump(&db);
        assert!(
            allowed.iter().any(|a| **a == recovered),
            "{ctx} keep_unsynced={keep_unsynced}: torn recovery!\n-- recovered --\n{recovered}\n-- allowed --\n{}\nops:\n{}",
            allowed.iter().map(|a| a.as_str()).collect::<Vec<_>>().join("\n----\n"),
            fs.ops().join("\n"),
        );
        drop(db);
        // Idempotent: recovering the recovered image is a no-op.
        let again = open_sim(&image, config).unwrap();
        assert_eq!(dump(&again), recovered, "{ctx}: recovery must be idempotent");
    }
}

/// Sweep every fault kind through every operation index of the standard
/// commit schedule under `config`.
fn sweep_serial(config: DurabilityConfig, ctx: &str) {
    sweep_steps(config, &commit_steps(), ctx);
}

/// Sweep every fault kind through every operation index of `steps`.
fn sweep_steps(config: DurabilityConfig, steps: &[&str], ctx: &str) {
    // Baseline: no fault. Sizes the sweep and sanity-checks the end state.
    let baseline = run_serial(config, &steps, &[]);
    assert!(!baseline.any_failed, "{ctx}: baseline must run clean");
    let total_ops = baseline.fs.op_count();
    assert!(total_ops > 10, "{ctx}: schedule too small to be interesting ({total_ops} ops)");
    check_recovery(&baseline.fs, config, &[&baseline.acked_state], &format!("{ctx} baseline"));

    for at in 0..total_ops {
        for kind in FAULTS {
            let run = run_serial(config, &steps, &[(at, kind)]);
            let ctx = format!("{ctx} fault {kind:?} @op {at}");
            match kind {
                FaultKind::FailOp => {
                    // Transient error, no crash: the database must end
                    // holding exactly the acknowledged commits — a failed
                    // append can neither apply nor linger as tail garbage
                    // that would eat a later commit.
                    check_recovery(&run.fs, config, &[&run.acked_state], &ctx);
                }
                FaultKind::Crash(_) => {
                    let mut allowed: Vec<&String> = vec![&run.acked_state];
                    if let Some(extra) = run.with_in_flight.as_ref() {
                        allowed.push(extra);
                    }
                    check_recovery(&run.fs, config, &allowed, &ctx);
                }
            }
        }
    }
}

/// Commit schedule: every fault at every op index of plain commits.
#[test]
fn fault_sweep_over_commit_schedule() {
    let config = DurabilityConfig { checkpoint_bytes: u64::MAX, ..Default::default() };
    sweep_serial(config, "commit");
}

/// Checkpoint schedule: a tiny budget forces the log through repeated
/// checkpoint rewrites (tmp create/write/sync, rename, dir sync, reopen)
/// with the same fault sweep. A failed or crashed checkpoint must never
/// lose an acknowledged commit: the old log stays authoritative until
/// the rename is durable.
#[test]
fn fault_sweep_over_checkpoint_schedule() {
    let config = DurabilityConfig { checkpoint_bytes: 200, ..Default::default() };
    sweep_serial(config, "checkpoint");
}

/// A schedule whose rows span several pages: wide text bodies make the
/// B-tree working set larger than the pool, so checkpoints must evict
/// mid-apply (dirty victims land in their shadow slots).
fn eviction_steps() -> Vec<String> {
    let mut steps =
        vec!["CREATE TABLE blob (id INTEGER PRIMARY KEY, body TEXT)".to_string()];
    for i in 0..10i64 {
        // ~1 KB per row: four rows overflow a 4 KiB page.
        steps.push(format!("INSERT INTO blob VALUES ({i}, '{:x>1000}')", i));
    }
    steps.push("UPDATE blob SET body = 'small' WHERE id = 3".to_string());
    steps.push("DELETE FROM blob WHERE id = 7".to_string());
    steps
}

/// Eviction-pressure schedule: a two-frame buffer pool under a working
/// set several pages wide. Every checkpoint streams tree pages through
/// the tiny pool, so clock eviction runs constantly while faults land on
/// every operation — a dirty victim whose shadow write is lost, or a
/// pinned page wrongly evicted, shows up as a torn recovery. The clean
/// baseline then pins the accounting: evictions really happened, and no
/// pinned frame was ever chosen.
#[test]
fn fault_sweep_under_eviction_pressure() {
    // Pin `paged: true` so the sweep keeps its meaning under SWAN_PAGER=0
    // CI runs (a 2-frame pool is only interesting with a pool).
    let config = DurabilityConfig {
        checkpoint_bytes: 2048,
        pool_pages: 2,
        paged: true,
        ..Default::default()
    };
    let steps = eviction_steps();
    let steps: Vec<&str> = steps.iter().map(String::as_str).collect();
    sweep_steps(config, &steps, "eviction");

    let fs = SimFs::new();
    let mut db = open_sim(&fs, config).unwrap();
    for step in &steps {
        db.execute_script(step).unwrap();
    }
    let stats = db.pager_stats().expect("pager pinned on above");
    assert!(
        stats.pool.evictions > 0,
        "a 2-frame pool under a multi-page working set must evict: {stats:?}"
    );
    assert_eq!(
        stats.pool.evicted_pinned, 0,
        "pinned pages must never be eviction victims: {stats:?}"
    );
}

/// Two-fault schedule: a checkpoint's directory sync fails transiently
/// and a crash follows at every later operation index. Until the rename
/// is durable, the log's name still resolves to the pre-checkpoint
/// inode, so the WAL must refuse to acknowledge post-checkpoint commits
/// (it poisons) — otherwise the crash would silently erase
/// fsync-acknowledged commits written to the new inode. Single-fault
/// sweeps cannot reach this state; this schedule exists precisely to
/// falsify a checkpointer that shrugs off `sync_parent_dir` failures.
#[test]
fn dir_sync_failure_then_crash_never_loses_acked_commits() {
    let config = DurabilityConfig { checkpoint_bytes: 200, ..Default::default() };
    let steps = commit_steps();
    let baseline = run_serial(config, &steps, &[]);
    let dir_syncs: Vec<u64> = baseline
        .fs
        .ops()
        .iter()
        .enumerate()
        .filter(|(_, desc)| desc.starts_with("sync_dir"))
        .map(|(i, _)| i as u64)
        .collect();
    assert!(!dir_syncs.is_empty(), "the schedule must checkpoint at least once");
    let total_ops = baseline.fs.op_count();

    for &ds in &dir_syncs {
        for crash_at in ds + 1..total_ops {
            let run = run_serial(
                config,
                &steps,
                &[(ds, FaultKind::FailOp), (crash_at, FaultKind::Crash(Torn::None))],
            );
            let mut allowed: Vec<&String> = vec![&run.acked_state];
            if let Some(extra) = run.with_in_flight.as_ref() {
                allowed.push(extra);
            }
            check_recovery(
                &run.fs,
                config,
                &allowed,
                &format!("dir-sync fail @op {ds} + crash @op {crash_at}"),
            );
        }
    }
}

/// Mixed-reboot schedule: real kernels flush dirty pages per inode with
/// no cross-file ordering, so a crash during a checkpoint can persist
/// the tmp file's unsynced bytes while losing the log's — or the
/// reverse. Sweep a crash through every op index of the checkpoint
/// schedule and reboot with each *strictly mixed* per-file keep choice
/// over the log and its checkpoint tmp (the uniform choices are the
/// plain `reboot` images the other sweeps already cover). The crash
/// contract must hold on every such disk.
#[test]
fn fault_sweep_with_mixed_per_file_reboots() {
    let config = DurabilityConfig { checkpoint_bytes: 200, ..Default::default() };
    let steps = commit_steps();
    let baseline = run_serial(config, &steps, &[]);
    let total_ops = baseline.fs.op_count();
    let tmp = PathBuf::from(format!("{WAL}.tmp"));

    for at in 0..total_ops {
        for kind in FAULTS {
            let run = run_serial(config, &steps, &[(at, kind)]);
            let mut allowed: Vec<&String> = vec![&run.acked_state];
            if let Some(extra) = run.with_in_flight.as_ref() {
                allowed.push(extra);
            }
            for keep_wal in [false, true] {
                // Strictly mixed: the tmp file's fate differs from the log's.
                let image = run
                    .fs
                    .reboot_mixed(|path| if path == tmp { !keep_wal } else { keep_wal });
                let ctx = format!("mixed fault {kind:?} @op {at} keep_wal={keep_wal}");
                let db = open_sim(&image, config).unwrap_or_else(|e| {
                    panic!("{ctx}: recovery must succeed on a kernel-legal disk: {e}\nops:\n{}",
                        run.fs.ops().join("\n"))
                });
                let recovered = dump(&db);
                assert!(
                    allowed.iter().any(|a| **a == recovered),
                    "{ctx}: torn recovery!\n-- recovered --\n{recovered}\n-- allowed --\n{}\nops:\n{}",
                    allowed.iter().map(|a| a.as_str()).collect::<Vec<_>>().join("\n----\n"),
                    run.fs.ops().join("\n"),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Group-commit schedule: concurrent committers
// ---------------------------------------------------------------------------

const GC_THREADS: usize = 4;
const GC_TXNS: usize = 4;

/// Run the concurrent schedule: each thread owns one table and commits
/// `GC_TXNS` two-row transactions through the group-commit queue.
/// Returns the filesystem and the per-(thread, txn) acknowledgment map.
fn run_group(fault: Option<(u64, FaultKind)>) -> (SimFs, Vec<Vec<bool>>) {
    let fs = SimFs::new();
    if let Some((at, kind)) = fault {
        fs.set_fault(at, kind);
    }
    let config = DurabilityConfig::default();
    let mut acked = vec![vec![false; GC_TXNS]; GC_THREADS];
    if let Ok(db) = SharedDb::open_on(Arc::new(fs.clone()), wal_path(), config) {
        let mut created = vec![false; GC_THREADS];
        for (t, ok) in created.iter_mut().enumerate() {
            *ok = db
                .execute(&format!("CREATE TABLE t{t} (id INTEGER PRIMARY KEY, v INTEGER)"))
                .is_ok();
        }
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..GC_THREADS)
                .map(|t| {
                    let shared = db.clone();
                    let created = created[t];
                    s.spawn(move || {
                        let mut acks = vec![false; GC_TXNS];
                        if !created {
                            return acks;
                        }
                        for (seq, ack) in acks.iter_mut().enumerate() {
                            let mut session = shared.session();
                            let run = session
                                .execute("BEGIN")
                                .and_then(|_| {
                                    session.execute(&format!(
                                        "INSERT INTO t{t} VALUES ({}, {seq})",
                                        seq * 2
                                    ))
                                })
                                .and_then(|_| {
                                    session.execute(&format!(
                                        "INSERT INTO t{t} VALUES ({}, {seq})",
                                        seq * 2 + 1
                                    ))
                                })
                                .and_then(|_| session.execute("COMMIT"));
                            *ack = run.is_ok();
                        }
                        acks
                    })
                })
                .collect();
            for (t, h) in handles.into_iter().enumerate() {
                acked[t] = h.join().expect("committer thread must not panic");
            }
        });
    }
    (fs, acked)
}

/// Check the group-commit crash contract on one rebooted image.
///
/// `crashed` distinguishes the two legal shapes: after a **transient**
/// fault (or none) the run kept going, every failed commit was rolled
/// back off the log, and the recovered state holds *exactly* the
/// acknowledged commits. After a **crash** nothing past the crash point
/// reached disk, so the recovered state holds the acknowledged commits
/// plus at most the groups in flight when the crash hit — and each
/// thread's survivors form a prefix of its attempts.
fn check_group_image(
    fs: &SimFs,
    acked: &[Vec<bool>],
    crashed: bool,
    keep_unsynced: bool,
    ctx: &str,
) {
    let image = fs.reboot(keep_unsynced);
    let db = open_sim(&image, DurabilityConfig::default())
        .unwrap_or_else(|e| panic!("{ctx}: recovery failed: {e}"));
    for (t, acks) in acked.iter().enumerate() {
        let table = format!("t{t}");
        let exists = db.catalog().get(&table).is_some();
        if !exists {
            assert!(
                acks.iter().all(|a| !a),
                "{ctx}: table {table} lost but some of its commits were acknowledged"
            );
            continue;
        }
        let mut present = Vec::new();
        for (seq, &ack) in acks.iter().enumerate() {
            let n = db
                .query(&format!("SELECT COUNT(*) FROM {table} WHERE v = {seq}"))
                .unwrap()
                .scalar()
                .unwrap()
                .render()
                .parse::<usize>()
                .unwrap();
            // Atomicity: a two-row transaction is all-or-nothing.
            assert!(
                n == 0 || n == 2,
                "{ctx}: torn transaction t{t}/{seq}: {n} of 2 rows survived"
            );
            // Durability: acknowledged means fsynced means present.
            if ack {
                assert_eq!(n, 2, "{ctx}: acknowledged commit t{t}/{seq} lost");
            }
            if !crashed {
                // A transient failure was reported to its committer and
                // rolled back off the log: it must not resurrect.
                assert_eq!(
                    n == 2,
                    ack,
                    "{ctx}: unacknowledged commit t{t}/{seq} survived a transient fault"
                );
            }
            present.push(n == 2);
        }
        if crashed {
            // Nothing after the crash point reached disk, so each
            // thread's surviving transactions are a prefix of its
            // attempts (the first post-ack failure may or may not have
            // persisted; everything later cannot have).
            for w in present.windows(2) {
                assert!(
                    w[1] <= w[0],
                    "{ctx}: t{t} kept a later transaction while losing an earlier one"
                );
            }
        }
    }
}

/// Group-commit schedule: every fault at every op index while 4 threads
/// commit concurrently through the batching leader.
#[test]
fn fault_sweep_over_group_commit_schedule() {
    // Baseline sizes the sweep. Interleaving differs run to run; the
    // invariants are schedule-independent, so the baseline count only
    // needs to be in the right ballpark to cover the whole run.
    let (fs, acked) = run_group(None);
    assert!(
        acked.iter().all(|t| t.iter().all(|&a| a)),
        "baseline group schedule must fully acknowledge"
    );
    let total_ops = fs.op_count();
    for keep in [false, true] {
        check_group_image(&fs, &acked, false, keep, "group baseline");
    }

    for at in 0..total_ops {
        for kind in FAULTS {
            let (fs, acked) = run_group(Some((at, kind)));
            let crashed = fs.crashed();
            let ctx = format!("group fault {kind:?} @op {at}");
            for keep in [false, true] {
                check_group_image(&fs, &acked, crashed, keep, &format!("{ctx} keep={keep}"));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Recovery schedule: faults inside recovery itself
// ---------------------------------------------------------------------------

/// Faults injected while `open` replays the log and truncates a torn
/// tail: recovery either completes to the clean committed prefix or
/// fails without making anything worse — a second, clean open always
/// lands on the same committed state.
#[test]
fn fault_sweep_over_recovery_schedule() {
    // Build a committed image with a torn tail: two durable commits plus
    // a third whose group is cut mid-frame.
    let fs = SimFs::new();
    let config = DurabilityConfig::default();
    {
        let mut db = open_sim(&fs, config).unwrap();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two')").unwrap();
    }
    let committed = {
        let db = open_sim(&fs.reboot(false), config).unwrap();
        dump(&db)
    };
    let mut torn_image = fs.reboot(false).file_bytes(WAL).unwrap();
    {
        // A third commit, then keep only part of its group.
        let fs2 = fs.reboot(false);
        let mut db = open_sim(&fs2, config).unwrap();
        db.execute("INSERT INTO t VALUES (3, 'three')").unwrap();
        let full = fs2.file_bytes(WAL).unwrap();
        assert!(full.len() > torn_image.len());
        let cut = torn_image.len() + (full.len() - torn_image.len()) / 2;
        torn_image = full[..cut].to_vec();
    }

    // Size the sweep: recovery of the torn image on a clean filesystem.
    let total_ops = {
        let clean = SimFs::new();
        clean.install_file(WAL, torn_image.clone());
        let db = open_sim(&clean, config).unwrap();
        assert_eq!(dump(&db), committed, "torn tail must be discarded");
        clean.op_count()
    };
    assert!(total_ops >= 4, "recovery must at least open, read, truncate, sync");

    for at in 0..total_ops {
        for kind in FAULTS {
            let fs = SimFs::new();
            fs.install_file(WAL, torn_image.clone());
            fs.set_fault(at, kind);
            let ctx = format!("recovery fault {kind:?} @op {at}");
            match open_sim(&fs, config) {
                Ok(db) => {
                    assert_eq!(dump(&db), committed, "{ctx}: recovered to a wrong state");
                }
                Err(_) => {
                    // Recovery failed cleanly. Both reboot images must
                    // still recover to the committed prefix.
                    for keep in [false, true] {
                        let image = fs.reboot(keep);
                        let db = open_sim(&image, config).unwrap_or_else(|e| {
                            panic!("{ctx} keep={keep}: clean retry failed: {e}")
                        });
                        assert_eq!(
                            dump(&db),
                            committed,
                            "{ctx} keep={keep}: retry landed on a wrong state"
                        );
                    }
                }
            }
        }
    }
}
