//! Golden-file SQL test runner over `tests/slt/*.slt`
//! (sqllogictest-style).
//!
//! # File format
//!
//! ```text
//! # comment
//! statement ok
//! CREATE TABLE t (a INTEGER)
//!
//! statement error
//! INSERT INTO t VALUES (1, 2)
//!
//! query
//! SELECT a FROM t ORDER BY a
//! ----
//! 1
//! ```
//!
//! * `statement ok` — the SQL on the following lines (up to a blank
//!   line) must execute successfully;
//! * `statement error` — it must fail (any [`Error`] counts);
//! * `statement error <substring>` — it must fail AND the error's
//!   display text must contain `<substring>` (pins message wording);
//! * `config statement_timeout <ms>` / `config statement_timeout none`
//!   — arm or clear the session's statement timeout for everything that
//!   follows;
//! * `query` — the SQL runs up to the `----` separator; the lines after
//!   it, up to a blank line, are the expected rows. Cells are joined
//!   with `|`; `NULL` renders as the literal `NULL`.
//!
//! Every file runs twice on a fresh [`SharedDb`] session — once with the
//! serial engine (`threads = 1`) and once morsel-parallel
//! (`threads = 8`, `parallel_threshold = 1` so even tiny tables take the
//! parallel operators) — and both runs must match the golden output
//! byte for byte. Statements execute through a [`Session`], so
//! `BEGIN`/`COMMIT`/`ROLLBACK` scripts exercise the transaction path.
//!
//! The runner registers two local test UDFs (this crate cannot see the
//! LLM layer, so they stand in for a model-backed function):
//!
//! * `flaky_map(mode, key)` — mirrors the model-call degradation shapes:
//!   `'ok'` answers `v:<key>` and remembers it, `'fail'` errors (the
//!   `Fail` policy surface), `'null'` answers NULL (`Null` policy), and
//!   `'stale'` re-serves the remembered answer (`StaleCache` policy);
//! * `slow_probe(ms)` — sleeps, then checks the statement's cancel
//!   token, exactly like a cooperative long-running UDF should.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use swan_sqlengine::{Error, OptimizerConfig, Result, ScalarUdf, SharedDb, Value};

#[derive(Debug)]
enum Directive {
    StatementOk { line: usize, sql: String },
    StatementError { line: usize, sql: String, needle: Option<String> },
    Config { line: usize, key: String, value: String },
    Query { line: usize, sql: String, expected: Vec<String> },
}

/// `flaky_map(mode, key)` — the degradation-policy stand-in.
#[derive(Default)]
struct FlakyMap {
    remembered: Mutex<HashMap<String, Value>>,
}

impl ScalarUdf for FlakyMap {
    fn name(&self) -> &str {
        "flaky_map"
    }

    fn arity(&self) -> Option<usize> {
        Some(2)
    }

    fn invoke(&self, args: &[Value]) -> Result<Value> {
        let mode = args[0].as_str().unwrap_or_default();
        let key = args[1].render();
        match mode {
            "ok" => {
                let v = Value::from(format!("v:{key}"));
                self.remembered.lock().unwrap().insert(key, v.clone());
                Ok(v)
            }
            "fail" => Err(Error::Udf {
                name: "flaky_map".into(),
                message: "synthetic model failure".into(),
            }),
            "null" => Ok(Value::Null),
            "stale" => Ok(self
                .remembered
                .lock()
                .unwrap()
                .get(&key)
                .cloned()
                .unwrap_or(Value::Null)),
            other => Err(Error::Udf {
                name: "flaky_map".into(),
                message: format!("unknown mode {other:?}"),
            }),
        }
    }
}

/// `slow_probe(ms)` — a cooperative long-running UDF: it burns real time
/// and then honours the statement's cancel token.
struct SlowProbe;

impl ScalarUdf for SlowProbe {
    fn name(&self) -> &str {
        "slow_probe"
    }

    fn arity(&self) -> Option<usize> {
        Some(1)
    }

    fn invoke(&self, args: &[Value]) -> Result<Value> {
        let ms = args[0].as_i64().unwrap_or(0).max(0) as u64;
        std::thread::sleep(Duration::from_millis(ms));
        swan_pool::cancel::check_current().map_err(Error::from)?;
        Ok(Value::Integer(1))
    }
}

/// Parse one `.slt` file into directives, with 1-based line numbers for
/// failure reporting.
fn parse_slt(path: &Path) -> Vec<Directive> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let lines: Vec<&str> = text.lines().collect();
    let mut directives = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        let line = lines[i].trim_end();
        if line.is_empty() || line.starts_with('#') {
            i += 1;
            continue;
        }
        let start = i + 1;
        match line {
            _ if line == "statement ok"
                || line == "statement error"
                || line.starts_with("statement error ") =>
            {
                let ok = line == "statement ok";
                let needle = line
                    .strip_prefix("statement error ")
                    .map(|n| n.trim().to_string())
                    .filter(|n| !n.is_empty());
                i += 1;
                let mut sql = Vec::new();
                while i < lines.len() && !lines[i].trim().is_empty() {
                    sql.push(lines[i]);
                    i += 1;
                }
                let sql = sql.join("\n");
                assert!(!sql.is_empty(), "{}:{start}: directive without SQL", path.display());
                directives.push(if ok {
                    Directive::StatementOk { line: start, sql }
                } else {
                    Directive::StatementError { line: start, sql, needle }
                });
            }
            _ if line.starts_with("config ") => {
                let mut parts = line["config ".len()..].split_whitespace();
                let key = parts.next().unwrap_or_default().to_string();
                let value = parts.next().unwrap_or_default().to_string();
                assert!(
                    !key.is_empty() && !value.is_empty() && parts.next().is_none(),
                    "{}:{start}: config needs exactly `config <key> <value>`",
                    path.display()
                );
                directives.push(Directive::Config { line: start, key, value });
                i += 1;
            }
            "query" => {
                i += 1;
                let mut sql = Vec::new();
                while i < lines.len() && lines[i].trim() != "----" {
                    assert!(
                        !lines[i].trim().is_empty(),
                        "{}:{}: blank line before ----",
                        path.display(),
                        i + 1
                    );
                    sql.push(lines[i]);
                    i += 1;
                }
                assert!(i < lines.len(), "{}:{start}: query without ----", path.display());
                i += 1; // skip ----
                let mut expected = Vec::new();
                while i < lines.len() && !lines[i].trim_end().is_empty() {
                    expected.push(lines[i].trim_end().to_string());
                    i += 1;
                }
                directives.push(Directive::Query { line: start, sql: sql.join("\n"), expected });
            }
            other => panic!("{}:{}: unknown directive {other:?}", path.display(), i + 1),
        }
    }
    directives
}

fn render_cell(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        other => other.render(),
    }
}

/// Run one file at one thread count; returns every query's rendered
/// output (for the cross-thread-count comparison).
fn run_file(path: &Path, threads: usize) -> Vec<Vec<String>> {
    let db = SharedDb::new();
    db.set_optimizer(OptimizerConfig {
        threads,
        parallel_threshold: 1,
        ..Default::default()
    });
    db.register_udf(Arc::new(FlakyMap::default()));
    db.register_udf(Arc::new(SlowProbe));
    let mut session = db.session();
    let mut outputs = Vec::new();
    for directive in parse_slt(path) {
        match directive {
            Directive::StatementOk { line, sql } => {
                session.execute_script(&sql).unwrap_or_else(|e| {
                    panic!("{}:{line} [threads={threads}]: statement failed: {e}\n{sql}",
                        path.display())
                });
            }
            Directive::StatementError { line, sql, needle } => {
                match session.execute_script(&sql) {
                    Ok(_) => panic!(
                        "{}:{line} [threads={threads}]: statement succeeded but must fail\n{sql}",
                        path.display()
                    ),
                    Err(e) => {
                        if let Some(needle) = needle {
                            let msg = e.to_string();
                            assert!(
                                msg.contains(&needle),
                                "{}:{line} [threads={threads}]: error {msg:?} must contain {needle:?}\n{sql}",
                                path.display()
                            );
                        }
                    }
                }
            }
            Directive::Config { line, key, value } => match key.as_str() {
                "statement_timeout" => {
                    let timeout = match value.as_str() {
                        "none" => None,
                        ms => Some(Duration::from_millis(ms.parse().unwrap_or_else(|_| {
                            panic!(
                                "{}:{line}: statement_timeout wants millis or `none`, got {ms:?}",
                                path.display()
                            )
                        }))),
                    };
                    session.set_statement_timeout(timeout);
                }
                other => panic!("{}:{line}: unknown config key {other:?}", path.display()),
            },
            Directive::Query { line, sql, expected } => {
                let result = session.query(&sql).unwrap_or_else(|e| {
                    panic!("{}:{line} [threads={threads}]: query failed: {e}\n{sql}",
                        path.display())
                });
                let got: Vec<String> = result
                    .rows
                    .iter()
                    .map(|row| {
                        row.iter().map(render_cell).collect::<Vec<_>>().join("|")
                    })
                    .collect();
                if got != expected {
                    let mut msg = String::new();
                    let _ = writeln!(
                        msg,
                        "{}:{line} [threads={threads}]: query output mismatch\n{sql}\n-- expected --",
                        path.display()
                    );
                    for l in &expected {
                        let _ = writeln!(msg, "{l}");
                    }
                    let _ = writeln!(msg, "-- got --");
                    for l in &got {
                        let _ = writeln!(msg, "{l}");
                    }
                    panic!("{msg}");
                }
                outputs.push(got);
            }
        }
    }
    outputs
}

fn slt_files() -> Vec<PathBuf> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/slt");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .filter_map(|entry| {
            let path = entry.unwrap().path();
            (path.extension().is_some_and(|x| x == "slt")).then_some(path)
        })
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no .slt files under {}", dir.display());
    files
}

/// Every golden file passes on the serial engine and the 8-thread
/// morsel-parallel engine, with byte-identical query output.
#[test]
fn golden_sql_files_match_at_one_and_eight_threads() {
    for path in slt_files() {
        let serial = run_file(&path, 1);
        let parallel = run_file(&path, 8);
        assert_eq!(
            serial,
            parallel,
            "{}: serial and 8-thread outputs diverged",
            path.display()
        );
    }
}
