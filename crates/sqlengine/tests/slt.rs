//! Golden-file SQL test runner over `tests/slt/*.slt`
//! (sqllogictest-style).
//!
//! # File format
//!
//! ```text
//! # comment
//! statement ok
//! CREATE TABLE t (a INTEGER)
//!
//! statement error
//! INSERT INTO t VALUES (1, 2)
//!
//! query
//! SELECT a FROM t ORDER BY a
//! ----
//! 1
//! ```
//!
//! * `statement ok` — the SQL on the following lines (up to a blank
//!   line) must execute successfully;
//! * `statement error` — it must fail (any [`Error`] counts);
//! * `query` — the SQL runs up to the `----` separator; the lines after
//!   it, up to a blank line, are the expected rows. Cells are joined
//!   with `|`; `NULL` renders as the literal `NULL`.
//!
//! Every file runs twice on a fresh [`SharedDb`] session — once with the
//! serial engine (`threads = 1`) and once morsel-parallel
//! (`threads = 8`, `parallel_threshold = 1` so even tiny tables take the
//! parallel operators) — and both runs must match the golden output
//! byte for byte. Statements execute through a [`Session`], so
//! `BEGIN`/`COMMIT`/`ROLLBACK` scripts exercise the transaction path.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use swan_sqlengine::{OptimizerConfig, SharedDb, Value};

#[derive(Debug)]
enum Directive {
    StatementOk { line: usize, sql: String },
    StatementError { line: usize, sql: String },
    Query { line: usize, sql: String, expected: Vec<String> },
}

/// Parse one `.slt` file into directives, with 1-based line numbers for
/// failure reporting.
fn parse_slt(path: &Path) -> Vec<Directive> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let lines: Vec<&str> = text.lines().collect();
    let mut directives = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        let line = lines[i].trim_end();
        if line.is_empty() || line.starts_with('#') {
            i += 1;
            continue;
        }
        let start = i + 1;
        match line {
            "statement ok" | "statement error" => {
                let ok = line == "statement ok";
                i += 1;
                let mut sql = Vec::new();
                while i < lines.len() && !lines[i].trim().is_empty() {
                    sql.push(lines[i]);
                    i += 1;
                }
                let sql = sql.join("\n");
                assert!(!sql.is_empty(), "{}:{start}: directive without SQL", path.display());
                directives.push(if ok {
                    Directive::StatementOk { line: start, sql }
                } else {
                    Directive::StatementError { line: start, sql }
                });
            }
            "query" => {
                i += 1;
                let mut sql = Vec::new();
                while i < lines.len() && lines[i].trim() != "----" {
                    assert!(
                        !lines[i].trim().is_empty(),
                        "{}:{}: blank line before ----",
                        path.display(),
                        i + 1
                    );
                    sql.push(lines[i]);
                    i += 1;
                }
                assert!(i < lines.len(), "{}:{start}: query without ----", path.display());
                i += 1; // skip ----
                let mut expected = Vec::new();
                while i < lines.len() && !lines[i].trim_end().is_empty() {
                    expected.push(lines[i].trim_end().to_string());
                    i += 1;
                }
                directives.push(Directive::Query { line: start, sql: sql.join("\n"), expected });
            }
            other => panic!("{}:{}: unknown directive {other:?}", path.display(), i + 1),
        }
    }
    directives
}

fn render_cell(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        other => other.render(),
    }
}

/// Run one file at one thread count; returns every query's rendered
/// output (for the cross-thread-count comparison).
fn run_file(path: &Path, threads: usize) -> Vec<Vec<String>> {
    let db = SharedDb::new();
    db.set_optimizer(OptimizerConfig {
        threads,
        parallel_threshold: 1,
        ..Default::default()
    });
    let mut session = db.session();
    let mut outputs = Vec::new();
    for directive in parse_slt(path) {
        match directive {
            Directive::StatementOk { line, sql } => {
                session.execute_script(&sql).unwrap_or_else(|e| {
                    panic!("{}:{line} [threads={threads}]: statement failed: {e}\n{sql}",
                        path.display())
                });
            }
            Directive::StatementError { line, sql } => {
                assert!(
                    session.execute_script(&sql).is_err(),
                    "{}:{line} [threads={threads}]: statement succeeded but must fail\n{sql}",
                    path.display()
                );
            }
            Directive::Query { line, sql, expected } => {
                let result = session.query(&sql).unwrap_or_else(|e| {
                    panic!("{}:{line} [threads={threads}]: query failed: {e}\n{sql}",
                        path.display())
                });
                let got: Vec<String> = result
                    .rows
                    .iter()
                    .map(|row| {
                        row.iter().map(render_cell).collect::<Vec<_>>().join("|")
                    })
                    .collect();
                if got != expected {
                    let mut msg = String::new();
                    let _ = writeln!(
                        msg,
                        "{}:{line} [threads={threads}]: query output mismatch\n{sql}\n-- expected --",
                        path.display()
                    );
                    for l in &expected {
                        let _ = writeln!(msg, "{l}");
                    }
                    let _ = writeln!(msg, "-- got --");
                    for l in &got {
                        let _ = writeln!(msg, "{l}");
                    }
                    panic!("{msg}");
                }
                outputs.push(got);
            }
        }
    }
    outputs
}

fn slt_files() -> Vec<PathBuf> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/slt");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .filter_map(|entry| {
            let path = entry.unwrap().path();
            (path.extension().is_some_and(|x| x == "slt")).then_some(path)
        })
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no .slt files under {}", dir.display());
    files
}

/// Every golden file passes on the serial engine and the 8-thread
/// morsel-parallel engine, with byte-identical query output.
#[test]
fn golden_sql_files_match_at_one_and_eight_threads() {
    for path in slt_files() {
        let serial = run_file(&path, 1);
        let parallel = run_file(&path, 8);
        assert_eq!(
            serial,
            parallel,
            "{}: serial and 8-thread outputs diverged",
            path.display()
        );
    }
}
