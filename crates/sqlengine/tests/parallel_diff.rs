//! Serial ≡ parallel differential-test harness.
//!
//! Concurrency claims are only credible when backed by controlled
//! differential testing (cf. ZEUS), so this harness pins the morsel-driven
//! parallel executor against the serial engine: a query generator over the
//! four SWAN domain shapes runs every statement through the serial
//! executor (`threads: 1` — no [`Plan::Parallel`] node is ever inserted)
//! and through the parallel executor at thread counts **2 and 8**
//! (`parallel_threshold: 1`, so even tiny generated tables exercise the
//! parallel operators), and asserts equivalent results:
//!
//! * statements with `ORDER BY` must match **exactly** (including the
//!   tie-break contract: `LIMIT k` keeps the stable-sort prefix);
//! * statements without `ORDER BY` are compared order-insensitively
//!   (the SQL contract) **and** byte-exactly — the parallel executor
//!   promises morsel-order concatenation, making results identical to
//!   serial execution, and this harness is where that stronger promise
//!   is enforced.
//!
//! Coverage: filtered scans/projections, inner/LEFT/three-way joins,
//! GROUP BY + HAVING, DISTINCT, ORDER BY + LIMIT with deliberate ties,
//! compound UNION, subquery-bearing predicates (IN, correlated EXISTS,
//! scalar aggregates — the statement-shared `Send + Sync` subquery cache
//! lets these run under `Plan::Parallel` instead of falling back to the
//! serial operator), and expensive-UDF batching (a counting UDF stands in
//! for an LLM call; the parallel engine must return the same rows and
//! never evaluate more distinct argument tuples than the serial engine).
//!
//! A second differential axis pins **columnar ≡ row** execution: every
//! generated query also runs with `OptimizerConfig::columnar` off (the
//! reference row path) and on, at 1 and 8 threads, under the same
//! equivalence contract — plus a NULL-heavy generator that stresses the
//! validity bitmaps, Kleene kernels and NULL-never-joins rules.
//!
//! Reproducibility: case streams honour `SWAN_SEED` (see the proptest
//! shim); a failure prints the seed to replay it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use swan_sqlengine::value::Value;
use swan_sqlengine::{Database, OptimizerConfig, QueryResult, ScalarUdf};

/// The thread counts the parallel side runs at.
const THREAD_COUNTS: &[usize] = &[2, 8];

/// Schemas shaped like the four SWAN domains (a fact table, a dimension,
/// and a small lookup each), populated deterministically from the
/// generated rows so serial and parallel runs see identical data.
const DOMAINS: &[(&str, &str, &str, &str)] = &[
    (
        "superhero",
        "CREATE TABLE superhero (id INTEGER PRIMARY KEY, publisher_id INTEGER, height_cm INTEGER, hero_name TEXT)",
        "CREATE TABLE publisher (id INTEGER PRIMARY KEY, publisher_name TEXT)",
        "superhero s JOIN publisher p ON s.publisher_id = p.id",
    ),
    (
        "formula_1",
        "CREATE TABLE results (id INTEGER PRIMARY KEY, driver_id INTEGER, points INTEGER, status TEXT)",
        "CREATE TABLE drivers (id INTEGER PRIMARY KEY, surname TEXT)",
        "results s JOIN drivers p ON s.driver_id = p.id",
    ),
    (
        "california_schools",
        "CREATE TABLE satscores (id INTEGER PRIMARY KEY, school_id INTEGER, avg_scr_math INTEGER, rtype TEXT)",
        "CREATE TABLE schools (id INTEGER PRIMARY KEY, school_name TEXT)",
        "satscores s JOIN schools p ON s.school_id = p.id",
    ),
    (
        "european_football",
        "CREATE TABLE player_attributes (id INTEGER PRIMARY KEY, player_id INTEGER, overall_rating INTEGER, foot TEXT)",
        "CREATE TABLE player (id INTEGER PRIMARY KEY, player_name TEXT)",
        "player_attributes s JOIN player p ON s.player_id = p.id",
    ),
];

fn fact_table(domain: usize) -> &'static str {
    ["superhero", "results", "satscores", "player_attributes"][domain]
}

fn dim_table(domain: usize) -> &'static str {
    ["publisher", "drivers", "schools", "player"][domain]
}

fn fact_num(domain: usize) -> &'static str {
    ["height_cm", "points", "avg_scr_math", "overall_rating"][domain]
}

fn fact_fk(domain: usize) -> &'static str {
    ["publisher_id", "driver_id", "school_id", "player_id"][domain]
}

fn fact_text(domain: usize) -> &'static str {
    ["hero_name", "status", "rtype", "foot"][domain]
}

/// Build one SWAN-shaped domain database. Fact rows link into the
/// dimension (with some dangling/NULL keys so LEFT-join and NULL
/// semantics get exercised); `tiny` is a 4-row lookup.
fn domain_db(domain: usize, rows: &[(i64, i64, String)]) -> Database {
    let (_, fact_ddl, dim_ddl, _) = DOMAINS[domain];
    let mut db = Database::new();
    db.execute(fact_ddl).unwrap();
    db.execute(dim_ddl).unwrap();
    db.execute("CREATE TABLE tiny (k INTEGER PRIMARY KEY, tag TEXT)").unwrap();

    let dim_rows = (rows.len() / 3).max(2);
    {
        let dim = db.catalog_mut().get_mut(dim_table(domain)).unwrap();
        for i in 0..dim_rows {
            dim.insert_row(vec![Value::Integer(i as i64), Value::text(format!("name-{i}"))])
                .unwrap();
        }
    }
    {
        let fact = db.catalog_mut().get_mut(fact_table(domain)).unwrap();
        for (i, (raw, n, s)) in rows.iter().enumerate() {
            let fk = match raw.rem_euclid(10) {
                0 => Value::Null,
                _ => Value::Integer(raw.rem_euclid(dim_rows as i64 + 3)),
            };
            fact.insert_row(vec![
                Value::Integer(i as i64),
                fk,
                // Narrow numeric range on purpose: ORDER BY ties abound.
                Value::Integer(n.rem_euclid(7)),
                Value::text(s.clone()),
            ])
            .unwrap();
        }
    }
    {
        let tiny = db.catalog_mut().get_mut("tiny").unwrap();
        for k in 0..4i64 {
            tiny.insert_row(vec![Value::Integer(k), Value::text(format!("tag-{k}"))]).unwrap();
        }
    }
    db
}

/// A deterministic "expensive" UDF standing in for an LLM call; counts
/// evaluated argument tuples across `invoke` and `invoke_batch`.
#[derive(Default)]
struct TagUdf {
    tuples: AtomicU64,
}

impl ScalarUdf for TagUdf {
    fn name(&self) -> &str {
        "slow_tag"
    }
    fn invoke(&self, args: &[Value]) -> swan_sqlengine::Result<Value> {
        self.tuples.fetch_add(1, Ordering::SeqCst);
        let tag = args.iter().map(Value::render).collect::<Vec<_>>().join("-");
        Ok(Value::text(format!("v{tag}")))
    }
    fn is_expensive(&self) -> bool {
        true
    }
}

fn serial_config() -> OptimizerConfig {
    OptimizerConfig { threads: 1, ..Default::default() }
}

fn parallel_config(threads: usize) -> OptimizerConfig {
    // Threshold 1: even the smallest generated table goes parallel.
    OptimizerConfig { threads, parallel_threshold: 1, ..Default::default() }
}

/// Sorted row texts for order-insensitive comparison.
fn multiset(result: &QueryResult) -> Vec<String> {
    let mut rows: Vec<String> = result
        .rows
        .iter()
        .map(|r| r.iter().map(Value::render).collect::<Vec<_>>().join("\u{1}"))
        .collect();
    rows.sort();
    rows
}

/// Assert the parallel result is equivalent to the serial one: exact for
/// ORDER BY; order-insensitive *and* byte-exact otherwise (the parallel
/// executor's morsel-order concatenation makes results identical).
fn assert_equivalent(sql: &str, threads: usize, serial: &QueryResult, parallel: &QueryResult) {
    assert_eq!(
        serial.columns, parallel.columns,
        "column names diverge at {threads} threads for {sql}"
    );
    let has_order_by = sql.to_ascii_uppercase().contains("ORDER BY");
    if !has_order_by {
        assert_eq!(
            multiset(serial),
            multiset(parallel),
            "row multiset diverges at {threads} threads for {sql}"
        );
    }
    assert_eq!(
        serial.rows, parallel.rows,
        "rows diverge at {threads} threads for {sql} (byte-identical contract)"
    );
}

/// Run `sql` serially and at every parallel thread count over fresh,
/// identically-populated databases; assert equivalence. Then run the
/// columnar ≡ row axis: the row path (`columnar: false`) is the
/// reference, and the columnar kernels must agree byte-for-byte at 1
/// and 8 threads.
fn diff_query(domain: usize, rows: &[(i64, i64, String)], sql: &str) {
    let mut serial_db = domain_db(domain, rows);
    serial_db.set_optimizer(serial_config());
    let serial = serial_db.query(sql).unwrap_or_else(|e| panic!("serial {sql}: {e}"));
    for &threads in THREAD_COUNTS {
        let mut par_db = domain_db(domain, rows);
        par_db.set_optimizer(parallel_config(threads));
        let parallel =
            par_db.query(sql).unwrap_or_else(|e| panic!("{threads}-thread {sql}: {e}"));
        assert_equivalent(sql, threads, &serial, &parallel);
    }

    let run_columnar = |threads: usize, columnar: bool| -> QueryResult {
        let mut db = domain_db(domain, rows);
        db.set_optimizer(OptimizerConfig {
            threads,
            parallel_threshold: 1,
            columnar,
            ..Default::default()
        });
        db.query(sql)
            .unwrap_or_else(|e| panic!("columnar={columnar} {threads}-thread {sql}: {e}"))
    };
    let row_ref = run_columnar(1, false);
    for &threads in &[1usize, 8] {
        let columnar = run_columnar(threads, true);
        assert_equivalent(sql, threads, &row_ref, &columnar);
    }
}

proptest! {
    /// The generated query family: joins, GROUP BY/HAVING, DISTINCT,
    /// LIMIT (with ties), LEFT joins, three-way chains and compounds,
    /// across the four SWAN domain shapes.
    #[test]
    fn parallel_execution_matches_serial(
        rows in proptest::collection::vec((any::<i64>(), -40i64..120, "[a-m]{0,5}"), 2..48),
        domain in 0usize..4,
        threshold in -40i64..120,
        k in 0usize..9,
        shape in 0usize..12,
    ) {
        let (_, _, _, join) = DOMAINS[domain];
        let fact = fact_table(domain);
        let dim = dim_table(domain);
        let num = fact_num(domain);
        let fk = fact_fk(domain);
        let text = fact_text(domain);
        let threshold = threshold.rem_euclid(7);
        let sql = match shape {
            // Filtered scan + projection (morsel filter + projection).
            0 => format!(
                "SELECT s.id, s.{num} + 1, UPPER(s.{text}) FROM {fact} s \
                 WHERE s.{num} > {threshold}"
            ),
            // Inner hash join (partitioned build/probe).
            1 => format!(
                "SELECT s.id, p.id FROM {join} WHERE s.{num} <= {threshold} ORDER BY s.id"
            ),
            // LEFT join with NULL-padded non-matches.
            2 => format!(
                "SELECT s.id, p.id FROM {fact} s LEFT JOIN {dim} p ON s.{fk} = p.id \
                 ORDER BY s.id"
            ),
            // Two-phase GROUP BY + HAVING over a join.
            3 => format!(
                "SELECT p.id, COUNT(*), SUM(s.{num}) FROM {join} \
                 GROUP BY p.id HAVING COUNT(*) > 1 ORDER BY p.id"
            ),
            // GROUP BY without ORDER BY: first-seen group order must
            // survive the parallel merge.
            4 => format!(
                "SELECT s.{num}, COUNT(*), MIN(s.{text}) FROM {fact} s GROUP BY s.{num}"
            ),
            // DISTINCT (first-occurrence dedupe over parallel input).
            5 => format!("SELECT DISTINCT s.{num}, s.{fk} FROM {fact} s"),
            // ORDER BY a low-cardinality key + LIMIT: the top-k
            // tie-break contract at every thread count.
            6 => format!(
                "SELECT s.id, s.{num} FROM {fact} s ORDER BY s.{num} LIMIT {k}"
            ),
            // Three-way chain (join reordering + Permute under Parallel).
            7 => format!(
                "SELECT COUNT(*) FROM {fact} s JOIN {dim} p ON s.{fk} = p.id \
                 JOIN tiny t ON p.id = t.k WHERE s.{num} > {threshold}"
            ),
            // Compound UNION over two parallel cores.
            8 => format!(
                "SELECT s.{num} FROM {fact} s WHERE s.{num} > {threshold} \
                 UNION SELECT k FROM tiny ORDER BY 1"
            ),
            // Uncorrelated IN-subquery predicate: runs morsel-parallel
            // against the statement-shared subquery cache (executes the
            // inner SELECT at most once across all workers).
            9 => format!(
                "SELECT s.id, s.{num} FROM {fact} s \
                 WHERE s.{fk} IN (SELECT p.id FROM {dim} p WHERE p.id > 1) \
                 ORDER BY s.id"
            ),
            // Correlated EXISTS: re-executes per row on whichever worker
            // owns the row; classification (correlated vs not) must agree
            // with the serial engine.
            10 => format!(
                "SELECT s.id FROM {fact} s \
                 WHERE EXISTS (SELECT 1 FROM {dim} p WHERE p.id = s.{fk} \
                               AND p.id > {threshold} - 3) \
                 ORDER BY s.id"
            ),
            // Scalar-aggregate subquery in a comparison (uncorrelated,
            // shared result) next to a cheap conjunct.
            _ => format!(
                "SELECT s.id, s.{num} FROM {fact} s \
                 WHERE s.{num} >= (SELECT AVG(s2.{num}) FROM {fact} s2) \
                 AND s.id >= 0 ORDER BY s.id"
            ),
        };
        diff_query(domain, &rows, &sql);
    }

    /// Expensive-UDF batching under parallel execution: same rows, and the
    /// parallel engine never evaluates more distinct argument tuples than
    /// the serial engine (the statement-level prefetch answers workers
    /// from their snapshot).
    #[test]
    fn parallel_udf_batching_matches_serial(
        rows in proptest::collection::vec((any::<i64>(), -40i64..120, "[a-m]{0,5}"), 2..40),
        domain in 0usize..4,
        threshold in -40i64..120,
        shape in 0usize..3,
    ) {
        let (_, _, _, join) = DOMAINS[domain];
        let fact = fact_table(domain);
        let num = fact_num(domain);
        let threshold = threshold.rem_euclid(7);
        let sql = match shape {
            // Expensive call in the projection.
            0 => format!("SELECT s.id, slow_tag('p', s.{num}) FROM {fact} s ORDER BY s.id"),
            // Expensive conjunct in WHERE next to a cheap one
            // (Filter(expensive) ← Batch ← Filter(cheap), under Parallel).
            1 => format!(
                "SELECT s.id FROM {join} WHERE s.{num} > {threshold} \
                 AND slow_tag('w', p.id) LIKE 'vw%' ORDER BY s.id"
            ),
            // Expensive call in HAVING over grouped output.
            _ => format!(
                "SELECT p.id, COUNT(*) FROM {join} GROUP BY p.id \
                 HAVING slow_tag('h', p.id) LIKE 'vh%' ORDER BY p.id"
            ),
        };

        let serial_udf = Arc::new(TagUdf::default());
        let mut serial_db = domain_db(domain, &rows);
        serial_db.register_udf(serial_udf.clone());
        serial_db.set_optimizer(serial_config());
        let serial = serial_db.query(&sql).unwrap();
        let serial_tuples = serial_udf.tuples.load(Ordering::SeqCst);

        for &threads in THREAD_COUNTS {
            let par_udf = Arc::new(TagUdf::default());
            let mut par_db = domain_db(domain, &rows);
            par_db.register_udf(par_udf.clone());
            par_db.set_optimizer(parallel_config(threads));
            let parallel = par_db.query(&sql).unwrap();
            assert_equivalent(&sql, threads, &serial, &parallel);
            let par_tuples = par_udf.tuples.load(Ordering::SeqCst);
            prop_assert!(
                par_tuples <= serial_tuples,
                "{sql}: parallel evaluated {par_tuples} tuples at {threads} threads, \
                 serial {serial_tuples}"
            );
        }
    }

    /// INSERT … SELECT and UPDATE/DELETE write paths agree after a
    /// parallel read side produced the rows.
    #[test]
    fn parallel_write_paths_match_serial(
        rows in proptest::collection::vec((any::<i64>(), -40i64..120, "[a-m]{0,5}"), 2..32),
        domain in 0usize..4,
        threshold in -40i64..120,
    ) {
        let fact = fact_table(domain);
        let num = fact_num(domain);
        let threshold = threshold.rem_euclid(7);
        let script = [
            format!("CREATE TABLE sink (id INTEGER, v INTEGER)"),
            format!(
                "INSERT INTO sink SELECT s.id, s.{num} FROM {fact} s WHERE s.{num} > {threshold}"
            ),
            format!("UPDATE sink SET v = v * 2 WHERE v < 4"),
            format!("DELETE FROM sink WHERE v % 3 = 0"),
        ];
        let run = |config: OptimizerConfig| -> Vec<String> {
            let mut db = domain_db(domain, &rows);
            db.set_optimizer(config);
            for stmt in &script {
                db.execute(stmt).unwrap();
            }
            multiset(&db.query("SELECT id, v FROM sink").unwrap())
        };
        let serial = run(serial_config());
        for &threads in THREAD_COUNTS {
            prop_assert_eq!(&serial, &run(parallel_config(threads)), "threads {}", threads);
        }
    }

    /// Columnar ≡ row on NULL-heavy tables: every column type carries a
    /// validity bitmap, and the kernels' three-valued logic, aggregate
    /// NULL-skipping and join NULL-never-matches rules must agree with
    /// the row evaluator on tables where NULLs dominate — at 1 and 8
    /// threads.
    #[test]
    fn columnar_matches_row_on_null_heavy_tables(
        cells in proptest::collection::vec(
            (0u8..8, any::<i64>(), -8i64..8, 0usize..5), 4..60),
        shape in 0usize..9,
        threshold in -4i64..4,
    ) {
        // ~half of every nullable column is NULL; `t` mixes plain and
        // numeric strings (text→number coercion in kernels), `r` carries
        // -0.0 and fractions, `b` is 0/1 so it classifies as a Bool
        // column with a validity bitmap.
        const TEXTS: &[&str] = &["a", "b", "3", "-1.5", ""];
        let build = || {
            let mut db = Database::new();
            db.execute(
                "CREATE TABLE n (id INTEGER PRIMARY KEY, i INTEGER, r REAL, t TEXT, b INTEGER)",
            )
            .unwrap();
            let tbl = db.catalog_mut().get_mut("n").unwrap();
            for (row_id, (nulls, raw, small, ti)) in cells.iter().enumerate() {
                let i = if nulls & 1 == 0 { Value::Integer(raw % 5) } else { Value::Null };
                let r = if nulls & 2 == 0 {
                    let f = if *small == 0 { -0.0 } else { *small as f64 / 2.0 };
                    Value::Real(f)
                } else {
                    Value::Null
                };
                let t = if nulls & 4 == 0 { Value::text(TEXTS[*ti]) } else { Value::Null };
                let b = if raw % 3 == 0 { Value::Null } else { Value::Integer(raw.rem_euclid(2)) };
                tbl.insert_row(vec![Value::Integer(row_id as i64), i, r, t, b]).unwrap();
            }
            db
        };
        let sql = match shape {
            0 => format!("SELECT id, i FROM n WHERE i > {threshold}"),
            1 => "SELECT id FROM n WHERE t = 'a' OR i IS NULL".to_string(),
            2 => format!(
                "SELECT id FROM n WHERE i BETWEEN {threshold} AND {} ORDER BY id",
                threshold + 3
            ),
            3 => "SELECT COUNT(*), COUNT(i), SUM(i), AVG(r), MIN(t), MAX(t), SUM(t) FROM n"
                .to_string(),
            4 => "SELECT b, COUNT(*), SUM(r) FROM n GROUP BY b".to_string(),
            5 => "SELECT i, COUNT(r), AVG(i) FROM n GROUP BY i ORDER BY 1".to_string(),
            6 => "SELECT a.id, c.id FROM n a JOIN n c ON a.i = c.i ORDER BY a.id, c.id"
                .to_string(),
            7 => "SELECT id FROM n WHERE i IN (1, 2, NULL)".to_string(),
            _ => format!("SELECT id FROM n WHERE NOT (i > {threshold} AND b = 1)"),
        };
        let run = |threads: usize, columnar: bool| -> QueryResult {
            let mut db = build();
            db.set_optimizer(OptimizerConfig {
                threads,
                parallel_threshold: 1,
                columnar,
                ..Default::default()
            });
            db.query(&sql)
                .unwrap_or_else(|e| panic!("columnar={columnar} {threads}-thread {sql}: {e}"))
        };
        let row_ref = run(1, false);
        for &threads in &[1usize, 8] {
            let columnar = run(threads, true);
            assert_equivalent(&sql, threads, &row_ref, &columnar);
        }
    }

    /// Text→number coercion parity on adversarial spellings: the columnar
    /// truthiness and SUM/AVG kernels parse each dictionary entry once
    /// through `parse_text_f64` — the same helper `Value::as_f64` uses —
    /// and this generator throws every numeric-ish edge the `f64` grammar
    /// distinguishes (signs, bare dots, inf/NaN spellings, overflow to
    /// ±inf, underscores/hex/empty strings that must NOT parse) at both
    /// paths. Any parser divergence shows up as a row or aggregate diff.
    #[test]
    fn columnar_matches_row_on_adversarial_numeric_text(
        picks in proptest::collection::vec(
            (0usize..ADVERSARIAL_TEXTS.len(), 0i64..4, any::<bool>()), 3..48),
        shape in 0usize..6,
    ) {
        let build = || {
            let mut db = Database::new();
            db.execute("CREATE TABLE adv (id INTEGER PRIMARY KEY, g INTEGER, t TEXT)")
                .unwrap();
            let tbl = db.catalog_mut().get_mut("adv").unwrap();
            for (row_id, (ti, g, null)) in picks.iter().enumerate() {
                let t = if *null { Value::Null } else { Value::text(ADVERSARIAL_TEXTS[*ti]) };
                tbl.insert_row(vec![Value::Integer(row_id as i64), Value::Integer(*g), t])
                    .unwrap();
            }
            db
        };
        let sql = match shape {
            // Truthiness kernel: text is true iff it parses non-zero.
            0 => "SELECT id FROM adv WHERE t".to_string(),
            1 => "SELECT id FROM adv WHERE NOT t".to_string(),
            // SUM/AVG text kernel: non-numeric text counts as 0.0, and
            // inf/NaN must poison the accumulator identically.
            2 => "SELECT g, COUNT(*), SUM(t), AVG(t) FROM adv GROUP BY g ORDER BY g"
                .to_string(),
            3 => "SELECT COUNT(t), SUM(t), AVG(t), MIN(t), MAX(t) FROM adv".to_string(),
            // Comparison against a numeric literal (text→number affinity
            // in the compare kernel).
            4 => "SELECT id FROM adv WHERE t > 0 ORDER BY id".to_string(),
            _ => "SELECT t, COUNT(*) FROM adv GROUP BY t ORDER BY 2, 1".to_string(),
        };
        let run = |threads: usize, columnar: bool| -> QueryResult {
            let mut db = build();
            db.set_optimizer(OptimizerConfig {
                threads,
                parallel_threshold: 1,
                columnar,
                ..Default::default()
            });
            db.query(&sql)
                .unwrap_or_else(|e| panic!("columnar={columnar} {threads}-thread {sql}: {e}"))
        };
        let row_ref = run(1, false);
        for &threads in &[1usize, 8] {
            let columnar = run(threads, true);
            assert_equivalent(&sql, threads, &row_ref, &columnar);
        }
    }
}

/// Numeric-ish strings chosen to disagree under *almost*-equivalent
/// parsers: Rust's `f64` grammar accepts leading `+`, bare-dot forms,
/// case-insensitive `inf`/`infinity`/`NaN` and overflows `1e309` to
/// `inf`, while rejecting `1_000`, hex, lone exponents and whitespace-only
/// strings. A LUT that, say, trimmed differently or used `as_i64` first
/// would diverge on at least one of these.
const ADVERSARIAL_TEXTS: &[&str] = &[
    "+5", "-0.0", "0.0", ".5", "5.", "+.5", "-.5", " 42\t", "1e309", "-1e309", "1e-320",
    "9007199254740993", " inf ", "-inf", "Infinity", "NaN", "-nan", "1_000", "0x10", "", " ",
    "1e", "e1", "- 5", "++5", "5 .", "abc",
];

/// An expensive UDF whose `invoke_batch` always fails: the statement
/// prefetch answers nothing, so per-row invokes inside workers are the
/// only source of results. Counts every evaluated tuple.
#[derive(Default)]
struct BrokenBatchUdf {
    tuples: AtomicU64,
}

impl ScalarUdf for BrokenBatchUdf {
    fn name(&self) -> &str {
        "flaky_tag"
    }
    fn invoke(&self, args: &[Value]) -> swan_sqlengine::Result<Value> {
        self.tuples.fetch_add(1, Ordering::SeqCst);
        Ok(Value::text(format!(
            "v{}",
            args.iter().map(Value::render).collect::<Vec<_>>().join("-")
        )))
    }
    fn invoke_batch(&self, _rows: &[Vec<Value>]) -> swan_sqlengine::Result<Vec<Value>> {
        Err(swan_sqlengine::Error::Udf {
            name: "flaky_tag".into(),
            message: "simulated batch failure".into(),
        })
    }
    fn is_expensive(&self) -> bool {
        true
    }
}

/// When the vectorized prefetch fails, workers invoke per row against
/// their private stores — results a worker computes must merge back into
/// the statement store so a later operator (here: the projection reusing
/// the WHERE clause's call) is served without re-invoking. Rows stay
/// identical to serial, and the tuple count stays bounded by
/// threads × distinct tuples (not operators × threads × distinct).
#[test]
fn failed_invoke_batch_merges_worker_results_back() {
    const DISTINCT: u64 = 5;
    let build = |threads: usize| {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, n INTEGER)").unwrap();
        {
            let t = db.catalog_mut().get_mut("t").unwrap();
            for i in 0..200i64 {
                t.insert_row(vec![Value::Integer(i), Value::Integer(i % DISTINCT as i64)])
                    .unwrap();
            }
        }
        let udf = Arc::new(BrokenBatchUdf::default());
        db.register_udf(udf.clone());
        db.set_optimizer(if threads == 1 {
            serial_config()
        } else {
            parallel_config(threads)
        });
        (db, udf)
    };
    let sql = "SELECT id, flaky_tag(n) FROM t WHERE flaky_tag(n) LIKE 'v%' ORDER BY id";

    let (serial_db, serial_udf) = build(1);
    let serial = serial_db.query(sql).unwrap();
    assert_eq!(serial.rows.len(), 200);
    assert_eq!(
        serial_udf.tuples.load(Ordering::SeqCst),
        DISTINCT,
        "serial: one invoke per distinct tuple, shared across WHERE and projection"
    );

    for &threads in THREAD_COUNTS {
        let (par_db, par_udf) = build(threads);
        let parallel = par_db.query(sql).unwrap();
        assert_eq!(parallel.rows, serial.rows, "rows diverge at {threads} threads");
        let tuples = par_udf.tuples.load(Ordering::SeqCst);
        assert!(
            tuples <= threads as u64 * DISTINCT,
            "at {threads} threads expected ≤ {} tuples (merge-back must serve the \
             projection from the WHERE phase's results), got {tuples}",
            threads as u64 * DISTINCT
        );
    }
}

/// Subquery-bearing predicates now run under `Plan::Parallel` against
/// the statement-shared `Send + Sync` subquery cache. The observable
/// contract: an uncorrelated subquery's rows are evaluated exactly once
/// per statement at *every* thread count — with per-worker caches the
/// counting UDF inside the subquery would fire up to `threads ×` as
/// often. Rows must stay byte-identical to serial throughout.
#[test]
fn uncorrelated_subquery_executes_once_at_every_thread_count() {
    let build = |threads: usize| {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, n INTEGER)").unwrap();
        db.execute("CREATE TABLE lookup (k INTEGER PRIMARY KEY)").unwrap();
        {
            let t = db.catalog_mut().get_mut("t").unwrap();
            for i in 0..500i64 {
                t.insert_row(vec![Value::Integer(i), Value::Integer(i % 7)]).unwrap();
            }
            let l = db.catalog_mut().get_mut("lookup").unwrap();
            for k in 0..5i64 {
                l.insert_row(vec![Value::Integer(k)]).unwrap();
            }
        }
        let udf = Arc::new(TagUdf::default());
        db.register_udf(udf.clone());
        db.set_optimizer(if threads == 1 {
            serial_config()
        } else {
            parallel_config(threads)
        });
        (db, udf)
    };
    // slow_tag runs once per lookup row iff the subquery runs once.
    let sql = "SELECT id FROM t \
               WHERE n IN (SELECT k FROM lookup WHERE slow_tag('q', k) LIKE 'vq%') \
               ORDER BY id";

    let (serial_db, serial_udf) = build(1);
    let serial = serial_db.query(sql).unwrap();
    assert!(!serial.rows.is_empty());
    assert_eq!(serial_udf.tuples.load(Ordering::SeqCst), 5, "one call per lookup row");

    for &threads in THREAD_COUNTS {
        let (par_db, par_udf) = build(threads);
        let parallel = par_db.query(sql).unwrap();
        assert_eq!(parallel.rows, serial.rows, "rows diverge at {threads} threads");
        assert_eq!(
            par_udf.tuples.load(Ordering::SeqCst),
            5,
            "shared subquery cache: the subquery must execute exactly once \
             at {threads} threads"
        );
    }
}

/// Correlated subqueries in a parallel filter: per-row re-execution on
/// worker threads agrees with serial row for row.
#[test]
fn correlated_subquery_filter_matches_serial() {
    let build = |threads: usize| {
        let mut db = Database::new();
        db.execute("CREATE TABLE o (id INTEGER PRIMARY KEY, grp INTEGER)").unwrap();
        db.execute("CREATE TABLE i (id INTEGER PRIMARY KEY, grp INTEGER)").unwrap();
        {
            let o = db.catalog_mut().get_mut("o").unwrap();
            for k in 0..300i64 {
                o.insert_row(vec![Value::Integer(k), Value::Integer(k % 11)]).unwrap();
            }
            let i = db.catalog_mut().get_mut("i").unwrap();
            for k in 0..40i64 {
                i.insert_row(vec![Value::Integer(k), Value::Integer(k % 5)]).unwrap();
            }
        }
        db.set_optimizer(if threads == 1 {
            serial_config()
        } else {
            parallel_config(threads)
        });
        db
    };
    let sql = "SELECT id FROM o WHERE EXISTS (SELECT 1 FROM i WHERE i.grp = o.grp) ORDER BY id";
    let serial = build(1).query(sql).unwrap();
    assert!(!serial.rows.is_empty() && serial.rows.len() < 300, "filter must discriminate");
    for &threads in THREAD_COUNTS {
        let parallel = build(threads).query(sql).unwrap();
        assert_eq!(parallel.rows, serial.rows, "rows diverge at {threads} threads");
    }
}

/// ORDER BY ties at the LIMIT boundary: the kept prefix must be exactly
/// the stable-sort prefix (first-come-first-kept) at every thread count —
/// the documented tie-break contract.
#[test]
fn topk_tie_break_is_stable_at_every_thread_count() {
    let build = |threads: usize| {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, n INTEGER)").unwrap();
        {
            let t = db.catalog_mut().get_mut("t").unwrap();
            for i in 0..6000i64 {
                // Heavy ties: only 3 distinct sort keys.
                t.insert_row(vec![Value::Integer(i), Value::Integer(i % 3)]).unwrap();
            }
        }
        db.set_optimizer(if threads == 1 {
            serial_config()
        } else {
            parallel_config(threads)
        });
        db
    };
    // Stable expectation: among n == 0 ties, the lowest ids win, in order.
    let expect: Vec<i64> = (0..5).map(|i| i * 3).collect();
    for threads in [1usize, 2, 8] {
        let db = build(threads);
        let r = db.query("SELECT id FROM t ORDER BY n LIMIT 5").unwrap();
        let got: Vec<i64> = r.rows.iter().map(|row| row[0].as_i64().unwrap()).collect();
        assert_eq!(got, expect, "tie-break diverged at {threads} thread(s)");
        // And LIMIT k is a prefix of the full ordered result.
        let full = db.query("SELECT id FROM t ORDER BY n").unwrap();
        let prefix: Vec<i64> =
            full.rows[..5].iter().map(|row| row[0].as_i64().unwrap()).collect();
        assert_eq!(got, prefix, "LIMIT must be a stable-sort prefix at {threads} thread(s)");
    }
}

/// `SWAN_THREADS=1` (== `threads: 1`) reproduces the serial engine
/// exactly: no `Parallel` node is ever inserted.
#[test]
fn single_thread_config_never_parallelizes() {
    use swan_sqlengine::optimizer::optimize;
    use swan_sqlengine::plan::{plan_from, Plan};
    use swan_sqlengine::UdfRegistry;

    let mut db = Database::new();
    db.execute("CREATE TABLE big (id INTEGER PRIMARY KEY, n INTEGER)").unwrap();
    {
        let t = db.catalog_mut().get_mut("big").unwrap();
        for i in 0..5000i64 {
            t.insert_row(vec![Value::Integer(i), Value::Integer(i % 10)]).unwrap();
        }
    }
    let stmt = swan_sqlengine::parser::parse_statement("SELECT * FROM big WHERE n > 3").unwrap();
    let swan_sqlengine::ast::Statement::Select(s) = stmt else { panic!() };
    let swan_sqlengine::ast::SelectBody::Simple(core) = s.body else { panic!() };
    let plan = plan_from(core.from.as_ref(), core.filter.as_ref()).unwrap();

    let serial = optimize(
        plan.clone(),
        &UdfRegistry::new(),
        &OptimizerConfig { threads: 1, parallel_threshold: 1, ..Default::default() },
        db.catalog(),
        None,
    )
    .unwrap();
    assert!(
        !matches!(serial, Plan::Parallel { .. }),
        "threads == 1 must never grow a Parallel node"
    );

    let parallel = optimize(
        plan,
        &UdfRegistry::new(),
        &OptimizerConfig { threads: 8, ..Default::default() },
        db.catalog(),
        None,
    )
    .unwrap();
    let Plan::Parallel { partitions, .. } = parallel else {
        panic!("8-thread config over a 5000-row table must parallelize")
    };
    assert_eq!(partitions, 8);
}

/// Small tables stay serial under the default threshold even with many
/// threads configured — the row-count statistic drives the decision.
#[test]
fn small_tables_stay_serial_under_default_threshold() {
    use swan_sqlengine::optimizer::optimize;
    use swan_sqlengine::plan::{plan_from, Plan};
    use swan_sqlengine::UdfRegistry;

    let mut db = Database::new();
    db.execute("CREATE TABLE small (id INTEGER PRIMARY KEY)").unwrap();
    db.execute("INSERT INTO small VALUES (1), (2), (3)").unwrap();
    let stmt = swan_sqlengine::parser::parse_statement("SELECT * FROM small").unwrap();
    let swan_sqlengine::ast::Statement::Select(s) = stmt else { panic!() };
    let swan_sqlengine::ast::SelectBody::Simple(core) = s.body else { panic!() };
    let plan = plan_from(core.from.as_ref(), core.filter.as_ref()).unwrap();
    let optimized = optimize(
        plan,
        &UdfRegistry::new(),
        &OptimizerConfig { threads: 8, ..Default::default() },
        db.catalog(),
        None,
    )
    .unwrap();
    assert!(!matches!(optimized, Plan::Parallel { .. }));
}
