//! # Double-slot shadow-paged storage
//!
//! The durable page store behind the WAL ([`crate::wal`]). Fixes the
//! O(database) checkpoint: instead of rewriting every table as one image,
//! a checkpoint flushes only the pages dirtied since the last one.
//!
//! ## Layout
//!
//! Two files live next to the WAL, both reached only through the
//! [`Vfs`] seam:
//!
//! * `<wal>.pages` — the page file. Each **logical** page id `p ≥ 1` owns
//!   two 4 KiB **physical slots** at offsets `(2(p-1) + s) · 4096`,
//!   `s ∈ {0, 1}`. Exactly one slot is *current* (named by the meta
//!   file); the other is the *shadow*. All writes — dirty-page flushes at
//!   checkpoint and buffer-pool evictions between checkpoints — go to the
//!   shadow slot, so the durable current image is **never overwritten**
//!   and a torn write can never damage committed state. Page ids are
//!   stable forever, which keeps B-tree leaf links valid with no page
//!   relocation. The price is 2× page-file space.
//! * `<wal>.meta` — the atomically-replaced root of trust: epoch,
//!   current-slot bitmap, free list, and per-table tree roots + schema.
//!   Written via tmp file + fsync + rename + parent-dir sync (the same
//!   protocol the WAL swap uses), so it is always old-or-new.
//!
//! ## Checkpoint protocol (under the WAL mutex)
//!
//! 1. flush every dirty pool page to its shadow slot; `fsync` the page
//!    file;
//! 2. write meta for `epoch+1` with the slot bits of all shadow-written
//!    pages flipped; rename it into place (the atomic commit point);
//! 3. the caller ([`crate::wal::Wal::checkpoint`]) then rewrites the WAL
//!    to a single [`WalRecord::PagedCheckpoint`] marker.
//!
//! A crash before (2) recovers at the old epoch with the full WAL tail;
//! shadow writes are invisible because the old meta still names the old
//! slots. A crash between (2) and (3) leaves the WAL marker *behind* the
//! meta epoch — recovery trusts the meta and discards the stale tail,
//! which is sound because the whole checkpoint runs under the WAL lock:
//! every record in that tail was already folded into the trees the meta
//! made durable. A WAL marker *ahead* of the meta epoch is loud
//! corruption. Write failures before (2) completes leave `shadow` and
//! the dirty flags untouched, so the next checkpoint simply retries
//! cumulatively — no poison needed until the WAL itself is rewritten.
//!
//! ## Degraded mode: the rebuild flag
//!
//! Commits apply their deltas to the trees *after* the WAL fsync — the
//! commit is already durable, so a tree-application failure must not fail
//! the commit. Instead the pager flips `rebuild`: delta application
//! becomes a no-op and the next checkpoint rebuilds every tree from the
//! in-memory catalog snapshot (sound because `SharedDb::maybe_checkpoint`
//! only runs with no pending installs). The same flag drives migration
//! from a pre-pager WAL: legacy replay recovers the catalog in memory,
//! and the first checkpoint builds the trees.
//!
//! Locks: `Pager.inner` holds rank [`lockrank::PAGER`] (32), taken under
//! the WAL mutex (30); the buffer pool (34) and SimFs state (40) sit
//! below. See ANALYSIS.md.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;
use swan_pool::lockrank;

use crate::btree::{self, PageStore};
use crate::bufpool::{BufferPool, PageRef, PoolStats};
use crate::error::{Error, Result};
use crate::storage::{
    codec_err, decode_row, encode_row, get_str, get_u32, get_u64, get_u8, put_str, put_u32,
    put_u64, take, Catalog, Column, Table, TextInterner,
};
use crate::value::{Row, Value};
use crate::vfs::{Vfs, VfsFile};
use crate::wal::{crc32, WalDelta};

/// Physical page size: header + payload, both slots of a page id.
pub const PAGE_SIZE: usize = 4096;
/// Page header: crc(4) + id(8) + epoch(8) + type(1) + pad(3) + len(4).
pub(crate) const PAGE_HDR: usize = 28;
/// Usable payload bytes per page.
pub(crate) const PAGE_PAYLOAD: usize = PAGE_SIZE - PAGE_HDR;

const META_MAGIC: u32 = 0x5357_4D31; // "SWM1"
const KIND_TREE: u8 = 1;
const KIND_HEAP: u8 = 2;

/// A decoded page: its type byte and payload. Shared immutably between
/// the buffer pool and readers; writers install a fresh `PageBuf`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PageBuf {
    pub typ: u8,
    pub data: Vec<u8>,
}

fn encode_page_image(id: u64, epoch: u64, buf: &PageBuf) -> Result<Vec<u8>> {
    if buf.data.len() > PAGE_PAYLOAD {
        return Err(Error::Internal(format!(
            "pager: page {id} payload of {} bytes exceeds {PAGE_PAYLOAD}",
            buf.data.len()
        )));
    }
    let mut img = vec![0u8; PAGE_SIZE];
    img[4..12].copy_from_slice(&id.to_le_bytes());
    img[12..20].copy_from_slice(&epoch.to_le_bytes());
    img[20] = buf.typ;
    img[24..28].copy_from_slice(&(buf.data.len() as u32).to_le_bytes());
    img[28..28 + buf.data.len()].copy_from_slice(&buf.data);
    let crc = crc32(&img[4..28 + buf.data.len()]);
    img[0..4].copy_from_slice(&crc.to_le_bytes());
    Ok(img)
}

fn parse_page_image(img: &[u8], want_id: u64) -> Result<PageBuf> {
    if img.len() != PAGE_SIZE {
        return Err(Error::Io(format!("pager: short page image ({} bytes)", img.len())));
    }
    let stored_crc = u32::from_le_bytes([img[0], img[1], img[2], img[3]]);
    let id = u64::from_le_bytes([
        img[4], img[5], img[6], img[7], img[8], img[9], img[10], img[11],
    ]);
    let typ = img[20];
    let len = u32::from_le_bytes([img[24], img[25], img[26], img[27]]) as usize;
    if len > PAGE_PAYLOAD {
        return Err(Error::Io(format!("pager: page {want_id} claims {len} payload bytes")));
    }
    if crc32(&img[4..28 + len]) != stored_crc {
        return Err(Error::Io(format!("pager: CRC mismatch on page {want_id}")));
    }
    if id != want_id {
        return Err(Error::Io(format!("pager: page slot holds id {id}, expected {want_id}")));
    }
    Ok(PageBuf { typ, data: img[28..28 + len].to_vec() })
}

/// Durable per-table state recorded in the meta file.
#[derive(Debug, Clone)]
struct TableMeta {
    columns: Vec<Column>,
    pk: Vec<usize>,
    version: u64,
    row_count: u64,
    /// `KIND_TREE` (primary key) or `KIND_HEAP` (no primary key).
    kind: u8,
    /// Tree root or heap head (`0` = empty).
    root: u64,
    /// Heap tail (unused for trees).
    tail: u64,
    /// Next insertion stamp; sparse and monotone.
    next_seq: u64,
}

struct PagerState {
    file: Box<dyn VfsFile>,
    meta_path: PathBuf,
    /// Epoch of the durable meta file; `0` = never checkpointed.
    epoch: u64,
    /// First unallocated page id (ids start at 1).
    next_page: u64,
    /// Current-slot bit per page id (`slots[id-1]`), as named by the
    /// durable meta. Flipped in memory only after a meta rename lands.
    slots: Vec<u8>,
    /// Pages whose *shadow* slot holds the epoch+1 image (evicted or
    /// flushed since the last successful checkpoint). Cumulative across
    /// failed checkpoints; cleared by the meta flip. BTreeSet so flip and
    /// flush order is deterministic for the crash-sim sweep.
    shadow: BTreeSet<u64>,
    free: Vec<u64>,
    tables: BTreeMap<String, TableMeta>,
    rebuild: bool,
}

/// Counters surfaced through [`crate::db::Database::pager_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagerStats {
    pub epoch: u64,
    pub pages: u64,
    pub pool: PoolStats,
}

/// How a failed [`Pager::checkpoint`] left the durable state.
#[derive(Debug)]
pub(crate) enum CheckpointError {
    /// The durable meta is unchanged (old epoch): every retry input —
    /// dirty flags, shadow set — is intact, so a later checkpoint simply
    /// tries again. No poison.
    Retryable(Error),
    /// The meta rename was issued but its parent-directory sync failed:
    /// the new meta is *ambiguously* durable while the log still holds
    /// pre-checkpoint records and no marker. If commits kept being
    /// acknowledged onto that log and the new meta then survived a
    /// crash, recovery would trust the meta and discard them. The caller
    /// must poison the log so nothing further is acknowledged.
    Ambiguous(Error),
}

impl CheckpointError {
    pub(crate) fn into_error(self) -> Error {
        match self {
            CheckpointError::Retryable(e) | CheckpointError::Ambiguous(e) => e,
        }
    }
}

pub(crate) struct Pager {
    vfs: Arc<dyn Vfs>,
    pool: Arc<BufferPool>,
    inner: Mutex<PagerState>,
}

/// Buffer-pool-mediated page I/O handed to the tree layer. Evicted dirty
/// victims are written to their shadow slot on the way out — eviction
/// never blocks on the current slot and never loses data.
struct Io<'a> {
    st: &'a mut PagerState,
    pool: &'a Arc<BufferPool>,
}

impl PagerState {
    fn page_offset(&self, id: u64, slot: u8) -> u64 {
        (2 * (id - 1) + slot as u64) * PAGE_SIZE as u64
    }

    /// The slot currently holding `id`'s newest image: the shadow slot if
    /// we have written one this epoch, else the durable current slot.
    fn read_slot(&self, id: u64) -> Result<u8> {
        if id == 0 || id >= self.next_page {
            return Err(Error::Internal(format!("pager: page id {id} out of range")));
        }
        let cur = self.slots[(id - 1) as usize] & 1;
        Ok(if self.shadow.contains(&id) { cur ^ 1 } else { cur })
    }

    /// Write `buf` as `id`'s epoch+1 image into its shadow slot.
    fn write_shadow(&mut self, id: u64, buf: &PageBuf) -> Result<()> {
        if id == 0 || id >= self.next_page {
            return Err(Error::Internal(format!("pager: shadow write to bad page id {id}")));
        }
        let slot = (self.slots[(id - 1) as usize] & 1) ^ 1;
        let img = encode_page_image(id, self.epoch + 1, buf)?;
        let off = self.page_offset(id, slot);
        self.file.write_all_at(off, &img)?;
        self.shadow.insert(id);
        Ok(())
    }
}

impl PageStore for Io<'_> {
    fn read(&mut self, id: u64) -> Result<PageRef> {
        if let Some(page) = self.pool.lookup(id) {
            return Ok(page);
        }
        let slot = self.st.read_slot(id)?;
        let off = self.st.page_offset(id, slot);
        let img = self.st.file.read_exact_at(off, PAGE_SIZE)?;
        let buf = Arc::new(parse_page_image(&img, id)?);
        let (page, evicted) = self.pool.insert(id, buf, false);
        if let Some(ev) = evicted {
            self.st.write_shadow(ev.id, &ev.buf)?;
        }
        Ok(page)
    }

    fn write(&mut self, id: u64, typ: u8, data: Vec<u8>) -> Result<()> {
        if data.len() > PAGE_PAYLOAD {
            return Err(Error::Internal(format!(
                "pager: write of {} payload bytes to page {id}",
                data.len()
            )));
        }
        let evicted = self.pool.update(id, Arc::new(PageBuf { typ, data }));
        if let Some(ev) = evicted {
            self.st.write_shadow(ev.id, &ev.buf)?;
        }
        Ok(())
    }

    fn alloc(&mut self) -> Result<u64> {
        if let Some(id) = self.st.free.pop() {
            return Ok(id);
        }
        let id = self.st.next_page;
        self.st.next_page += 1;
        // A rebuild restarts allocation at id 1 while keeping the old slot
        // bits, so the vector may already cover this id. Growing it
        // unconditionally would desync `slots.len()` from `next_page - 1`
        // and shift every field after the slot array in the encoded meta.
        if self.st.slots.len() < id as usize {
            self.st.slots.push(0);
        }
        Ok(id)
    }

    fn free(&mut self, id: u64) -> Result<()> {
        self.pool.drop_page(id)?;
        self.st.shadow.remove(&id);
        self.st.free.push(id);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Key encoding
// ---------------------------------------------------------------------------

/// Encode the primary-key cells of `row` (by `pk` column indexes) as a
/// tree key: the `encode_row` image of just those values.
fn encode_pk_key(row: &[Value], pk: &[usize]) -> Result<Vec<u8>> {
    let mut buf = Vec::with_capacity(16);
    put_u32(&mut buf, pk.len() as u32);
    for &i in pk {
        let v = row
            .get(i)
            .ok_or_else(|| Error::Internal(format!("pager: pk column {i} out of row bounds")))?;
        crate::storage::encode_value(&mut buf, v);
    }
    Ok(buf)
}

/// Encode an already-projected pk tuple (a `RowPatch` delete row).
fn encode_tuple_key(tuple: &[Value]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16);
    put_u32(&mut buf, tuple.len() as u32);
    for v in tuple {
        crate::storage::encode_value(&mut buf, v);
    }
    buf
}

// ---------------------------------------------------------------------------
// Meta codec
// ---------------------------------------------------------------------------

fn encode_meta(
    epoch: u64,
    next_page: u64,
    slots: &[u8],
    free: &[u64],
    tables: &BTreeMap<String, TableMeta>,
) -> Vec<u8> {
    let mut p = Vec::with_capacity(64 + slots.len());
    put_u64(&mut p, epoch);
    put_u64(&mut p, next_page);
    p.extend_from_slice(slots);
    put_u32(&mut p, free.len() as u32);
    for &id in free {
        put_u64(&mut p, id);
    }
    put_u32(&mut p, tables.len() as u32);
    for (name, tm) in tables {
        put_str(&mut p, name);
        p.push(tm.kind);
        put_u64(&mut p, tm.root);
        put_u64(&mut p, tm.tail);
        put_u64(&mut p, tm.next_seq);
        put_u64(&mut p, tm.version);
        put_u64(&mut p, tm.row_count);
        put_u32(&mut p, tm.columns.len() as u32);
        for c in &tm.columns {
            put_str(&mut p, &c.name);
            match &c.decl_type {
                Some(t) => {
                    p.push(1);
                    put_str(&mut p, t);
                }
                None => p.push(0),
            }
            p.push(c.not_null as u8);
        }
        put_u32(&mut p, tm.pk.len() as u32);
        for &i in &tm.pk {
            put_u32(&mut p, i as u32);
        }
    }
    let mut out = Vec::with_capacity(8 + p.len());
    put_u32(&mut out, META_MAGIC);
    put_u32(&mut out, crc32(&p));
    out.extend_from_slice(&p);
    out
}

struct MetaImage {
    epoch: u64,
    next_page: u64,
    slots: Vec<u8>,
    free: Vec<u64>,
    tables: BTreeMap<String, TableMeta>,
}

fn parse_meta(bytes: &[u8]) -> Result<MetaImage> {
    let mut pos = 0usize;
    if get_u32(bytes, &mut pos)? != META_MAGIC {
        return Err(Error::Io("pager: bad meta magic".into()));
    }
    let stored_crc = get_u32(bytes, &mut pos)?;
    if crc32(&bytes[pos..]) != stored_crc {
        return Err(Error::Io("pager: meta CRC mismatch".into()));
    }
    let epoch = get_u64(bytes, &mut pos)?;
    let next_page = get_u64(bytes, &mut pos)?;
    if epoch == 0 || next_page == 0 || next_page > 1 << 40 {
        return Err(Error::Io("pager: implausible meta header".into()));
    }
    let slots = take(bytes, &mut pos, (next_page - 1) as usize)?.to_vec();
    let nfree = get_u32(bytes, &mut pos)? as usize;
    let mut free = Vec::with_capacity(nfree.min(1 << 20));
    for _ in 0..nfree {
        free.push(get_u64(bytes, &mut pos)?);
    }
    let ntables = get_u32(bytes, &mut pos)? as usize;
    let mut tables = BTreeMap::new();
    for _ in 0..ntables {
        let name = get_str(bytes, &mut pos)?.to_string();
        let kind = get_u8(bytes, &mut pos)?;
        if kind != KIND_TREE && kind != KIND_HEAP {
            return Err(codec_err("pager meta table kind"));
        }
        let root = get_u64(bytes, &mut pos)?;
        let tail = get_u64(bytes, &mut pos)?;
        let next_seq = get_u64(bytes, &mut pos)?;
        let version = get_u64(bytes, &mut pos)?;
        let row_count = get_u64(bytes, &mut pos)?;
        let ncols = get_u32(bytes, &mut pos)? as usize;
        let mut columns = Vec::with_capacity(ncols.min(1 << 16));
        for _ in 0..ncols {
            let cname = get_str(bytes, &mut pos)?.to_string();
            let decl_type = match get_u8(bytes, &mut pos)? {
                0 => None,
                1 => Some(get_str(bytes, &mut pos)?.to_string()),
                _ => return Err(codec_err("pager meta decl tag")),
            };
            let not_null = get_u8(bytes, &mut pos)? != 0;
            columns.push(Column { name: cname, decl_type, not_null });
        }
        let npk = get_u32(bytes, &mut pos)? as usize;
        let mut pk = Vec::with_capacity(npk.min(1 << 16));
        for _ in 0..npk {
            let i = get_u32(bytes, &mut pos)? as usize;
            if i >= columns.len() {
                return Err(codec_err("pager meta pk index"));
            }
            pk.push(i);
        }
        if (kind == KIND_TREE) != !pk.is_empty() {
            return Err(codec_err("pager meta kind/pk mismatch"));
        }
        tables.insert(name, TableMeta { columns, pk, version, row_count, kind, root, tail, next_seq });
    }
    Ok(MetaImage { epoch, next_page, slots, free, tables })
}

// ---------------------------------------------------------------------------
// Pager
// ---------------------------------------------------------------------------

fn sibling_path(wal_path: &Path, suffix: &str) -> PathBuf {
    let mut s = wal_path.as_os_str().to_os_string();
    s.push(suffix);
    PathBuf::from(s)
}

impl Pager {
    /// Open (or create) the page store next to `wal_path`. Reads the meta
    /// file if present; a missing or unreadable meta yields a fresh pager
    /// at epoch 0 — [`crate::wal::Wal::open_on`] cross-checks the WAL's
    /// checkpoint marker against the meta epoch, so a lost meta with a
    /// durable marker is a loud error, not silent data loss.
    pub(crate) fn open(
        vfs: Arc<dyn Vfs>,
        wal_path: &Path,
        pool_pages: usize,
    ) -> Result<Pager> {
        let pages_path = sibling_path(wal_path, ".pages");
        let meta_path = sibling_path(wal_path, ".meta");
        let mut epoch = 0u64;
        let mut next_page = 1u64;
        let mut slots = Vec::new();
        let mut free = Vec::new();
        let mut tables = BTreeMap::new();
        if let Ok(bytes) = vfs.read(&meta_path) {
            if !bytes.is_empty() {
                let meta = parse_meta(&bytes)?;
                epoch = meta.epoch;
                next_page = meta.next_page;
                slots = meta.slots;
                free = meta.free;
                tables = meta.tables;
            }
        }
        let file = vfs.open(&pages_path)?;
        Ok(Pager {
            vfs,
            pool: BufferPool::new(pool_pages),
            inner: Mutex::with_rank(
                "pager",
                lockrank::PAGER,
                PagerState {
                    file,
                    meta_path,
                    epoch,
                    next_page,
                    slots,
                    shadow: BTreeSet::new(),
                    free,
                    tables,
                    rebuild: false,
                },
            ),
        })
    }

    /// Epoch of the durable meta (`0` = never checkpointed).
    pub(crate) fn epoch(&self) -> u64 {
        self.inner.lock().epoch
    }

    /// Enter degraded mode: delta application becomes a no-op and the
    /// next checkpoint rebuilds every tree from the catalog snapshot.
    pub(crate) fn set_rebuild(&self) {
        self.inner.lock().rebuild = true;
    }

    pub(crate) fn stats(&self) -> PagerStats {
        let st = self.inner.lock();
        PagerStats { epoch: st.epoch, pages: st.next_page - 1, pool: self.pool.stats() }
    }

    /// Rebuild the catalog from the durable trees (recovery with a
    /// current meta). Rows come back in `seq` order — byte-identical to
    /// the in-memory row order at checkpoint time.
    pub(crate) fn materialize_catalog(&self) -> Result<Catalog> {
        let mut st = self.inner.lock();
        let st = &mut *st;
        let metas: Vec<(String, TableMeta)> =
            st.tables.iter().map(|(n, t)| (n.clone(), t.clone())).collect();
        let mut catalog = Catalog::new();
        let mut interner = TextInterner::new();
        for (name, tm) in metas {
            let mut cells: Vec<(u64, Vec<u8>)> = Vec::with_capacity(tm.row_count as usize);
            {
                let mut io = Io { st, pool: &self.pool };
                match tm.kind {
                    KIND_TREE => btree::tree_scan_all(&mut io, tm.root, &mut cells)?,
                    _ => btree::heap_scan(&mut io, tm.root, &mut cells)?,
                }
            }
            cells.sort_by_key(|(seq, _)| *seq);
            let pk_names: Vec<String> =
                tm.pk.iter().map(|&i| tm.columns[i].name.clone()).collect();
            let mut table = Table::new(name, tm.columns.clone(), &pk_names)?;
            for (_, bytes) in &cells {
                let mut pos = 0usize;
                let row = decode_row(bytes, &mut pos, &mut interner)?;
                table.insert_shared_row(row)?;
            }
            table.version = tm.version;
            catalog.put_shared(Arc::new(table));
        }
        Ok(catalog)
    }

    /// Apply one committed delta to the durable trees. Called by the WAL
    /// layer after the commit is on disk — errors here must not fail the
    /// commit, so the caller routes them to [`Pager::set_rebuild`]. In
    /// rebuild mode this is a no-op (the next checkpoint recaptures
    /// everything from the catalog).
    pub(crate) fn apply_delta(&self, delta: &WalDelta) -> Result<()> {
        let mut st = self.inner.lock();
        let st = &mut *st;
        if st.rebuild {
            return Ok(());
        }
        match delta {
            WalDelta::Put { table } => {
                if let Some(tm) = st.tables.remove(&table.name) {
                    let mut io = Io { st, pool: &self.pool };
                    free_table(&mut io, &tm)?;
                }
                let tm = {
                    let mut io = Io { st, pool: &self.pool };
                    build_table(
                        &mut io,
                        &table.columns,
                        &table.primary_key,
                        table.version,
                        &table.rows,
                    )?
                };
                st.tables.insert(table.name.clone(), tm);
            }
            WalDelta::Append { table, rows, new_version } => {
                let mut tm = st
                    .tables
                    .get(table)
                    .cloned()
                    .ok_or_else(|| missing_table(table))?;
                {
                    let mut io = Io { st, pool: &self.pool };
                    for row in rows {
                        append_row(&mut io, &mut tm, row)?;
                    }
                }
                tm.version = *new_version;
                st.tables.insert(table.clone(), tm);
            }
            WalDelta::Drop { name } => {
                if let Some(tm) = st.tables.remove(name) {
                    let mut io = Io { st, pool: &self.pool };
                    free_table(&mut io, &tm)?;
                }
            }
            WalDelta::RowPatch { table, deletes, upserts, new_version } => {
                let mut tm = st
                    .tables
                    .get(table)
                    .cloned()
                    .ok_or_else(|| missing_table(table))?;
                if tm.kind != KIND_TREE {
                    return Err(Error::Internal(format!(
                        "pager: row patch against heap table '{table}'"
                    )));
                }
                {
                    let mut io = Io { st, pool: &self.pool };
                    for tuple in deletes {
                        let key = encode_tuple_key(tuple);
                        if btree::tree_delete(&mut io, tm.root, &key)? {
                            tm.row_count = tm.row_count.saturating_sub(1);
                        }
                    }
                    for row in upserts {
                        append_row(&mut io, &mut tm, row)?;
                    }
                }
                tm.version = *new_version;
                st.tables.insert(table.clone(), tm);
            }
        }
        Ok(())
    }

    /// Flush dirty pages to shadow slots and commit the slot flip via the
    /// meta rename. Returns the new epoch for the WAL marker. A
    /// [`CheckpointError::Retryable`] failure leaves the durable state at
    /// the old epoch and all retry state (dirty flags, shadow set)
    /// intact; only a failed parent-directory sync *after* the rename is
    /// [`CheckpointError::Ambiguous`] (see its docs).
    pub(crate) fn checkpoint(
        &self,
        catalog: &Catalog,
    ) -> std::result::Result<u64, CheckpointError> {
        let mut st = self.inner.lock();
        let st = &mut *st;
        // Everything up to and including the rename is retryable: rename
        // is atomic, so a failure there leaves the old meta in place.
        let retry = CheckpointError::Retryable;
        if st.rebuild {
            self.rebuild_from(st, catalog).map_err(retry)?;
            st.rebuild = false;
        }
        for (id, buf) in self.pool.dirty_snapshot() {
            st.write_shadow(id, &buf).map_err(retry)?;
        }
        st.file.sync_data().map_err(retry)?;
        let next_epoch = st.epoch + 1;
        let mut new_slots = st.slots.clone();
        for &id in &st.shadow {
            new_slots[(id - 1) as usize] ^= 1;
        }
        let meta = encode_meta(next_epoch, st.next_page, &new_slots, &st.free, &st.tables);
        let tmp = sibling_path(&st.meta_path, ".tmp");
        {
            let mut f = self.vfs.create(&tmp).map_err(retry)?;
            f.write_all_at(0, &meta).map_err(retry)?;
            f.sync_data().map_err(retry)?;
        }
        self.vfs.rename(&tmp, &st.meta_path).map_err(retry)?;
        self.vfs
            .sync_parent_dir(&st.meta_path)
            .map_err(CheckpointError::Ambiguous)?;
        // The rename is durable: commit the flip in memory.
        st.epoch = next_epoch;
        st.slots = new_slots;
        st.shadow.clear();
        self.pool.clear_dirty();
        Ok(next_epoch)
    }

    /// Rebuild every tree from the catalog snapshot (degraded-mode escape
    /// hatch and pre-pager-WAL migration). Existing pages are recycled
    /// wholesale: allocation restarts at id 1 — safe because every write
    /// targets a shadow slot, never the durable current image.
    fn rebuild_from(&self, st: &mut PagerState, catalog: &Catalog) -> Result<()> {
        self.pool.clear();
        st.shadow.clear();
        st.tables.clear();
        st.free.clear();
        let old_next = st.next_page;
        st.next_page = 1;
        for name in catalog.table_names() {
            let table = catalog
                .get(&name)
                .ok_or_else(|| Error::Internal(format!("pager: catalog lost table '{name}'")))?
                .clone();
            let tm = {
                let mut io = Io { st, pool: &self.pool };
                build_table(
                    &mut io,
                    &table.columns,
                    &table.primary_key,
                    table.version,
                    &table.rows,
                )?
            };
            st.tables.insert(table.name.clone(), tm);
        }
        // Ids the old state had allocated but the rebuild did not reuse.
        st.free.extend(st.next_page..old_next);
        st.next_page = st.next_page.max(old_next);
        Ok(())
    }
}

fn missing_table(name: &str) -> Error {
    Error::Internal(format!("pager: delta references unknown table '{name}'"))
}

fn free_table(io: &mut Io<'_>, tm: &TableMeta) -> Result<()> {
    match tm.kind {
        KIND_TREE => btree::tree_free(io, tm.root),
        _ => btree::heap_free(io, tm.root),
    }
}

/// Insert one full row image into `tm`'s structure, advancing `next_seq`
/// and `row_count` only when a genuinely new key lands (tree upserts of
/// an existing key keep the old cell's position).
fn append_row(io: &mut Io<'_>, tm: &mut TableMeta, row: &Row) -> Result<()> {
    let mut bytes = Vec::with_capacity(32);
    encode_row(&mut bytes, row);
    if tm.kind == KIND_TREE {
        let key = encode_pk_key(row, &tm.pk)?;
        let (root, replaced) = btree::tree_insert(io, tm.root, &key, tm.next_seq, &bytes)?;
        tm.root = root;
        if !replaced {
            tm.next_seq += 1;
            tm.row_count += 1;
        }
    } else {
        let (head, tail) = btree::heap_append(io, tm.root, tm.tail, tm.next_seq, &bytes)?;
        tm.root = head;
        tm.tail = tail;
        tm.next_seq += 1;
        tm.row_count += 1;
    }
    Ok(())
}

/// Build a table's pages from scratch from full row images.
fn build_table(
    io: &mut Io<'_>,
    columns: &[Column],
    pk: &[usize],
    version: u64,
    rows: &[Row],
) -> Result<TableMeta> {
    let kind = if pk.is_empty() { KIND_HEAP } else { KIND_TREE };
    let mut tm = TableMeta {
        columns: columns.to_vec(),
        pk: pk.to_vec(),
        version,
        row_count: 0,
        kind,
        root: 0,
        tail: 0,
        next_seq: 0,
    };
    for row in rows {
        append_row(io, &mut tm, row)?;
    }
    Ok(tm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use crate::vfs::{FaultKind, SimFs};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn wal_path(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        PathBuf::from(format!("/sim/pager_{tag}_{n}.wal"))
    }

    fn table(rows: usize) -> Table {
        let mut t = Table::new(
            "t",
            vec![Column::typed("id", "INTEGER"), Column::new("name")],
            &["id".into()],
        )
        .expect("table");
        for i in 0..rows {
            t.insert_row(vec![Value::Integer(i as i64), Value::Text(format!("row{i}").into())])
                .expect("insert");
        }
        t.version = 7;
        t
    }

    fn open(vfs: &SimFs, path: &Path) -> Pager {
        let v: Arc<dyn Vfs> = Arc::new(vfs.clone());
        Pager::open(v, path, 8).expect("open pager")
    }

    #[test]
    fn page_image_round_trip_and_corruption() {
        let buf = PageBuf { typ: 3, data: vec![9u8; 100] };
        let img = encode_page_image(42, 5, &buf).expect("encode");
        assert_eq!(img.len(), PAGE_SIZE);
        assert_eq!(parse_page_image(&img, 42).expect("parse"), buf);
        assert!(parse_page_image(&img, 41).is_err(), "wrong id must fail");
        let mut torn = img.clone();
        torn[40] ^= 0xFF;
        assert!(parse_page_image(&torn, 42).is_err(), "bit flip must fail CRC");
    }

    #[test]
    fn checkpoint_then_materialize_round_trips() {
        let vfs = SimFs::new();
        let path = wal_path("rt");
        let pager = open(&vfs, &path);
        let mut catalog = Catalog::new();
        catalog.put_shared(Arc::new(table(500)));
        pager.set_rebuild();
        pager.checkpoint(&catalog).expect("checkpoint");
        assert_eq!(pager.epoch(), 1);

        // Reopen from disk and materialize.
        let pager2 = open(&vfs, &path);
        assert_eq!(pager2.epoch(), 1);
        let back = pager2.materialize_catalog().expect("materialize");
        let t = back.get("t").expect("table t");
        assert_eq!(**t, table(500));
    }

    #[test]
    fn incremental_delta_application_survives_reopen() {
        let vfs = SimFs::new();
        let path = wal_path("delta");
        let pager = open(&vfs, &path);
        let mut catalog = Catalog::new();
        catalog.put_shared(Arc::new(table(10)));
        pager.set_rebuild();
        pager.checkpoint(&catalog).expect("checkpoint");

        // Append two rows, patch one, delete one — then checkpoint.
        pager
            .apply_delta(&WalDelta::Append {
                table: "t".into(),
                rows: vec![
                    Arc::from(vec![Value::Integer(100), Value::Text("x".into())]),
                    Arc::from(vec![Value::Integer(101), Value::Text("y".into())]),
                ],
                new_version: 8,
            })
            .expect("append");
        pager
            .apply_delta(&WalDelta::RowPatch {
                table: "t".into(),
                deletes: vec![Arc::from(vec![Value::Integer(3)])],
                upserts: vec![Arc::from(vec![Value::Integer(5), Value::Text("patched".into())])],
                new_version: 9,
            })
            .expect("patch");
        pager.checkpoint(&catalog).expect("checkpoint 2");

        let expected = {
            let mut t = table(10);
            t.insert_row(vec![Value::Integer(100), Value::Text("x".into())]).expect("i");
            t.insert_row(vec![Value::Integer(101), Value::Text("y".into())]).expect("i");
            t.apply_row_patch(
                &[Arc::from(vec![Value::Integer(3)])],
                vec![Arc::from(vec![Value::Integer(5), Value::Text("patched".into())])],
            )
            .expect("patch");
            t.version = 9;
            t
        };
        let back = open(&vfs, &path).materialize_catalog().expect("materialize");
        assert_eq!(**back.get("t").expect("t"), expected);
    }

    fn retry_setup(tag: &str) -> (SimFs, PathBuf, Pager, Catalog) {
        let vfs = SimFs::new();
        let path = wal_path(tag);
        let pager = open(&vfs, &path);
        let mut catalog = Catalog::new();
        catalog.put_shared(Arc::new(table(50)));
        pager.set_rebuild();
        pager.checkpoint(&catalog).expect("checkpoint 1");
        pager
            .apply_delta(&WalDelta::Append {
                table: "t".into(),
                rows: vec![Arc::from(vec![Value::Integer(999), Value::Text("z".into())])],
                new_version: 8,
            })
            .expect("append");
        (vfs, path, pager, catalog)
    }

    #[test]
    fn failed_checkpoint_is_retryable_without_data_loss() {
        // Dry run on an identical instance to learn how many ops into the
        // second checkpoint the meta rename happens (SimFs is
        // deterministic, so the offset transfers).
        let rename_offset = {
            let (vfs, _, pager, catalog) = retry_setup("retry_probe");
            let before = vfs.op_count();
            pager.checkpoint(&catalog).expect("probe checkpoint");
            vfs.ops()[before as usize..]
                .iter()
                .position(|l| l.starts_with("rename"))
                .expect("checkpoint performs a rename") as u64
        };

        // Real run: fail exactly the meta rename. The checkpoint must
        // error, leave the durable epoch alone, and succeed on retry.
        let (vfs, path, pager, catalog) = retry_setup("retry");
        vfs.set_fault(vfs.op_count() + rename_offset, FaultKind::FailOp);
        assert!(pager.checkpoint(&catalog).is_err(), "injected rename fault");
        assert_eq!(pager.epoch(), 1, "epoch must not advance on failure");
        vfs.clear_fault();
        pager.checkpoint(&catalog).expect("retry succeeds");
        assert_eq!(pager.epoch(), 2);

        let back = open(&vfs, &path).materialize_catalog().expect("materialize");
        assert_eq!(back.get("t").expect("t").len(), 51);
    }

    /// Regression: a rebuild restarts allocation at page 1 over the
    /// existing slot vector. `alloc` must not grow the vector for reused
    /// ids — the encoded meta sizes its slot array as `next_page - 1`,
    /// so spurious entries shift every later field and the reopened meta
    /// fails to decode.
    #[test]
    fn rebuild_over_existing_pages_keeps_meta_decodable() {
        let vfs = SimFs::new();
        let path = wal_path("rebuild2");
        let pager = open(&vfs, &path);
        let mut catalog = Catalog::new();
        catalog.put_shared(Arc::new(table(200)));
        pager.set_rebuild();
        pager.checkpoint(&catalog).expect("checkpoint 1");

        // Degraded mode again, now with pages on disk: the second rebuild
        // reuses ids 1.. and must leave slots.len() == next_page - 1.
        pager.set_rebuild();
        pager.checkpoint(&catalog).expect("checkpoint 2");
        assert_eq!(pager.epoch(), 2);

        let back = open(&vfs, &path).materialize_catalog().expect("reopen + materialize");
        assert_eq!(**back.get("t").expect("t"), table(200));
    }

    #[test]
    fn eviction_pressure_keeps_trees_correct() {
        // Pool of 8 pages, table far larger than that: every operation
        // churns the pool, evicted dirty pages land in shadow slots, and
        // the result must still round-trip.
        let vfs = SimFs::new();
        let path = wal_path("evict");
        let pager = open(&vfs, &path);
        let mut catalog = Catalog::new();
        catalog.put_shared(Arc::new(table(2000)));
        pager.set_rebuild();
        pager.checkpoint(&catalog).expect("checkpoint");
        let stats = pager.stats();
        assert!(stats.pool.evictions > 0, "working set must exceed the pool");
        assert_eq!(stats.pool.evicted_pinned, 0, "pinned pages are never evicted");

        let back = open(&vfs, &path).materialize_catalog().expect("materialize");
        assert_eq!(**back.get("t").expect("t"), table(2000));
    }
}
