//! The public database facade.
//!
//! A [`Database`] owns a catalog and a UDF registry and executes SQL text.
//! This is the substrate both hybrid-query solutions build on: HQDL
//! materializes LLM-generated tables into it, and hybrid-query UDFs
//! register LLM functions on it.

use std::sync::Arc;

use crate::ast::{InsertSource, Statement};
use crate::error::{Error, Result};
use crate::eval::{eval, RowCtx};
use crate::exec::{run_select, ExecCtx, Relation};
use crate::functions::{ScalarUdf, UdfRegistry};
use crate::optimizer::OptimizerConfig;
use crate::parser::{parse_script, parse_statement};
use crate::plan::RelSchema;
use crate::storage::{Catalog, Column, Table};
use crate::value::{Row, Value};

/// Result of executing one statement.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    /// Output column names (empty for DDL/DML).
    pub columns: Vec<String>,
    /// Result rows (empty for DDL/DML), shared with the engine: cloning a
    /// result (or a row) is O(rows), not O(cells).
    pub rows: Vec<Row>,
    /// Rows inserted / updated / deleted for DML.
    pub rows_affected: usize,
}

impl QueryResult {
    fn from_relation(rel: Relation) -> Self {
        QueryResult {
            columns: rel.column_names(),
            rows: rel.rows,
            rows_affected: 0,
        }
    }

    /// The single scalar of a one-row, one-column result.
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }
}

/// An embedded, in-memory SQL database.
#[derive(Default, Clone)]
pub struct Database {
    catalog: Catalog,
    udfs: UdfRegistry,
    optimizer: OptimizerConfig,
}

impl Database {
    /// A fresh, empty database.
    pub fn new() -> Self {
        Database {
            catalog: Catalog::new(),
            udfs: UdfRegistry::new(),
            optimizer: OptimizerConfig::default(),
        }
    }

    /// Assemble a database from parts. This is how a
    /// [`SharedDb`](crate::shared::SharedDb) session materializes a
    /// consistent snapshot: the catalog shares the `Arc<Table>` storage,
    /// so the construction is O(tables), not O(rows).
    pub fn from_parts(catalog: Catalog, udfs: UdfRegistry, optimizer: OptimizerConfig) -> Self {
        Database { catalog, udfs, optimizer }
    }

    /// Register a scalar UDF (e.g. an LLM function).
    pub fn register_udf(&mut self, udf: Arc<dyn ScalarUdf>) {
        self.udfs.register(udf);
    }

    /// Toggle optimizer rules (used by the ablation benchmarks).
    pub fn set_optimizer(&mut self, config: OptimizerConfig) {
        self.optimizer = config;
    }

    pub fn optimizer(&self) -> OptimizerConfig {
        self.optimizer
    }

    /// Read access to the catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access to the catalog (bulk loading bypasses SQL).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    pub fn udfs(&self) -> &UdfRegistry {
        &self.udfs
    }

    /// Execute one statement.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let stmt = parse_statement(sql)?;
        self.execute_statement(&stmt)
    }

    /// Execute a semicolon-separated script; returns the last result.
    pub fn execute_script(&mut self, sql: &str) -> Result<QueryResult> {
        let stmts = parse_script(sql)?;
        let mut last = QueryResult::default();
        for stmt in &stmts {
            last = self.execute_statement(stmt)?;
        }
        Ok(last)
    }

    /// Execute a read-only query without `&mut self`.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        let stmt = parse_statement(sql)?;
        match &stmt {
            Statement::Select(s) => {
                let ctx = ExecCtx::new(&self.catalog, &self.udfs)
                    .with_optimizer(self.optimizer);
                Ok(QueryResult::from_relation(run_select(s, &ctx, None)?))
            }
            _ => Err(Error::Semantic("query() only accepts SELECT statements".into())),
        }
    }

    pub(crate) fn execute_statement(&mut self, stmt: &Statement) -> Result<QueryResult> {
        match stmt {
            Statement::Select(s) => {
                let ctx = ExecCtx::new(&self.catalog, &self.udfs)
                    .with_optimizer(self.optimizer);
                Ok(QueryResult::from_relation(run_select(s, &ctx, None)?))
            }
            Statement::CreateTable(ct) => {
                if self.catalog.contains(&ct.name) {
                    if ct.if_not_exists {
                        return Ok(QueryResult::default());
                    }
                    return Err(Error::AlreadyExists(ct.name.clone()));
                }
                let mut pk: Vec<String> = ct.primary_key.clone();
                let columns: Vec<Column> = ct
                    .columns
                    .iter()
                    .map(|c| {
                        if c.primary_key && !pk.iter().any(|p| p.eq_ignore_ascii_case(&c.name)) {
                            pk.push(c.name.clone());
                        }
                        Column {
                            name: c.name.clone(),
                            decl_type: c.decl_type.clone(),
                            not_null: c.not_null,
                        }
                    })
                    .collect();
                self.catalog.create_table(Table::new(ct.name.clone(), columns, &pk)?)?;
                Ok(QueryResult::default())
            }
            Statement::DropTable { name, if_exists } => {
                match self.catalog.drop_table(name) {
                    Ok(()) => Ok(QueryResult::default()),
                    Err(Error::NotFound(_)) if *if_exists => Ok(QueryResult::default()),
                    Err(e) => Err(e),
                }
            }
            Statement::AlterTableAddColumn { table, column } => {
                let col = Column {
                    name: column.name.clone(),
                    decl_type: column.decl_type.clone(),
                    not_null: column.not_null,
                };
                self.catalog.get_mut(table)?.add_column(col)?;
                Ok(QueryResult::default())
            }
            Statement::Insert(ins) => self.execute_insert(ins),
            Statement::Update(upd) => self.execute_update(upd),
            Statement::Delete(del) => self.execute_delete(del),
        }
    }

    fn execute_insert(&mut self, ins: &crate::ast::Insert) -> Result<QueryResult> {
        // Compute the source rows first (they may SELECT from the target).
        // INSERT ... SELECT re-shares the SELECT's rows without copying.
        let source_rows: Vec<Row> = match &ins.source {
            InsertSource::Values(rows) => {
                let ctx = ExecCtx::new(&self.catalog, &self.udfs)
                    .with_optimizer(self.optimizer);
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    let mut vals = Vec::with_capacity(row.len());
                    for e in row {
                        vals.push(eval(e, &ctx, None)?);
                    }
                    out.push(vals.into());
                }
                out
            }
            InsertSource::Select(sel) => {
                let ctx = ExecCtx::new(&self.catalog, &self.udfs)
                    .with_optimizer(self.optimizer);
                run_select(sel, &ctx, None)?.rows
            }
        };

        // Map the provided column list onto the table's full width.
        let (width, col_map) = {
            let table = self.catalog.get_required(&ins.table)?;
            let width = table.width();
            let col_map: Option<Vec<usize>> = if ins.columns.is_empty() {
                None
            } else {
                let mut map = Vec::with_capacity(ins.columns.len());
                for c in &ins.columns {
                    map.push(table.column_index(c).ok_or_else(|| {
                        Error::Unresolved(format!("{}.{}", ins.table, c))
                    })?);
                }
                Some(map)
            };
            (width, col_map)
        };

        let table = self.catalog.get_mut(&ins.table)?;
        let mut n = 0;
        for vals in source_rows {
            let row: Row = match &col_map {
                None => {
                    if vals.len() != width {
                        return Err(Error::Semantic(format!(
                            "INSERT has {} values but table '{}' has {width} columns",
                            vals.len(),
                            ins.table
                        )));
                    }
                    vals
                }
                Some(map) => {
                    if vals.len() != map.len() {
                        return Err(Error::Semantic(format!(
                            "INSERT has {} values for {} named columns",
                            vals.len(),
                            map.len()
                        )));
                    }
                    let mut row = vec![Value::Null; width];
                    for (v, &i) in vals.iter().zip(map.iter()) {
                        row[i] = v.clone();
                    }
                    row.into()
                }
            };
            table.insert_shared_row(row)?;
            n += 1;
        }
        Ok(QueryResult { rows_affected: n, ..Default::default() })
    }

    fn execute_update(&mut self, upd: &crate::ast::Update) -> Result<QueryResult> {
        // Resolve assignment targets and snapshot the evaluation context.
        let (schema, assign_idx): (RelSchema, Vec<usize>) = {
            let table = self.catalog.get_required(&upd.table)?;
            let schema = RelSchema::qualified(&table.name.clone(), table.column_names());
            let mut idx = Vec::with_capacity(upd.assignments.len());
            for (col, _) in &upd.assignments {
                idx.push(table.column_index(col).ok_or_else(|| {
                    Error::Unresolved(format!("{}.{}", upd.table, col))
                })?);
            }
            (schema, idx)
        };

        // Compute new rows against an immutable snapshot, then swap in.
        // Untouched rows stay shared; only hit rows are rebuilt.
        let snapshot = self.catalog.get_required(&upd.table)?.clone();
        let ctx = ExecCtx::new(&self.catalog, &self.udfs).with_optimizer(self.optimizer);
        let mut new_rows = snapshot.rows.clone();
        let mut n = 0;
        for row in &mut new_rows {
            let hit = match &upd.filter {
                None => true,
                Some(f) => {
                    let rc = RowCtx::new(&schema, row);
                    eval(f, &ctx, Some(&rc))?.truthiness() == Some(true)
                }
            };
            if !hit {
                continue;
            }
            let mut updated = row.to_vec();
            for ((_, e), &i) in upd.assignments.iter().zip(assign_idx.iter()) {
                let rc = RowCtx::new(&schema, row);
                updated[i] = eval(e, &ctx, Some(&rc))?;
            }
            *row = updated.into();
            n += 1;
        }
        drop(ctx);

        // Rebuild the table to re-validate constraints.
        let table = self.catalog.get_mut(&upd.table)?;
        let old_rows = std::mem::take(&mut table.rows);
        table.clear_rows();
        for row in new_rows {
            if let Err(e) = table.insert_shared_row(row) {
                // Restore on failure.
                table.clear_rows();
                for r in old_rows {
                    table.insert_shared_row(r).expect("restoring previously valid rows");
                }
                return Err(e);
            }
        }
        Ok(QueryResult { rows_affected: n, ..Default::default() })
    }

    fn execute_delete(&mut self, del: &crate::ast::Delete) -> Result<QueryResult> {
        let schema = {
            let table = self.catalog.get_required(&del.table)?;
            RelSchema::qualified(&table.name.clone(), table.column_names())
        };
        // Evaluate the filter against a snapshot to decide which rows go.
        let keep: Vec<bool> = {
            let table = self.catalog.get_required(&del.table)?.clone();
            let ctx = ExecCtx::new(&self.catalog, &self.udfs)
                .with_optimizer(self.optimizer);
            let mut keep = Vec::with_capacity(table.rows.len());
            for row in &table.rows {
                let hit = match &del.filter {
                    None => true,
                    Some(f) => {
                        let rc = RowCtx::new(&schema, row);
                        eval(f, &ctx, Some(&rc))?.truthiness() == Some(true)
                    }
                };
                keep.push(!hit);
            }
            keep
        };
        let table = self.catalog.get_mut(&del.table)?;
        let mut it = keep.iter();
        let removed = table.retain_rows(|_| *it.next().unwrap_or(&true));
        Ok(QueryResult { rows_affected: removed, ..Default::default() })
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.catalog.table_names())
            .field("udfs", &self.udfs)
            .finish()
    }
}
