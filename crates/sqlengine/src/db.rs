//! The public database facade.
//!
//! A [`Database`] owns a catalog and a UDF registry and executes SQL text.
//! This is the substrate both hybrid-query solutions build on: HQDL
//! materializes LLM-generated tables into it, and hybrid-query UDFs
//! register LLM functions on it.
//!
//! # Transactions and durability
//!
//! A `Database` is one session, so it holds at most one active
//! transaction: `BEGIN` pins the current catalog as the rollback point,
//! subsequent statements mutate the working catalog (reads see the
//! session's own uncommitted writes), `COMMIT` publishes — appending the
//! transaction's per-table deltas to the WAL when the database was opened
//! with [`Database::open`] — and `ROLLBACK` restores the pinned catalog.
//! Outside a transaction every statement auto-commits (and auto-logs) by
//! itself. WAL-backed and in-transaction statements are statement-atomic:
//! a failed statement restores the pre-statement catalog instead of
//! leaving partial effects.
//!
//! Every write statement additionally reports *which rows* it touched
//! (the primary keys of inserted/updated/deleted rows, see
//! [`crate::txn::StmtWrites`]): the per-transaction write sets drive the
//! compact row-level WAL encodings here and the row-level
//! first-committer-wins conflict detection on a
//! [`SharedDb`](crate::shared::SharedDb).

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use swan_pool::{lockrank, CancelToken, ClockHandle, RealClock};

use crate::ast::{InsertSource, Statement};
use crate::error::{Error, Result};
use crate::eval::{eval, RowCtx};
use crate::exec::{run_select, ExecCtx, Relation};
use crate::functions::{ScalarUdf, UdfRegistry};
use crate::optimizer::OptimizerConfig;
use crate::parser::{parse_script, parse_statement};
use crate::plan::RelSchema;
use crate::storage::{Catalog, Column, Table};
use crate::txn::{
    catalog_deltas, commit_records, StmtWrites, TableDelta, Txn, TxnManager, WriteSet,
};
use crate::value::{Row, Value};
use crate::wal::{DurabilityConfig, Wal};

/// Result of executing one statement.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    /// Output column names (empty for DDL/DML).
    pub columns: Vec<String>,
    /// Result rows (empty for DDL/DML), shared with the engine: cloning a
    /// result (or a row) is O(rows), not O(cells).
    pub rows: Vec<Row>,
    /// Rows inserted / updated / deleted for DML.
    pub rows_affected: usize,
}

impl QueryResult {
    fn from_relation(rel: Relation) -> Self {
        QueryResult {
            columns: rel.column_names(),
            rows: rel.rows,
            rows_affected: 0,
        }
    }

    /// The single scalar of a one-row, one-column result.
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }
}

/// An embedded SQL database: in-memory by default, WAL-durable when
/// opened with [`Database::open`].
pub struct Database {
    catalog: Catalog,
    udfs: UdfRegistry,
    optimizer: OptimizerConfig,
    /// Write-ahead log; `None` for a purely in-memory database. Clones
    /// share the log (appends serialize on the mutex).
    wal: Option<Arc<Mutex<Wal>>>,
    /// Transaction-id allocator, shared by clones and by any
    /// [`SharedDb`](crate::shared::SharedDb) built from this database.
    txns: Arc<TxnManager>,
    /// The session's active transaction, if a `BEGIN` is open. The
    /// database's own catalog is the transaction's working state; the
    /// `Txn` pins the rollback snapshot.
    txn: Option<Txn>,
    /// Per-statement deadline; `None` disables it. Each statement arms a
    /// fresh [`CancelToken`] on entry; the executor checks it at plan-node
    /// and morsel boundaries and fails with [`Error::Deadline`].
    statement_timeout: Option<Duration>,
    /// Clock the deadlines are armed against — [`RealClock`] normally, a
    /// [`SimClock`](swan_pool::SimClock) in deterministic tests.
    clock: ClockHandle,
    /// The rows the most recent write statement touched, reported by the
    /// DML executors and consumed (via [`Database::take_stmt_writes`]) by
    /// whoever turns the statement into a commit: the transaction's write
    /// set, the auto-commit WAL encoder, or a `SharedDb` session.
    stmt_writes: StmtWrites,
}

impl Default for Database {
    fn default() -> Self {
        Database {
            catalog: Catalog::default(),
            udfs: UdfRegistry::new(),
            optimizer: OptimizerConfig::default(),
            wal: None,
            txns: Arc::new(TxnManager::default()),
            txn: None,
            statement_timeout: None,
            clock: RealClock::handle(),
            stmt_writes: StmtWrites::Whole,
        }
    }
}

impl Database {
    /// A fresh, empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Open (or create) a WAL-durable database at `path`. Replays the
    /// longest intact prefix of the log — truncating a torn tail from a
    /// crash mid-append — so the recovered catalog is always exactly the
    /// state as of the last durable commit.
    pub fn open(path: impl AsRef<Path>) -> Result<Database> {
        Database::open_with(path, DurabilityConfig::default())
    }

    /// [`Database::open`] with explicit durability tuning (checkpoint
    /// threshold, fsync policy, group commit).
    pub fn open_with(path: impl AsRef<Path>, config: DurabilityConfig) -> Result<Database> {
        Database::open_on(Arc::new(crate::vfs::RealFs), path, config)
    }

    /// [`Database::open_with`] on an explicit [`Vfs`](crate::vfs::Vfs) —
    /// the seam crash-simulation tests thread a fault-injecting
    /// [`SimFs`](crate::vfs::SimFs) through; all WAL and checkpoint I/O
    /// goes through `vfs`.
    pub fn open_on(
        vfs: Arc<dyn crate::vfs::Vfs>,
        path: impl AsRef<Path>,
        config: DurabilityConfig,
    ) -> Result<Database> {
        let recovered = Wal::open_on(vfs, path, config)?;
        Ok(Database {
            catalog: recovered.catalog,
            wal: Some(Arc::new(Mutex::with_rank("wal", lockrank::WAL, recovered.wal))),
            txns: Arc::new(TxnManager::new(recovered.max_txn + 1)),
            ..Default::default()
        })
    }

    /// Assemble a database from parts. This is how a
    /// [`SharedDb`](crate::shared::SharedDb) session materializes a
    /// consistent snapshot: the catalog shares the `Arc<Table>` storage,
    /// so the construction is O(tables), not O(rows).
    pub fn from_parts(catalog: Catalog, udfs: UdfRegistry, optimizer: OptimizerConfig) -> Self {
        Database { catalog, udfs, optimizer, ..Default::default() }
    }

    /// The WAL handle, if this database is durable (shared with
    /// [`SharedDb`](crate::shared::SharedDb) on promotion).
    pub(crate) fn wal_handle(&self) -> Option<Arc<Mutex<Wal>>> {
        self.wal.clone()
    }

    /// The transaction-id allocator (shared on promotion to `SharedDb`).
    pub(crate) fn txn_manager(&self) -> Arc<TxnManager> {
        self.txns.clone()
    }

    /// True while a `BEGIN` is open on this session.
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// Register a scalar UDF (e.g. an LLM function).
    pub fn register_udf(&mut self, udf: Arc<dyn ScalarUdf>) {
        self.udfs.register(udf);
    }

    /// Toggle optimizer rules (used by the ablation benchmarks).
    pub fn set_optimizer(&mut self, config: OptimizerConfig) {
        self.optimizer = config;
    }

    /// Set (or clear) the per-statement deadline. Every subsequent
    /// statement arms a fresh cancel token with this timeout; a statement
    /// that runs past it fails with [`Error::Deadline`] at the next
    /// cooperative checkpoint, leaving no partial effects (statement
    /// atomicity rolls write statements back like any other error).
    pub fn set_statement_timeout(&mut self, timeout: Option<Duration>) {
        self.statement_timeout = timeout;
    }

    pub fn statement_timeout(&self) -> Option<Duration> {
        self.statement_timeout
    }

    /// Swap the clock statement deadlines are armed against. Tests inject
    /// a [`SimClock`](swan_pool::SimClock) for deterministic expiry.
    pub fn set_clock(&mut self, clock: ClockHandle) {
        self.clock = clock;
    }

    pub fn clock(&self) -> ClockHandle {
        self.clock.clone()
    }

    /// The cancel token for one statement: an already-installed caller
    /// token wins (a [`Session`](crate::shared::Session) or test that
    /// scoped the whole call keeps its deadline authoritative); otherwise
    /// arm a fresh token from `statement_timeout`.
    fn statement_token(&self) -> CancelToken {
        if let Some(outer) = swan_pool::cancel::current() {
            return outer;
        }
        match self.statement_timeout {
            Some(d) => CancelToken::with_timeout(self.clock.clone(), d),
            None => CancelToken::unbounded(),
        }
    }

    pub fn optimizer(&self) -> OptimizerConfig {
        self.optimizer
    }

    /// Read access to the catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access to the catalog (bulk loading bypasses SQL).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Decompose into the catalog. A [`Session`](crate::shared::Session)
    /// transaction hands its working catalog to a throwaway `Database`
    /// for each statement and takes it back here — ownership round-trips,
    /// so the working tables keep unique `Arc`s and batch DML stays
    /// in-place instead of copy-on-write cloning per statement.
    pub(crate) fn into_catalog(self) -> Catalog {
        self.catalog
    }

    /// Take the row write set the last write statement reported,
    /// resetting to the conservative table-granular default.
    pub(crate) fn take_stmt_writes(&mut self) -> StmtWrites {
        std::mem::replace(&mut self.stmt_writes, StmtWrites::Whole)
    }

    pub fn udfs(&self) -> &UdfRegistry {
        &self.udfs
    }

    /// Force a checkpoint now (durable databases only; no-op in memory).
    /// With the pager enabled this flushes only the pages dirtied since
    /// the last checkpoint — O(dirty), not O(database).
    pub fn checkpoint(&self) -> Result<()> {
        let Some(wal) = &self.wal else { return Ok(()) };
        wal.lock().checkpoint(&self.catalog)
    }

    /// Page-store counters: durable epoch, allocated pages, buffer-pool
    /// hit/miss/eviction stats. `None` without a pager (in-memory
    /// database or `SWAN_PAGER=0`).
    pub fn pager_stats(&self) -> Option<crate::pager::PagerStats> {
        self.wal.as_ref().and_then(|w| w.lock().pager_stats())
    }

    /// Execute one statement.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let stmt = parse_statement(sql)?;
        self.execute_statement(&stmt)
    }

    /// Execute a semicolon-separated script; returns the last result.
    ///
    /// Outside an explicit transaction each statement commits (and, on a
    /// durable database, logs) by itself, exactly like [`execute`]
    /// (Database::execute). A `BEGIN … COMMIT` span inside the script is
    /// atomic: if any statement inside it fails, the whole transaction is
    /// rolled back before the error is returned. A transaction that was
    /// already open *before* the script keeps SQLite semantics instead —
    /// the failing statement has no effect but the transaction stays open
    /// for the session to commit or roll back.
    pub fn execute_script(&mut self, sql: &str) -> Result<QueryResult> {
        let stmts = parse_script(sql)?;
        let mut last = QueryResult::default();
        let mut script_txn = false;
        for stmt in &stmts {
            match self.execute_statement(stmt) {
                Ok(r) => last = r,
                Err(e) => {
                    if script_txn && self.txn.is_some() {
                        self.rollback_active();
                    }
                    return Err(e);
                }
            }
            match stmt {
                Statement::Begin => script_txn = true,
                Statement::Commit | Statement::Rollback => script_txn = false,
                _ => {}
            }
        }
        Ok(last)
    }

    /// Discard the active transaction, restoring its pinned snapshot.
    fn rollback_active(&mut self) {
        if let Some(txn) = self.txn.take() {
            self.catalog = txn.snapshot;
        }
    }

    /// Execute a read-only query without `&mut self`.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        let stmt = parse_statement(sql)?;
        match &stmt {
            Statement::Select(s) => {
                let token = self.statement_token();
                swan_pool::cancel::with_current(&token, || {
                    let ctx = ExecCtx::new(&self.catalog, &self.udfs)
                        .with_optimizer(self.optimizer);
                    Ok(QueryResult::from_relation(run_select(s, &ctx, None)?))
                })
            }
            _ => Err(Error::Semantic("query() only accepts SELECT statements".into())),
        }
    }

    /// Arm the statement's deadline token, install it as the thread's
    /// current token (so every [`ExecCtx`] built below — including the
    /// throwaway contexts of DML source evaluation — and every model call
    /// observes it), and run the statement.
    pub(crate) fn execute_statement(&mut self, stmt: &Statement) -> Result<QueryResult> {
        let token = self.statement_token();
        swan_pool::cancel::with_current(&token, || self.execute_statement_inner(stmt))
    }

    fn execute_statement_inner(&mut self, stmt: &Statement) -> Result<QueryResult> {
        match stmt {
            Statement::Begin => {
                if self.txn.is_some() {
                    return Err(Error::Txn("a transaction is already active".into()));
                }
                // Pin the rollback point; the catalog itself is the
                // transaction's working state from here on.
                self.txn = Some(self.txns.begin(self.catalog.clone()));
                return Ok(QueryResult::default());
            }
            Statement::Commit => {
                let txn = self
                    .txn
                    .take()
                    .ok_or_else(|| Error::Txn("COMMIT without an active transaction".into()))?;
                let deltas = catalog_deltas(txn.written(), &txn.snapshot, &self.catalog);
                if let Err(e) =
                    self.log_commit(txn.id(), &txn.snapshot, &deltas, txn.write_sets())
                {
                    // A commit that could not reach the log must not
                    // stay visible in memory: roll back instead.
                    self.catalog = txn.snapshot;
                    return Err(e);
                }
                return Ok(QueryResult::default());
            }
            Statement::Rollback => {
                if self.txn.is_none() {
                    return Err(Error::Txn("ROLLBACK without an active transaction".into()));
                }
                self.rollback_active();
                return Ok(QueryResult::default());
            }
            _ => {}
        }

        let Some(target) = stmt.write_target().map(str::to_string) else {
            return self.apply_statement(stmt); // read-only
        };

        if self.txn.is_some() {
            // Inside a transaction the catalog *is* the working state and
            // `apply_statement` is statement-atomic by construction (a
            // failing statement rolls its own partial effects back), so no
            // per-statement catalog backup is needed — which keeps the
            // working table's `Arc` unique and batch INSERTs O(1) per row
            // instead of copy-on-write cloning the table every statement.
            let r = self.apply_statement(stmt)?;
            let writes = self.take_stmt_writes();
            if let Some(txn) = self.txn.as_mut() {
                txn.record_write(&target, writes);
            }
            Ok(r)
        } else if self.wal.is_some() {
            // Durable auto-commit: run the statement, then log it as a
            // single-statement transaction. Failure (of the statement or
            // of the log append) restores the pre-statement catalog.
            let base = self.catalog.clone();
            match self.apply_statement(stmt) {
                Ok(r) => {
                    let writes = self.take_stmt_writes();
                    let key = target.to_ascii_lowercase();
                    let deltas =
                        catalog_deltas(std::slice::from_ref(&key), &base, &self.catalog);
                    let mut write_sets = HashMap::with_capacity(1);
                    write_sets.insert(key, WriteSet::from_stmt(writes));
                    if let Err(e) =
                        self.log_commit(self.txns.fresh_id(), &base, &deltas, &write_sets)
                    {
                        self.catalog = base;
                        return Err(e);
                    }
                    Ok(r)
                }
                Err(e) => {
                    self.catalog = base;
                    Err(e)
                }
            }
        } else {
            self.apply_statement(stmt)
        }
    }

    /// Append one committed transaction's records to the WAL (when
    /// durable), then compact the log if it outgrew its budget. No-op for
    /// empty delta sets and in-memory databases.
    fn log_commit(
        &self,
        txn_id: u64,
        base: &Catalog,
        deltas: &[(String, TableDelta)],
        writes: &HashMap<String, WriteSet>,
    ) -> Result<()> {
        if deltas.is_empty() {
            return Ok(());
        }
        let Some(wal) = &self.wal else { return Ok(()) };
        let mut wal = wal.lock();
        wal.append(&commit_records(txn_id, base, deltas, writes))?;
        if wal.wants_checkpoint() {
            // Past the commit point: the append fsynced, so the
            // transaction IS durably committed — a failed compaction must
            // not be reported as a failed commit (the caller would roll
            // back in memory and a retry would double-apply). The log
            // just stays long; the next commit retries the checkpoint,
            // and a handle left unusable poisons itself and surfaces on
            // the next append.
            let _ = wal.checkpoint(&self.catalog);
        }
        Ok(())
    }

    /// The raw single-statement executor: no transaction routing, no
    /// durability — exactly the statement's effect on this catalog.
    fn apply_statement(&mut self, stmt: &Statement) -> Result<QueryResult> {
        // Conservative default: a write that does not report per-row keys
        // (DDL, tables without a primary key) counts as touching the
        // whole table. The DML executors overwrite this on success.
        self.stmt_writes = StmtWrites::Whole;
        match stmt {
            Statement::Begin | Statement::Commit | Statement::Rollback => {
                // Routed by execute_statement before it gets here; a typed
                // error beats aborting a shared process on a routing bug.
                Err(Error::Internal(
                    "transaction control reached the statement executor".into(),
                ))
            }
            Statement::Select(s) => {
                let ctx = ExecCtx::new(&self.catalog, &self.udfs)
                    .with_optimizer(self.optimizer);
                Ok(QueryResult::from_relation(run_select(s, &ctx, None)?))
            }
            Statement::CreateTable(ct) => {
                if self.catalog.contains(&ct.name) {
                    if ct.if_not_exists {
                        return Ok(QueryResult::default());
                    }
                    return Err(Error::AlreadyExists(ct.name.clone()));
                }
                let mut pk: Vec<String> = ct.primary_key.clone();
                let columns: Vec<Column> = ct
                    .columns
                    .iter()
                    .map(|c| {
                        if c.primary_key && !pk.iter().any(|p| p.eq_ignore_ascii_case(&c.name)) {
                            pk.push(c.name.clone());
                        }
                        Column {
                            name: c.name.clone(),
                            decl_type: c.decl_type.clone(),
                            not_null: c.not_null,
                        }
                    })
                    .collect();
                self.catalog.create_table(Table::new(ct.name.clone(), columns, &pk)?)?;
                Ok(QueryResult::default())
            }
            Statement::DropTable { name, if_exists } => {
                match self.catalog.drop_table(name) {
                    Ok(()) => Ok(QueryResult::default()),
                    Err(Error::NotFound(_)) if *if_exists => Ok(QueryResult::default()),
                    Err(e) => Err(e),
                }
            }
            Statement::AlterTableAddColumn { table, column } => {
                let col = Column {
                    name: column.name.clone(),
                    decl_type: column.decl_type.clone(),
                    not_null: column.not_null,
                };
                self.catalog.get_mut(table)?.add_column(col)?;
                Ok(QueryResult::default())
            }
            Statement::Insert(ins) => self.execute_insert(ins),
            Statement::Update(upd) => self.execute_update(upd),
            Statement::Delete(del) => self.execute_delete(del),
        }
    }

    fn execute_insert(&mut self, ins: &crate::ast::Insert) -> Result<QueryResult> {
        // Compute the source rows first (they may SELECT from the target).
        // INSERT ... SELECT re-shares the SELECT's rows without copying.
        let source_rows: Vec<Row> = match &ins.source {
            InsertSource::Values(rows) => {
                let ctx = ExecCtx::new(&self.catalog, &self.udfs)
                    .with_optimizer(self.optimizer);
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    let mut vals = Vec::with_capacity(row.len());
                    for e in row {
                        vals.push(eval(e, &ctx, None)?);
                    }
                    out.push(vals.into());
                }
                out
            }
            InsertSource::Select(sel) => {
                let ctx = ExecCtx::new(&self.catalog, &self.udfs)
                    .with_optimizer(self.optimizer);
                run_select(sel, &ctx, None)?.rows
            }
        };

        // Map the provided column list onto the table's full width.
        let (width, col_map, pk_cols) = {
            let table = self.catalog.get_required(&ins.table)?;
            let width = table.width();
            let col_map: Option<Vec<usize>> = if ins.columns.is_empty() {
                None
            } else {
                let mut map = Vec::with_capacity(ins.columns.len());
                for c in &ins.columns {
                    map.push(table.column_index(c).ok_or_else(|| {
                        Error::Unresolved(format!("{}.{}", ins.table, c))
                    })?);
                }
                Some(map)
            };
            (width, col_map, table.primary_key.clone())
        };

        // Statement atomicity: a failure part-way through the batch rolls
        // the appended prefix back — no partial INSERT is ever visible,
        // inside or outside a transaction.
        let table = self.catalog.get_mut(&ins.table)?;
        let start_len = table.len();
        let mut keys: Vec<Vec<Value>> = Vec::new();
        let insert_all = || -> Result<usize> {
            let mut n = 0;
            for vals in source_rows {
                let row: Row = match &col_map {
                    None => {
                        if vals.len() != width {
                            return Err(Error::Semantic(format!(
                                "INSERT has {} values but table '{}' has {width} columns",
                                vals.len(),
                                ins.table
                            )));
                        }
                        vals
                    }
                    Some(map) => {
                        if vals.len() != map.len() {
                            return Err(Error::Semantic(format!(
                                "INSERT has {} values for {} named columns",
                                vals.len(),
                                map.len()
                            )));
                        }
                        let mut row = vec![Value::Null; width];
                        for (v, &i) in vals.iter().zip(map.iter()) {
                            row[i] = v.clone();
                        }
                        row.into()
                    }
                };
                if !pk_cols.is_empty() {
                    keys.push(pk_cols.iter().map(|&i| row[i].clone()).collect());
                }
                table.insert_shared_row(row)?;
                n += 1;
            }
            Ok(n)
        };
        match insert_all() {
            Ok(n) => {
                self.stmt_writes = if pk_cols.is_empty() {
                    StmtWrites::Whole
                } else {
                    StmtWrites::Rows { keys, inserted: true, reorder: false }
                };
                Ok(QueryResult { rows_affected: n, ..Default::default() })
            }
            Err(e) => {
                self.catalog.get_mut(&ins.table)?.truncate_rows(start_len);
                Err(e)
            }
        }
    }

    fn execute_update(&mut self, upd: &crate::ast::Update) -> Result<QueryResult> {
        // Resolve assignment targets and snapshot the evaluation context.
        let (schema, assign_idx, pk_cols): (RelSchema, Vec<usize>, Vec<usize>) = {
            let table = self.catalog.get_required(&upd.table)?;
            let schema = RelSchema::qualified(&table.name.clone(), table.column_names());
            let mut idx = Vec::with_capacity(upd.assignments.len());
            for (col, _) in &upd.assignments {
                idx.push(table.column_index(col).ok_or_else(|| {
                    Error::Unresolved(format!("{}.{}", upd.table, col))
                })?);
            }
            (schema, idx, table.primary_key.clone())
        };

        // Compute new rows against an immutable snapshot, then swap in.
        // Untouched rows stay shared; only hit rows are rebuilt.
        let snapshot = self.catalog.get_required(&upd.table)?.clone();
        let ctx = ExecCtx::new(&self.catalog, &self.udfs).with_optimizer(self.optimizer);
        let mut new_rows = snapshot.rows.clone();
        let mut n = 0;
        let mut keys: Vec<Vec<Value>> = Vec::new();
        let mut reorder = false;
        for row in &mut new_rows {
            let hit = match &upd.filter {
                None => true,
                Some(f) => {
                    let rc = RowCtx::new(&schema, row);
                    eval(f, &ctx, Some(&rc))?.truthiness() == Some(true)
                }
            };
            if !hit {
                continue;
            }
            let mut updated = row.to_vec();
            for ((_, e), &i) in upd.assignments.iter().zip(assign_idx.iter()) {
                let rc = RowCtx::new(&schema, row);
                updated[i] = eval(e, &ctx, Some(&rc))?;
            }
            if !pk_cols.is_empty() {
                keys.push(pk_cols.iter().map(|&i| row[i].clone()).collect());
                let moved = pk_cols
                    .iter()
                    .any(|&i| row[i].group_key() != updated[i].group_key());
                if moved {
                    // The row leaves its primary key: both keys are part
                    // of the write set, and the in-place WAL patch can no
                    // longer reproduce row order.
                    keys.push(pk_cols.iter().map(|&i| updated[i].clone()).collect());
                    reorder = true;
                }
            }
            *row = updated.into();
            n += 1;
        }
        drop(ctx);

        // Rebuild the table to re-validate constraints.
        let table = self.catalog.get_mut(&upd.table)?;
        let old_rows = std::mem::take(&mut table.rows);
        table.clear_rows();
        for row in new_rows {
            if let Err(e) = table.insert_shared_row(row) {
                // Restore on failure. The old rows were valid when taken
                // out, so re-inserting them cannot fail; if it somehow
                // does, surface the corruption instead of aborting.
                table.clear_rows();
                for r in old_rows {
                    if let Err(restore) = table.insert_shared_row(r) {
                        return Err(Error::Internal(format!(
                            "UPDATE of '{}' failed ({e}) and restoring the                              previously valid rows also failed: {restore}",
                            upd.table
                        )));
                    }
                }
                return Err(e);
            }
        }
        self.stmt_writes = if pk_cols.is_empty() {
            StmtWrites::Whole
        } else {
            StmtWrites::Rows { keys, inserted: false, reorder }
        };
        Ok(QueryResult { rows_affected: n, ..Default::default() })
    }

    fn execute_delete(&mut self, del: &crate::ast::Delete) -> Result<QueryResult> {
        let schema = {
            let table = self.catalog.get_required(&del.table)?;
            RelSchema::qualified(&table.name.clone(), table.column_names())
        };
        // Evaluate the filter against a snapshot to decide which rows go.
        let (keep, keys, has_pk): (Vec<bool>, Vec<Vec<Value>>, bool) = {
            let table = self.catalog.get_required(&del.table)?.clone();
            let pk_cols = table.primary_key.clone();
            let ctx = ExecCtx::new(&self.catalog, &self.udfs)
                .with_optimizer(self.optimizer);
            let mut keep = Vec::with_capacity(table.rows.len());
            let mut keys = Vec::new();
            for row in &table.rows {
                let hit = match &del.filter {
                    None => true,
                    Some(f) => {
                        let rc = RowCtx::new(&schema, row);
                        eval(f, &ctx, Some(&rc))?.truthiness() == Some(true)
                    }
                };
                keep.push(!hit);
                if hit && !pk_cols.is_empty() {
                    keys.push(pk_cols.iter().map(|&i| row[i].clone()).collect());
                }
            }
            (keep, keys, !pk_cols.is_empty())
        };
        let table = self.catalog.get_mut(&del.table)?;
        let mut it = keep.iter();
        let removed = table.retain_rows(|_| *it.next().unwrap_or(&true));
        self.stmt_writes = if has_pk {
            StmtWrites::Rows { keys, inserted: false, reorder: false }
        } else {
            StmtWrites::Whole
        };
        Ok(QueryResult { rows_affected: removed, ..Default::default() })
    }
}

impl Clone for Database {
    /// A clone is a detached **in-memory** fork: it shares the row
    /// storage (`Arc<Table>` copy-on-write, O(tables)) but deliberately
    /// not the write-ahead log — two handles logging deltas against
    /// diverging catalogs would corrupt the recoverable state (and a
    /// checkpoint from either would erase the other's commits). For
    /// shared durable writes, promote with
    /// [`SharedDb::from_database`](crate::shared::SharedDb::from_database)
    /// instead of cloning.
    fn clone(&self) -> Self {
        Database {
            catalog: self.catalog.clone(),
            udfs: self.udfs.clone(),
            optimizer: self.optimizer,
            wal: None,
            txns: self.txns.clone(),
            txn: self.txn.clone(),
            statement_timeout: self.statement_timeout,
            clock: self.clock.clone(),
            stmt_writes: self.stmt_writes.clone(),
        }
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.catalog.table_names())
            .field("udfs", &self.udfs)
            .finish()
    }
}
