//! In-memory row storage and the catalog.
//!
//! Tables are row-oriented over shared rows (`Vec<Arc<[Value]>>`) with a
//! column-name index for O(1) resolution and an optional unique-key hash
//! index used both for constraint enforcement and as a join fast path.
//! Because rows are `Arc`-shared, a table scan hands the executor the whole
//! row set with one refcount bump per row — no cell is ever deep-copied on
//! the read path. The catalog also exposes per-table row counts as the
//! statistics feed for the optimizer's join ordering.
//!
//! # Versioned identity
//!
//! Every table carries a monotonically increasing [`Table::version`],
//! bumped on each copy-on-write mutation. Two `Arc<Table>` handles with the
//! same name and version are guaranteed to hold identical contents, which
//! is what the transaction layer's first-committer-wins conflict check
//! compares at commit time (see [`crate::txn`]).
//!
//! # Row codec
//!
//! [`encode_table`]/[`decode_table`] (plus the row/value helpers they are
//! built from) serialize a table snapshot to a compact little-endian binary
//! form for the write-ahead log ([`crate::wal`]). Decoding re-interns text
//! through a [`TextInterner`], so repeated strings in the file come back as
//! one shared `Arc<str>` allocation — the on-disk form round-trips into the
//! same zero-copy representation the engine runs on.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::value::{GroupKey, Row, Value};

/// Schema + data for one table.
#[derive(Debug, Clone)]
pub struct Table {
    pub name: String,
    pub columns: Vec<Column>,
    /// Lowercased column name -> index.
    col_index: HashMap<String, usize>,
    pub rows: Vec<Row>,
    /// Column indexes forming the primary key (may be empty).
    pub primary_key: Vec<usize>,
    /// Unique index over the primary key columns; maintained on insert.
    pk_index: HashMap<Vec<GroupKey>, usize>,
    /// Monotonic modification counter: bumped every time a writer obtains
    /// copy-on-write access through [`Catalog::get_mut`] and on every
    /// transaction-commit install. Equal (name, version) pairs imply equal
    /// contents — the identity the commit-time conflict check relies on.
    pub version: u64,
    /// Lazily-built column-major view of `rows`
    /// ([`crate::columnar::ColumnSet`]), shared with every executor that
    /// scans this table version. Invalidated (`take`) by every row or
    /// schema mutation; a clone carries the cache along, which stays
    /// valid because the rows are cloned with it.
    columnar: std::sync::OnceLock<Arc<crate::columnar::ColumnSet>>,
    /// Lazily-built row permutation sorted by primary-key value
    /// ([`Value::sort_cmp`] lexicographic over the PK columns, ties by
    /// row index). Serves `Plan::IndexScan` range probes and
    /// ORDER-BY-pk-LIMIT early stops without sorting the whole table.
    /// Same invalidation discipline as `columnar`.
    ordered_pk: std::sync::OnceLock<Arc<Vec<u32>>>,
}

/// Structural equality: same name, schema, primary key, version and
/// cell-for-cell identical rows (`Value`'s equality treats equal NaN bit
/// patterns as equal, so encoded tables compare reliably). The derived
/// indexes are excluded — they are functions of the compared fields.
/// This is what the codec round-trip property (`decode(encode(t)) == t`)
/// checks.
impl PartialEq for Table {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.columns == other.columns
            && self.primary_key == other.primary_key
            && self.version == other.version
            && self.rows == other.rows
    }
}

/// One column's metadata. Declared types are advisory, SQLite-style.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    pub name: String,
    pub decl_type: Option<String>,
    pub not_null: bool,
}

impl Column {
    pub fn new(name: impl Into<String>) -> Self {
        Column { name: name.into(), decl_type: None, not_null: false }
    }

    pub fn typed(name: impl Into<String>, ty: impl Into<String>) -> Self {
        Column { name: name.into(), decl_type: Some(ty.into()), not_null: false }
    }
}

impl Table {
    /// Create an empty table. Fails on duplicate column names or a primary
    /// key referencing an unknown column.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<Column>,
        primary_key_cols: &[String],
    ) -> Result<Self> {
        let name = name.into();
        let mut col_index = HashMap::with_capacity(columns.len());
        for (i, c) in columns.iter().enumerate() {
            if col_index.insert(c.name.to_ascii_lowercase(), i).is_some() {
                return Err(Error::Semantic(format!(
                    "duplicate column '{}' in table '{}'",
                    c.name, name
                )));
            }
        }
        let mut primary_key = Vec::with_capacity(primary_key_cols.len());
        for pk in primary_key_cols {
            let idx = col_index
                .get(&pk.to_ascii_lowercase())
                .copied()
                .ok_or_else(|| Error::Unresolved(format!("primary key column '{pk}'")))?;
            primary_key.push(idx);
        }
        Ok(Table {
            name,
            columns,
            col_index,
            rows: Vec::new(),
            primary_key,
            pk_index: HashMap::new(),
            version: 0,
            columnar: std::sync::OnceLock::new(),
            ordered_pk: std::sync::OnceLock::new(),
        })
    }

    /// Drop every derived cache; every row or schema mutation must call
    /// this before (or immediately after) touching `rows`.
    fn invalidate_caches(&mut self) {
        self.columnar.take();
        self.ordered_pk.take();
    }

    /// The column-major view of this table version, built on first use and
    /// cached until the next mutation. Executors hold the returned `Arc`
    /// for the duration of a scan, so a concurrent copy-on-write of the
    /// table never invalidates a view mid-query.
    pub fn column_set(&self) -> Arc<crate::columnar::ColumnSet> {
        self.columnar
            .get_or_init(|| {
                Arc::new(crate::columnar::ColumnSet::from_rows(&self.rows, self.columns.len()))
            })
            .clone()
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Resolve a column name (case-insensitive) to its index.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.col_index.get(&name.to_ascii_lowercase()).copied()
    }

    /// Column names in declaration order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    /// Append an owned row, enforcing arity, NOT NULL, and primary-key
    /// uniqueness.
    pub fn insert_row(&mut self, row: Vec<Value>) -> Result<()> {
        self.insert_shared_row(row.into())
    }

    /// Append an already-shared row (the zero-copy bulk-load path: e.g.
    /// `INSERT INTO t SELECT ...` re-shares the SELECT's output rows).
    pub fn insert_shared_row(&mut self, row: Row) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(Error::Semantic(format!(
                "table '{}' expects {} values, got {}",
                self.name,
                self.columns.len(),
                row.len()
            )));
        }
        for (i, col) in self.columns.iter().enumerate() {
            if col.not_null && row[i].is_null() {
                return Err(Error::Constraint(format!(
                    "NOT NULL violated for {}.{}",
                    self.name, col.name
                )));
            }
        }
        if !self.primary_key.is_empty() {
            let key: Vec<GroupKey> =
                self.primary_key.iter().map(|&i| row[i].group_key()).collect();
            if self.pk_index.contains_key(&key) {
                return Err(Error::Constraint(format!(
                    "duplicate primary key in table '{}'",
                    self.name
                )));
            }
            self.pk_index.insert(key, self.rows.len());
        }
        self.invalidate_caches();
        self.rows.push(row);
        Ok(())
    }

    /// Bulk insert; stops at the first constraint violation.
    pub fn insert_rows(&mut self, rows: impl IntoIterator<Item = Vec<Value>>) -> Result<usize> {
        let mut n = 0;
        for row in rows {
            self.insert_row(row)?;
            n += 1;
        }
        Ok(n)
    }

    /// Look up a row by primary-key values (for point queries and tests).
    pub fn find_by_pk(&self, key_values: &[Value]) -> Option<&Row> {
        self.pk_row_index(key_values).map(|i| &self.rows[i as usize])
    }

    /// The row index holding the given primary-key tuple, via the unique
    /// hash index — the `Plan::IndexScan` point probe. Key identity is
    /// [`Value::group_key`], a superset of SQL equality, so a probe hit
    /// still passes through the predicate filter above the scan.
    pub fn pk_row_index(&self, key_values: &[Value]) -> Option<u32> {
        if self.primary_key.is_empty() || key_values.len() != self.primary_key.len() {
            return None;
        }
        let key: Vec<GroupKey> = key_values.iter().map(Value::group_key).collect();
        self.pk_index.get(&key).map(|&i| i as u32)
    }

    /// The row permutation sorted by primary-key value (ties by row
    /// index), or `None` for tables without a primary key. Built on
    /// first use, cached until the next mutation.
    pub fn ordered_pk(&self) -> Option<Arc<Vec<u32>>> {
        if self.primary_key.is_empty() {
            return None;
        }
        Some(
            self.ordered_pk
                .get_or_init(|| {
                    let pk = &self.primary_key;
                    let mut idx: Vec<u32> = (0..self.rows.len() as u32).collect();
                    idx.sort_unstable_by(|&a, &b| {
                        let (ra, rb) = (&self.rows[a as usize], &self.rows[b as usize]);
                        pk.iter()
                            .map(|&c| ra[c].sort_cmp(&rb[c]))
                            .find(|o| *o != std::cmp::Ordering::Equal)
                            .unwrap_or_else(|| a.cmp(&b))
                    });
                    Arc::new(idx)
                })
                .clone(),
        )
    }

    /// Row indices (in ascending row order, so an index scan's output is
    /// byte-identical to a filtered full scan) whose **first** primary-key
    /// column lies within `lower`/`upper`, each `(value, inclusive)`.
    /// O(log n + k) via binary search over [`Self::ordered_pk`]. The
    /// bounds use [`Value::sort_cmp`], which agrees with SQL comparison
    /// wherever SQL comparison is non-NULL, so the result is exact for
    /// non-NULL bounds (NULL cells sort below every bound and SQL
    /// comparison excludes them too — except under a sole upper bound,
    /// where they are included and the filter above removes them).
    pub fn pk_range(
        &self,
        lower: Option<(&Value, bool)>,
        upper: Option<(&Value, bool)>,
    ) -> Option<Vec<u32>> {
        let ord = self.ordered_pk()?;
        let col = self.primary_key[0];
        let lo = match lower {
            None => 0,
            Some((v, incl)) => ord.partition_point(|&i| {
                let c = self.rows[i as usize][col].sort_cmp(v);
                c == std::cmp::Ordering::Less || (!incl && c == std::cmp::Ordering::Equal)
            }),
        };
        let hi = match upper {
            None => ord.len(),
            Some((v, incl)) => ord.partition_point(|&i| {
                let c = self.rows[i as usize][col].sort_cmp(v);
                c == std::cmp::Ordering::Less || (incl && c == std::cmp::Ordering::Equal)
            }),
        };
        let mut out: Vec<u32> = if lo < hi { ord[lo..hi].to_vec() } else { Vec::new() };
        out.sort_unstable();
        Some(out)
    }

    /// Add a column to the schema, filling existing rows with NULL
    /// (ALTER TABLE ADD COLUMN).
    pub fn add_column(&mut self, column: Column) -> Result<()> {
        if self.column_index(&column.name).is_some() {
            return Err(Error::AlreadyExists(format!("{}.{}", self.name, column.name)));
        }
        if column.not_null && !self.rows.is_empty() {
            return Err(Error::Constraint(
                "cannot add NOT NULL column to a non-empty table".into(),
            ));
        }
        self.invalidate_caches();
        self.col_index.insert(column.name.to_ascii_lowercase(), self.columns.len());
        self.columns.push(column);
        for row in &mut self.rows {
            let mut widened = Vec::with_capacity(row.len() + 1);
            widened.extend_from_slice(row);
            widened.push(Value::Null);
            *row = widened.into();
        }
        Ok(())
    }

    /// Drop a column (used by benchmark schema curation). Rebuilds the
    /// name index and the PK index; dropping a PK column clears the PK.
    pub fn drop_column(&mut self, name: &str) -> Result<()> {
        let idx = self
            .column_index(name)
            .ok_or_else(|| Error::NotFound(format!("{}.{}", self.name, name)))?;
        self.invalidate_caches();
        self.columns.remove(idx);
        for row in &mut self.rows {
            let mut narrowed = row.to_vec();
            narrowed.remove(idx);
            *row = narrowed.into();
        }
        if self.primary_key.contains(&idx) {
            self.primary_key.clear();
            self.pk_index.clear();
        } else {
            for pk in &mut self.primary_key {
                if *pk > idx {
                    *pk -= 1;
                }
            }
            self.rebuild_pk_index();
        }
        self.col_index.clear();
        for (i, c) in self.columns.iter().enumerate() {
            self.col_index.insert(c.name.to_ascii_lowercase(), i);
        }
        Ok(())
    }

    /// Roll freshly appended rows back: drop everything from `keep_len`
    /// on and remove those rows' PK index entries. Used for statement
    /// atomicity — a multi-row INSERT that fails part-way truncates back
    /// to its start instead of leaving a partial batch.
    pub fn truncate_rows(&mut self, keep_len: usize) {
        if keep_len >= self.rows.len() {
            return;
        }
        if !self.primary_key.is_empty() {
            let pk = self.primary_key.clone();
            for row in &self.rows[keep_len..] {
                let key: Vec<GroupKey> = pk.iter().map(|&c| row[c].group_key()).collect();
                self.pk_index.remove(&key);
            }
        }
        self.invalidate_caches();
        self.rows.truncate(keep_len);
    }

    /// Remove all rows (and the PK index) while keeping the schema.
    pub fn clear_rows(&mut self) {
        self.invalidate_caches();
        self.rows.clear();
        self.pk_index.clear();
    }

    /// Remove rows matching `pred`; returns how many were removed.
    pub fn retain_rows(&mut self, mut keep: impl FnMut(&[Value]) -> bool) -> usize {
        let before = self.rows.len();
        self.rows.retain(|r| keep(r));
        let removed = before - self.rows.len();
        if removed > 0 {
            self.invalidate_caches();
            self.rebuild_pk_index();
        }
        removed
    }

    fn rebuild_pk_index(&mut self) {
        self.pk_index.clear();
        if self.primary_key.is_empty() {
            return;
        }
        let pk = self.primary_key.clone();
        for (i, row) in self.rows.iter().enumerate() {
            let key: Vec<GroupKey> = pk.iter().map(|&c| row[c].group_key()).collect();
            self.pk_index.insert(key, i);
        }
    }

    /// True when the table has a primary key — the precondition for
    /// row-level write sets; tables without one fall back to
    /// table-granular conflict detection.
    pub fn has_primary_key(&self) -> bool {
        !self.primary_key.is_empty()
    }

    /// The hashable primary-key identity of a full row of this table, or
    /// `None` when the table has no primary key.
    pub fn pk_key_of(&self, row: &[Value]) -> Option<Vec<GroupKey>> {
        if self.primary_key.is_empty() {
            return None;
        }
        Some(self.primary_key.iter().map(|&i| row[i].group_key()).collect())
    }

    /// The primary-key cells of a full row (for diagnostics and the WAL's
    /// row-patch delete encoding). Empty when the table has no PK.
    pub fn pk_values_of(&self, row: &[Value]) -> Vec<Value> {
        self.primary_key.iter().map(|&i| row[i].clone()).collect()
    }

    /// True if a row with this primary-key identity exists.
    pub fn contains_pk_key(&self, key: &[GroupKey]) -> bool {
        self.pk_index.contains_key(key)
    }

    /// Apply a row-level patch: remove every row whose PK is in
    /// `deletes` (each a tuple of PK cell values), then upsert each row in
    /// `upserts` in order — replacing in place when the key exists,
    /// appending otherwise.
    ///
    /// This is the **one** definition of patch application: the commit
    /// path uses it to rebase a transaction's rows onto the live table,
    /// and WAL replay uses it to apply
    /// [`RowPatch`](crate::wal::WalDelta::RowPatch) deltas — so the
    /// installed table and
    /// the recovered table are byte-identical by construction, row order
    /// included.
    pub fn apply_row_patch(&mut self, deletes: &[Row], upserts: Vec<Row>) -> Result<()> {
        self.invalidate_caches();
        if self.primary_key.is_empty() {
            return Err(Error::Internal(format!(
                "row patch applied to table '{}' without a primary key",
                self.name
            )));
        }
        if !deletes.is_empty() {
            let mut del: HashSet<Vec<GroupKey>> = HashSet::with_capacity(deletes.len());
            for key_row in deletes {
                del.insert(key_row.iter().map(Value::group_key).collect());
            }
            let pk = self.primary_key.clone();
            self.retain_rows(|row| {
                let key: Vec<GroupKey> = pk.iter().map(|&c| row[c].group_key()).collect();
                !del.contains(&key)
            });
        }
        for row in upserts {
            if row.len() != self.columns.len() {
                return Err(Error::Internal(format!(
                    "row patch for table '{}' carries a {}-cell row over {} columns",
                    self.name,
                    row.len(),
                    self.columns.len()
                )));
            }
            let key: Vec<GroupKey> =
                self.primary_key.iter().map(|&i| row[i].group_key()).collect();
            match self.pk_index.get(&key) {
                Some(&i) => self.rows[i] = row,
                None => self.insert_shared_row(row)?,
            }
        }
        Ok(())
    }
}

/// The catalog: a name -> table map. Tables are stored behind `Arc` so
/// query execution can snapshot them without copying data; mutation uses
/// copy-on-write via [`Arc::make_mut`].
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: HashMap<String, Arc<Table>>,
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table. Errors if a table with this name exists.
    pub fn create_table(&mut self, table: Table) -> Result<()> {
        let key = table.name.to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(Error::AlreadyExists(table.name));
        }
        self.tables.insert(key, Arc::new(table));
        Ok(())
    }

    /// Replace or insert a table unconditionally.
    pub fn put_table(&mut self, table: Table) {
        self.put_shared(Arc::new(table));
    }

    /// Replace or insert an already-shared table — a refcount bump, no
    /// row copying. This is how [`SharedDb`](crate::shared::SharedDb)
    /// installs a writer's new table version into the live catalog.
    pub fn put_shared(&mut self, table: Arc<Table>) {
        self.tables.insert(table.name.to_ascii_lowercase(), table);
    }

    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        self.tables
            .remove(&name.to_ascii_lowercase())
            .map(|_| ())
            .ok_or_else(|| Error::NotFound(name.to_string()))
    }

    pub fn get(&self, name: &str) -> Option<&Arc<Table>> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    pub fn get_required(&self, name: &str) -> Result<&Arc<Table>> {
        self.get(name).ok_or_else(|| Error::NotFound(name.to_string()))
    }

    /// Mutable access with copy-on-write semantics. Bumps the table's
    /// [`version`](Table::version): callers take this handle precisely to
    /// mutate, so the versioned identity stays conservative — a bumped
    /// version never lies about contents being possibly different.
    pub fn get_mut(&mut self, name: &str) -> Result<&mut Table> {
        let arc = self
            .tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| Error::NotFound(name.to_string()))?;
        let table = Arc::make_mut(arc);
        table.version += 1;
        // The caller is about to mutate: drop the columnar cache now so a
        // stale view can never be served against the modified rows.
        table.invalidate_caches();
        Ok(table)
    }

    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    /// Table names, sorted for deterministic iteration.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> =
            self.tables.values().map(|t| t.name.clone()).collect();
        names.sort();
        names
    }

    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Current row count of a table — the per-table statistic the
    /// optimizer's join ordering consumes. Exact (not an estimate): the
    /// catalog is the storage engine, so the count is free.
    pub fn row_count(&self, name: &str) -> Option<usize> {
        self.get(name).map(|t| t.len())
    }

    /// Schema + cardinality statistics for one table.
    pub fn stats(&self, name: &str) -> Option<TableStats> {
        self.get(name).map(|t| TableStats { rows: t.len(), columns: t.width() })
    }

    /// The version of a table, if it exists — the per-table identity the
    /// transaction layer's commit conflict check compares.
    pub fn version(&self, name: &str) -> Option<u64> {
        self.get(name).map(|t| t.version)
    }
}

/// Per-table statistics snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableStats {
    pub rows: usize,
    pub columns: usize,
}

impl crate::plan::SchemaProvider for Catalog {
    fn table_columns(&self, table: &str) -> Result<Vec<String>> {
        Ok(self.get_required(table)?.column_names())
    }

    fn table_rows(&self, table: &str) -> Option<usize> {
        self.row_count(table)
    }

    fn table_primary_key(&self, table: &str) -> Option<Vec<String>> {
        let t = self.get(table)?;
        if t.primary_key.is_empty() {
            return None;
        }
        Some(t.primary_key.iter().map(|&i| t.columns[i].name.clone()).collect())
    }
}

// ---------------------------------------------------------------------------
// Binary row codec
// ---------------------------------------------------------------------------
//
// Little-endian, length-prefixed, no self-description: the WAL frames every
// record with its own length + checksum, so the codec only needs to be
// unambiguous, compact and lossless (NaN bit patterns, -0.0 and text all
// round-trip exactly).

/// Interns decoded text so repeated strings in one decode session share a
/// single `Arc<str>` allocation — the same zero-copy representation the
/// engine builds at parse/load time.
#[derive(Debug, Default)]
pub struct TextInterner {
    strings: HashSet<Arc<str>>,
}

impl TextInterner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Shared handle for `s`, reusing a previous allocation when one exists.
    pub fn intern(&mut self, s: &str) -> Arc<str> {
        match self.strings.get(s) {
            Some(shared) => shared.clone(),
            None => {
                let shared: Arc<str> = s.into();
                self.strings.insert(shared.clone());
                shared
            }
        }
    }
}

/// Codec error helper: the byte stream ended or a tag was invalid.
pub(crate) fn codec_err(what: &str) -> Error {
    Error::Io(format!("codec: malformed {what}"))
}

// Shared little-endian primitives — the WAL's record framing
// (`crate::wal`) builds on the same helpers.

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

pub(crate) fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8]> {
    let end = pos.checked_add(n).ok_or_else(|| codec_err("length"))?;
    if end > buf.len() {
        return Err(codec_err("truncated field"));
    }
    let out = &buf[*pos..end];
    *pos = end;
    Ok(out)
}

pub(crate) fn get_u8(buf: &[u8], pos: &mut usize) -> Result<u8> {
    Ok(take(buf, pos, 1)?[0])
}

/// `take` an exact-size field into an array. `take` already bounds-checked
/// the slice; the copy keeps decode paths free of panicking casts — a WAL
/// replay or checkpoint load must answer corruption with `Err`, not abort.
pub(crate) fn take_array<const N: usize>(buf: &[u8], pos: &mut usize) -> Result<[u8; N]> {
    let field = take(buf, pos, N)?;
    let mut out = [0u8; N];
    out.copy_from_slice(field);
    Ok(out)
}

pub(crate) fn get_u32(buf: &[u8], pos: &mut usize) -> Result<u32> {
    Ok(u32::from_le_bytes(take_array(buf, pos)?))
}

pub(crate) fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64> {
    Ok(u64::from_le_bytes(take_array(buf, pos)?))
}

pub(crate) fn get_str<'a>(buf: &'a [u8], pos: &mut usize) -> Result<&'a str> {
    let len = get_u32(buf, pos)? as usize;
    std::str::from_utf8(take(buf, pos, len)?).map_err(|_| codec_err("utf-8 text"))
}

/// Append one value: a storage-class tag byte plus the exact payload.
pub fn encode_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Integer(i) => {
            buf.push(1);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Real(r) => {
            buf.push(2);
            // Raw bits: NaN payloads and -0.0 survive the round trip.
            buf.extend_from_slice(&r.to_bits().to_le_bytes());
        }
        Value::Text(s) => {
            buf.push(3);
            put_str(buf, s);
        }
    }
}

/// Decode one value, interning text through `interner`.
pub fn decode_value(buf: &[u8], pos: &mut usize, interner: &mut TextInterner) -> Result<Value> {
    match get_u8(buf, pos)? {
        0 => Ok(Value::Null),
        1 => Ok(Value::Integer(i64::from_le_bytes(take_array(buf, pos)?))),
        2 => Ok(Value::Real(f64::from_bits(get_u64(buf, pos)?))),
        3 => Ok(Value::Text(interner.intern(get_str(buf, pos)?))),
        _ => Err(codec_err("value tag")),
    }
}

/// Append one shared row: cell count then each value.
pub fn encode_row(buf: &mut Vec<u8>, row: &Row) {
    put_u32(buf, row.len() as u32);
    for v in row.iter() {
        encode_value(buf, v);
    }
}

/// Decode one row into the shared representation.
pub fn decode_row(buf: &[u8], pos: &mut usize, interner: &mut TextInterner) -> Result<Row> {
    let n = get_u32(buf, pos)? as usize;
    let mut cells = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        cells.push(decode_value(buf, pos, interner)?);
    }
    Ok(cells.into())
}

/// Serialize a full table snapshot: name, schema, primary key, version and
/// every row. The output is deterministic for a given table state.
pub fn encode_table(buf: &mut Vec<u8>, table: &Table) {
    put_str(buf, &table.name);
    put_u32(buf, table.columns.len() as u32);
    for col in &table.columns {
        put_str(buf, &col.name);
        match &col.decl_type {
            None => buf.push(0),
            Some(t) => {
                buf.push(1);
                put_str(buf, t);
            }
        }
        buf.push(col.not_null as u8);
    }
    put_u32(buf, table.primary_key.len() as u32);
    for &pk in &table.primary_key {
        put_u32(buf, pk as u32);
    }
    put_u64(buf, table.version);
    put_u64(buf, table.rows.len() as u64);
    for row in &table.rows {
        encode_row(buf, row);
    }
}

/// Reconstruct a table from its encoded snapshot, rebuilding the column
/// and primary-key indexes and re-interning text through `interner`.
pub fn decode_table(buf: &[u8], pos: &mut usize, interner: &mut TextInterner) -> Result<Table> {
    let name = get_str(buf, pos)?.to_string();
    let ncols = get_u32(buf, pos)? as usize;
    let mut columns = Vec::with_capacity(ncols.min(1 << 12));
    for _ in 0..ncols {
        let cname = get_str(buf, pos)?.to_string();
        let decl_type = match get_u8(buf, pos)? {
            0 => None,
            1 => Some(get_str(buf, pos)?.to_string()),
            _ => return Err(codec_err("decl-type tag")),
        };
        let not_null = get_u8(buf, pos)? != 0;
        columns.push(Column { name: cname, decl_type, not_null });
    }
    let npk = get_u32(buf, pos)? as usize;
    let mut pk_names = Vec::with_capacity(npk.min(1 << 12));
    for _ in 0..npk {
        let idx = get_u32(buf, pos)? as usize;
        let col =
            columns.get(idx).ok_or_else(|| codec_err("primary-key column index"))?;
        pk_names.push(col.name.clone());
    }
    let version = get_u64(buf, pos)?;
    let nrows = get_u64(buf, pos)? as usize;
    let mut table = Table::new(name, columns, &pk_names)?;
    for _ in 0..nrows {
        let row = decode_row(buf, pos, interner)?;
        table.insert_shared_row(row)?;
    }
    table.version = version;
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hero_table() -> Table {
        let mut t = Table::new(
            "superhero",
            vec![Column::new("hero_name"), Column::new("full_name")],
            &["hero_name".to_string()],
        )
        .unwrap();
        t.insert_row(vec!["Spider-Man".into(), "Peter Parker".into()]).unwrap();
        t.insert_row(vec!["Batman".into(), "Bruce Wayne".into()]).unwrap();
        t
    }

    #[test]
    fn column_resolution_is_case_insensitive() {
        let t = hero_table();
        assert_eq!(t.column_index("HERO_NAME"), Some(0));
        assert_eq!(t.column_index("Full_Name"), Some(1));
        assert_eq!(t.column_index("nope"), None);
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = hero_table();
        let err = t.insert_row(vec!["Batman".into(), "Someone Else".into()]).unwrap_err();
        assert!(matches!(err, Error::Constraint(_)));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn pk_lookup() {
        let t = hero_table();
        let row = t.find_by_pk(&["Batman".into()]).unwrap();
        assert_eq!(row[1], Value::text("Bruce Wayne"));
        assert!(t.find_by_pk(&["Nobody".into()]).is_none());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = hero_table();
        assert!(t.insert_row(vec!["X".into()]).is_err());
    }

    #[test]
    fn not_null_enforced() {
        let mut cols = vec![Column::new("a")];
        cols[0].not_null = true;
        let mut t = Table::new("t", cols, &[]).unwrap();
        assert!(t.insert_row(vec![Value::Null]).is_err());
        assert!(t.insert_row(vec![1.into()]).is_ok());
    }

    #[test]
    fn add_column_backfills_null() {
        let mut t = hero_table();
        t.add_column(Column::new("publisher")).unwrap();
        assert_eq!(t.width(), 3);
        assert!(t.rows[0][2].is_null());
        assert!(t.add_column(Column::new("publisher")).is_err(), "duplicate");
    }

    #[test]
    fn drop_column_shifts_pk_and_reindexes() {
        let mut t = Table::new(
            "t",
            vec![Column::new("a"), Column::new("b"), Column::new("c")],
            &["c".to_string()],
        )
        .unwrap();
        t.insert_row(vec![1.into(), 2.into(), 3.into()]).unwrap();
        t.drop_column("a").unwrap();
        assert_eq!(t.column_names(), vec!["b", "c"]);
        assert_eq!(t.primary_key, vec![1]);
        assert!(t.find_by_pk(&[3.into()]).is_some());
    }

    #[test]
    fn drop_pk_column_clears_pk() {
        let mut t = hero_table();
        t.drop_column("hero_name").unwrap();
        assert!(t.primary_key.is_empty());
        // Inserting a former duplicate now succeeds.
        t.insert_row(vec!["Peter Parker".into()]).unwrap();
    }

    #[test]
    fn retain_rows_rebuilds_index() {
        let mut t = hero_table();
        let removed = t.retain_rows(|r| r[0].as_str() != Some("Batman"));
        assert_eq!(removed, 1);
        assert!(t.find_by_pk(&["Batman".into()]).is_none());
        assert!(t.find_by_pk(&["Spider-Man".into()]).is_some());
    }

    #[test]
    fn catalog_create_drop() {
        let mut cat = Catalog::new();
        cat.create_table(hero_table()).unwrap();
        assert!(cat.contains("SUPERHERO"), "case-insensitive");
        assert!(cat.create_table(hero_table()).is_err());
        cat.drop_table("superhero").unwrap();
        assert!(cat.drop_table("superhero").is_err());
    }

    #[test]
    fn catalog_cow_mutation_does_not_affect_snapshots() {
        let mut cat = Catalog::new();
        cat.create_table(hero_table()).unwrap();
        let snapshot = cat.get("superhero").unwrap().clone();
        cat.get_mut("superhero")
            .unwrap()
            .insert_row(vec!["Hulk".into(), "Bruce Banner".into()])
            .unwrap();
        assert_eq!(snapshot.len(), 2, "snapshot unchanged");
        assert_eq!(cat.get("superhero").unwrap().len(), 3);
    }

    #[test]
    fn get_mut_bumps_version_monotonically() {
        let mut cat = Catalog::new();
        cat.create_table(hero_table()).unwrap();
        assert_eq!(cat.version("superhero"), Some(0));
        cat.get_mut("superhero").unwrap();
        cat.get_mut("SUPERHERO").unwrap();
        assert_eq!(cat.version("superhero"), Some(2));
        // A snapshot taken before a bump keeps its own version.
        let snap = cat.get("superhero").unwrap().clone();
        cat.get_mut("superhero").unwrap();
        assert_eq!(snap.version, 2);
        assert_eq!(cat.version("superhero"), Some(3));
    }

    #[test]
    fn table_codec_round_trips_losslessly() {
        let mut t = Table::new(
            "mixed",
            vec![
                Column::new("a"),
                Column::typed("b", "INTEGER"),
                Column { name: "c".into(), decl_type: None, not_null: true },
            ],
            &["a".to_string()],
        )
        .unwrap();
        t.insert_row(vec![1.into(), Value::Null, "shared".into()]).unwrap();
        t.insert_row(vec![2.into(), Value::Real(-0.0), "shared".into()]).unwrap();
        t.insert_row(vec![3.into(), Value::Real(f64::NAN), "unique".into()]).unwrap();
        t.version = 41;

        let mut buf = Vec::new();
        encode_table(&mut buf, &t);
        let mut pos = 0;
        let mut interner = TextInterner::new();
        let back = decode_table(&buf, &mut pos, &mut interner).unwrap();
        assert_eq!(pos, buf.len(), "decode must consume the whole encoding");

        assert_eq!(back.name, "mixed");
        assert_eq!(back.columns, t.columns);
        assert_eq!(back.primary_key, t.primary_key);
        assert_eq!(back.version, 41);
        assert_eq!(back.rows.len(), 3);
        assert_eq!(back.rows[0], t.rows[0]);
        // NaN bits round-trip (Value's PartialEq treats NaN == NaN via sort_cmp).
        match &back.rows[2][1] {
            Value::Real(r) => assert!(r.is_nan()),
            other => panic!("expected NaN real, got {other:?}"),
        }
        // -0.0 keeps its sign bit.
        match &back.rows[1][1] {
            Value::Real(r) => assert!(r.to_bits() == (-0.0f64).to_bits()),
            other => panic!("expected -0.0, got {other:?}"),
        }
        // Repeated text decodes to one interned allocation.
        match (&back.rows[0][2], &back.rows[1][2]) {
            (Value::Text(x), Value::Text(y)) => {
                assert!(Arc::ptr_eq(x, y), "decode must intern repeated text")
            }
            _ => panic!("expected text cells"),
        }
        // The PK index was rebuilt.
        assert!(back.find_by_pk(&[2.into()]).is_some());
    }

    #[test]
    fn decode_rejects_truncated_and_garbage_input() {
        let mut t = hero_table();
        t.version = 7;
        let mut buf = Vec::new();
        encode_table(&mut buf, &t);
        for cut in 0..buf.len() {
            let mut pos = 0;
            let mut interner = TextInterner::new();
            assert!(
                decode_table(&buf[..cut], &mut pos, &mut interner).is_err(),
                "decoding a {cut}-byte prefix must fail"
            );
        }
        let mut pos = 0;
        let mut interner = TextInterner::new();
        assert!(decode_value(&[9], &mut pos, &mut interner).is_err(), "bad tag");
    }

    #[test]
    fn table_names_sorted() {
        let mut cat = Catalog::new();
        cat.create_table(Table::new("zeta", vec![Column::new("a")], &[]).unwrap()).unwrap();
        cat.create_table(Table::new("alpha", vec![Column::new("a")], &[]).unwrap()).unwrap();
        assert_eq!(cat.table_names(), vec!["alpha", "zeta"]);
    }
}
