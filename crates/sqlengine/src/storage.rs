//! In-memory row storage and the catalog.
//!
//! Tables are row-oriented over shared rows (`Vec<Arc<[Value]>>`) with a
//! column-name index for O(1) resolution and an optional unique-key hash
//! index used both for constraint enforcement and as a join fast path.
//! Because rows are `Arc`-shared, a table scan hands the executor the whole
//! row set with one refcount bump per row — no cell is ever deep-copied on
//! the read path. The catalog also exposes per-table row counts as the
//! statistics feed for the optimizer's join ordering.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::value::{GroupKey, Row, Value};

/// Schema + data for one table.
#[derive(Debug, Clone)]
pub struct Table {
    pub name: String,
    pub columns: Vec<Column>,
    /// Lowercased column name -> index.
    col_index: HashMap<String, usize>,
    pub rows: Vec<Row>,
    /// Column indexes forming the primary key (may be empty).
    pub primary_key: Vec<usize>,
    /// Unique index over the primary key columns; maintained on insert.
    pk_index: HashMap<Vec<GroupKey>, usize>,
}

/// One column's metadata. Declared types are advisory, SQLite-style.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    pub name: String,
    pub decl_type: Option<String>,
    pub not_null: bool,
}

impl Column {
    pub fn new(name: impl Into<String>) -> Self {
        Column { name: name.into(), decl_type: None, not_null: false }
    }

    pub fn typed(name: impl Into<String>, ty: impl Into<String>) -> Self {
        Column { name: name.into(), decl_type: Some(ty.into()), not_null: false }
    }
}

impl Table {
    /// Create an empty table. Fails on duplicate column names or a primary
    /// key referencing an unknown column.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<Column>,
        primary_key_cols: &[String],
    ) -> Result<Self> {
        let name = name.into();
        let mut col_index = HashMap::with_capacity(columns.len());
        for (i, c) in columns.iter().enumerate() {
            if col_index.insert(c.name.to_ascii_lowercase(), i).is_some() {
                return Err(Error::Semantic(format!(
                    "duplicate column '{}' in table '{}'",
                    c.name, name
                )));
            }
        }
        let mut primary_key = Vec::with_capacity(primary_key_cols.len());
        for pk in primary_key_cols {
            let idx = col_index
                .get(&pk.to_ascii_lowercase())
                .copied()
                .ok_or_else(|| Error::Unresolved(format!("primary key column '{pk}'")))?;
            primary_key.push(idx);
        }
        Ok(Table { name, columns, col_index, rows: Vec::new(), primary_key, pk_index: HashMap::new() })
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Resolve a column name (case-insensitive) to its index.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.col_index.get(&name.to_ascii_lowercase()).copied()
    }

    /// Column names in declaration order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    /// Append an owned row, enforcing arity, NOT NULL, and primary-key
    /// uniqueness.
    pub fn insert_row(&mut self, row: Vec<Value>) -> Result<()> {
        self.insert_shared_row(row.into())
    }

    /// Append an already-shared row (the zero-copy bulk-load path: e.g.
    /// `INSERT INTO t SELECT ...` re-shares the SELECT's output rows).
    pub fn insert_shared_row(&mut self, row: Row) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(Error::Semantic(format!(
                "table '{}' expects {} values, got {}",
                self.name,
                self.columns.len(),
                row.len()
            )));
        }
        for (i, col) in self.columns.iter().enumerate() {
            if col.not_null && row[i].is_null() {
                return Err(Error::Constraint(format!(
                    "NOT NULL violated for {}.{}",
                    self.name, col.name
                )));
            }
        }
        if !self.primary_key.is_empty() {
            let key: Vec<GroupKey> =
                self.primary_key.iter().map(|&i| row[i].group_key()).collect();
            if self.pk_index.contains_key(&key) {
                return Err(Error::Constraint(format!(
                    "duplicate primary key in table '{}'",
                    self.name
                )));
            }
            self.pk_index.insert(key, self.rows.len());
        }
        self.rows.push(row);
        Ok(())
    }

    /// Bulk insert; stops at the first constraint violation.
    pub fn insert_rows(&mut self, rows: impl IntoIterator<Item = Vec<Value>>) -> Result<usize> {
        let mut n = 0;
        for row in rows {
            self.insert_row(row)?;
            n += 1;
        }
        Ok(n)
    }

    /// Look up a row by primary-key values (for point queries and tests).
    pub fn find_by_pk(&self, key_values: &[Value]) -> Option<&Row> {
        if self.primary_key.is_empty() || key_values.len() != self.primary_key.len() {
            return None;
        }
        let key: Vec<GroupKey> = key_values.iter().map(Value::group_key).collect();
        self.pk_index.get(&key).map(|&i| &self.rows[i])
    }

    /// Add a column to the schema, filling existing rows with NULL
    /// (ALTER TABLE ADD COLUMN).
    pub fn add_column(&mut self, column: Column) -> Result<()> {
        if self.column_index(&column.name).is_some() {
            return Err(Error::AlreadyExists(format!("{}.{}", self.name, column.name)));
        }
        if column.not_null && !self.rows.is_empty() {
            return Err(Error::Constraint(
                "cannot add NOT NULL column to a non-empty table".into(),
            ));
        }
        self.col_index.insert(column.name.to_ascii_lowercase(), self.columns.len());
        self.columns.push(column);
        for row in &mut self.rows {
            let mut widened = Vec::with_capacity(row.len() + 1);
            widened.extend_from_slice(row);
            widened.push(Value::Null);
            *row = widened.into();
        }
        Ok(())
    }

    /// Drop a column (used by benchmark schema curation). Rebuilds the
    /// name index and the PK index; dropping a PK column clears the PK.
    pub fn drop_column(&mut self, name: &str) -> Result<()> {
        let idx = self
            .column_index(name)
            .ok_or_else(|| Error::NotFound(format!("{}.{}", self.name, name)))?;
        self.columns.remove(idx);
        for row in &mut self.rows {
            let mut narrowed = row.to_vec();
            narrowed.remove(idx);
            *row = narrowed.into();
        }
        if self.primary_key.contains(&idx) {
            self.primary_key.clear();
            self.pk_index.clear();
        } else {
            for pk in &mut self.primary_key {
                if *pk > idx {
                    *pk -= 1;
                }
            }
            self.rebuild_pk_index();
        }
        self.col_index.clear();
        for (i, c) in self.columns.iter().enumerate() {
            self.col_index.insert(c.name.to_ascii_lowercase(), i);
        }
        Ok(())
    }

    /// Remove all rows (and the PK index) while keeping the schema.
    pub fn clear_rows(&mut self) {
        self.rows.clear();
        self.pk_index.clear();
    }

    /// Remove rows matching `pred`; returns how many were removed.
    pub fn retain_rows(&mut self, mut keep: impl FnMut(&[Value]) -> bool) -> usize {
        let before = self.rows.len();
        self.rows.retain(|r| keep(r));
        let removed = before - self.rows.len();
        if removed > 0 {
            self.rebuild_pk_index();
        }
        removed
    }

    fn rebuild_pk_index(&mut self) {
        self.pk_index.clear();
        if self.primary_key.is_empty() {
            return;
        }
        let pk = self.primary_key.clone();
        for (i, row) in self.rows.iter().enumerate() {
            let key: Vec<GroupKey> = pk.iter().map(|&c| row[c].group_key()).collect();
            self.pk_index.insert(key, i);
        }
    }
}

/// The catalog: a name -> table map. Tables are stored behind `Arc` so
/// query execution can snapshot them without copying data; mutation uses
/// copy-on-write via [`Arc::make_mut`].
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: HashMap<String, Arc<Table>>,
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table. Errors if a table with this name exists.
    pub fn create_table(&mut self, table: Table) -> Result<()> {
        let key = table.name.to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(Error::AlreadyExists(table.name));
        }
        self.tables.insert(key, Arc::new(table));
        Ok(())
    }

    /// Replace or insert a table unconditionally.
    pub fn put_table(&mut self, table: Table) {
        self.put_shared(Arc::new(table));
    }

    /// Replace or insert an already-shared table — a refcount bump, no
    /// row copying. This is how [`SharedDb`](crate::shared::SharedDb)
    /// installs a writer's new table version into the live catalog.
    pub fn put_shared(&mut self, table: Arc<Table>) {
        self.tables.insert(table.name.to_ascii_lowercase(), table);
    }

    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        self.tables
            .remove(&name.to_ascii_lowercase())
            .map(|_| ())
            .ok_or_else(|| Error::NotFound(name.to_string()))
    }

    pub fn get(&self, name: &str) -> Option<&Arc<Table>> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    pub fn get_required(&self, name: &str) -> Result<&Arc<Table>> {
        self.get(name).ok_or_else(|| Error::NotFound(name.to_string()))
    }

    /// Mutable access with copy-on-write semantics.
    pub fn get_mut(&mut self, name: &str) -> Result<&mut Table> {
        let arc = self
            .tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| Error::NotFound(name.to_string()))?;
        Ok(Arc::make_mut(arc))
    }

    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    /// Table names, sorted for deterministic iteration.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> =
            self.tables.values().map(|t| t.name.clone()).collect();
        names.sort();
        names
    }

    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Current row count of a table — the per-table statistic the
    /// optimizer's join ordering consumes. Exact (not an estimate): the
    /// catalog is the storage engine, so the count is free.
    pub fn row_count(&self, name: &str) -> Option<usize> {
        self.get(name).map(|t| t.len())
    }

    /// Schema + cardinality statistics for one table.
    pub fn stats(&self, name: &str) -> Option<TableStats> {
        self.get(name).map(|t| TableStats { rows: t.len(), columns: t.width() })
    }
}

/// Per-table statistics snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableStats {
    pub rows: usize,
    pub columns: usize,
}

impl crate::plan::SchemaProvider for Catalog {
    fn table_columns(&self, table: &str) -> Result<Vec<String>> {
        Ok(self.get_required(table)?.column_names())
    }

    fn table_rows(&self, table: &str) -> Option<usize> {
        self.row_count(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hero_table() -> Table {
        let mut t = Table::new(
            "superhero",
            vec![Column::new("hero_name"), Column::new("full_name")],
            &["hero_name".to_string()],
        )
        .unwrap();
        t.insert_row(vec!["Spider-Man".into(), "Peter Parker".into()]).unwrap();
        t.insert_row(vec!["Batman".into(), "Bruce Wayne".into()]).unwrap();
        t
    }

    #[test]
    fn column_resolution_is_case_insensitive() {
        let t = hero_table();
        assert_eq!(t.column_index("HERO_NAME"), Some(0));
        assert_eq!(t.column_index("Full_Name"), Some(1));
        assert_eq!(t.column_index("nope"), None);
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = hero_table();
        let err = t.insert_row(vec!["Batman".into(), "Someone Else".into()]).unwrap_err();
        assert!(matches!(err, Error::Constraint(_)));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn pk_lookup() {
        let t = hero_table();
        let row = t.find_by_pk(&["Batman".into()]).unwrap();
        assert_eq!(row[1], Value::text("Bruce Wayne"));
        assert!(t.find_by_pk(&["Nobody".into()]).is_none());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = hero_table();
        assert!(t.insert_row(vec!["X".into()]).is_err());
    }

    #[test]
    fn not_null_enforced() {
        let mut cols = vec![Column::new("a")];
        cols[0].not_null = true;
        let mut t = Table::new("t", cols, &[]).unwrap();
        assert!(t.insert_row(vec![Value::Null]).is_err());
        assert!(t.insert_row(vec![1.into()]).is_ok());
    }

    #[test]
    fn add_column_backfills_null() {
        let mut t = hero_table();
        t.add_column(Column::new("publisher")).unwrap();
        assert_eq!(t.width(), 3);
        assert!(t.rows[0][2].is_null());
        assert!(t.add_column(Column::new("publisher")).is_err(), "duplicate");
    }

    #[test]
    fn drop_column_shifts_pk_and_reindexes() {
        let mut t = Table::new(
            "t",
            vec![Column::new("a"), Column::new("b"), Column::new("c")],
            &["c".to_string()],
        )
        .unwrap();
        t.insert_row(vec![1.into(), 2.into(), 3.into()]).unwrap();
        t.drop_column("a").unwrap();
        assert_eq!(t.column_names(), vec!["b", "c"]);
        assert_eq!(t.primary_key, vec![1]);
        assert!(t.find_by_pk(&[3.into()]).is_some());
    }

    #[test]
    fn drop_pk_column_clears_pk() {
        let mut t = hero_table();
        t.drop_column("hero_name").unwrap();
        assert!(t.primary_key.is_empty());
        // Inserting a former duplicate now succeeds.
        t.insert_row(vec!["Peter Parker".into()]).unwrap();
    }

    #[test]
    fn retain_rows_rebuilds_index() {
        let mut t = hero_table();
        let removed = t.retain_rows(|r| r[0].as_str() != Some("Batman"));
        assert_eq!(removed, 1);
        assert!(t.find_by_pk(&["Batman".into()]).is_none());
        assert!(t.find_by_pk(&["Spider-Man".into()]).is_some());
    }

    #[test]
    fn catalog_create_drop() {
        let mut cat = Catalog::new();
        cat.create_table(hero_table()).unwrap();
        assert!(cat.contains("SUPERHERO"), "case-insensitive");
        assert!(cat.create_table(hero_table()).is_err());
        cat.drop_table("superhero").unwrap();
        assert!(cat.drop_table("superhero").is_err());
    }

    #[test]
    fn catalog_cow_mutation_does_not_affect_snapshots() {
        let mut cat = Catalog::new();
        cat.create_table(hero_table()).unwrap();
        let snapshot = cat.get("superhero").unwrap().clone();
        cat.get_mut("superhero")
            .unwrap()
            .insert_row(vec!["Hulk".into(), "Bruce Banner".into()])
            .unwrap();
        assert_eq!(snapshot.len(), 2, "snapshot unchanged");
        assert_eq!(cat.get("superhero").unwrap().len(), 3);
    }

    #[test]
    fn table_names_sorted() {
        let mut cat = Catalog::new();
        cat.create_table(Table::new("zeta", vec![Column::new("a")], &[]).unwrap()).unwrap();
        cat.create_table(Table::new("alpha", vec![Column::new("a")], &[]).unwrap()).unwrap();
        assert_eq!(cat.table_names(), vec!["alpha", "zeta"]);
    }
}
