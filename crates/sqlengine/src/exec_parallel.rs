//! Morsel-driven parallel plan execution.
//!
//! [`exec_parallel`] executes the subtree under a [`Plan::Parallel`]
//! annotation with up to `partitions` worker threads from the shared
//! [`swan_pool`] compute pool:
//!
//! * **filters and permutes** split their input into fixed-size morsels;
//!   workers steal morsel indices from a shared counter, and per-morsel
//!   outputs are concatenated in morsel order — so the operator's row
//!   order (and therefore the whole query result) is **byte-identical to
//!   the serial engine at every partition count**;
//! * **hash joins** build a *partitioned* table — workers first compute
//!   the build side's keys (plus their hashes) morsel-parallel, then each
//!   of `partitions` workers owns the keys with `hash % partitions == p`
//!   and builds its own map with zero cross-worker synchronization; the
//!   probe side then probes morsel-parallel against the read-only
//!   partition maps, emitting in probe order exactly like the serial
//!   loop;
//! * **nested-loop joins** morsel the outer (left) side;
//! * **GROUP BY / aggregation** (driven from `exec::run_aggregate`) is
//!   two-phase: thread-local morsels evaluate every row's grouping key,
//!   a serial merge partitions rows in input order (preserving the
//!   serial first-seen group order), and the independent per-group
//!   aggregate/HAVING/projection work fans back out over the groups;
//! * **ORDER BY … LIMIT k** selects per-morsel top-k candidates in
//!   parallel before one final selection (see
//!   [`parallel_topk_candidates`]).
//!
//! # Worker execution contexts
//!
//! [`ExecCtx`] holds a statement-scoped `RefCell` UDF-result store and is
//! therefore not shareable across threads. Each morsel runs against a
//! fresh worker-local context over the same catalog/UDF registry, seeded
//! with a snapshot of the statement's prefetched expensive-UDF results
//! (so the vectorized batching of [`Plan::Batch`] keeps paying off inside
//! workers). The statement's **subquery cache is shared** by every worker
//! (it is `Send + Sync`, see [`crate::exec::SubqueryCache`]): an
//! uncorrelated subquery still executes at most once per statement, and
//! correlated subqueries re-execute per row on whichever worker owns the
//! row — so subquery-bearing predicates parallelize like any other
//! expression. Expensive-UDF *residual* join predicates still fall back
//! to the serial join: the serial path owns the candidate-replay batching
//! machinery, and splitting it across workers would silently degrade call
//! batching.
//!
//! Errors are deterministic: each worker stops at its morsel's first
//! error, and the caller surfaces the error of the earliest morsel — the
//! same row the serial loop would have failed on.

use std::cell::RefCell;
use std::hash::{Hash, Hasher};
use std::ops::Range;

use crate::ast::Expr;
use crate::error::Result;
use crate::eval::{bind_columns, eval, BatchableCalls, RowCtx};
use crate::exec::{
    exec_join, exec_plan, filter_relation, prefetch_row, split_equi_join, Bucket, Emission,
    ExecCtx, JoinInput, JoinKey, KeySide, Relation, PREFETCH_AHEAD,
};
use crate::hash::{map_with_capacity, FxHashMap, FxHasher};
use crate::optimizer::{expr_cost, OptimizerConfig};
use crate::plan::{Plan, PlanJoinKind, RelSchema};
use crate::value::{Row, Value};

/// Upper bound on morsel size (rows). Small enough that a skewed morsel
/// cannot serialize the batch, large enough to amortize dispatch.
pub const MORSEL_ROWS: usize = 1024;

/// Resolve a config's thread count: an explicit value wins; `0` defers to
/// [`swan_pool::configured_threads`] (the `SWAN_THREADS` environment
/// variable, else the machine's available parallelism). `SWAN_THREADS=1`
/// therefore reproduces the serial engine exactly.
pub fn effective_threads(config: &OptimizerConfig) -> usize {
    match config.threads {
        0 => swan_pool::configured_threads(),
        n => n,
    }
}

/// Morsel size for `count` items across `partitions` workers: aim for a
/// few morsels per worker (stealing headroom for skew), capped at
/// [`MORSEL_ROWS`].
fn morsel_size(count: usize, partitions: usize) -> usize {
    count.div_ceil((partitions * 4).max(1)).clamp(1, MORSEL_ROWS)
}

/// Run `f` over morsels of `0..count` on up to `partitions` workers, each
/// against a fresh worker-local [`ExecCtx`] seeded with a snapshot of the
/// statement's prefetched expensive-UDF results. Results come back in
/// morsel order; the first error (in morsel order) wins — matching the
/// serial loop's first-failing-row semantics.
///
/// Expensive-UDF results a worker computed itself (tuples the
/// statement-level prefetch missed, e.g. after a failed or short
/// `invoke_batch`) are **merged back** into the statement store when the
/// worker retires, so downstream operators of the same statement are
/// served from the store instead of re-invoking. Within one parallel
/// operator such a missed tuple can still be invoked by more than one
/// worker concurrently (bounded by the partition count; stateful UDFs
/// like `llm_map` deduplicate further in their own single-flight layer) —
/// the statement-level prefetch keeps this path cold.
pub(crate) fn try_morsels<'a, T, F>(
    count: usize,
    partitions: usize,
    ctx: &ExecCtx<'a>,
    f: F,
) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(Range<usize>, &ExecCtx<'a>) -> Result<T> + Sync,
{
    let snapshot = ctx.udf_results.borrow().clone();
    let catalog = ctx.catalog;
    let udfs = ctx.udfs;
    let optimizer = ctx.optimizer;
    let subqueries = ctx.subqueries.clone();
    let cancel = ctx.cancel.clone();
    type NewResults = Vec<(String, Vec<(Vec<crate::value::UdfArgKey>, Value)>)>;
    let merge_sink: parking_lot::Mutex<NewResults> =
        parking_lot::Mutex::with_rank("merge_sink", swan_pool::lockrank::MERGE_SINK, Vec::new());

    /// Worker context wrapper: on drop (worker retirement — normal or
    /// unwinding), entries absent from the seed snapshot drain into the
    /// shared sink for the statement thread to merge.
    struct WorkerCtx<'a, 'env> {
        wctx: ExecCtx<'a>,
        snapshot: &'env FxHashMap<String, crate::exec::UdfResults>,
        sink: &'env parking_lot::Mutex<NewResults>,
    }
    impl Drop for WorkerCtx<'_, '_> {
        fn drop(&mut self) {
            let store = self.wctx.udf_results.borrow();
            let mut fresh: NewResults = Vec::new();
            for (name, map) in store.iter() {
                let seed = self.snapshot.get(name);
                let new: Vec<_> = map
                    .iter()
                    .filter(|(k, _)| !seed.is_some_and(|s| s.contains_key(*k)))
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                if !new.is_empty() {
                    fresh.push((name.clone(), new));
                }
            }
            if !fresh.is_empty() {
                self.sink.lock().extend(fresh);
            }
        }
    }

    let out: Result<Vec<T>> = swan_pool::parallel_morsels_with(
        count,
        morsel_size(count, partitions),
        partitions,
        // One context (and one snapshot clone) per worker, not per morsel.
        || WorkerCtx {
            wctx: ExecCtx {
                catalog,
                udfs,
                optimizer,
                // One shared statement-wide subquery cache: uncorrelated
                // subqueries run once no matter which worker needs them.
                subqueries: subqueries.clone(),
                udf_results: RefCell::new(snapshot.clone()),
                // Workers share the statement's cancel token: a deadline
                // firing mid-statement stops every worker at its next
                // morsel boundary.
                cancel: cancel.clone(),
            },
            snapshot: &snapshot,
            sink: &merge_sink,
        },
        |worker, range| {
            // Morsel-boundary cooperative checkpoint: each worker gives up
            // before starting its next morsel once the statement is done.
            worker.wctx.check_cancel()?;
            // Re-install the statement token as this pool thread's current
            // token so model calls made from inside the morsel observe the
            // statement deadline (pool threads don't inherit thread-locals).
            swan_pool::cancel::with_current(&worker.wctx.cancel, || f(range, &worker.wctx))
        },
    )
    .into_iter()
    .collect();

    let fresh = merge_sink.into_inner();
    if !fresh.is_empty() {
        let mut store = ctx.udf_results.borrow_mut();
        for (name, entries) in fresh {
            store.entry(name).or_default().extend(entries);
        }
    }
    out
}

/// Execute the subtree under a [`Plan::Parallel`] annotation.
pub(crate) fn exec_parallel(
    plan: &Plan,
    partitions: usize,
    ctx: &ExecCtx<'_>,
    outer: Option<&RowCtx<'_>>,
) -> Result<Relation> {
    match plan {
        Plan::Parallel { input, partitions: p } => exec_parallel(input, *p, ctx, outer),

        Plan::Filter { input, predicate } => {
            // Columnar filters beat morsel-parallel row evaluation on the
            // predicate shapes the kernels support: one serial pass over
            // the key columns, no per-row dispatch. Order is identical to
            // the serial path by construction (ascending selection).
            if let Some((rel, _)) = crate::exec::columnar_filter(input, predicate, ctx)? {
                return Ok(rel);
            }
            let mut rel = exec_parallel(input, partitions, ctx, outer)?;
            if partitions <= 1 || rel.rows.len() < 2 {
                filter_relation(&mut rel, predicate, ctx, outer)?;
                return Ok(rel);
            }
            // Morsel-parallel predicate evaluation into a keep-bitmap;
            // the serial compaction preserves input order (and shares
            // surviving rows, never cloning them).
            let bound = bind_columns(predicate, &rel.schema);
            let schema = rel.schema.clone();
            let rows = &rel.rows;
            let chunks = try_morsels(rows.len(), partitions, ctx, |range, wctx| {
                let mut keep = Vec::with_capacity(range.len());
                for (off, row) in rows[range.clone()].iter().enumerate() {
                    prefetch_row(rows, range.start + off + PREFETCH_AHEAD);
                    let rc = RowCtx { schema: &schema, row, outer };
                    keep.push(eval(&bound, wctx, Some(&rc))?.truthiness() == Some(true));
                }
                Ok(keep)
            })?;
            let keep: Vec<bool> = chunks.into_iter().flatten().collect();
            let mut it = keep.iter();
            rel.rows.retain(|_| *it.next().unwrap_or(&false));
            Ok(rel)
        }

        Plan::Batch { input, calls } => {
            let rel = exec_parallel(input, partitions, ctx, outer)?;
            // The vectorized prefetch stays on the statement thread: it
            // issues one `invoke_batch` whose implementation fans out
            // through the same shared pool. Workers above this node then
            // see the results via their snapshot.
            if let Some(batch) = BatchableCalls::find(calls.iter(), ctx.udfs) {
                batch.prefetch_rows(ctx, &rel.schema, &rel.rows, outer)?;
            }
            Ok(rel)
        }

        Plan::Permute { input, mapping } => {
            let rel = exec_parallel(input, partitions, ctx, outer)?;
            let schema = RelSchema::new(
                mapping.iter().map(|&i| rel.schema.cols[i].clone()).collect(),
            );
            let rows_in = &rel.rows;
            let chunks = swan_pool::parallel_morsels(
                rows_in.len(),
                morsel_size(rows_in.len(), partitions),
                partitions,
                |range| {
                    rows_in[range]
                        .iter()
                        .map(|r| mapping.iter().map(|&i| r[i].clone()).collect::<Row>())
                        .collect::<Vec<Row>>()
                },
            );
            Ok(Relation { schema, rows: chunks.into_iter().flatten().collect() })
        }

        Plan::Join { left, right, kind, on, emit } => {
            let l = exec_source_parallel(left, partitions, ctx, outer)?;
            let r = exec_source_parallel(right, partitions, ctx, outer)?;
            exec_join_parallel(&l, &r, *kind, on.as_ref(), emit.as_deref(), ctx, outer, partitions)
        }

        // Scans (refcount bumps), derived tables (whose inner SELECT
        // re-enters the optimizer and may parallelize itself) and Empty
        // execute serially.
        other => exec_plan(other, ctx, outer),
    }
}

/// Join input for the parallel executor: scans are borrowed straight out
/// of the catalog, everything else materializes through [`exec_parallel`].
fn exec_source_parallel<'a>(
    plan: &Plan,
    partitions: usize,
    ctx: &ExecCtx<'a>,
    outer: Option<&RowCtx<'_>>,
) -> Result<JoinInput<'a>> {
    match plan {
        Plan::Scan { table, qualifier } => {
            let t = ctx.catalog.get_required(table)?;
            Ok(JoinInput::Borrowed {
                schema: RelSchema::qualified(qualifier, t.column_names()),
                rows: &t.rows,
                cols: ctx.optimizer.columnar.then(|| t.column_set()),
            })
        }
        other => Ok(JoinInput::Owned(exec_parallel(other, partitions, ctx, outer)?)),
    }
}

fn fx_hash<T: Hash>(v: &T) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

#[allow(clippy::too_many_arguments)]
fn exec_join_parallel(
    left: &JoinInput<'_>,
    right: &JoinInput<'_>,
    kind: PlanJoinKind,
    on: Option<&Expr>,
    emit: Option<&[usize]>,
    ctx: &ExecCtx<'_>,
    outer: Option<&RowCtx<'_>>,
    partitions: usize,
) -> Result<Relation> {
    let full_schema = left.schema().join(right.schema());
    let out_schema = match emit {
        None => full_schema.clone(),
        Some(idx) => {
            RelSchema::new(idx.iter().map(|&i| full_schema.cols[i].clone()).collect())
        }
    };
    let emission = Emission::new(emit, left.schema().len());

    let (equi, residual) = match on {
        Some(pred) if kind != PlanJoinKind::Cross => {
            split_equi_join(pred, left.schema(), right.schema())
        }
        Some(pred) => (Vec::new(), Some(pred.clone())),
        None => (Vec::new(), None),
    };

    // Serial fallbacks: expensive UDF calls in the residual (the serial
    // path owns the candidate-replay batching, and splitting it across
    // workers would degrade call batching) or inputs too small to
    // amortize fan-out. Subqueries are fine: workers share the
    // statement's subquery cache.
    let unsafe_pred = residual.as_ref().is_some_and(|r| {
        ctx.optimizer.batch_expensive_udfs && expr_cost(r, ctx.udfs) >= 2
    });
    if partitions <= 1 || unsafe_pred || left.rows().len().max(right.rows().len()) < 2 {
        return exec_join(left, right, kind, on, emit, ctx, outer);
    }

    // ---- nested-loop join: morsel the outer (left) side ----------------
    if equi.is_empty() {
        let on_bound = residual.map(|p| bind_columns(&p, &full_schema));
        let used: Vec<usize> = match &on_bound {
            None => Vec::new(),
            Some(p) => {
                let mut used = Vec::new();
                p.walk(&mut |e| {
                    if let Expr::BoundColumn(i) = e {
                        if !used.contains(i) {
                            used.push(*i);
                        }
                    }
                });
                used
            }
        };
        let lw = left.schema().len();
        let rw = right.schema().len();
        let lrows = left.rows();
        let rrows = right.rows();
        let chunks = try_morsels(lrows.len(), partitions, ctx, |range, wctx| {
            let mut out = Vec::new();
            let mut scratch: Vec<Value> = vec![Value::Null; full_schema.len()];
            for lrow in &lrows[range] {
                let mut matched = false;
                for rrow in rrows {
                    if let Some(pred) = &on_bound {
                        for &i in &used {
                            scratch[i] =
                                if i < lw { lrow[i].clone() } else { rrow[i - lw].clone() };
                        }
                        let cc = RowCtx { schema: &full_schema, row: &scratch, outer };
                        if eval(pred, wctx, Some(&cc))?.truthiness() != Some(true) {
                            continue;
                        }
                    }
                    matched = true;
                    out.push(emission.matched(lrow, rrow));
                }
                if !matched && kind == PlanJoinKind::Left {
                    out.push(emission.unmatched(lrow, rw));
                }
            }
            Ok(out)
        })?;
        return Ok(Relation { schema: out_schema, rows: chunks.into_iter().flatten().collect() });
    }

    // ---- partitioned hash join ------------------------------------------
    // Build on the smaller side — legal for inner joins only: a LEFT join
    // must probe from the left to emit its NULL-padded non-matches.
    let build_left = kind == PlanJoinKind::Inner && left.rows().len() < right.rows().len();
    let (build, probe) = if build_left { (left, right) } else { (right, left) };

    let bind_side = |exprs: Vec<&Expr>, schema: &RelSchema| -> KeySide {
        KeySide::new(exprs.iter().map(|e| bind_columns(e, schema)).collect())
    };
    let left_raw: Vec<&Expr> = equi.iter().map(|(l, _)| l).collect();
    let right_raw: Vec<&Expr> = equi.iter().map(|(_, r)| r).collect();
    let (build_key, probe_key) = if build_left {
        (bind_side(left_raw, build.schema()), bind_side(right_raw, probe.schema()))
    } else {
        (bind_side(right_raw, build.schema()), bind_side(left_raw, probe.schema()))
    };
    let residual = residual.map(|r| bind_columns(&r, &full_schema));

    // Expensive calls in a join key vectorize over that side's batch on
    // the statement thread; workers then serve them from their snapshot.
    if ctx.optimizer.batch_expensive_udfs {
        if let KeySide::Exprs(exprs) = &build_key {
            if let Some(batch) = BatchableCalls::find(exprs.iter(), ctx.udfs) {
                batch.prefetch_rows(ctx, build.schema(), build.rows(), outer)?;
            }
        }
        if let KeySide::Exprs(exprs) = &probe_key {
            if let Some(batch) = BatchableCalls::find(exprs.iter(), ctx.udfs) {
                batch.prefetch_rows(ctx, probe.schema(), probe.rows(), outer)?;
            }
        }
    }

    // Build phase 1 (parallel): every build row's key + hash, in row order.
    // With a scan input and a single direct-column key, the key comes
    // straight out of the table's column vector — no row deref per key.
    let build_rows = build.rows();
    let build_schema = build.schema();
    let build_col = build.key_column(&build_key);
    let key_chunks = try_morsels(build_rows.len(), partitions, ctx, |range, wctx| {
        let mut keys = Vec::with_capacity(range.len());
        if let Some(col) = build_col {
            for ri in range {
                keys.push(col.join_key_at(ri).map(|k| {
                    let k = JoinKey::One(k);
                    (fx_hash(&k), k)
                }));
            }
            return Ok(keys);
        }
        for (off, row) in build_rows[range.clone()].iter().enumerate() {
            prefetch_row(build_rows, range.start + off + PREFETCH_AHEAD);
            keys.push(match build_key.key(row, build_schema, wctx, outer)? {
                Some(k) => {
                    let h = fx_hash(&k);
                    Some((h, k))
                }
                None => None,
            });
        }
        Ok(keys)
    })?;
    let keys: Vec<Option<(u64, JoinKey)>> = key_chunks.into_iter().flatten().collect();

    // Build phase 2 (parallel over partitions): worker `p` owns the keys
    // with `hash % partitions == p` and builds its map without any
    // cross-worker synchronization. Scanning rows in index order keeps
    // bucket contents in build-row order — the serial insertion order.
    let np = partitions;
    let tables: Vec<FxHashMap<&JoinKey, Bucket>> = swan_pool::parallel_items(np, np, |p| {
        let mut table: FxHashMap<&JoinKey, Bucket> =
            map_with_capacity(build_rows.len() / np + 1);
        for (ri, slot) in keys.iter().enumerate() {
            if let Some((h, k)) = slot {
                if (*h as usize) % np == p {
                    match table.entry(k) {
                        std::collections::hash_map::Entry::Vacant(v) => {
                            v.insert(Bucket::One(ri as u32));
                        }
                        std::collections::hash_map::Entry::Occupied(mut o) => {
                            o.get_mut().push(ri as u32)
                        }
                    }
                }
            }
        }
        table
    });

    // Morsel-parallel probe against the read-only partition maps; emission
    // order within a morsel is probe order, and morsel concatenation makes
    // the overall order identical to the serial probe loop.
    let probe_rows = probe.rows();
    let probe_schema = probe.schema();
    let right_w = right.schema().len();
    let probe_col = probe.key_column(&probe_key);
    let chunks = try_morsels(probe_rows.len(), partitions, ctx, |range, wctx| {
        let mut out = Vec::new();
        let mut scratch: Vec<Value> = Vec::with_capacity(full_schema.len());
        for (off, prow) in probe_rows[range.clone()].iter().enumerate() {
            prefetch_row(probe_rows, range.start + off + PREFETCH_AHEAD);
            let key = match probe_col {
                Some(col) => col.join_key_at(range.start + off).map(JoinKey::One),
                None => probe_key.key(prow, probe_schema, wctx, outer)?,
            };
            let mut matched = false;
            if let Some(key) = key {
                let h = fx_hash(&key);
                if let Some(cands) = tables[(h as usize) % np].get(&key) {
                    for &ri in cands.as_slice() {
                        let brow = &build_rows[ri as usize];
                        let (lrow, rrow): (&[Value], &[Value]) =
                            if build_left { (brow, prow) } else { (prow, brow) };
                        if let Some(res) = &residual {
                            scratch.clear();
                            scratch.extend_from_slice(lrow);
                            scratch.extend_from_slice(rrow);
                            let cc = RowCtx { schema: &full_schema, row: &scratch, outer };
                            if eval(res, wctx, Some(&cc))?.truthiness() != Some(true) {
                                continue;
                            }
                        }
                        matched = true;
                        out.push(emission.matched(lrow, rrow));
                    }
                }
            }
            if !matched && kind == PlanJoinKind::Left {
                // probe == left here (build_left is false for LEFT joins).
                out.push(emission.unmatched(prow, right_w));
            }
        }
        Ok(out)
    })?;
    Ok(Relation { schema: out_schema, rows: chunks.into_iter().flatten().collect() })
}

/// Parallel top-k candidate selection for `ORDER BY … LIMIT k`: every
/// morsel selects its own k smallest indices under `cmp` (a **total**
/// order — the caller tie-breaks on row index), and the concatenated
/// candidates go through one final serial selection. Because the
/// comparator totally orders rows, the final k are exactly the serial
/// stable-sort prefix at every thread count.
///
/// Returns `None` when `k` is not smaller than a morsel — per-morsel
/// selection could not prune anything, so the pass would be pure
/// dispatch overhead on top of the identical serial selection; the
/// caller falls through to the serial path.
pub(crate) fn parallel_topk_candidates<F>(
    count: usize,
    k: usize,
    threads: usize,
    cmp: &F,
) -> Option<Vec<usize>>
where
    F: Fn(&usize, &usize) -> std::cmp::Ordering + Sync,
{
    let morsel = morsel_size(count, threads);
    if k >= morsel {
        return None;
    }
    let chunks = swan_pool::parallel_morsels(count, morsel, threads, |range| {
        let mut idx: Vec<usize> = range.collect();
        if k < idx.len() {
            idx.select_nth_unstable_by(k - 1, |a, b| cmp(a, b));
            idx.truncate(k);
        }
        idx
    });
    Some(chunks.into_iter().flatten().collect())
}
