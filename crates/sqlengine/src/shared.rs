//! A concurrently shareable database.
//!
//! [`Database`] is single-session by construction: `execute(&mut self)`
//! serializes every statement behind one exclusive borrow. [`SharedDb`]
//! lifts the same engine to many concurrent sessions:
//!
//! * **`Arc`-cloneable handle** — cloning a `SharedDb` is a refcount
//!   bump; every clone is a session over the same data, safe to move to
//!   another thread.
//! * **Snapshot reads** — a SELECT briefly read-locks the catalog,
//!   clones it (O(tables): the row storage is shared `Arc<Table>`s, so
//!   no cell is copied), drops the lock, and executes against the
//!   immutable snapshot. Long queries never block writers, and a session
//!   sees a consistent database state for the whole statement.
//! * **Writers serialized per table** — an auto-commit DML/DDL statement
//!   takes its target table's write lock, executes against a snapshot
//!   taken *under* that lock, and installs the new table version with a
//!   brief catalog write lock. Writers to different tables run fully
//!   concurrently; writers to the same table observe each other's
//!   committed state (read-modify-write statements like
//!   `UPDATE t SET n = n + 1` never lose updates).
//! * **Multi-statement transactions** — a [`Session`] (from
//!   [`SharedDb::session`]) runs `BEGIN … COMMIT` spans under snapshot
//!   isolation: `BEGIN` pins an O(tables) snapshot, statements buffer
//!   writes in a private working catalog (reads see the snapshot plus the
//!   session's own writes and nothing newer), and `COMMIT` installs every
//!   written table atomically behind a **row-level** first-committer-wins
//!   check: each write statement reports the primary keys it touched, and
//!   commit-time validation intersects the transaction's per-table write
//!   sets against every commit recorded since its pinned snapshot.
//!   Transactions that wrote *different rows* of the same table both
//!   commit (the later one rebases its rows onto the live table); only a
//!   genuine overlap — the same row, or a table-granular write such as
//!   DDL or DML on a table without a primary key — aborts with
//!   [`Error::Conflict`](crate::error::Error::Conflict) (naming the rows)
//!   and the caller retries. Readers can never observe a half-installed
//!   commit.
//! * **Version-chain GC** — the commit history backing row-level
//!   validation is bounded by a watermark: `BEGIN` pins its snapshot
//!   sequence, and every commit and transaction end truncates entries at
//!   or below the oldest live pin, so history memory stays bounded under
//!   churn while a long-lived snapshot keeps exactly the window it needs
//!   ([`SharedDb::mvcc_stats`] exposes the chain length and watermark).
//! * **Durability** — [`SharedDb::open`] (or promoting a
//!   [`Database::open`] database with [`SharedDb::from_database`]) backs
//!   every commit with the write-ahead log: the `Begin/Delta/Commit`
//!   group is appended and fsynced *before* the tables are installed, and
//!   recovery replays exactly the committed prefix (see [`crate::wal`]).
//! * **Group commit** — concurrent committers do not fsync one at a
//!   time. Each committer frames its record group off-lock, enqueues it,
//!   and one *leader* drains the queue, appends every group with a
//!   single write + a single fsync, installs all of them under one
//!   catalog write lock, and wakes the whole batch. While the leader is
//!   in its fsync the next batch accumulates, so under contention the
//!   fsync cost amortizes across committers
//!   ([`SharedDb::commit_stats`] reports commits per fsync;
//!   [`DurabilityConfig::group_commit`] toggles the path).
//! * **No poisoned locks** — all locks are `parking_lot`-style
//!   panic-transparent: a session that panics mid-statement cannot wedge
//!   its siblings. A failed statement installs nothing (the snapshot is
//!   discarded), so errors cannot corrupt shared state either.
//!
//! UDFs are registered once and shared by every session (the registry
//! stores `Arc<dyn ScalarUdf>`); stateful UDFs such as `llm_map` keep
//! their single-flight / answer-store behaviour *across* sessions because
//! all sessions call the same object.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex, RwLock};
use swan_pool::lockrank;
use swan_pool::{CancelToken, ClockHandle, RealClock};

use crate::ast::Statement;
use crate::db::{Database, QueryResult};
use crate::error::{Error, Result};
use crate::functions::{ScalarUdf, UdfRegistry};
use crate::optimizer::OptimizerConfig;
use crate::parser::{parse_script, parse_statement};
use crate::storage::Catalog;
use crate::txn::{
    build_row_patch, catalog_deltas, commit_records, rebase_table, validate_table,
    CommitHistory, MvccStats, TableDelta, Txn, TxnManager, WriteSet,
};
use crate::vfs::Vfs;
use crate::wal::{frame_group, DurabilityConfig, Wal, WalRecord};

/// An embedded SQL database shared by many concurrent sessions. Clone the
/// handle freely — all clones address the same data. In-memory by
/// default; WAL-durable when opened with [`SharedDb::open`].
#[derive(Clone, Default)]
pub struct SharedDb {
    inner: Arc<Shared>,
}

struct Shared {
    catalog: RwLock<Catalog>,
    udfs: RwLock<UdfRegistry>,
    optimizer: RwLock<OptimizerConfig>,
    /// Database-wide default per-statement deadline (sessions can
    /// override their own; see [`Session::set_statement_timeout`]).
    statement_timeout: RwLock<Option<Duration>>,
    /// Clock statement deadlines are armed against (swap in a
    /// [`SimClock`](swan_pool::SimClock) for deterministic tests).
    clock: RwLock<ClockHandle>,
    /// One write lock per (lowercased) table name, created on first
    /// write. Holding a table's lock serializes every mutation of that
    /// table — DML and DDL alike — while leaving other tables free.
    /// Transaction commits take the locks of *all* written tables in
    /// sorted name order (single-lock auto-commit writers cannot form a
    /// cycle against that order, so the acquisition is deadlock-free).
    table_locks: Mutex<HashMap<String, Arc<Mutex<()>>>>,
    /// Transaction-id allocation (ids resume above the WAL's high-water
    /// mark after recovery).
    txns: Arc<TxnManager>,
    /// Write-ahead log; `None` for in-memory databases. Only the
    /// group-commit *leader* (or, with group commit disabled, the single
    /// committer) holds this mutex, across append **and** install, so a
    /// checkpoint taken under it can never miss a commit that already
    /// reached the log — and a logged-but-uninstalled commit can never be
    /// erased by a concurrent checkpoint.
    wal: Option<Arc<Mutex<Wal>>>,
    /// Whether commits batch through the group-commit queue (from
    /// [`DurabilityConfig::group_commit`]; irrelevant when `wal` is
    /// `None`).
    group_commit: bool,
    /// The group-commit queue: pending framed commit groups plus the
    /// leader flag and wakeup signalling.
    commits: CommitQueue,
    /// Commit history for row-level conflict validation plus the snapshot
    /// pins bounding it (see [`CommitHistory`]). Locked *after* the
    /// catalog (rank `MVCC_HISTORY` > `CATALOG`): `BEGIN` pins under the
    /// catalog read lock and installs record under the catalog write
    /// lock, so a snapshot's catalog and its history sequence can never
    /// disagree.
    history: Mutex<CommitHistory>,
    /// Commits that are durable (acknowledged by a group-commit leader)
    /// but whose catalog install was handed back to the committer and has
    /// not landed yet. Checkpoints are skipped while this is non-zero: a
    /// checkpoint image must never miss a commit the log already holds.
    pending_installs: AtomicU64,
    /// Batch-size threshold for the install handback (from
    /// [`DurabilityConfig::handback_deltas`]; `0` disables it).
    handback_deltas: usize,
}

impl Default for Shared {
    fn default() -> Self {
        Shared {
            catalog: RwLock::with_rank("catalog", lockrank::CATALOG, Catalog::default()),
            udfs: RwLock::with_rank("udf_registry", lockrank::UDF_REGISTRY, UdfRegistry::default()),
            optimizer: RwLock::with_rank("optimizer", lockrank::OPTIMIZER, OptimizerConfig::default()),
            statement_timeout: RwLock::with_rank("statement_timeout", lockrank::STATEMENT_TIMEOUT, None),
            clock: RwLock::with_rank("clock", lockrank::CLOCK, RealClock::handle()),
            table_locks: Mutex::with_rank("table_lock_map", lockrank::TABLE_LOCK_MAP, HashMap::new()),
            txns: Arc::default(),
            wal: None,
            group_commit: false,
            commits: CommitQueue::default(),
            history: Mutex::with_rank(
                "mvcc_history",
                lockrank::MVCC_HISTORY,
                CommitHistory::default(),
            ),
            pending_installs: AtomicU64::new(0),
            handback_deltas: 0,
        }
    }
}

/// One committer's entry in the group-commit queue: its framed
/// `Begin·Delta*·Commit` bytes, the deltas (and history write sets)
/// installed once the batch is durable, and the slot its outcome comes
/// back in.
struct CommitRequest {
    bytes: Vec<u8>,
    deltas: Vec<(String, TableDelta)>,
    writes: Vec<(String, WriteSet)>,
    done: Mutex<Option<CommitOutcome>>,
}

/// What the group-commit leader posts back to a queued committer.
enum CommitOutcome {
    /// The leader finished the whole commit (durability *and* install).
    Done(Result<()>),
    /// The group is durable, but the batch was large enough that the
    /// leader handed the catalog install back: the committer installs its
    /// own deltas (it still holds its table locks, so the install is as
    /// safe as the leader's would have been) while the leader moves on.
    InstallYourself,
}

/// A fully planned commit: what to install, the pre-encoded WAL records
/// making it durable (empty for in-memory databases), and the write sets
/// to record in the commit history.
struct PreparedCommit {
    deltas: Vec<(String, TableDelta)>,
    records: Vec<WalRecord>,
    writes: Vec<(String, WriteSet)>,
}

#[derive(Default)]
struct QueueState {
    pending: Vec<Arc<CommitRequest>>,
    /// True while some committer is leading a batch through the log.
    leader: bool,
}

struct CommitQueue {
    state: Mutex<QueueState>,
    /// Signalled when a leader finishes its batch (results are posted
    /// and leadership is free again).
    cv: Condvar,
    commits: AtomicU64,
    batches: AtomicU64,
    max_batch: AtomicU64,
    handback_installs: AtomicU64,
}

impl Default for CommitQueue {
    fn default() -> Self {
        CommitQueue {
            state: Mutex::with_rank("commit_queue", lockrank::COMMIT_QUEUE, QueueState::default()),
            cv: Condvar::new(),
            commits: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            handback_installs: AtomicU64::new(0),
        }
    }
}

impl CommitQueue {
    fn record_batch(&self, size: usize) {
        self.commits.fetch_add(size as u64, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.max_batch.fetch_max(size as u64, Ordering::Relaxed);
    }
}

/// Commit-path statistics for a [`SharedDb`] (see
/// [`SharedDb::commit_stats`]). With `sync` on, every batch is exactly
/// one fsync, so `commits as f64 / batches as f64` is the mean
/// commits-per-fsync — the group-commit amortization factor (1.0 means
/// no batching happened; the ceiling is the number of concurrent
/// committers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitStats {
    /// Durable commits acknowledged.
    pub commits: u64,
    /// Log appends (each at most one fsync) that carried those commits.
    pub batches: u64,
    /// Largest single batch.
    pub max_batch: u64,
    /// Commits whose catalog install the leader handed back to the
    /// committer (batch install cost dominated the critical section; see
    /// [`DurabilityConfig::handback_deltas`]).
    pub handback_installs: u64,
}

impl CommitStats {
    /// Mean commits per log append (= per fsync when `sync` is on).
    pub fn commits_per_fsync(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.commits as f64 / self.batches as f64
        }
    }
}

impl SharedDb {
    /// A fresh, empty shared database.
    pub fn new() -> Self {
        SharedDb::default()
    }

    /// Open (or create) a WAL-durable shared database at `path`,
    /// recovering the committed state (see [`Database::open`]).
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Ok(SharedDb::from_database(Database::open(path)?))
    }

    /// [`SharedDb::open`] with explicit durability tuning.
    pub fn open_with(path: impl AsRef<Path>, config: DurabilityConfig) -> Result<Self> {
        Ok(SharedDb::from_database(Database::open_with(path, config)?))
    }

    /// [`SharedDb::open_with`] on an explicit [`Vfs`] — all WAL and
    /// checkpoint I/O goes through it (crash-simulation tests inject a
    /// fault-injecting [`SimFs`](crate::vfs::SimFs) here).
    pub fn open_on(
        vfs: Arc<dyn Vfs>,
        path: impl AsRef<Path>,
        config: DurabilityConfig,
    ) -> Result<Self> {
        Ok(SharedDb::from_database(Database::open_on(vfs, path, config)?))
    }

    /// Share an existing single-session database. The row storage is
    /// re-shared, not copied; a durable database hands its WAL over, so
    /// commits through the shared handle keep logging. Keep writing
    /// through the original `Database` only if it is no longer used.
    pub fn from_database(db: Database) -> Self {
        let optimizer = db.optimizer();
        let udfs = db.udfs().clone();
        let wal = db.wal_handle();
        let txns = db.txn_manager();
        let catalog = db.catalog().clone();
        let config = wal.as_ref().map(|w| w.lock().config());
        let group_commit = config.map_or(false, |c| c.group_commit);
        let handback_deltas = config.map_or(0, |c| c.handback_deltas);
        SharedDb {
            inner: Arc::new(Shared {
                catalog: RwLock::with_rank("catalog", lockrank::CATALOG, catalog),
                udfs: RwLock::with_rank("udf_registry", lockrank::UDF_REGISTRY, udfs),
                optimizer: RwLock::with_rank("optimizer", lockrank::OPTIMIZER, optimizer),
                statement_timeout: RwLock::with_rank(
                    "statement_timeout",
                    lockrank::STATEMENT_TIMEOUT,
                    db.statement_timeout(),
                ),
                clock: RwLock::with_rank("clock", lockrank::CLOCK, db.clock()),
                table_locks: Mutex::with_rank(
                    "table_lock_map",
                    lockrank::TABLE_LOCK_MAP,
                    HashMap::new(),
                ),
                txns,
                wal,
                group_commit,
                commits: CommitQueue::default(),
                history: Mutex::with_rank(
                    "mvcc_history",
                    lockrank::MVCC_HISTORY,
                    CommitHistory::default(),
                ),
                pending_installs: AtomicU64::new(0),
                handback_deltas,
            }),
        }
    }

    /// Commit-path statistics: how many durable commits were carried by
    /// how many log appends (fsyncs). In-memory databases report zeros.
    pub fn commit_stats(&self) -> CommitStats {
        let q = &self.inner.commits;
        CommitStats {
            commits: q.commits.load(Ordering::Relaxed),
            batches: q.batches.load(Ordering::Relaxed),
            max_batch: q.max_batch.load(Ordering::Relaxed),
            handback_installs: q.handback_installs.load(Ordering::Relaxed),
        }
    }

    /// Observable state of the MVCC commit history: commits sequenced,
    /// history entries a pinned snapshot is keeping alive, open snapshot
    /// pins, and the GC watermark. The GC invariant tests assert on this
    /// (history drains to empty once every snapshot is released).
    pub fn mvcc_stats(&self) -> MvccStats {
        self.inner.history.lock().stats()
    }

    /// Page-store counters: durable epoch, allocated pages, buffer-pool
    /// hit/miss/eviction stats. `None` without a pager (in-memory
    /// database or `SWAN_PAGER=0`).
    pub fn pager_stats(&self) -> Option<crate::pager::PagerStats> {
        self.inner.wal.as_ref().and_then(|w| w.lock().pager_stats())
    }

    /// Register a scalar UDF (e.g. an LLM function) for every session.
    pub fn register_udf(&self, udf: Arc<dyn ScalarUdf>) {
        self.inner.udfs.write().register(udf);
    }

    /// Set the optimizer configuration for statements executed from now
    /// on (in-flight statements keep the config they snapshotted).
    pub fn set_optimizer(&self, config: OptimizerConfig) {
        *self.inner.optimizer.write() = config;
    }

    pub fn optimizer(&self) -> OptimizerConfig {
        *self.inner.optimizer.read()
    }

    /// Set (or clear) the database-wide default per-statement deadline.
    /// A statement running past it fails with
    /// [`Error::Deadline`](crate::error::Error::Deadline) at the next
    /// cooperative checkpoint; sessions may override their own (see
    /// [`Session::set_statement_timeout`]).
    pub fn set_statement_timeout(&self, timeout: Option<Duration>) {
        *self.inner.statement_timeout.write() = timeout;
    }

    pub fn statement_timeout(&self) -> Option<Duration> {
        *self.inner.statement_timeout.read()
    }

    /// Swap the clock statement deadlines are armed against (tests inject
    /// a [`SimClock`](swan_pool::SimClock) for deterministic expiry).
    pub fn set_clock(&self, clock: ClockHandle) {
        *self.inner.clock.write() = clock;
    }

    pub fn clock(&self) -> ClockHandle {
        self.inner.clock.read().clone()
    }

    /// A consistent single-session snapshot of the current state: shares
    /// the `Arc<Table>` row storage (O(tables)), never blocks writers
    /// beyond the brief catalog read lock. Later writes through the
    /// shared handle are not visible to the snapshot, and mutating the
    /// snapshot (it is a plain [`Database`]) copy-on-writes privately.
    pub fn snapshot(&self) -> Database {
        let optimizer = *self.inner.optimizer.read();
        let udfs = self.inner.udfs.read().clone();
        let catalog = self.inner.catalog.read().clone();
        let mut db = Database::from_parts(catalog, udfs, optimizer);
        db.set_statement_timeout(self.statement_timeout());
        db.set_clock(self.clock());
        db
    }

    /// A consistent snapshot of the catalog alone (the `BEGIN` pin).
    fn catalog_snapshot(&self) -> Catalog {
        self.inner.catalog.read().clone()
    }

    /// The `BEGIN` pin: a catalog snapshot plus its commit-history
    /// sequence, registered as a live pin. Both are taken under the
    /// catalog read lock, so the sequence covers exactly the commits the
    /// snapshot contains — validation later checks exactly the rest.
    /// Every pin must be released with [`unpin_snapshot`]
    /// (SharedDb::unpin_snapshot) or the history GC stalls.
    fn begin_snapshot(&self) -> (Catalog, u64) {
        let catalog = self.inner.catalog.read();
        let seq = self.inner.history.lock().pin_snapshot();
        (catalog.clone(), seq)
    }

    /// Release a `BEGIN` pin, letting the watermark GC truncate history
    /// entries no remaining snapshot needs.
    fn unpin_snapshot(&self, seq: u64) {
        self.inner.history.lock().unpin_snapshot(seq);
    }

    /// An interactive session over this database: the handle through
    /// which multi-statement `BEGIN … COMMIT` transactions run.
    pub fn session(&self) -> Session {
        Session { db: self.clone(), txn: None, statement_timeout: None }
    }

    /// Execute a read-only query against a snapshot.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        self.snapshot().query(sql)
    }

    /// Execute one auto-commit statement. Reads run on a snapshot; writes
    /// serialize per target table and atomically install (and, on a
    /// durable database, log) the new table version. Transaction control
    /// needs a statement-spanning holder — use [`SharedDb::session`] or
    /// a `BEGIN … COMMIT` span inside [`SharedDb::execute_script`].
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        let stmt = parse_statement(sql)?;
        if stmt.is_txn_control() {
            return Err(Error::Txn(
                "transactions span statements; open one through SharedDb::session() \
                 (or run the BEGIN…COMMIT span inside execute_script)"
                    .into(),
            ));
        }
        self.execute_autocommit(&stmt)
    }

    /// Execute a semicolon-separated script; returns the last result.
    ///
    /// Outside an explicit transaction each statement commits (and
    /// becomes visible to other sessions) independently. A
    /// `BEGIN … COMMIT` span inside the script runs as one snapshot-
    /// isolation transaction: nothing becomes visible until the `COMMIT`,
    /// and an error anywhere inside the span rolls the whole transaction
    /// back. A transaction still open when the script ends is an
    /// **error** ([`Error::Txn`], after rolling it back): the script was
    /// the transaction's only holder, so falling off the end can never
    /// silently discard a span's writes — end the span explicitly, or
    /// opt in to [`ScriptOptions::autocommit_on_end`] via
    /// [`execute_script_with`](SharedDb::execute_script_with).
    pub fn execute_script(&self, sql: &str) -> Result<QueryResult> {
        self.execute_script_with(sql, ScriptOptions::default())
    }

    /// [`execute_script`](SharedDb::execute_script) with explicit
    /// handling for a transaction left open at script end.
    pub fn execute_script_with(&self, sql: &str, opts: ScriptOptions) -> Result<QueryResult> {
        let stmts = parse_script(sql)?;
        let mut session = self.session();
        let mut last = QueryResult::default();
        for stmt in &stmts {
            match session.execute_statement(stmt) {
                Ok(r) => last = r,
                // The session (and any open transaction) drops here:
                // a mid-script error rolls the whole span back.
                Err(e) => return Err(e),
            }
        }
        if session.in_transaction() {
            if opts.autocommit_on_end {
                session.execute_statement(&Statement::Commit)?;
            } else {
                // Dropping the session below rolls the span back.
                return Err(Error::Txn(
                    "script ended with an open transaction (its writes were rolled \
                     back); COMMIT or ROLLBACK inside the script, or opt in to \
                     ScriptOptions::autocommit_on_end"
                        .into(),
                ));
            }
        }
        Ok(last)
    }

    /// One auto-commit statement: the per-table writer path.
    fn execute_autocommit(&self, stmt: &Statement) -> Result<QueryResult> {
        let Some(target) = stmt.write_target().map(str::to_string) else {
            // SELECT: snapshot execution, no locks held while running.
            let mut db = self.snapshot();
            return db.execute_statement(stmt);
        };

        // Serialize writers on the target table for the whole
        // read-modify-write cycle: snapshot under the lock, execute
        // against the snapshot, log + install the new version.
        let lock = self.table_lock(&target);
        let _guard = lock.lock();

        let base = self.catalog_snapshot();
        let optimizer = *self.inner.optimizer.read();
        let udfs = self.inner.udfs.read().clone();
        let mut db = Database::from_parts(base.clone(), udfs, optimizer);
        db.set_statement_timeout(self.statement_timeout());
        db.set_clock(self.clock());
        let result = db.execute_statement(stmt)?;
        let stmt_writes = db.take_stmt_writes();

        // Install only the target table's new version (or its removal):
        // concurrent writers to *other* tables committed after our
        // snapshot must not be clobbered, so the whole catalog is never
        // written back. The table lock covers the whole read-modify-write
        // cycle, so no conflict validation is needed — but the write set
        // still goes into the commit history for *transactions* to
        // validate against.
        let key = target.to_ascii_lowercase();
        let deltas = catalog_deltas(std::slice::from_ref(&key), &base, db.catalog());
        let dropped = matches!(deltas.first(), Some((_, TableDelta::Drop)));
        let mut prepared =
            PreparedCommit { deltas, records: Vec::new(), writes: Vec::new() };
        if !prepared.deltas.is_empty() {
            let mut write_sets = HashMap::with_capacity(1);
            write_sets.insert(key, WriteSet::from_stmt(stmt_writes));
            if self.inner.wal.is_some() {
                prepared.records = commit_records(
                    self.inner.txns.fresh_id(),
                    &base,
                    &prepared.deltas,
                    &write_sets,
                );
            }
            prepared.writes = write_sets.into_iter().collect();
        }
        self.log_and_install(prepared)?;
        if dropped {
            self.prune_table_lock(&target, &lock);
        }
        Ok(result)
    }

    /// Commit an open transaction: acquire every written table's lock in
    /// sorted order, run the row-level first-committer-wins validation
    /// against the commit history, rebase row-disjoint writes onto the
    /// live tables, then log + install all deltas atomically.
    fn commit_txn(&self, txn: &Txn, working: &Catalog) -> Result<()> {
        let deltas = catalog_deltas(txn.written(), &txn.snapshot, working);
        if deltas.is_empty() {
            return Ok(());
        }
        // Sorted acquisition order: no deadlock against other committers
        // (same order) or auto-commit writers (single lock each).
        let mut names: Vec<String> = deltas.iter().map(|(n, _)| n.clone()).collect();
        names.sort();
        let locks: Vec<Arc<Mutex<()>>> = names.iter().map(|n| self.table_lock(n)).collect();
        let _guards: Vec<_> = locks.iter().map(|l| l.lock()).collect();

        // Holding every written table's lock freezes their live versions:
        // any commit that could change them must take the same locks.
        let live: Vec<Option<Arc<crate::storage::Table>>> = {
            let catalog = self.inner.catalog.read();
            deltas.iter().map(|(n, _)| catalog.get(n).cloned()).collect()
        };

        // Row-level validation: per table, either the live version is
        // still the snapshot's (clean install), or every commit since the
        // pinned snapshot is row-disjoint from ours (rebase), or abort.
        let clean: Vec<bool> = {
            let history = self.inner.history.lock();
            deltas
                .iter()
                .zip(&live)
                .map(|((name, _), live_t)| {
                    validate_table(txn, name, live_t.as_ref(), &history)
                })
                .collect::<Result<_>>()?
        };

        // Plan the installs and WAL records (off every shared lock; we
        // only hold the table locks). Clean tables install the working
        // version as-is; dirty-but-disjoint tables rebase their row patch
        // onto the live table, and the WAL logs exactly that patch.
        let durable = self.inner.wal.is_some();
        let mut out_deltas = Vec::with_capacity(deltas.len());
        let mut records = Vec::new();
        let mut writes: Vec<(String, WriteSet)> = Vec::with_capacity(deltas.len());
        if durable {
            records.push(WalRecord::Begin { txn: txn.id() });
        }
        for (((name, delta), live_t), is_clean) in
            deltas.into_iter().zip(live).zip(clean)
        {
            let ws = txn.write_set(&name).cloned();
            if is_clean {
                if durable {
                    records.push(WalRecord::Delta {
                        txn: txn.id(),
                        delta: crate::txn::wal_delta(
                            &name,
                            live_t.as_ref(),
                            &delta,
                            ws.as_ref(),
                        ),
                    });
                }
                out_deltas.push((name.clone(), delta));
            } else {
                let live_t = live_t.ok_or_else(|| {
                    Error::Internal(format!("rebase of '{name}' without a live table"))
                })?;
                let working_t = working.get(&name).cloned().ok_or_else(|| {
                    Error::Internal(format!("rebase of '{name}' without a working table"))
                })?;
                let Some(WriteSet::Rows { keys, .. }) = &ws else {
                    return Err(Error::Internal(format!(
                        "rebase of '{name}' without a row write set"
                    )));
                };
                let (del_rows, upserts) = build_row_patch(&working_t, keys);
                let patched = rebase_table(&live_t, &working_t, &del_rows, upserts.clone())?;
                if durable {
                    records.push(WalRecord::Delta {
                        txn: txn.id(),
                        delta: crate::wal::WalDelta::RowPatch {
                            table: name.clone(),
                            deletes: del_rows,
                            upserts,
                            new_version: patched.version,
                        },
                    });
                }
                out_deltas.push((name.clone(), TableDelta::Put(patched)));
            }
            if let Some(ws) = ws {
                writes.push((name, ws));
            }
        }
        if durable {
            records.push(WalRecord::Commit { txn: txn.id() });
        }
        self.log_and_install(PreparedCommit { deltas: out_deltas, records, writes })
    }

    /// The commit point shared by auto-commit statements and transaction
    /// commits: make the `Begin·Delta*·Commit` group durable, then
    /// install every delta under one catalog write lock — readers see all
    /// of the commit or none of it.
    ///
    /// On a durable database with [`DurabilityConfig::group_commit`] on
    /// (the default), the group goes through the **group-commit queue**:
    /// the committer frames its records off-lock, enqueues, and either
    /// becomes the batch leader or waits to be woken acknowledged. The
    /// caller must already hold the write locks of every table in
    /// `deltas` (auto-commit holds one; a transaction commit holds its
    /// sorted set), which is what makes the leader's batched install
    /// safe: no two queued groups can touch the same table.
    fn log_and_install(&self, prepared: PreparedCommit) -> Result<()> {
        let PreparedCommit { deltas, records, writes } = prepared;
        if deltas.is_empty() {
            return Ok(());
        }
        let Some(wal) = self.inner.wal.as_ref() else {
            // In-memory: no log, just the atomic install + history entry.
            self.install_and_record(&deltas, &writes);
            return Ok(());
        };
        let bytes = frame_group(&records);
        if !self.inner.group_commit {
            // PR-4 path: one append + fsync per commit, WAL mutex held
            // across append and install.
            let mut wal = wal.lock();
            wal.append_raw(&bytes)?;
            self.inner.commits.record_batch(1);
            self.install_and_record(&deltas, &writes);
            self.maybe_checkpoint(&mut wal);
            return Ok(());
        }

        let req = Arc::new(CommitRequest {
            bytes,
            deltas,
            writes,
            done: Mutex::with_rank("commit_done", lockrank::COMMIT_DONE, None),
        });
        let queue = &self.inner.commits;
        let mut state = queue.state.lock();
        state.pending.push(req.clone());
        loop {
            let outcome = req.done.lock().take();
            if let Some(outcome) = outcome {
                drop(state);
                return match outcome {
                    CommitOutcome::Done(result) => result,
                    CommitOutcome::InstallYourself => {
                        // Durable already; finish our own install. We
                        // still hold our table locks, so nobody observes
                        // the gap as reordering — and the checkpoint gate
                        // (`pending_installs`) keeps a checkpoint from
                        // snapshotting the catalog before we land.
                        self.install_and_record(&req.deltas, &req.writes);
                        self.inner.pending_installs.fetch_sub(1, Ordering::SeqCst);
                        Ok(())
                    }
                };
            }
            if state.leader {
                // A leader is in flight; it either took our group or will
                // be followed by one that does. Wait for its wakeup.
                state = queue.cv.wait(state);
                continue;
            }
            // Become the leader: drain everything queued so far (our own
            // group included) and drive it through the log as one batch.
            // The guard releases leadership (and fails any request left
            // without a result) even if the leader unwinds, so a panic
            // can never wedge queued or future committers — the
            // panic-transparency the module promises.
            state.leader = true;
            let batch = std::mem::take(&mut state.pending);
            drop(state);
            {
                let _guard = LeaderGuard { db: self, batch: &batch };
                self.lead_commit(wal, &batch);
            }
            state = queue.state.lock();
        }
    }

    /// Drive one batch through the log: a single write + fsync for every
    /// queued group, then either install the whole batch under one
    /// catalog write lock or — when the batch carries enough deltas that
    /// install cost would dominate the leader's critical section — hand
    /// each install back to its committer, and post every outcome.
    /// `append_raw` is all-or-nothing (a failed append rolls the file
    /// back to the last group boundary), so the whole batch shares one
    /// durability outcome.
    fn lead_commit(&self, wal: &Arc<Mutex<Wal>>, batch: &[Arc<CommitRequest>]) {
        let mut wal = wal.lock();
        let mut buf = Vec::with_capacity(batch.iter().map(|r| r.bytes.len()).sum());
        for req in batch {
            buf.extend_from_slice(&req.bytes);
        }
        let appended = wal.append_raw(&buf);
        let handback = match appended {
            Ok(()) => {
                // Handback only pays off when someone else is actually
                // waiting (batch > 1) and the install volume crosses the
                // configured threshold.
                let total_deltas: usize = batch.iter().map(|r| r.deltas.len()).sum();
                let handback = self.inner.handback_deltas > 0
                    && batch.len() > 1
                    && total_deltas >= self.inner.handback_deltas;
                if handback {
                    // Count the pending installs *before* any committer
                    // can observe its outcome — and before
                    // maybe_checkpoint below, which must skip while the
                    // catalog lags the log.
                    self.inner
                        .pending_installs
                        .fetch_add(batch.len() as u64, Ordering::SeqCst);
                    self.inner
                        .commits
                        .handback_installs
                        .fetch_add(batch.len() as u64, Ordering::Relaxed);
                } else {
                    let mut catalog = self.inner.catalog.write();
                    let mut history = self.inner.history.lock();
                    for req in batch {
                        install_into(&mut catalog, &req.deltas);
                        history.record_commit(req.writes.clone());
                    }
                }
                self.inner.commits.record_batch(batch.len());
                self.maybe_checkpoint(&mut wal);
                Ok(handback)
            }
            Err(e) => Err(e),
        };
        drop(wal);
        for req in batch {
            *req.done.lock() = Some(match &handback {
                Ok(true) => CommitOutcome::InstallYourself,
                Ok(false) => CommitOutcome::Done(Ok(())),
                Err(e) => CommitOutcome::Done(Err(e.clone())),
            });
        }
    }

    /// Install one commit's deltas and record its write sets in the
    /// commit history, atomically with respect to snapshotters: the
    /// history entry is added under the catalog write lock, so a `BEGIN`
    /// (which pins under the catalog read lock) sees either both the
    /// commit's tables and its sequence or neither.
    fn install_and_record(
        &self,
        deltas: &[(String, TableDelta)],
        writes: &[(String, WriteSet)],
    ) {
        let mut catalog = self.inner.catalog.write();
        install_into(&mut catalog, deltas);
        self.inner.history.lock().record_commit(writes.to_vec());
    }

    /// Compact the log if it outgrew its budget. Past the commit point
    /// (appended, fsynced, installed): a failed compaction must not turn
    /// a committed transaction into a reported failure — a retrying
    /// caller would double-apply it. The log stays long, the next commit
    /// retries, and an unusable handle poisons itself. Skipped while any
    /// handed-back install is outstanding: the checkpoint image is taken
    /// from the catalog, which at that moment is missing commits the log
    /// already acknowledged — checkpointing would erase them.
    fn maybe_checkpoint(&self, wal: &mut Wal) {
        if self.inner.pending_installs.load(Ordering::SeqCst) > 0 {
            return;
        }
        if wal.wants_checkpoint() {
            let snap = self.inner.catalog.read().clone();
            let _ = wal.checkpoint(&snap);
        }
    }

    /// Drop a dropped table's lock entry so create/drop-heavy workloads
    /// don't grow the lock map without bound. Safe only when nobody else
    /// holds the `Arc` (strong count 2 = our clone + the map's): a waiter
    /// blocked on this lock must keep resolving to the *same* mutex, or
    /// two writers could mutate a recreated table concurrently. New
    /// clones are only handed out under the map mutex we hold here, so
    /// the check cannot race.
    fn prune_table_lock(&self, name: &str, lock: &Arc<Mutex<()>>) {
        let key = name.to_ascii_lowercase();
        let mut locks = self.inner.table_locks.lock();
        if Arc::strong_count(lock) == 2 {
            locks.remove(&key);
        }
    }

    fn table_lock(&self, name: &str) -> Arc<Mutex<()>> {
        let key = name.to_ascii_lowercase();
        let mut locks = self.inner.table_locks.lock();
        locks
            .entry(key)
            .or_insert_with(|| {
                Arc::new(Mutex::with_rank("table_writer", lockrank::TABLE_WRITER, ()))
            })
            .clone()
    }

    /// Names of the current tables (snapshot).
    pub fn table_names(&self) -> Vec<String> {
        self.inner.catalog.read().table_names()
    }

    /// Current row count of a table, if it exists (snapshot statistic).
    pub fn row_count(&self, table: &str) -> Option<usize> {
        self.inner.catalog.read().row_count(table)
    }
}

/// Unwinding-safe leadership release: dropped when the group-commit
/// leader finishes its batch — normally after `lead_commit` posted every
/// result, or mid-unwind if the leader panicked. Either way leadership
/// clears and the condvar wakes everyone; on the panic path any request
/// still without a result is failed (its commit outcome is unknown — the
/// group may or may not have reached the log before the panic), so
/// followers surface an error instead of blocking forever.
struct LeaderGuard<'a> {
    db: &'a SharedDb,
    batch: &'a [Arc<CommitRequest>],
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        for req in self.batch {
            let mut done = req.done.lock();
            if done.is_none() {
                *done = Some(CommitOutcome::Done(Err(Error::Io(
                    "group-commit leader panicked; commit outcome unknown — \
                     reopen the database to recover the durable state"
                        .into(),
                ))));
            }
        }
        let queue = &self.db.inner.commits;
        let mut state = queue.state.lock();
        state.leader = false;
        drop(state);
        queue.cv.notify_all();
    }
}

/// Apply one commit's deltas to a catalog already locked for writing.
fn install_into(catalog: &mut Catalog, deltas: &[(String, TableDelta)]) {
    for (name, delta) in deltas {
        match delta {
            TableDelta::Put(table) => catalog.put_shared(table.clone()),
            TableDelta::Drop => {
                let _ = catalog.drop_table(name);
            }
        }
    }
}

/// How [`SharedDb::execute_script_with`] treats a transaction the script
/// leaves open at its end. The script's temporary session is the
/// transaction's only holder, so *something* must happen to it — the
/// options make that explicit instead of silently rolling back.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScriptOptions {
    /// Commit a transaction still open when the script ends, as if the
    /// script had ended with `COMMIT`. With the default (`false`), an
    /// open transaction at script end is an error: the transaction is
    /// rolled back and [`Error::Txn`] is returned, so a missing `COMMIT`
    /// can never silently discard writes.
    pub autocommit_on_end: bool,
}

/// One session over a [`SharedDb`]: the holder of at most one open
/// `BEGIN … COMMIT` transaction. Outside a transaction it behaves exactly
/// like the shared handle (per-statement auto-commit); inside one,
/// statements buffer in a private working catalog under snapshot
/// isolation until `COMMIT` publishes them atomically (or a conflicting
/// commit / `ROLLBACK` discards them).
///
/// Dropping a session with an open transaction rolls the transaction
/// back — nothing uncommitted can leak.
pub struct Session {
    db: SharedDb,
    /// The open transaction and its working catalog (pinned snapshot plus
    /// this session's own writes).
    txn: Option<(Txn, Catalog)>,
    /// This session's statement-timeout override: `None` inherits the
    /// shared default, `Some(t)` pins it (including `Some(None)` =
    /// explicitly unlimited).
    statement_timeout: Option<Option<Duration>>,
}

impl Session {
    /// True while a `BEGIN` is open.
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// Override the shared database's default statement timeout for this
    /// session only. `Some(d)` arms every subsequent statement with
    /// deadline `d`; `None` makes this session explicitly unlimited.
    pub fn set_statement_timeout(&mut self, timeout: Option<Duration>) {
        self.statement_timeout = Some(timeout);
    }

    pub fn statement_timeout(&self) -> Option<Duration> {
        self.statement_timeout.unwrap_or_else(|| self.db.statement_timeout())
    }

    /// The cancel token for one of this session's statements: an
    /// already-installed caller token wins (so a caller can scope a whole
    /// batch under one deadline, or cancel from another thread); otherwise
    /// a fresh token is armed from the effective timeout.
    fn statement_token(&self) -> CancelToken {
        if let Some(outer) = swan_pool::cancel::current() {
            return outer;
        }
        match self.statement_timeout() {
            Some(d) => CancelToken::with_timeout(self.db.clock(), d),
            None => CancelToken::unbounded(),
        }
    }

    /// Execute one statement (transaction control included).
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let stmt = parse_statement(sql)?;
        self.execute_statement(&stmt)
    }

    /// Execute a semicolon-separated script; returns the last result.
    /// Same transactional semantics as [`SharedDb::execute_script`],
    /// except the session outlives the script: a transaction opened (and
    /// not closed) by the script stays open on this session, and an error
    /// rolls back only a transaction the script itself opened.
    pub fn execute_script(&mut self, sql: &str) -> Result<QueryResult> {
        let stmts = parse_script(sql)?;
        let mut last = QueryResult::default();
        let mut script_txn = false;
        for stmt in &stmts {
            match self.execute_statement(stmt) {
                Ok(r) => last = r,
                Err(e) => {
                    if script_txn && self.txn.is_some() {
                        self.rollback_open_txn(); // roll the script's span back
                    }
                    return Err(e);
                }
            }
            match stmt {
                Statement::Begin => script_txn = true,
                Statement::Commit | Statement::Rollback => script_txn = false,
                _ => {}
            }
        }
        Ok(last)
    }

    /// Execute a read-only query: against the transaction's working state
    /// when one is open (the session sees its own uncommitted writes),
    /// against a fresh snapshot otherwise.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        let token = self.statement_token();
        swan_pool::cancel::with_current(&token, || match &self.txn {
            Some((_, working)) => self.overlay_db(working).query(sql),
            None => self.db.query(sql),
        })
    }

    /// Discard an open transaction (if any), releasing its snapshot pin
    /// so the history GC can advance past it.
    fn rollback_open_txn(&mut self) {
        if let Some((txn, _)) = self.txn.take() {
            self.db.unpin_snapshot(txn.snapshot_seq);
        }
    }

    /// A single-session database over the transaction's working catalog.
    fn overlay_db(&self, working: &Catalog) -> Database {
        let optimizer = *self.db.inner.optimizer.read();
        let udfs = self.db.inner.udfs.read().clone();
        Database::from_parts(working.clone(), udfs, optimizer)
    }

    pub(crate) fn execute_statement(&mut self, stmt: &Statement) -> Result<QueryResult> {
        let token = self.statement_token();
        swan_pool::cancel::with_current(&token, || self.execute_statement_inner(stmt))
    }

    fn execute_statement_inner(&mut self, stmt: &Statement) -> Result<QueryResult> {
        match stmt {
            Statement::Begin => {
                if self.txn.is_some() {
                    return Err(Error::Txn("a transaction is already active".into()));
                }
                let (snapshot, seq) = self.db.begin_snapshot();
                let mut txn = self.db.inner.txns.begin(snapshot.clone());
                txn.snapshot_seq = seq;
                self.txn = Some((txn, snapshot));
                Ok(QueryResult::default())
            }
            Statement::Commit => {
                let (txn, working) = self
                    .txn
                    .take()
                    .ok_or_else(|| Error::Txn("COMMIT without an active transaction".into()))?;
                // On conflict the transaction is consumed either way:
                // first committer won, this session's buffered writes are
                // discarded, and the caller retries from a fresh BEGIN.
                let result = self.db.commit_txn(&txn, &working);
                self.db.unpin_snapshot(txn.snapshot_seq);
                result?;
                Ok(QueryResult::default())
            }
            Statement::Rollback => {
                let (txn, _) = self
                    .txn
                    .take()
                    .ok_or_else(|| Error::Txn("ROLLBACK without an active transaction".into()))?;
                self.db.unpin_snapshot(txn.snapshot_seq);
                Ok(QueryResult::default())
            }
            _ => match &mut self.txn {
                Some((txn, working)) => {
                    // Buffered execution against the working overlay. The
                    // working catalog round-trips by ownership (no clone):
                    // statements are atomic by construction, so a failure
                    // leaves the transaction's state untouched, and the
                    // overlay's tables keep unique `Arc`s — batch DML
                    // mutates in place instead of copy-on-write cloning.
                    let optimizer = *self.db.inner.optimizer.read();
                    let udfs = self.db.inner.udfs.read().clone();
                    let mut db =
                        Database::from_parts(std::mem::take(working), udfs, optimizer);
                    let result = db.execute_statement(stmt);
                    let writes = db.take_stmt_writes();
                    *working = db.into_catalog();
                    let result = result?;
                    if let Some(target) = stmt.write_target() {
                        txn.record_write(target, writes);
                    }
                    Ok(result)
                }
                None => self.db.execute_autocommit(stmt),
            },
        }
    }
}

impl Drop for Session {
    /// Rolling back an abandoned transaction also releases its snapshot
    /// pin — a dropped session must never stall the history watermark.
    fn drop(&mut self) {
        self.rollback_open_txn();
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("in_transaction", &self.in_transaction())
            .field("db", &self.db)
            .finish()
    }
}

impl std::fmt::Debug for SharedDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedDb")
            .field("tables", &self.table_names())
            .field("sessions", &Arc::strong_count(&self.inner))
            .field("durable", &self.inner.wal.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;
    use crate::value::Value;

    fn seeded() -> SharedDb {
        let db = SharedDb::new();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, n INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 10), (2, 20)").unwrap();
        db
    }

    #[test]
    fn clones_share_state() {
        let a = seeded();
        let b = a.clone();
        b.execute("INSERT INTO t VALUES (3, 30)").unwrap();
        let r = a.query("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Integer(3)));
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let db = seeded();
        let snap = db.snapshot();
        db.execute("INSERT INTO t VALUES (3, 30)").unwrap();
        assert_eq!(
            snap.query("SELECT COUNT(*) FROM t").unwrap().scalar(),
            Some(&Value::Integer(2)),
            "snapshot pinned"
        );
        assert_eq!(
            db.query("SELECT COUNT(*) FROM t").unwrap().scalar(),
            Some(&Value::Integer(3))
        );
    }

    #[test]
    fn failed_statement_installs_nothing() {
        let db = seeded();
        // Duplicate PK: the snapshot's partial state must not leak.
        let err = db.execute("INSERT INTO t VALUES (1, 99)").unwrap_err();
        assert!(matches!(err, Error::Constraint(_)));
        let r = db.query("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Integer(2)));
    }

    #[test]
    fn ddl_round_trip() {
        let db = seeded();
        db.execute("ALTER TABLE t ADD COLUMN tag TEXT").unwrap();
        db.execute("CREATE TABLE u (x INTEGER)").unwrap();
        assert_eq!(db.table_names(), vec!["t", "u"]);
        db.execute("DROP TABLE u").unwrap();
        assert_eq!(db.table_names(), vec!["t"]);
        db.execute("DROP TABLE IF EXISTS u").unwrap();
    }

    #[test]
    fn update_on_shared_handle() {
        let db = seeded();
        let r = db.execute("UPDATE t SET n = n + 1 WHERE id = 1").unwrap();
        assert_eq!(r.rows_affected, 1);
        let q = db.query("SELECT n FROM t WHERE id = 1").unwrap();
        assert_eq!(q.scalar(), Some(&Value::Integer(11)));
    }

    #[test]
    fn dropped_table_locks_are_pruned() {
        let db = seeded();
        for i in 0..32 {
            db.execute(&format!("CREATE TABLE tmp{i} (x INTEGER)")).unwrap();
            db.execute(&format!("INSERT INTO tmp{i} VALUES ({i})")).unwrap();
            db.execute(&format!("DROP TABLE tmp{i}")).unwrap();
        }
        let live = db.inner.table_locks.lock().len();
        assert_eq!(live, 1, "only the surviving table 't' keeps a lock entry, got {live}");
        // The surviving table still works.
        db.execute("INSERT INTO t VALUES (3, 30)").unwrap();
    }

    #[test]
    fn from_database_shares_rows() {
        let mut single = Database::new();
        single.execute("CREATE TABLE s (a INTEGER)").unwrap();
        single.execute("INSERT INTO s VALUES (7)").unwrap();
        let shared = SharedDb::from_database(single);
        assert_eq!(
            shared.query("SELECT a FROM s").unwrap().scalar(),
            Some(&Value::Integer(7))
        );
    }

    #[test]
    fn bare_txn_control_on_shared_handle_is_rejected() {
        let db = seeded();
        assert!(matches!(db.execute("BEGIN"), Err(Error::Txn(_))));
        assert!(matches!(db.execute("COMMIT"), Err(Error::Txn(_))));
    }

    #[test]
    fn session_txn_buffers_until_commit() {
        let db = seeded();
        let mut session = db.session();
        session.execute("BEGIN").unwrap();
        session.execute("INSERT INTO t VALUES (3, 30)").unwrap();
        session.execute("UPDATE t SET n = n + 1 WHERE id = 1").unwrap();

        // The session sees its own writes ...
        assert_eq!(
            session.query("SELECT COUNT(*) FROM t").unwrap().scalar(),
            Some(&Value::Integer(3))
        );
        // ... other sessions do not.
        assert_eq!(
            db.query("SELECT COUNT(*) FROM t").unwrap().scalar(),
            Some(&Value::Integer(2)),
            "uncommitted writes must be invisible"
        );

        session.execute("COMMIT").unwrap();
        assert_eq!(
            db.query("SELECT COUNT(*) FROM t").unwrap().scalar(),
            Some(&Value::Integer(3))
        );
        assert_eq!(
            db.query("SELECT n FROM t WHERE id = 1").unwrap().scalar(),
            Some(&Value::Integer(11))
        );
    }

    #[test]
    fn session_rollback_discards_writes() {
        let db = seeded();
        let mut session = db.session();
        session.execute("BEGIN TRANSACTION").unwrap();
        session.execute("DELETE FROM t").unwrap();
        assert_eq!(
            session.query("SELECT COUNT(*) FROM t").unwrap().scalar(),
            Some(&Value::Integer(0))
        );
        session.execute("ROLLBACK").unwrap();
        assert!(!session.in_transaction());
        assert_eq!(
            db.query("SELECT COUNT(*) FROM t").unwrap().scalar(),
            Some(&Value::Integer(2))
        );
    }

    #[test]
    fn session_reads_are_snapshot_isolated() {
        let db = seeded();
        let mut session = db.session();
        session.execute("BEGIN").unwrap();
        // A concurrent commit to an unrelated table after BEGIN.
        db.execute("CREATE TABLE other (x INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (99, 0)").unwrap();
        // The transaction still sees its pinned snapshot.
        assert_eq!(
            session.query("SELECT COUNT(*) FROM t").unwrap().scalar(),
            Some(&Value::Integer(2)),
            "snapshot isolation: later commits are invisible"
        );
        session.execute("ROLLBACK").unwrap();
        // Outside the transaction the session sees the live state again.
        assert_eq!(
            session.query("SELECT COUNT(*) FROM t").unwrap().scalar(),
            Some(&Value::Integer(3))
        );
    }

    #[test]
    fn first_committer_wins_conflict() {
        let db = seeded();
        let mut a = db.session();
        let mut b = db.session();
        a.execute("BEGIN").unwrap();
        b.execute("BEGIN").unwrap();
        a.execute("UPDATE t SET n = n + 1 WHERE id = 1").unwrap();
        b.execute("UPDATE t SET n = n + 10 WHERE id = 1").unwrap();
        a.execute("COMMIT").unwrap();
        let err = b.execute("COMMIT").unwrap_err();
        assert!(matches!(err, Error::Conflict(_)), "second committer must abort: {err}");
        assert!(!b.in_transaction(), "aborted transaction is closed");
        assert_eq!(
            db.query("SELECT n FROM t WHERE id = 1").unwrap().scalar(),
            Some(&Value::Integer(11)),
            "only the first commit applied"
        );
    }

    #[test]
    fn disjoint_table_txns_do_not_conflict() {
        let db = seeded();
        db.execute("CREATE TABLE u (x INTEGER)").unwrap();
        let mut a = db.session();
        let mut b = db.session();
        a.execute("BEGIN").unwrap();
        b.execute("BEGIN").unwrap();
        a.execute("INSERT INTO t VALUES (3, 30)").unwrap();
        b.execute("INSERT INTO u VALUES (1)").unwrap();
        a.execute("COMMIT").unwrap();
        b.execute("COMMIT").unwrap();
        assert_eq!(db.row_count("t"), Some(3));
        assert_eq!(db.row_count("u"), Some(1));
    }

    #[test]
    fn script_txn_is_atomic_on_shared_handle() {
        let db = seeded();
        // The third INSERT violates the primary key: the whole span must
        // roll back, leaving the pre-script state.
        let err = db
            .execute_script(
                "BEGIN;
                 INSERT INTO t VALUES (3, 30);
                 INSERT INTO t VALUES (4, 40);
                 INSERT INTO t VALUES (1, 99);
                 COMMIT;",
            )
            .unwrap_err();
        assert!(matches!(err, Error::Constraint(_)));
        assert_eq!(
            db.query("SELECT COUNT(*) FROM t").unwrap().scalar(),
            Some(&Value::Integer(2)),
            "mid-script failure must roll the whole transaction back"
        );

        // The happy path commits atomically.
        db.execute_script(
            "BEGIN; INSERT INTO t VALUES (3, 30); INSERT INTO t VALUES (4, 40); COMMIT;",
        )
        .unwrap();
        assert_eq!(db.row_count("t"), Some(4));
    }

    #[test]
    fn script_without_txn_keeps_per_statement_commit() {
        let db = seeded();
        let err = db
            .execute_script(
                "INSERT INTO t VALUES (3, 30);
                 INSERT INTO t VALUES (1, 99);",
            )
            .unwrap_err();
        assert!(matches!(err, Error::Constraint(_)));
        assert_eq!(
            db.query("SELECT COUNT(*) FROM t").unwrap().scalar(),
            Some(&Value::Integer(3)),
            "statements before the failure already committed"
        );
    }

    #[test]
    fn script_with_open_txn_at_end_is_surfaced() {
        let db = seeded();
        // Default: falling off the end of a script with an open
        // transaction is an error, and the span's writes are rolled back
        // — never silently discarded, never silently committed.
        let err = db
            .execute_script("BEGIN; INSERT INTO t VALUES (3, 30);")
            .unwrap_err();
        assert!(matches!(err, Error::Txn(_)), "must surface the open span: {err}");
        assert_eq!(db.row_count("t"), Some(2), "the open span's writes roll back");

        // Opt-in: autocommit_on_end commits the span as if the script
        // had ended with COMMIT.
        let r = db
            .execute_script_with(
                "BEGIN; INSERT INTO t VALUES (3, 30); INSERT INTO t VALUES (4, 40);",
                ScriptOptions { autocommit_on_end: true },
            )
            .unwrap();
        assert_eq!(r.rows_affected, 1);
        assert_eq!(db.row_count("t"), Some(4), "auto-committed span is visible");

        // A script that closes its span is unaffected by the option.
        db.execute_script_with(
            "BEGIN; DELETE FROM t WHERE id = 4; COMMIT;",
            ScriptOptions { autocommit_on_end: true },
        )
        .unwrap();
        assert_eq!(db.row_count("t"), Some(3));

        // ... and one that rolls back stays rolled back even with the
        // option set (autocommit applies only to a span left open).
        db.execute_script_with(
            "BEGIN; DELETE FROM t; ROLLBACK;",
            ScriptOptions { autocommit_on_end: true },
        )
        .unwrap();
        assert_eq!(db.row_count("t"), Some(3));
    }

    #[test]
    fn dropping_a_session_rolls_back() {
        let db = seeded();
        {
            let mut session = db.session();
            session.execute("BEGIN").unwrap();
            session.execute("INSERT INTO t VALUES (3, 30)").unwrap();
            // Dropped without COMMIT.
        }
        assert_eq!(db.row_count("t"), Some(2));
    }

    #[test]
    fn txn_ddl_commits_atomically() {
        let db = seeded();
        let mut session = db.session();
        session.execute("BEGIN").unwrap();
        session.execute("CREATE TABLE made (x INTEGER)").unwrap();
        session.execute("INSERT INTO made VALUES (1)").unwrap();
        session.execute("DROP TABLE t").unwrap();
        assert_eq!(db.table_names(), vec!["t"], "nothing visible before commit");
        session.execute("COMMIT").unwrap();
        assert_eq!(db.table_names(), vec!["made"]);
        assert_eq!(db.row_count("made"), Some(1));
    }
}
