//! A concurrently shareable database.
//!
//! [`Database`] is single-session by construction: `execute(&mut self)`
//! serializes every statement behind one exclusive borrow. [`SharedDb`]
//! lifts the same engine to many concurrent sessions:
//!
//! * **`Arc`-cloneable handle** — cloning a `SharedDb` is a refcount
//!   bump; every clone is a session over the same data, safe to move to
//!   another thread.
//! * **Snapshot reads** — a SELECT briefly read-locks the catalog,
//!   clones it (O(tables): the row storage is shared `Arc<Table>`s, so
//!   no cell is copied), drops the lock, and executes against the
//!   immutable snapshot. Long queries never block writers, and a session
//!   sees a consistent database state for the whole statement.
//! * **Writers serialized per table** — a DML/DDL statement takes its
//!   target table's write lock, executes against a snapshot taken
//!   *under* that lock, and installs the new table version with a brief
//!   catalog write lock. Writers to different tables run fully
//!   concurrently; writers to the same table observe each other's
//!   committed state (read-modify-write statements like
//!   `UPDATE t SET n = n + 1` never lose updates).
//! * **No poisoned locks** — all locks are `parking_lot`-style
//!   panic-transparent: a session that panics mid-statement cannot wedge
//!   its siblings. A failed statement installs nothing (the snapshot is
//!   discarded), so errors cannot corrupt shared state either.
//!
//! UDFs are registered once and shared by every session (the registry
//! stores `Arc<dyn ScalarUdf>`); stateful UDFs such as `llm_map` keep
//! their single-flight / answer-store behaviour *across* sessions because
//! all sessions call the same object.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::ast::Statement;
use crate::db::{Database, QueryResult};
use crate::error::Result;
use crate::functions::{ScalarUdf, UdfRegistry};
use crate::optimizer::OptimizerConfig;
use crate::parser::{parse_script, parse_statement};
use crate::storage::Catalog;

/// An embedded, in-memory SQL database shared by many concurrent
/// sessions. Clone the handle freely — all clones address the same data.
#[derive(Clone, Default)]
pub struct SharedDb {
    inner: Arc<Shared>,
}

#[derive(Default)]
struct Shared {
    catalog: RwLock<Catalog>,
    udfs: RwLock<UdfRegistry>,
    optimizer: RwLock<OptimizerConfig>,
    /// One write lock per (lowercased) table name, created on first
    /// write. Holding a table's lock serializes every mutation of that
    /// table — DML and DDL alike — while leaving other tables free.
    table_locks: Mutex<HashMap<String, Arc<Mutex<()>>>>,
}

impl SharedDb {
    /// A fresh, empty shared database.
    pub fn new() -> Self {
        SharedDb::default()
    }

    /// Share an existing single-session database. The row storage is
    /// re-shared, not copied.
    pub fn from_database(db: Database) -> Self {
        let optimizer = db.optimizer();
        let udfs = db.udfs().clone();
        let catalog = db.catalog().clone();
        SharedDb {
            inner: Arc::new(Shared {
                catalog: RwLock::new(catalog),
                udfs: RwLock::new(udfs),
                optimizer: RwLock::new(optimizer),
                table_locks: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// Register a scalar UDF (e.g. an LLM function) for every session.
    pub fn register_udf(&self, udf: Arc<dyn ScalarUdf>) {
        self.inner.udfs.write().register(udf);
    }

    /// Set the optimizer configuration for statements executed from now
    /// on (in-flight statements keep the config they snapshotted).
    pub fn set_optimizer(&self, config: OptimizerConfig) {
        *self.inner.optimizer.write() = config;
    }

    pub fn optimizer(&self) -> OptimizerConfig {
        *self.inner.optimizer.read()
    }

    /// A consistent single-session snapshot of the current state: shares
    /// the `Arc<Table>` row storage (O(tables)), never blocks writers
    /// beyond the brief catalog read lock. Later writes through the
    /// shared handle are not visible to the snapshot, and mutating the
    /// snapshot (it is a plain [`Database`]) copy-on-writes privately.
    pub fn snapshot(&self) -> Database {
        let optimizer = *self.inner.optimizer.read();
        let udfs = self.inner.udfs.read().clone();
        let catalog = self.inner.catalog.read().clone();
        Database::from_parts(catalog, udfs, optimizer)
    }

    /// Execute a read-only query against a snapshot.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        self.snapshot().query(sql)
    }

    /// Execute one statement. Reads run on a snapshot; writes serialize
    /// per target table and atomically install the new table version.
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        let stmt = parse_statement(sql)?;
        self.execute_statement(&stmt)
    }

    /// Execute a semicolon-separated script; returns the last result.
    /// Each statement commits (and becomes visible to other sessions)
    /// independently — there is no multi-statement transaction.
    pub fn execute_script(&self, sql: &str) -> Result<QueryResult> {
        let stmts = parse_script(sql)?;
        let mut last = QueryResult::default();
        for stmt in &stmts {
            last = self.execute_statement(stmt)?;
        }
        Ok(last)
    }

    fn execute_statement(&self, stmt: &Statement) -> Result<QueryResult> {
        let Some(target) = write_target(stmt) else {
            // SELECT: snapshot execution, no locks held while running.
            let mut db = self.snapshot();
            return db.execute_statement(stmt);
        };

        // Serialize writers on the target table for the whole
        // read-modify-write cycle: snapshot under the lock, execute
        // against the snapshot, install the new version.
        let lock = self.table_lock(&target);
        let _guard = lock.lock();

        let mut db = self.snapshot();
        let result = db.execute_statement(stmt)?;

        // Install only the target table's new version (or its removal):
        // concurrent writers to *other* tables committed after our
        // snapshot must not be clobbered, so the whole catalog is never
        // written back.
        let dropped = {
            let mut catalog = self.inner.catalog.write();
            match db.catalog().get(&target) {
                Some(table) => {
                    catalog.put_shared(table.clone());
                    false
                }
                None => {
                    // DROP TABLE (or DROP ... IF EXISTS of a missing table).
                    let _ = catalog.drop_table(&target);
                    true
                }
            }
        };
        if dropped {
            self.prune_table_lock(&target, &lock);
        }
        Ok(result)
    }

    /// Drop a dropped table's lock entry so create/drop-heavy workloads
    /// don't grow the lock map without bound. Safe only when nobody else
    /// holds the `Arc` (strong count 2 = our clone + the map's): a waiter
    /// blocked on this lock must keep resolving to the *same* mutex, or
    /// two writers could mutate a recreated table concurrently. New
    /// clones are only handed out under the map mutex we hold here, so
    /// the check cannot race.
    fn prune_table_lock(&self, name: &str, lock: &Arc<Mutex<()>>) {
        let key = name.to_ascii_lowercase();
        let mut locks = self.inner.table_locks.lock();
        if Arc::strong_count(lock) == 2 {
            locks.remove(&key);
        }
    }

    fn table_lock(&self, name: &str) -> Arc<Mutex<()>> {
        let key = name.to_ascii_lowercase();
        let mut locks = self.inner.table_locks.lock();
        locks.entry(key).or_default().clone()
    }

    /// Names of the current tables (snapshot).
    pub fn table_names(&self) -> Vec<String> {
        self.inner.catalog.read().table_names()
    }

    /// Current row count of a table, if it exists (snapshot statistic).
    pub fn row_count(&self, table: &str) -> Option<usize> {
        self.inner.catalog.read().row_count(table)
    }
}

/// The table a statement mutates; `None` for read-only statements.
fn write_target(stmt: &Statement) -> Option<String> {
    match stmt {
        Statement::Select(_) => None,
        Statement::CreateTable(ct) => Some(ct.name.clone()),
        Statement::DropTable { name, .. } => Some(name.clone()),
        Statement::AlterTableAddColumn { table, .. } => Some(table.clone()),
        Statement::Insert(ins) => Some(ins.table.clone()),
        Statement::Update(upd) => Some(upd.table.clone()),
        Statement::Delete(del) => Some(del.table.clone()),
    }
}

impl std::fmt::Debug for SharedDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedDb")
            .field("tables", &self.table_names())
            .field("sessions", &Arc::strong_count(&self.inner))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;
    use crate::value::Value;

    fn seeded() -> SharedDb {
        let db = SharedDb::new();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, n INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 10), (2, 20)").unwrap();
        db
    }

    #[test]
    fn clones_share_state() {
        let a = seeded();
        let b = a.clone();
        b.execute("INSERT INTO t VALUES (3, 30)").unwrap();
        let r = a.query("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Integer(3)));
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let db = seeded();
        let snap = db.snapshot();
        db.execute("INSERT INTO t VALUES (3, 30)").unwrap();
        assert_eq!(
            snap.query("SELECT COUNT(*) FROM t").unwrap().scalar(),
            Some(&Value::Integer(2)),
            "snapshot pinned"
        );
        assert_eq!(
            db.query("SELECT COUNT(*) FROM t").unwrap().scalar(),
            Some(&Value::Integer(3))
        );
    }

    #[test]
    fn failed_statement_installs_nothing() {
        let db = seeded();
        // Duplicate PK: the snapshot's partial state must not leak.
        let err = db.execute("INSERT INTO t VALUES (1, 99)").unwrap_err();
        assert!(matches!(err, Error::Constraint(_)));
        let r = db.query("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Integer(2)));
    }

    #[test]
    fn ddl_round_trip() {
        let db = seeded();
        db.execute("ALTER TABLE t ADD COLUMN tag TEXT").unwrap();
        db.execute("CREATE TABLE u (x INTEGER)").unwrap();
        assert_eq!(db.table_names(), vec!["t", "u"]);
        db.execute("DROP TABLE u").unwrap();
        assert_eq!(db.table_names(), vec!["t"]);
        db.execute("DROP TABLE IF EXISTS u").unwrap();
    }

    #[test]
    fn update_on_shared_handle() {
        let db = seeded();
        let r = db.execute("UPDATE t SET n = n + 1 WHERE id = 1").unwrap();
        assert_eq!(r.rows_affected, 1);
        let q = db.query("SELECT n FROM t WHERE id = 1").unwrap();
        assert_eq!(q.scalar(), Some(&Value::Integer(11)));
    }

    #[test]
    fn dropped_table_locks_are_pruned() {
        let db = seeded();
        for i in 0..32 {
            db.execute(&format!("CREATE TABLE tmp{i} (x INTEGER)")).unwrap();
            db.execute(&format!("INSERT INTO tmp{i} VALUES ({i})")).unwrap();
            db.execute(&format!("DROP TABLE tmp{i}")).unwrap();
        }
        let live = db.inner.table_locks.lock().len();
        assert_eq!(live, 1, "only the surviving table 't' keeps a lock entry, got {live}");
        // The surviving table still works.
        db.execute("INSERT INTO t VALUES (3, 30)").unwrap();
    }

    #[test]
    fn from_database_shares_rows() {
        let mut single = Database::new();
        single.execute("CREATE TABLE s (a INTEGER)").unwrap();
        single.execute("INSERT INTO s VALUES (7)").unwrap();
        let shared = SharedDb::from_database(single);
        assert_eq!(
            shared.query("SELECT a FROM s").unwrap().scalar(),
            Some(&Value::Integer(7))
        );
    }
}
