//! Recursive-descent SQL parser.
//!
//! Grammar follows SQLite's with precedence:
//! `OR < AND < NOT < comparison/IS/IN/LIKE/BETWEEN < add < mul < concat <
//! unary < primary`.

use crate::ast::*;
use crate::error::{Error, Result};
use crate::lexer::{tokenize, Symbol, Token, TokenKind};
use crate::value::Value;

/// Parse a single SQL statement (a trailing semicolon is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.accept_symbol(Symbol::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a script of semicolon-separated statements.
pub fn parse_script(sql: &str) -> Result<Vec<Statement>> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    loop {
        while p.accept_symbol(Symbol::Semicolon) {}
        if p.at_eof() {
            break;
        }
        out.push(p.statement()?);
        if !p.accept_symbol(Symbol::Semicolon) {
            break;
        }
    }
    p.expect_eof()?;
    Ok(out)
}

/// Parse a standalone expression (used in tests and by UDF tooling).
pub fn parse_expression(sql: &str) -> Result<Expr> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    // ---- token plumbing ----------------------------------------------------

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, ahead: usize) -> &TokenKind {
        let idx = (self.pos + ahead).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::parse(self.pos, format!("{} (found {:?})", msg.into(), self.peek()))
    }

    fn expect_eof(&self) -> Result<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.err("expected end of statement"))
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Keyword(k) if k == kw)
    }

    fn accept_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.accept_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}")))
        }
    }

    fn at_symbol(&self, s: Symbol) -> bool {
        matches!(self.peek(), TokenKind::Symbol(x) if *x == s)
    }

    fn accept_symbol(&mut self, s: Symbol) -> bool {
        if self.at_symbol(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: Symbol) -> Result<()> {
        if self.accept_symbol(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected {s:?}")))
        }
    }

    /// An identifier; keywords that commonly double as names (e.g. column
    /// called `key`) are accepted where unambiguous.
    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            TokenKind::Keyword(k) if matches!(k.as_str(), "KEY" | "ALL" | "IF") => {
                self.bump();
                Ok(k)
            }
            _ => Err(self.err("expected identifier")),
        }
    }

    // ---- statements --------------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        match self.peek() {
            TokenKind::Keyword(k) => match k.as_str() {
                "SELECT" => Ok(Statement::Select(self.select_stmt()?)),
                "CREATE" => self.create_table(),
                "DROP" => self.drop_table(),
                "ALTER" => self.alter_table(),
                "INSERT" => self.insert(),
                "UPDATE" => self.update(),
                "DELETE" => self.delete(),
                "BEGIN" => self.txn_control(Statement::Begin),
                "COMMIT" => self.txn_control(Statement::Commit),
                "ROLLBACK" => self.txn_control(Statement::Rollback),
                other => Err(self.err(format!("unexpected keyword {other}"))),
            },
            _ => Err(self.err("expected a statement")),
        }
    }

    /// `BEGIN | COMMIT | ROLLBACK`, each with an optional `TRANSACTION`
    /// noise word (SQLite style).
    fn txn_control(&mut self, stmt: Statement) -> Result<Statement> {
        self.bump();
        self.accept_keyword("TRANSACTION");
        Ok(stmt)
    }

    fn create_table(&mut self) -> Result<Statement> {
        self.expect_keyword("CREATE")?;
        self.expect_keyword("TABLE")?;
        let if_not_exists = if self.accept_keyword("IF") {
            self.expect_keyword("NOT")?;
            self.expect_keyword("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        self.expect_symbol(Symbol::LParen)?;
        let mut columns = Vec::new();
        let mut primary_key = Vec::new();
        loop {
            if self.at_keyword("PRIMARY") {
                self.bump();
                self.expect_keyword("KEY")?;
                self.expect_symbol(Symbol::LParen)?;
                loop {
                    primary_key.push(self.ident()?);
                    if !self.accept_symbol(Symbol::Comma) {
                        break;
                    }
                }
                self.expect_symbol(Symbol::RParen)?;
            } else {
                columns.push(self.column_def()?);
            }
            if !self.accept_symbol(Symbol::Comma) {
                break;
            }
        }
        self.expect_symbol(Symbol::RParen)?;
        Ok(Statement::CreateTable(CreateTable { name, if_not_exists, columns, primary_key }))
    }

    fn column_def(&mut self) -> Result<ColumnDef> {
        let name = self.ident()?;
        // Optional declared type: IDENT possibly with (n) or (n, m).
        let decl_type = match self.peek() {
            TokenKind::Ident(t) => {
                let t = t.clone();
                self.bump();
                if self.accept_symbol(Symbol::LParen) {
                    while !self.accept_symbol(Symbol::RParen) {
                        self.bump();
                    }
                }
                Some(t)
            }
            _ => None,
        };
        let mut def =
            ColumnDef { name, decl_type, not_null: false, primary_key: false, unique: false };
        loop {
            if self.accept_keyword("NOT") {
                self.expect_keyword("NULL")?;
                def.not_null = true;
            } else if self.accept_keyword("PRIMARY") {
                self.expect_keyword("KEY")?;
                def.primary_key = true;
            } else if self.accept_keyword("UNIQUE") {
                def.unique = true;
            } else {
                break;
            }
        }
        Ok(def)
    }

    fn drop_table(&mut self) -> Result<Statement> {
        self.expect_keyword("DROP")?;
        self.expect_keyword("TABLE")?;
        let if_exists = if self.accept_keyword("IF") {
            self.expect_keyword("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        Ok(Statement::DropTable { name, if_exists })
    }

    fn alter_table(&mut self) -> Result<Statement> {
        self.expect_keyword("ALTER")?;
        self.expect_keyword("TABLE")?;
        let table = self.ident()?;
        self.expect_keyword("ADD")?;
        self.accept_keyword("COLUMN");
        let column = self.column_def()?;
        Ok(Statement::AlterTableAddColumn { table, column })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_keyword("INSERT")?;
        self.expect_keyword("INTO")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.accept_symbol(Symbol::LParen) {
            loop {
                columns.push(self.ident()?);
                if !self.accept_symbol(Symbol::Comma) {
                    break;
                }
            }
            self.expect_symbol(Symbol::RParen)?;
        }
        let source = if self.accept_keyword("VALUES") {
            let mut rows = Vec::new();
            loop {
                self.expect_symbol(Symbol::LParen)?;
                let mut row = Vec::new();
                loop {
                    row.push(self.expr()?);
                    if !self.accept_symbol(Symbol::Comma) {
                        break;
                    }
                }
                self.expect_symbol(Symbol::RParen)?;
                rows.push(row);
                if !self.accept_symbol(Symbol::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else if self.at_keyword("SELECT") {
            InsertSource::Select(Box::new(self.select_stmt()?))
        } else {
            return Err(self.err("expected VALUES or SELECT"));
        };
        Ok(Statement::Insert(Insert { table, columns, source }))
    }

    fn update(&mut self) -> Result<Statement> {
        self.expect_keyword("UPDATE")?;
        let table = self.ident()?;
        self.expect_keyword("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_symbol(Symbol::Eq)?;
            assignments.push((col, self.expr()?));
            if !self.accept_symbol(Symbol::Comma) {
                break;
            }
        }
        let filter = if self.accept_keyword("WHERE") { Some(self.expr()?) } else { None };
        Ok(Statement::Update(Update { table, assignments, filter }))
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_keyword("DELETE")?;
        self.expect_keyword("FROM")?;
        let table = self.ident()?;
        let filter = if self.accept_keyword("WHERE") { Some(self.expr()?) } else { None };
        Ok(Statement::Delete(Delete { table, filter }))
    }

    // ---- SELECT ------------------------------------------------------------

    fn select_stmt(&mut self) -> Result<SelectStmt> {
        let body = self.select_body()?;
        let mut order_by = Vec::new();
        if self.accept_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.accept_keyword("DESC") {
                    true
                } else {
                    self.accept_keyword("ASC");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.accept_symbol(Symbol::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        let mut offset = None;
        if self.accept_keyword("LIMIT") {
            let first = self.expr()?;
            if self.accept_keyword("OFFSET") {
                limit = Some(first);
                offset = Some(self.expr()?);
            } else if self.accept_symbol(Symbol::Comma) {
                // LIMIT offset, count  (SQLite compatibility)
                offset = Some(first);
                limit = Some(self.expr()?);
            } else {
                limit = Some(first);
            }
        }
        Ok(SelectStmt { body, order_by, limit, offset })
    }

    fn select_body(&mut self) -> Result<SelectBody> {
        let mut left = SelectBody::Simple(Box::new(self.select_core()?));
        loop {
            let op = if self.accept_keyword("UNION") {
                if self.accept_keyword("ALL") {
                    CompoundOp::UnionAll
                } else {
                    CompoundOp::Union
                }
            } else if self.accept_keyword("EXCEPT") {
                CompoundOp::Except
            } else if self.accept_keyword("INTERSECT") {
                CompoundOp::Intersect
            } else {
                break;
            };
            let right = SelectBody::Simple(Box::new(self.select_core()?));
            left = SelectBody::Compound { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn select_core(&mut self) -> Result<SelectCore> {
        self.expect_keyword("SELECT")?;
        let distinct = if self.accept_keyword("DISTINCT") {
            true
        } else {
            self.accept_keyword("ALL");
            false
        };
        let mut projection = Vec::new();
        loop {
            projection.push(self.select_item()?);
            if !self.accept_symbol(Symbol::Comma) {
                break;
            }
        }
        let from = if self.accept_keyword("FROM") { Some(self.table_ref()?) } else { None };
        let filter = if self.accept_keyword("WHERE") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.accept_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.accept_symbol(Symbol::Comma) {
                    break;
                }
            }
        }
        let having = if self.accept_keyword("HAVING") { Some(self.expr()?) } else { None };
        Ok(SelectCore { distinct, projection, from, filter, group_by, having })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.accept_symbol(Symbol::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `t.*`
        if let TokenKind::Ident(name) = self.peek().clone() {
            if matches!(self.peek_at(1), TokenKind::Symbol(Symbol::Dot))
                && matches!(self.peek_at(2), TokenKind::Symbol(Symbol::Star))
            {
                self.bump();
                self.bump();
                self.bump();
                return Ok(SelectItem::QualifiedWildcard(name));
            }
        }
        let expr = self.expr()?;
        let alias = if self.accept_keyword("AS") {
            Some(self.ident()?)
        } else {
            match self.peek() {
                TokenKind::Ident(a) => {
                    let a = a.clone();
                    self.bump();
                    Some(a)
                }
                _ => None,
            }
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.table_factor()?;
        loop {
            let kind = if self.accept_keyword("JOIN") || self.at_inner_join()? {
                JoinKind::Inner
            } else if self.at_keyword("LEFT") {
                self.bump();
                self.accept_keyword("OUTER");
                self.expect_keyword("JOIN")?;
                JoinKind::Left
            } else if self.at_keyword("RIGHT") {
                self.bump();
                self.accept_keyword("OUTER");
                self.expect_keyword("JOIN")?;
                JoinKind::Right
            } else if self.at_keyword("CROSS") {
                self.bump();
                self.expect_keyword("JOIN")?;
                JoinKind::Cross
            } else if self.accept_symbol(Symbol::Comma) {
                JoinKind::Cross
            } else {
                break;
            };
            let right = self.table_factor()?;
            let on = if self.accept_keyword("ON") { Some(self.expr()?) } else { None };
            left = TableRef::Join { left: Box::new(left), right: Box::new(right), kind, on };
        }
        Ok(left)
    }

    /// Handles `INNER JOIN` (two tokens) without consuming a lone `INNER`.
    fn at_inner_join(&mut self) -> Result<bool> {
        if self.at_keyword("INNER") {
            self.bump();
            self.expect_keyword("JOIN")?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn table_factor(&mut self) -> Result<TableRef> {
        if self.accept_symbol(Symbol::LParen) {
            if self.at_keyword("SELECT") {
                let query = self.select_stmt()?;
                self.expect_symbol(Symbol::RParen)?;
                self.accept_keyword("AS");
                let alias = self.ident()?;
                return Ok(TableRef::Subquery { query: Box::new(query), alias });
            }
            // Parenthesized join tree.
            let inner = self.table_ref()?;
            self.expect_symbol(Symbol::RParen)?;
            return Ok(inner);
        }
        let name = self.ident()?;
        let alias = if self.accept_keyword("AS") {
            Some(self.ident()?)
        } else {
            match self.peek() {
                TokenKind::Ident(a) => {
                    let a = a.clone();
                    self.bump();
                    Some(a)
                }
                _ => None,
            }
        };
        Ok(TableRef::Table { name, alias })
    }

    // ---- expressions -------------------------------------------------------

    pub(crate) fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.accept_keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary { op: BinaryOp::Or, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.accept_keyword("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary { op: BinaryOp::And, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.accept_keyword("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.accept_keyword("IS") {
            let negated = self.accept_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        // [NOT] LIKE / GLOB / BETWEEN / IN
        let negated = self.accept_keyword("NOT");
        if self.accept_keyword("LIKE") {
            let pattern = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
                glob: false,
            });
        }
        if self.accept_keyword("GLOB") {
            let pattern = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
                glob: true,
            });
        }
        if self.accept_keyword("BETWEEN") {
            let low = self.additive()?;
            self.expect_keyword("AND")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.accept_keyword("IN") {
            self.expect_symbol(Symbol::LParen)?;
            if self.at_keyword("SELECT") {
                let query = self.select_stmt()?;
                self.expect_symbol(Symbol::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    query: Box::new(query),
                    negated,
                });
            }
            let mut list = Vec::new();
            if !self.at_symbol(Symbol::RParen) {
                loop {
                    list.push(self.expr()?);
                    if !self.accept_symbol(Symbol::Comma) {
                        break;
                    }
                }
            }
            self.expect_symbol(Symbol::RParen)?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if negated {
            return Err(self.err("expected LIKE, GLOB, BETWEEN or IN after NOT"));
        }
        // Plain comparison operators.
        let op = match self.peek() {
            TokenKind::Symbol(Symbol::Eq) => Some(BinaryOp::Eq),
            TokenKind::Symbol(Symbol::NotEq) => Some(BinaryOp::NotEq),
            TokenKind::Symbol(Symbol::Lt) => Some(BinaryOp::Lt),
            TokenKind::Symbol(Symbol::LtEq) => Some(BinaryOp::LtEq),
            TokenKind::Symbol(Symbol::Gt) => Some(BinaryOp::Gt),
            TokenKind::Symbol(Symbol::GtEq) => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.additive()?;
            return Ok(Expr::Binary { op, left: Box::new(left), right: Box::new(right) });
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = if self.accept_symbol(Symbol::Plus) {
                BinaryOp::Add
            } else if self.accept_symbol(Symbol::Minus) {
                BinaryOp::Sub
            } else {
                break;
            };
            let right = self.multiplicative()?;
            left = Expr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.concat_expr()?;
        loop {
            let op = if self.accept_symbol(Symbol::Star) {
                BinaryOp::Mul
            } else if self.accept_symbol(Symbol::Slash) {
                BinaryOp::Div
            } else if self.accept_symbol(Symbol::Percent) {
                BinaryOp::Rem
            } else {
                break;
            };
            let right = self.concat_expr()?;
            left = Expr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn concat_expr(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        while self.accept_symbol(Symbol::Concat) {
            let right = self.unary()?;
            left = Expr::Binary {
                op: BinaryOp::Concat,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.accept_symbol(Symbol::Minus) {
            let inner = self.unary()?;
            // Fold negative numeric literals immediately.
            return Ok(match inner {
                Expr::Literal(Value::Integer(i)) => Expr::Literal(Value::Integer(-i)),
                Expr::Literal(Value::Real(r)) => Expr::Literal(Value::Real(-r)),
                other => Expr::Unary { op: UnaryOp::Neg, expr: Box::new(other) },
            });
        }
        if self.accept_symbol(Symbol::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Integer(i) => {
                self.bump();
                Ok(Expr::Literal(Value::Integer(i)))
            }
            TokenKind::Real(r) => {
                self.bump();
                Ok(Expr::Literal(Value::Real(r)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Value::text(s)))
            }
            TokenKind::Keyword(k) => match k.as_str() {
                "NULL" => {
                    self.bump();
                    Ok(Expr::Literal(Value::Null))
                }
                "TRUE" => {
                    self.bump();
                    Ok(Expr::Literal(Value::Integer(1)))
                }
                "FALSE" => {
                    self.bump();
                    Ok(Expr::Literal(Value::Integer(0)))
                }
                "CASE" => self.case_expr(),
                "CAST" => self.cast_expr(),
                "EXISTS" => {
                    self.bump();
                    self.expect_symbol(Symbol::LParen)?;
                    let query = self.select_stmt()?;
                    self.expect_symbol(Symbol::RParen)?;
                    Ok(Expr::Exists { query: Box::new(query), negated: false })
                }
                "NOT" => {
                    // NOT EXISTS reaches here via primary when written after
                    // an operator; delegate back through not_expr.
                    self.bump();
                    let inner = self.not_expr()?;
                    Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) })
                }
                // Keywords usable as bare identifiers in expressions.
                "KEY" | "ALL" | "IF" => self.name_or_call(),
                other => Err(self.err(format!("unexpected keyword {other} in expression"))),
            },
            TokenKind::Ident(_) => self.name_or_call(),
            TokenKind::Symbol(Symbol::LParen) => {
                self.bump();
                if self.at_keyword("SELECT") {
                    let query = self.select_stmt()?;
                    self.expect_symbol(Symbol::RParen)?;
                    return Ok(Expr::ScalarSubquery(Box::new(query)));
                }
                let inner = self.expr()?;
                self.expect_symbol(Symbol::RParen)?;
                Ok(inner)
            }
            TokenKind::Symbol(Symbol::Star) => {
                Err(self.err("'*' is only valid in COUNT(*) or the projection list"))
            }
            _ => Err(self.err("expected expression")),
        }
    }

    /// Identifier, qualified column, or function call.
    fn name_or_call(&mut self) -> Result<Expr> {
        let first = self.ident()?;
        if self.accept_symbol(Symbol::Dot) {
            let col = self.ident()?;
            return Ok(Expr::Column { table: Some(first), name: col });
        }
        if self.accept_symbol(Symbol::LParen) {
            // Function call.
            if self.accept_symbol(Symbol::Star) {
                self.expect_symbol(Symbol::RParen)?;
                return Ok(Expr::Function { name: first, args: vec![], distinct: false, star: true });
            }
            let distinct = self.accept_keyword("DISTINCT");
            let mut args = Vec::new();
            if !self.at_symbol(Symbol::RParen) {
                loop {
                    args.push(self.expr()?);
                    if !self.accept_symbol(Symbol::Comma) {
                        break;
                    }
                }
            }
            self.expect_symbol(Symbol::RParen)?;
            return Ok(Expr::Function { name: first, args, distinct, star: false });
        }
        Ok(Expr::Column { table: None, name: first })
    }

    fn case_expr(&mut self) -> Result<Expr> {
        self.expect_keyword("CASE")?;
        let operand = if self.at_keyword("WHEN") { None } else { Some(Box::new(self.expr()?)) };
        let mut branches = Vec::new();
        while self.accept_keyword("WHEN") {
            let when = self.expr()?;
            self.expect_keyword("THEN")?;
            let then = self.expr()?;
            branches.push((when, then));
        }
        if branches.is_empty() {
            return Err(self.err("CASE requires at least one WHEN branch"));
        }
        let else_expr =
            if self.accept_keyword("ELSE") { Some(Box::new(self.expr()?)) } else { None };
        self.expect_keyword("END")?;
        Ok(Expr::Case { operand, branches, else_expr })
    }

    fn cast_expr(&mut self) -> Result<Expr> {
        self.expect_keyword("CAST")?;
        self.expect_symbol(Symbol::LParen)?;
        let inner = self.expr()?;
        self.expect_keyword("AS")?;
        let mut type_name = self.ident()?;
        // Allow e.g. CAST(x AS VARCHAR(10)).
        if self.accept_symbol(Symbol::LParen) {
            while !self.accept_symbol(Symbol::RParen) {
                self.bump();
            }
        }
        type_name.make_ascii_uppercase();
        self.expect_symbol(Symbol::RParen)?;
        Ok(Expr::Cast { expr: Box::new(inner), type_name })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> SelectStmt {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn simple_select() {
        let s = sel("SELECT a, b FROM t WHERE a = 1");
        let SelectBody::Simple(core) = &s.body else { panic!() };
        assert_eq!(core.projection.len(), 2);
        assert!(core.filter.is_some());
    }

    #[test]
    fn join_tree_with_aliases() {
        let s = sel(
            "SELECT T1.hero_name FROM superhero AS T1 \
             JOIN publisher T2 ON T1.publisher_id = T2.id \
             LEFT JOIN colour c ON c.id = T1.eye_colour_id",
        );
        let SelectBody::Simple(core) = &s.body else { panic!() };
        let Some(TableRef::Join { kind, left, .. }) = &core.from else { panic!() };
        assert_eq!(*kind, JoinKind::Left);
        let TableRef::Join { kind: inner_kind, .. } = left.as_ref() else { panic!() };
        assert_eq!(*inner_kind, JoinKind::Inner);
    }

    #[test]
    fn group_by_having_order_limit() {
        let s = sel(
            "SELECT publisher, COUNT(*) AS n FROM superhero \
             GROUP BY publisher HAVING COUNT(*) > 3 \
             ORDER BY n DESC, publisher ASC LIMIT 5 OFFSET 2",
        );
        let SelectBody::Simple(core) = &s.body else { panic!() };
        assert_eq!(core.group_by.len(), 1);
        assert!(core.having.is_some());
        assert_eq!(s.order_by.len(), 2);
        assert!(s.order_by[0].desc);
        assert!(!s.order_by[1].desc);
        assert_eq!(s.limit, Some(Expr::lit(5)));
        assert_eq!(s.offset, Some(Expr::lit(2)));
    }

    #[test]
    fn sqlite_limit_comma_form() {
        let s = sel("SELECT a FROM t LIMIT 2, 10");
        assert_eq!(s.limit, Some(Expr::lit(10)));
        assert_eq!(s.offset, Some(Expr::lit(2)));
    }

    #[test]
    fn precedence_and_or_not() {
        // a = 1 OR b = 2 AND NOT c = 3  ==  a=1 OR (b=2 AND (NOT c=3))
        let e = parse_expression("a = 1 OR b = 2 AND NOT c = 3").unwrap();
        let Expr::Binary { op: BinaryOp::Or, right, .. } = e else { panic!() };
        let Expr::Binary { op: BinaryOp::And, right: and_rhs, .. } = *right else { panic!() };
        assert!(matches!(*and_rhs, Expr::Unary { op: UnaryOp::Not, .. }));
    }

    #[test]
    fn arithmetic_precedence() {
        // 1 + 2 * 3 parses as 1 + (2*3)
        let e = parse_expression("1 + 2 * 3").unwrap();
        let Expr::Binary { op: BinaryOp::Add, right, .. } = e else { panic!() };
        assert!(matches!(*right, Expr::Binary { op: BinaryOp::Mul, .. }));
    }

    #[test]
    fn between_in_like_negated() {
        assert!(matches!(
            parse_expression("x NOT BETWEEN 1 AND 5").unwrap(),
            Expr::Between { negated: true, .. }
        ));
        assert!(matches!(
            parse_expression("x NOT IN (1, 2)").unwrap(),
            Expr::InList { negated: true, .. }
        ));
        assert!(matches!(
            parse_expression("name NOT LIKE '%man%'").unwrap(),
            Expr::Like { negated: true, glob: false, .. }
        ));
    }

    #[test]
    fn subqueries() {
        assert!(matches!(
            parse_expression("x IN (SELECT id FROM t)").unwrap(),
            Expr::InSubquery { .. }
        ));
        assert!(matches!(
            parse_expression("(SELECT MAX(h) FROM t)").unwrap(),
            Expr::ScalarSubquery(_)
        ));
        assert!(matches!(
            parse_expression("EXISTS (SELECT 1 FROM t)").unwrap(),
            Expr::Exists { negated: false, .. }
        ));
    }

    #[test]
    fn case_and_cast() {
        let e = parse_expression(
            "CASE WHEN score > 0.5 THEN 'good' ELSE 'bad' END",
        )
        .unwrap();
        assert!(matches!(e, Expr::Case { operand: None, .. }));
        let e = parse_expression("CAST(height AS REAL)").unwrap();
        let Expr::Cast { type_name, .. } = e else { panic!() };
        assert_eq!(type_name, "REAL");
    }

    #[test]
    fn compound_union() {
        let s = sel("SELECT a FROM t UNION ALL SELECT b FROM u ORDER BY 1 LIMIT 3");
        assert!(matches!(s.body, SelectBody::Compound { op: CompoundOp::UnionAll, .. }));
        assert_eq!(s.order_by.len(), 1);
    }

    #[test]
    fn create_insert_roundtrip() {
        let c = parse_statement(
            "CREATE TABLE IF NOT EXISTS t (id INTEGER PRIMARY KEY, name TEXT NOT NULL, v REAL)",
        )
        .unwrap();
        let Statement::CreateTable(ct) = c else { panic!() };
        assert!(ct.if_not_exists);
        assert_eq!(ct.columns.len(), 3);
        assert!(ct.columns[0].primary_key);
        assert!(ct.columns[1].not_null);

        let i = parse_statement("INSERT INTO t (id, name) VALUES (1, 'x'), (2, 'y')").unwrap();
        let Statement::Insert(ins) = i else { panic!() };
        let InsertSource::Values(rows) = ins.source else { panic!() };
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn insert_from_select() {
        let i = parse_statement("INSERT INTO t SELECT * FROM u WHERE x > 0").unwrap();
        let Statement::Insert(ins) = i else { panic!() };
        assert!(matches!(ins.source, InsertSource::Select(_)));
    }

    #[test]
    fn update_delete_alter_drop() {
        assert!(matches!(
            parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE id = 3").unwrap(),
            Statement::Update(_)
        ));
        assert!(matches!(
            parse_statement("DELETE FROM t WHERE a IS NULL").unwrap(),
            Statement::Delete(_)
        ));
        assert!(matches!(
            parse_statement("ALTER TABLE t ADD COLUMN note TEXT").unwrap(),
            Statement::AlterTableAddColumn { .. }
        ));
        assert!(matches!(
            parse_statement("DROP TABLE IF EXISTS t").unwrap(),
            Statement::DropTable { if_exists: true, .. }
        ));
    }

    #[test]
    fn qualified_wildcard() {
        let s = sel("SELECT T1.* FROM t AS T1");
        let SelectBody::Simple(core) = &s.body else { panic!() };
        assert_eq!(core.projection[0], SelectItem::QualifiedWildcard("T1".into()));
    }

    #[test]
    fn subquery_in_from() {
        let s = sel("SELECT n FROM (SELECT COUNT(*) AS n FROM t) AS sub");
        let SelectBody::Simple(core) = &s.body else { panic!() };
        assert!(matches!(core.from, Some(TableRef::Subquery { .. })));
    }

    #[test]
    fn script_parses_multiple_statements() {
        let stmts = parse_script(
            "CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1); SELECT * FROM t;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn txn_control_statements_parse() {
        assert_eq!(parse_statement("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(parse_statement("begin transaction").unwrap(), Statement::Begin);
        assert_eq!(parse_statement("COMMIT").unwrap(), Statement::Commit);
        assert_eq!(parse_statement("COMMIT TRANSACTION;").unwrap(), Statement::Commit);
        assert_eq!(parse_statement("ROLLBACK").unwrap(), Statement::Rollback);
        assert_eq!(parse_statement("ROLLBACK TRANSACTION").unwrap(), Statement::Rollback);
        assert!(parse_statement("BEGIN EXTRA").is_err(), "trailing tokens rejected");
        let script = parse_script("BEGIN; INSERT INTO t VALUES (1); COMMIT;").unwrap();
        assert_eq!(script.len(), 3);
        assert!(script[0].is_txn_control());
        assert_eq!(script[1].write_target(), Some("t"));
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        for bad in ["SELECT FROM", "SELECT * FROM", "CREATE TABLE", "INSERT t", "SELECT (1", "x ="]
        {
            assert!(parse_statement(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse_statement("SELECT 1 garbage garbage").is_err());
    }
}
