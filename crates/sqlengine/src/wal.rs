//! Append-only write-ahead log: crash durability for the catalog.
//!
//! The WAL is the single source of durable truth. Every committed
//! transaction appends a `Begin` / per-table `Delta` / `Commit` record
//! group in one write; [`Wal::open`] replays the longest intact prefix and
//! truncates a torn tail, so after a crash the database is always exactly
//! the state as of some committed transaction boundary — never a torn mix.
//!
//! # Framing
//!
//! Each record is framed as `[len: u32 LE][crc32: u32 LE][payload]`, with
//! the CRC taken over the payload. Recovery walks frames from offset 0 and
//! stops at the first frame that is short, fails its checksum, or does not
//! decode; everything from that offset on is discarded (`set_len`) so the
//! next append starts at a clean boundary.
//!
//! # Deltas
//!
//! A transaction's effect on one table is logged as one [`WalDelta`]:
//!
//! * [`WalDelta::Append`] — the pure-INSERT fast path: only the new rows
//!   are encoded (detected by `Arc` pointer equality against the commit's
//!   base snapshot, see [`crate::txn::wal_delta`]);
//! * [`WalDelta::RowPatch`] — the row-level UPDATE/DELETE path: only the
//!   primary keys of deleted rows and the full images of touched rows are
//!   encoded; replay patches them into the table already recovered
//!   (deletes first, then in-place upserts — the same
//!   [`Table::apply_row_patch`] the commit rebase uses, so the installed
//!   and recovered tables agree by construction);
//! * [`WalDelta::Put`] — a full table image (DDL, tables without a
//!   primary key, or writes that reorder rows);
//! * [`WalDelta::Drop`] — the table was dropped.
//!
//! # Checkpoints
//!
//! When the log grows past [`DurabilityConfig::checkpoint_bytes`], the
//! committer rewrites it as a single [`WalRecord::Checkpoint`] holding the
//! full current catalog (write to a `.tmp` sibling, fsync, atomic rename),
//! bounding both file size and recovery time. Replay treats a checkpoint
//! as "reset the catalog to exactly these tables".
//!
//! # The VFS seam
//!
//! Every byte the log touches — appends, fsyncs, torn-tail truncation,
//! the checkpoint's tmp + rename dance — goes through a
//! [`Vfs`](crate::vfs::Vfs): [`RealFs`](crate::vfs::RealFs) in
//! production, the fault-injecting [`SimFs`](crate::vfs::SimFs) under the
//! `crash_sim` harness, which sweeps a deterministic fail/crash through
//! every operation index and asserts recovery always lands on a clean
//! prefix of acknowledged commits.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::sync::OnceLock;

use crate::error::{Error, Result};
use crate::pager::Pager;
use crate::storage::{
    decode_row, decode_table, encode_row, encode_table, get_str, get_u32, get_u64, get_u8,
    put_str, put_u32, put_u64, Catalog, Table, TextInterner,
};
use crate::value::Row;
use crate::vfs::{RealFs, Vfs, VfsFile};

/// Durability tuning for a WAL-backed database.
#[derive(Debug, Clone, Copy)]
pub struct DurabilityConfig {
    /// Rewrite the log as a checkpoint once it grows past this many bytes.
    pub checkpoint_bytes: u64,
    /// `fsync` the log on every commit. Disabling trades the durability of
    /// the last few commits for throughput (the file is still written, so
    /// only an OS crash — not a process crash — can lose them).
    pub sync: bool,
    /// Batch concurrent committers into **group commits** on a
    /// [`SharedDb`](crate::shared::SharedDb): committers enqueue their
    /// framed record groups, one leader appends the whole batch and
    /// issues a single fsync, and every committer in the batch is woken
    /// acknowledged — multiplying commit throughput under contention
    /// (the log mutex is held only by the leader, never by waiters).
    /// Disabling falls back to one append + fsync per commit.
    pub group_commit: bool,
    /// Group-commit install handback: once a batch carries at least this
    /// many table deltas, the leader acknowledges durability but hands
    /// the catalog installs back to the individual committers, keeping
    /// the leader's critical section to the write + fsync. `0` disables
    /// handback (the leader always installs the whole batch itself).
    pub handback_deltas: usize,
    /// Keep durable state in the paged store ([`crate::pager`]): commits
    /// maintain on-disk B-trees and checkpoints flush only dirty pages —
    /// O(dirty), not O(database). Disabled, checkpoints rewrite the full
    /// catalog image (the legacy format). The default follows
    /// `SWAN_PAGER` (`0` disables; anything else — or unset — enables).
    pub paged: bool,
    /// Buffer-pool capacity in pages for the paged store.
    pub pool_pages: usize,
}

/// Process-wide default for [`DurabilityConfig::paged`], read from
/// `SWAN_PAGER` once (same pattern as the columnar default).
fn default_paged() -> bool {
    static PAGED: OnceLock<bool> = OnceLock::new();
    *PAGED.get_or_init(|| std::env::var("SWAN_PAGER").map(|v| v != "0").unwrap_or(true))
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            checkpoint_bytes: 4 << 20,
            sync: true,
            group_commit: true,
            handback_deltas: 4,
            paged: default_paged(),
            pool_pages: crate::bufpool::DEFAULT_POOL_PAGES,
        }
    }
}

/// One WAL record. `Begin`/`Delta`/`Commit` carry the transaction id that
/// groups them; only transactions whose `Commit` made it to disk are
/// applied at recovery.
#[derive(Debug, Clone)]
pub enum WalRecord {
    Begin { txn: u64 },
    Delta { txn: u64, delta: WalDelta },
    Commit { txn: u64 },
    /// Full-database image; replay resets the catalog to these tables.
    Checkpoint { tables: Vec<Arc<Table>> },
    /// Paged-store checkpoint marker: durable state up to here lives in
    /// the page/meta files at this epoch ([`crate::pager`]); only records
    /// after the marker replay. Replaying one with the pager disabled is
    /// a loud error — the log does not contain the data.
    PagedCheckpoint { epoch: u64 },
}

/// A committed transaction's effect on one table.
#[derive(Debug, Clone)]
pub enum WalDelta {
    /// Install this full table snapshot (UPDATE/DELETE/DDL path).
    Put { table: Arc<Table> },
    /// Append `rows` to the existing table and set its version — the
    /// compact pure-INSERT encoding.
    Append { table: String, rows: Vec<Row>, new_version: u64 },
    /// Remove the table.
    Drop { name: String },
    /// Row-level patch over the table as already recovered: `deletes`
    /// holds the primary-key cell tuples of removed rows, `upserts` the
    /// full images of touched rows (replaced in place when the key
    /// exists, appended otherwise). The compact UPDATE/DELETE encoding
    /// produced from a transaction's row write set.
    RowPatch { table: String, deletes: Vec<Row>, upserts: Vec<Row>, new_version: u64 },
}

// ---------------------------------------------------------------------------
// Record codec (payload only; framing is separate). The byte primitives
// are shared with the row codec in `crate::storage`.
// ---------------------------------------------------------------------------

fn bad(what: &str) -> Error {
    Error::Io(format!("wal: malformed {what}"))
}

fn encode_record(buf: &mut Vec<u8>, rec: &WalRecord) {
    match rec {
        WalRecord::Begin { txn } => {
            buf.push(1);
            put_u64(buf, *txn);
        }
        WalRecord::Delta { txn, delta } => {
            buf.push(2);
            put_u64(buf, *txn);
            match delta {
                WalDelta::Put { table } => {
                    buf.push(1);
                    encode_table(buf, table);
                }
                WalDelta::Append { table, rows, new_version } => {
                    buf.push(2);
                    put_str(buf, table);
                    put_u64(buf, *new_version);
                    put_u64(buf, rows.len() as u64);
                    for row in rows {
                        encode_row(buf, row);
                    }
                }
                WalDelta::Drop { name } => {
                    buf.push(3);
                    put_str(buf, name);
                }
                WalDelta::RowPatch { table, deletes, upserts, new_version } => {
                    buf.push(4);
                    put_str(buf, table);
                    put_u64(buf, *new_version);
                    put_u64(buf, deletes.len() as u64);
                    for row in deletes {
                        encode_row(buf, row);
                    }
                    put_u64(buf, upserts.len() as u64);
                    for row in upserts {
                        encode_row(buf, row);
                    }
                }
            }
        }
        WalRecord::Commit { txn } => {
            buf.push(3);
            put_u64(buf, *txn);
        }
        WalRecord::Checkpoint { tables } => {
            buf.push(4);
            put_u32(buf, tables.len() as u32);
            for t in tables {
                encode_table(buf, t);
            }
        }
        WalRecord::PagedCheckpoint { epoch } => {
            buf.push(5);
            put_u64(buf, *epoch);
        }
    }
}

fn decode_record(buf: &[u8], pos: &mut usize, interner: &mut TextInterner) -> Result<WalRecord> {
    match get_u8(buf, pos)? {
        1 => Ok(WalRecord::Begin { txn: get_u64(buf, pos)? }),
        2 => {
            let txn = get_u64(buf, pos)?;
            let delta = match get_u8(buf, pos)? {
                1 => WalDelta::Put { table: Arc::new(decode_table(buf, pos, interner)?) },
                2 => {
                    let table = get_str(buf, pos)?.to_string();
                    let new_version = get_u64(buf, pos)?;
                    let n = get_u64(buf, pos)? as usize;
                    let mut rows = Vec::with_capacity(n.min(1 << 20));
                    for _ in 0..n {
                        rows.push(decode_row(buf, pos, interner)?);
                    }
                    WalDelta::Append { table, rows, new_version }
                }
                3 => WalDelta::Drop { name: get_str(buf, pos)?.to_string() },
                4 => {
                    let table = get_str(buf, pos)?.to_string();
                    let new_version = get_u64(buf, pos)?;
                    let nd = get_u64(buf, pos)? as usize;
                    let mut deletes = Vec::with_capacity(nd.min(1 << 20));
                    for _ in 0..nd {
                        deletes.push(decode_row(buf, pos, interner)?);
                    }
                    let nu = get_u64(buf, pos)? as usize;
                    let mut upserts = Vec::with_capacity(nu.min(1 << 20));
                    for _ in 0..nu {
                        upserts.push(decode_row(buf, pos, interner)?);
                    }
                    WalDelta::RowPatch { table, deletes, upserts, new_version }
                }
                _ => return Err(bad("delta tag")),
            };
            Ok(WalRecord::Delta { txn, delta })
        }
        3 => Ok(WalRecord::Commit { txn: get_u64(buf, pos)? }),
        4 => {
            let n = get_u32(buf, pos)? as usize;
            let mut tables = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                tables.push(Arc::new(decode_table(buf, pos, interner)?));
            }
            Ok(WalRecord::Checkpoint { tables })
        }
        5 => Ok(WalRecord::PagedCheckpoint { epoch: get_u64(buf, pos)? }),
        _ => Err(bad("record tag")),
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE) — table-driven, built once
// ---------------------------------------------------------------------------

pub(crate) fn crc32(data: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    });
    let mut crc = u32::MAX;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Frame one record: `[len][crc][payload]`.
fn frame(rec: &WalRecord, out: &mut Vec<u8>) {
    let mut payload = Vec::new();
    encode_record(&mut payload, rec);
    put_u32(out, payload.len() as u32);
    put_u32(out, crc32(&payload));
    out.extend_from_slice(&payload);
}

/// Frame a whole record group into one contiguous buffer — what a
/// committer hands the group-commit queue, so encoding happens off the
/// log mutex and the leader's append is a single `memcpy`-and-write.
pub fn frame_group(records: &[WalRecord]) -> Vec<u8> {
    let mut buf = Vec::new();
    for rec in records {
        frame(rec, &mut buf);
    }
    buf
}

/// Decode the frame starting at `start`; `None` marks a torn/corrupt tail.
fn read_frame(
    bytes: &[u8],
    start: usize,
    interner: &mut TextInterner,
) -> Option<(WalRecord, usize)> {
    let rest = &bytes[start..];
    if rest.len() < 8 {
        return None;
    }
    // Infallible here (length checked above), but a decode path never
    // panics on input shape: a failed cast reads as a torn tail.
    let len = u32::from_le_bytes(rest.get(0..4)?.try_into().ok()?) as usize;
    let crc = u32::from_le_bytes(rest.get(4..8)?.try_into().ok()?);
    let end = 8usize.checked_add(len)?;
    if end > rest.len() {
        return None;
    }
    let payload = &rest[8..end];
    if crc32(payload) != crc {
        return None;
    }
    let mut pos = 0;
    let rec = decode_record(payload, &mut pos, interner).ok()?;
    if pos != len {
        return None;
    }
    Some((rec, start + end))
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

/// Apply one committed delta to the recovering catalog.
fn apply_delta(catalog: &mut Catalog, delta: WalDelta) -> Result<()> {
    match delta {
        WalDelta::Put { table } => catalog.put_shared(table),
        WalDelta::Append { table, rows, new_version } => {
            let base = catalog.get_required(&table)?.clone();
            let mut t = (*base).clone();
            for row in rows {
                t.insert_shared_row(row)?;
            }
            t.version = new_version;
            catalog.put_shared(Arc::new(t));
        }
        WalDelta::Drop { name } => {
            let _ = catalog.drop_table(&name);
        }
        WalDelta::RowPatch { table, deletes, upserts, new_version } => {
            let base = catalog.get_required(&table)?.clone();
            let mut t = (*base).clone();
            t.apply_row_patch(&deletes, upserts)?;
            t.version = new_version;
            catalog.put_shared(Arc::new(t));
        }
    }
    Ok(())
}

/// Rebuild the catalog from a record stream: checkpoints reset it, and a
/// transaction's deltas apply only when its `Commit` record is present.
/// Uncommitted trailing transactions are discarded — exactly the rollback
/// a crash before the commit record implies.
pub fn replay(records: Vec<WalRecord>) -> Result<Catalog> {
    if let Some(WalRecord::PagedCheckpoint { epoch }) = records
        .iter()
        .find(|r| matches!(r, WalRecord::PagedCheckpoint { .. }))
    {
        return Err(Error::Io(format!(
            "wal: paged checkpoint marker (epoch {epoch}) in the log but the pager \
             is disabled — the data lives in the page files, not the log; reopen \
             with paged durability (unset SWAN_PAGER)"
        )));
    }
    replay_tail(records, Catalog::new(), None)
}

/// Paged-mode recovery: reconcile the WAL's checkpoint marker with the
/// durable meta epoch, materialize the catalog from the trees, and replay
/// only the genuine tail (applying it to the trees too, so they stay
/// current). Returns the catalog and whether the log must be normalized
/// (rewritten to a bare marker) before accepting appends.
fn replay_paged(
    records: Vec<WalRecord>,
    pager: &Pager,
) -> Result<(Catalog, bool)> {
    let meta_epoch = pager.epoch();
    // The *last* marker governs; anything before it is a stale prefix.
    let marker = records.iter().enumerate().rev().find_map(|(i, r)| match r {
        WalRecord::PagedCheckpoint { epoch } => Some((i, *epoch)),
        _ => None,
    });
    if let Some((_, epoch)) = marker {
        if epoch > meta_epoch {
            return Err(Error::Io(format!(
                "wal: checkpoint marker epoch {epoch} is ahead of the page-store \
                 meta epoch {meta_epoch} — the meta file was lost or rolled back"
            )));
        }
    }
    match marker {
        // Marker matches the meta: the records after it are the live tail.
        Some((i, epoch)) if epoch == meta_epoch => {
            let catalog = pager.materialize_catalog()?;
            let tail = records.into_iter().skip(i + 1).collect();
            Ok((replay_tail(tail, catalog, Some(pager))?, false))
        }
        // Marker behind the meta (or none at all while a meta exists): a
        // crash hit between the meta flip and the WAL swap. The whole
        // checkpoint ran under the WAL lock, so every record in this log
        // was already folded into the trees the meta made durable — the
        // meta alone is the truth, and the stale log must be normalized.
        _ if meta_epoch > 0 => Ok((pager.materialize_catalog()?, true)),
        // No meta yet: a fresh database or a pre-pager log (migration).
        // Legacy replay recovers the catalog; the trees are built
        // incrementally as the deltas apply, or — if anything in the old
        // format trips them up — by rebuild at the first checkpoint.
        _ => Ok((replay_tail(records, Catalog::new(), Some(pager))?, false)),
    }
}

/// The committed-transaction replay loop over `records`, starting from
/// `catalog`. With a pager, committed deltas also apply to the trees;
/// tree failures degrade to rebuild mode rather than failing recovery
/// (the commits are durable in the log — they must not be lost).
fn replay_tail(
    records: Vec<WalRecord>,
    mut catalog: Catalog,
    pager: Option<&Pager>,
) -> Result<Catalog> {
    let mut pending: HashMap<u64, Vec<WalDelta>> = HashMap::new();
    for rec in records {
        match rec {
            WalRecord::Begin { txn } => {
                pending.insert(txn, Vec::new());
            }
            WalRecord::Delta { txn, delta } => {
                pending.entry(txn).or_default().push(delta);
            }
            WalRecord::Commit { txn } => {
                if let Some(deltas) = pending.remove(&txn) {
                    for d in deltas {
                        if let Some(p) = pager {
                            if p.apply_delta(&d).is_err() {
                                p.set_rebuild();
                            }
                        }
                        apply_delta(&mut catalog, d)?;
                    }
                }
            }
            WalRecord::Checkpoint { tables } => {
                catalog = Catalog::new();
                for t in tables {
                    catalog.put_shared(t);
                }
                // The legacy image supersedes whatever the trees held.
                if let Some(p) = pager {
                    p.set_rebuild();
                }
            }
            WalRecord::PagedCheckpoint { .. } => {
                // `replay_paged` already consumed the governing marker;
                // a stray one here cannot carry data — ignore it.
            }
        }
    }
    Ok(catalog)
}

/// Apply a just-appended (already durable) frame buffer's committed
/// deltas to the paged store. Never fails — the commit is acknowledged
/// territory, so any tree trouble flips the pager to rebuild mode and
/// the next checkpoint recaptures everything from the catalog.
fn apply_frames_to_pager(pager: &Pager, buf: &[u8]) {
    let mut interner = TextInterner::new();
    let mut pending: HashMap<u64, Vec<WalDelta>> = HashMap::new();
    let mut at = 0usize;
    while let Some((rec, next)) = read_frame(buf, at, &mut interner) {
        at = next;
        match rec {
            WalRecord::Begin { txn } => {
                pending.insert(txn, Vec::new());
            }
            WalRecord::Delta { txn, delta } => {
                pending.entry(txn).or_default().push(delta);
            }
            WalRecord::Commit { txn } => {
                if let Some(deltas) = pending.remove(&txn) {
                    for d in deltas {
                        if pager.apply_delta(&d).is_err() {
                            pager.set_rebuild();
                            return;
                        }
                    }
                }
            }
            WalRecord::Checkpoint { .. } | WalRecord::PagedCheckpoint { .. } => {}
        }
    }
    if at != buf.len() {
        // A buffer this process just framed should decode in full; if it
        // somehow does not, degrade rather than diverge.
        pager.set_rebuild();
    }
}

// ---------------------------------------------------------------------------
// The log itself
// ---------------------------------------------------------------------------

/// An open write-ahead log positioned for appending. All I/O goes
/// through the [`Vfs`] the log was opened on.
pub struct Wal {
    vfs: Arc<dyn Vfs>,
    file: Box<dyn VfsFile>,
    path: PathBuf,
    len: u64,
    config: DurabilityConfig,
    /// The paged store ([`DurabilityConfig::paged`]). Lives under the WAL
    /// mutex: commits apply their deltas to the trees right after the
    /// fsync, checkpoints flush dirty pages instead of rewriting images.
    pager: Option<Pager>,
    /// Set when an I/O failure left the handle in a state where further
    /// appends could silently lose acknowledged commits (a partial frame
    /// that could not be rolled back, a post-rename reopen failure that
    /// left `file` pointing at an unlinked inode, or a checkpoint whose
    /// rename never became durable). A poisoned log fails every append
    /// fast; reopen the database to recover.
    poisoned: bool,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("len", &self.len)
            .field("config", &self.config)
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

/// The result of opening a WAL: the log (positioned at its intact end),
/// the recovered catalog, and the highest transaction id seen (so id
/// allocation can resume above it).
#[derive(Debug)]
pub struct Recovered {
    pub wal: Wal,
    pub catalog: Catalog,
    pub max_txn: u64,
}

impl Wal {
    /// Open (or create) the log at `path` on the real filesystem, replay
    /// the longest intact record prefix, and truncate any torn tail so
    /// subsequent appends start at a clean frame boundary.
    pub fn open(path: impl AsRef<Path>, config: DurabilityConfig) -> Result<Recovered> {
        Wal::open_on(Arc::new(RealFs), path, config)
    }

    /// [`Wal::open`] on an explicit [`Vfs`] — the seam the crash-sim
    /// harness injects its [`SimFs`](crate::vfs::SimFs) through.
    pub fn open_on(
        vfs: Arc<dyn Vfs>,
        path: impl AsRef<Path>,
        config: DurabilityConfig,
    ) -> Result<Recovered> {
        let path = path.as_ref().to_path_buf();
        let mut file = vfs.open(&path)?;
        let bytes = vfs.read(&path)?;

        let mut records = Vec::new();
        let mut good = 0usize;
        let mut interner = TextInterner::new();
        while let Some((rec, next)) = read_frame(&bytes, good, &mut interner) {
            records.push(rec);
            good = next;
        }
        if good < bytes.len() {
            // Torn tail: drop it now so a later crash cannot resurrect it.
            file.set_len(good as u64)?;
            file.sync_data()?;
        }

        let max_txn = records
            .iter()
            .map(|r| match r {
                WalRecord::Begin { txn }
                | WalRecord::Delta { txn, .. }
                | WalRecord::Commit { txn } => *txn,
                WalRecord::Checkpoint { .. } | WalRecord::PagedCheckpoint { .. } => 0,
            })
            .max()
            .unwrap_or(0);
        let (catalog, pager, normalize) = if config.paged {
            let pager = Pager::open(vfs.clone(), &path, config.pool_pages)?;
            let (catalog, normalize) = replay_paged(records, &pager)?;
            (catalog, Some(pager), normalize)
        } else {
            (replay(records)?, None, false)
        };
        let mut wal = Wal {
            vfs,
            file,
            path,
            len: good as u64,
            config,
            pager,
            poisoned: false,
        };
        if normalize {
            // The log predates the durable meta (crash between the meta
            // flip and the WAL swap). Its records are already folded into
            // the trees, but appending after them would make the *next*
            // recovery replay that stale tail on top of the meta —
            // finish the interrupted swap before accepting appends.
            wal.swap_to_marker()?;
        }
        Ok(Recovered { wal, catalog, max_txn })
    }

    /// Bytes currently in the log.
    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The durability configuration the log was opened with.
    pub fn config(&self) -> DurabilityConfig {
        self.config
    }

    /// Append a group of records as one write (one frame per record) and,
    /// when configured, fsync before returning — the commit point.
    ///
    /// On failure the file is rolled back to the last good frame
    /// boundary, so a partial frame can never sit *between* acknowledged
    /// commits (recovery truncates at the first bad frame — garbage in
    /// the middle would silently discard every later commit). If the
    /// rollback itself fails, the log poisons: all further appends error
    /// until the database is reopened.
    pub fn append(&mut self, records: &[WalRecord]) -> Result<()> {
        self.append_raw(&frame_group(records))
    }

    /// Append an already-framed buffer (one or many record groups — the
    /// group-commit leader concatenates a whole batch) as one write and
    /// at most one fsync. Same rollback/poison contract as [`append`]
    /// (Wal::append).
    pub fn append_raw(&mut self, buf: &[u8]) -> Result<()> {
        if self.poisoned {
            return Err(Error::Io(
                "wal: poisoned by an earlier i/o failure; reopen the database".into(),
            ));
        }
        let wrote = self.file.write_all_at(self.len, buf).and_then(|()| {
            if self.config.sync {
                self.file.sync_data()?;
            }
            Ok(())
        });
        match wrote {
            Ok(()) => {
                self.len += buf.len() as u64;
                if let Some(pager) = &self.pager {
                    // The frames are durable — the commit is already
                    // acknowledged territory, so tree maintenance must
                    // not fail it. Any hiccup flips the pager to rebuild
                    // mode (next checkpoint rebuilds from the catalog).
                    apply_frames_to_pager(pager, buf);
                }
                Ok(())
            }
            Err(e) => {
                let rewound =
                    self.file.set_len(self.len).and_then(|()| self.file.sync_data());
                if rewound.is_err() {
                    self.poisoned = true;
                }
                Err(e)
            }
        }
    }

    /// True once the log has reached the configured checkpoint budget.
    /// `>=`, not `>`: a log landing exactly on the budget checkpoints too
    /// (the strict form let it sit at the boundary forever).
    pub fn wants_checkpoint(&self) -> bool {
        self.len >= self.config.checkpoint_bytes
    }

    /// Page-store counters (pool hits/misses/evictions, epoch), when the
    /// pager is enabled.
    pub fn pager_stats(&self) -> Option<crate::pager::PagerStats> {
        self.pager.as_ref().map(Pager::stats)
    }

    /// Compact the log. With the pager enabled this is the incremental
    /// path: flush dirty pages + flip the meta (O(dirty pages)), then
    /// swap the log for a bare [`WalRecord::PagedCheckpoint`] marker.
    /// Without it, write a full catalog image — O(database). Either way
    /// the swap uses tmp + fsync + rename + dir-sync; on return the log
    /// holds exactly one record.
    pub fn checkpoint(&mut self, catalog: &Catalog) -> Result<()> {
        if let Some(pager) = &self.pager {
            // A retryable pager failure leaves durable state at the old
            // epoch with all retry state intact — no poison. But if the
            // meta rename landed and only its directory sync failed, the
            // new meta is ambiguously durable while this log still holds
            // pre-checkpoint records: a commit acknowledged now would be
            // silently discarded by a recovery that trusts the surviving
            // meta, so the log must poison (same contract as a failed
            // dir sync in [`Self::swap_log`]).
            let epoch = match pager.checkpoint(catalog) {
                Ok(epoch) => epoch,
                Err(e @ crate::pager::CheckpointError::Ambiguous(_)) => {
                    self.poisoned = true;
                    return Err(e.into_error());
                }
                Err(e) => return Err(e.into_error()),
            };
            return self.swap_log(&WalRecord::PagedCheckpoint { epoch });
        }
        let tables: Vec<Arc<Table>> = catalog
            .table_names()
            .iter()
            .filter_map(|n| catalog.get(n).cloned())
            .collect();
        self.swap_log(&WalRecord::Checkpoint { tables })
    }

    /// Rewrite the log to a marker at the pager's current epoch (finishes
    /// an interrupted checkpoint swap found during recovery).
    fn swap_to_marker(&mut self) -> Result<()> {
        let epoch = match &self.pager {
            Some(p) => p.epoch(),
            None => {
                return Err(Error::Internal(
                    "wal: marker normalization without a pager".into(),
                ))
            }
        };
        self.swap_log(&WalRecord::PagedCheckpoint { epoch })
    }

    /// Atomically replace the log with a single record.
    fn swap_log(&mut self, record: &WalRecord) -> Result<()> {
        let mut buf = Vec::new();
        frame(record, &mut buf);

        let mut tmp_name = self.path.clone().into_os_string();
        tmp_name.push(".tmp");
        let tmp = PathBuf::from(tmp_name);
        {
            let mut f = self.vfs.create(&tmp)?;
            f.write_all_at(0, &buf)?;
            f.sync_data()?;
        }
        self.vfs.rename(&tmp, &self.path)?;
        // The rename must be durable before any post-checkpoint commit
        // can be acknowledged: until the directory entry reaches disk, a
        // crash resolves the log's name to the OLD inode, so every later
        // append — fsynced to the new inode and acknowledged — would
        // silently vanish. A failed directory sync therefore poisons the
        // log: no further append can be falsely acknowledged, and a
        // reopen recovers from whichever image survived (old log and new
        // image hold the same committed state).
        if let Err(e) = self.vfs.sync_parent_dir(&self.path) {
            self.poisoned = true;
            return Err(e);
        }
        // The rename unlinked the old inode `self.file` points at. If the
        // reopen fails we must poison: appending through the stale handle
        // would "durably" write into a deleted file.
        match self.vfs.open(&self.path) {
            Ok(file) => {
                self.file = file;
                self.len = buf.len() as u64;
                Ok(())
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::Column;
    use crate::value::Value;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "swan-wal-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&p);
        // The paged store keeps siblings next to the log; stale ones from
        // a previous run would be a different database.
        for suffix in [".pages", ".meta"] {
            let mut s = p.clone().into_os_string();
            s.push(suffix);
            let _ = std::fs::remove_file(PathBuf::from(s));
        }
        p
    }

    fn sample_table(rows: usize) -> Table {
        let mut t = Table::new(
            "t",
            vec![Column::new("id"), Column::new("name")],
            &["id".to_string()],
        )
        .unwrap();
        for i in 0..rows {
            t.insert_row(vec![(i as i64).into(), format!("row-{i}").into()]).unwrap();
        }
        t
    }

    /// A log landing *exactly* on `checkpoint_bytes` must checkpoint
    /// (`>=`): the old strict `>` let a log that hit the budget on the
    /// nose sit at the boundary forever, never reclaiming it.
    #[test]
    fn checkpoint_triggers_exactly_at_the_byte_budget() {
        let path = temp_path("ckpt-boundary");
        let mut rec = Wal::open(&path, DurabilityConfig::default()).unwrap();
        rec.wal.append(&[WalRecord::Begin { txn: 1 }, WalRecord::Commit { txn: 1 }]).unwrap();
        let len = rec.wal.len;
        assert!(len > 0);
        rec.wal.config.checkpoint_bytes = len + 1;
        assert!(!rec.wal.wants_checkpoint(), "one byte under budget: no checkpoint yet");
        rec.wal.config.checkpoint_bytes = len;
        assert!(rec.wal.wants_checkpoint(), "exactly at budget: must checkpoint");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_and_reopen_round_trips() {
        let path = temp_path("roundtrip");
        {
            let mut rec = Wal::open(&path, DurabilityConfig::default()).unwrap();
            assert!(rec.catalog.is_empty());
            rec.wal
                .append(&[
                    WalRecord::Begin { txn: 1 },
                    WalRecord::Delta {
                        txn: 1,
                        delta: WalDelta::Put { table: Arc::new(sample_table(3)) },
                    },
                    WalRecord::Commit { txn: 1 },
                ])
                .unwrap();
        }
        let rec = Wal::open(&path, DurabilityConfig::default()).unwrap();
        assert_eq!(rec.max_txn, 1);
        assert_eq!(rec.catalog.row_count("t"), Some(3));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn uncommitted_transactions_are_discarded() {
        let path = temp_path("uncommitted");
        {
            let mut rec = Wal::open(&path, DurabilityConfig::default()).unwrap();
            rec.wal
                .append(&[
                    WalRecord::Begin { txn: 7 },
                    WalRecord::Delta {
                        txn: 7,
                        delta: WalDelta::Put { table: Arc::new(sample_table(5)) },
                    },
                    // No commit: a crash happened before the commit record.
                ])
                .unwrap();
        }
        let rec = Wal::open(&path, DurabilityConfig::default()).unwrap();
        assert!(rec.catalog.is_empty(), "uncommitted delta must not apply");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_at_every_offset() {
        let path = temp_path("torn");
        {
            let mut rec = Wal::open(&path, DurabilityConfig::default()).unwrap();
            rec.wal
                .append(&[
                    WalRecord::Begin { txn: 1 },
                    WalRecord::Delta {
                        txn: 1,
                        delta: WalDelta::Put { table: Arc::new(sample_table(2)) },
                    },
                    WalRecord::Commit { txn: 1 },
                ])
                .unwrap();
        }
        let intact = std::fs::read(&path).unwrap();
        for cut in 0..intact.len() {
            std::fs::write(&path, &intact[..cut]).unwrap();
            let rec = Wal::open(&path, DurabilityConfig::default()).unwrap();
            // Either nothing committed yet (torn inside the txn) or the
            // full commit survived; never a partial state.
            let n = rec.catalog.row_count("t");
            assert!(
                n.is_none() || n == Some(2),
                "cut at {cut}: unexpected state {n:?}"
            );
            drop(rec);
            // The torn tail is physically gone: reopening is idempotent.
            let reopened = std::fs::metadata(&path).unwrap().len();
            let again = Wal::open(&path, DurabilityConfig::default()).unwrap();
            assert_eq!(again.wal.len(), reopened);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bitflip_invalidates_the_frame() {
        let path = temp_path("bitflip");
        {
            let mut rec = Wal::open(&path, DurabilityConfig::default()).unwrap();
            rec.wal
                .append(&[
                    WalRecord::Begin { txn: 1 },
                    WalRecord::Delta {
                        txn: 1,
                        delta: WalDelta::Put { table: Arc::new(sample_table(2)) },
                    },
                    WalRecord::Commit { txn: 1 },
                ])
                .unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let rec = Wal::open(&path, DurabilityConfig::default()).unwrap();
        assert!(
            rec.catalog.row_count("t").is_none(),
            "a corrupted delta frame must invalidate the whole transaction"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_compacts_and_replays() {
        let path = temp_path("checkpoint");
        {
            let mut rec = Wal::open(&path, DurabilityConfig::default()).unwrap();
            let mut catalog = Catalog::new();
            catalog.put_table(sample_table(4));
            for txn in 1..=10u64 {
                rec.wal
                    .append(&[
                        WalRecord::Begin { txn },
                        WalRecord::Delta {
                            txn,
                            delta: WalDelta::Put { table: Arc::new(sample_table(4)) },
                        },
                        WalRecord::Commit { txn },
                    ])
                    .unwrap();
            }
            let before = rec.wal.len();
            rec.wal.checkpoint(&catalog).unwrap();
            assert!(rec.wal.len() < before, "checkpoint must shrink the log");
        }
        let rec = Wal::open(&path, DurabilityConfig::default()).unwrap();
        assert_eq!(rec.catalog.row_count("t"), Some(4));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_delta_extends_existing_table() {
        let path = temp_path("appendrows");
        {
            let mut rec = Wal::open(&path, DurabilityConfig::default()).unwrap();
            let base = sample_table(2);
            let extra: Vec<Row> = vec![
                vec![Value::Integer(2), Value::text("row-2")].into(),
                vec![Value::Integer(3), Value::text("row-3")].into(),
            ];
            rec.wal
                .append(&[
                    WalRecord::Begin { txn: 1 },
                    WalRecord::Delta {
                        txn: 1,
                        delta: WalDelta::Put { table: Arc::new(base) },
                    },
                    WalRecord::Commit { txn: 1 },
                    WalRecord::Begin { txn: 2 },
                    WalRecord::Delta {
                        txn: 2,
                        delta: WalDelta::Append { table: "t".into(), rows: extra, new_version: 5 },
                    },
                    WalRecord::Commit { txn: 2 },
                ])
                .unwrap();
        }
        let rec = Wal::open(&path, DurabilityConfig::default()).unwrap();
        assert_eq!(rec.catalog.row_count("t"), Some(4));
        assert_eq!(rec.catalog.version("t"), Some(5));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn row_patch_delta_replays_updates_and_deletes() {
        let path = temp_path("rowpatch");
        {
            let mut rec = Wal::open(&path, DurabilityConfig::default()).unwrap();
            // Base: ids 0..4. Patch: delete id 1, rewrite id 2, insert id 9.
            let deletes: Vec<Row> = vec![vec![Value::Integer(1)].into()];
            let upserts: Vec<Row> = vec![
                vec![Value::Integer(2), Value::text("rewritten")].into(),
                vec![Value::Integer(9), Value::text("fresh")].into(),
            ];
            rec.wal
                .append(&[
                    WalRecord::Begin { txn: 1 },
                    WalRecord::Delta {
                        txn: 1,
                        delta: WalDelta::Put { table: Arc::new(sample_table(4)) },
                    },
                    WalRecord::Commit { txn: 1 },
                    WalRecord::Begin { txn: 2 },
                    WalRecord::Delta {
                        txn: 2,
                        delta: WalDelta::RowPatch {
                            table: "t".into(),
                            deletes,
                            upserts,
                            new_version: 9,
                        },
                    },
                    WalRecord::Commit { txn: 2 },
                ])
                .unwrap();
        }
        let rec = Wal::open(&path, DurabilityConfig::default()).unwrap();
        assert_eq!(rec.catalog.row_count("t"), Some(4), "4 - 1 deleted + 1 inserted");
        assert_eq!(rec.catalog.version("t"), Some(9));
        let t = rec.catalog.get("t").unwrap();
        // The rewrite lands in place (row order preserved), the insert at
        // the tail, and the deleted key is gone.
        let ids: Vec<Option<i64>> = t.rows.iter().map(|r| r[0].as_i64()).collect();
        assert_eq!(ids, vec![Some(0), Some(2), Some(3), Some(9)]);
        assert_eq!(t.rows[1][1], Value::text("rewritten"));
        let _ = std::fs::remove_file(&path);
    }
}
