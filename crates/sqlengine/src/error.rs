//! Error types for the SQL engine.
//!
//! All fallible public APIs return [`Result<T>`](Result) with the crate-wide
//! [`Error`] enum. Errors carry enough context (names, positions) to be
//! actionable without needing a backtrace.

use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Every way a statement can fail, from tokenization through execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The lexer met a character or literal it cannot tokenize.
    Lex { pos: usize, message: String },
    /// The parser met an unexpected token.
    Parse { pos: usize, message: String },
    /// Name resolution failed: unknown table, column, alias or function.
    Unresolved(String),
    /// A table (or other catalog object) with this name already exists.
    AlreadyExists(String),
    /// The catalog has no object with this name.
    NotFound(String),
    /// A statement is well-formed but semantically invalid
    /// (e.g. aggregate inside WHERE, arity mismatch on INSERT).
    Semantic(String),
    /// Runtime type error during expression evaluation.
    Type(String),
    /// Division by zero, numeric overflow, or other arithmetic failure.
    Arithmetic(String),
    /// A user-defined function reported a failure.
    Udf { name: String, message: String },
    /// A constraint (primary key, NOT NULL) was violated.
    Constraint(String),
    /// Feature recognized by the grammar but not supported by this engine.
    Unsupported(String),
    /// A transaction lost a first-committer-wins conflict check: another
    /// session committed to one of its written tables after its snapshot
    /// was pinned. The transaction is rolled back; retry it.
    Conflict(String),
    /// Durability I/O failure (WAL append, sync, checkpoint, recovery).
    /// Carries the rendered `std::io::Error` (kept as text so [`Error`]
    /// stays `Clone + PartialEq`).
    Io(String),
    /// The statement requires a transaction state the session is not in
    /// (COMMIT without BEGIN, BEGIN inside an open transaction, ...).
    Txn(String),
    /// The statement's deadline (`statement_timeout`) expired before it
    /// finished. The statement was abandoned cleanly at a cooperative
    /// checkpoint; no partial effects are visible.
    Deadline,
    /// The statement was cancelled through its session's cancel token.
    Cancelled,
    /// An engine invariant was violated on a commit or recovery path.
    /// These replace `panic!`/`expect` in code that must not abort the
    /// process (the swan-analyze `no-panic-paths` rule): the statement
    /// fails with context instead of crashing a multi-session server.
    Internal(String),
}

impl Error {
    /// Convenience constructor for parse errors.
    pub fn parse(pos: usize, message: impl Into<String>) -> Self {
        Error::Parse { pos, message: message.into() }
    }

    /// Convenience constructor for lex errors.
    pub fn lex(pos: usize, message: impl Into<String>) -> Self {
        Error::Lex { pos, message: message.into() }
    }
}

impl From<swan_pool::CancelReason> for Error {
    fn from(reason: swan_pool::CancelReason) -> Self {
        match reason {
            swan_pool::CancelReason::DeadlineExceeded => Error::Deadline,
            swan_pool::CancelReason::Cancelled => Error::Cancelled,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lex { pos, message } => write!(f, "lex error at byte {pos}: {message}"),
            Error::Parse { pos, message } => write!(f, "parse error at token {pos}: {message}"),
            Error::Unresolved(name) => write!(f, "cannot resolve name: {name}"),
            Error::AlreadyExists(name) => write!(f, "object already exists: {name}"),
            Error::NotFound(name) => write!(f, "no such object: {name}"),
            Error::Semantic(msg) => write!(f, "semantic error: {msg}"),
            Error::Type(msg) => write!(f, "type error: {msg}"),
            Error::Arithmetic(msg) => write!(f, "arithmetic error: {msg}"),
            Error::Udf { name, message } => write!(f, "error in function {name}: {message}"),
            Error::Constraint(msg) => write!(f, "constraint violation: {msg}"),
            Error::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            Error::Conflict(msg) => write!(f, "transaction conflict: {msg}"),
            Error::Io(msg) => write!(f, "i/o error: {msg}"),
            Error::Txn(msg) => write!(f, "transaction error: {msg}"),
            // Pinned by tests/slt/errors.slt — keep the text stable.
            Error::Deadline => write!(f, "statement timeout: deadline exceeded"),
            Error::Cancelled => write!(f, "statement cancelled"),
            Error::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(
            Error::lex(3, "bad char").to_string(),
            "lex error at byte 3: bad char"
        );
        assert_eq!(
            Error::parse(7, "expected FROM").to_string(),
            "parse error at token 7: expected FROM"
        );
        assert_eq!(
            Error::Unresolved("t.x".into()).to_string(),
            "cannot resolve name: t.x"
        );
        assert_eq!(
            Error::Udf { name: "llm_map".into(), message: "boom".into() }.to_string(),
            "error in function llm_map: boom"
        );
        assert_eq!(Error::Deadline.to_string(), "statement timeout: deadline exceeded");
        assert_eq!(Error::Cancelled.to_string(), "statement cancelled");
    }

    #[test]
    fn cancel_reasons_map_to_engine_errors() {
        assert_eq!(Error::from(swan_pool::CancelReason::DeadlineExceeded), Error::Deadline);
        assert_eq!(Error::from(swan_pool::CancelReason::Cancelled), Error::Cancelled);
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::NotFound("t".into()), Error::NotFound("t".into()));
        assert_ne!(Error::NotFound("t".into()), Error::AlreadyExists("t".into()));
    }
}
