//! Built-in scalar functions, aggregate descriptors, and the scalar-UDF
//! registry that hybrid-query LLM functions plug into.
//!
//! UDFs implement [`ScalarUdf`] and are registered on the
//! [`Database`](crate::db::Database); they may keep interior-mutable state
//! (an LLM client, a cache, usage counters), which is why calls take `&self`
//! and registration stores an `Arc`.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::value::Value;

/// A scalar user-defined function.
///
/// Implementations must be deterministic per input within a single query
/// execution (the executor may evaluate a row expression more than once).
pub trait ScalarUdf: Send + Sync {
    /// Function name as referenced from SQL (matched case-insensitively).
    fn name(&self) -> &str;
    /// Invoke on one row's argument values.
    fn invoke(&self, args: &[Value]) -> Result<Value>;
    /// Invoke on a batch of argument tuples, returning one value per tuple
    /// in input order.
    ///
    /// The executor calls this once per operator input batch with the
    /// *distinct* argument tuples of an expensive call site, so an
    /// implementation backed by a remote model can chunk the tuples into
    /// multi-key prompts and fan them out in parallel instead of paying
    /// one round-trip per row. The default simply loops [`invoke`]
    /// (correct for any UDF, batched for none).
    ///
    /// [`invoke`]: ScalarUdf::invoke
    fn invoke_batch(&self, rows: &[Vec<Value>]) -> Result<Vec<Value>> {
        rows.iter().map(|args| self.invoke(args)).collect()
    }
    /// Arity check; `None` means variadic. Default: variadic.
    fn arity(&self) -> Option<usize> {
        None
    }
    /// A cost hint for the optimizer: expensive functions (e.g. LLM calls)
    /// are worth avoiding via predicate pushdown. Plain functions are cheap.
    fn is_expensive(&self) -> bool {
        false
    }
}

/// Registry of scalar UDFs; cheap to clone (shared map behind `Arc`s).
#[derive(Default, Clone)]
pub struct UdfRegistry {
    funcs: HashMap<String, Arc<dyn ScalarUdf>>,
}

impl UdfRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a UDF; replaces any previous function with the same name.
    pub fn register(&mut self, udf: Arc<dyn ScalarUdf>) {
        self.funcs.insert(udf.name().to_ascii_lowercase(), udf);
    }

    /// Look up a UDF by (case-insensitive) name.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn ScalarUdf>> {
        self.funcs.get(&name.to_ascii_lowercase())
    }

    /// Whether `name` refers to a registered expensive function.
    pub fn is_expensive(&self, name: &str) -> bool {
        self.get(name).is_some_and(|f| f.is_expensive())
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.funcs.keys().map(String::as_str)
    }
}

impl std::fmt::Debug for UdfRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdfRegistry").field("functions", &self.funcs.len()).finish()
    }
}

/// Names of the supported aggregate functions.
pub const AGGREGATES: &[&str] = &["COUNT", "SUM", "AVG", "MIN", "MAX", "TOTAL", "GROUP_CONCAT"];

/// True iff `name` (any case) is an aggregate function.
pub fn is_aggregate(name: &str) -> bool {
    AGGREGATES.iter().any(|a| a.eq_ignore_ascii_case(name))
}

/// Evaluate a built-in scalar function. Returns `None` if the name is not a
/// built-in (the caller then consults the UDF registry).
pub fn eval_builtin(name: &str, args: &[Value]) -> Option<Result<Value>> {
    let upper = name.to_ascii_uppercase();
    let r = match upper.as_str() {
        "UPPER" => unary_text(&upper, args, |s| s.to_uppercase()),
        "LOWER" => unary_text(&upper, args, |s| s.to_lowercase()),
        "LENGTH" => match require(&upper, args, 1) {
            Err(e) => Err(e),
            Ok(()) => Ok(match &args[0] {
                Value::Null => Value::Null,
                Value::Text(s) => Value::Integer(s.chars().count() as i64),
                other => Value::Integer(other.render().chars().count() as i64),
            }),
        },
        "TRIM" => unary_text(&upper, args, |s| s.trim().to_string()),
        "LTRIM" => unary_text(&upper, args, |s| s.trim_start().to_string()),
        "RTRIM" => unary_text(&upper, args, |s| s.trim_end().to_string()),
        "ABS" => match require(&upper, args, 1) {
            Err(e) => Err(e),
            Ok(()) => match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Integer(i) => i
                    .checked_abs()
                    .map(Value::Integer)
                    .ok_or_else(|| Error::Arithmetic("ABS overflow".into())),
                Value::Real(r) => Ok(Value::Real(r.abs())),
                Value::Text(s) => match crate::value::parse_text_f64(s) {
                    Some(v) => Ok(Value::Real(v.abs())),
                    None => Ok(Value::Real(0.0)),
                },
            },
        },
        "ROUND" => round(args),
        "COALESCE" => Ok(args.iter().find(|v| !v.is_null()).cloned().unwrap_or(Value::Null)),
        "IFNULL" => match require(&upper, args, 2) {
            Err(e) => Err(e),
            Ok(()) => Ok(if args[0].is_null() { args[1].clone() } else { args[0].clone() }),
        },
        "NULLIF" => match require(&upper, args, 2) {
            Err(e) => Err(e),
            Ok(()) => Ok(if args[0].sql_eq(&args[1]) == Some(true) {
                Value::Null
            } else {
                args[0].clone()
            }),
        },
        "SUBSTR" | "SUBSTRING" => substr(args),
        "INSTR" => match require(&upper, args, 2) {
            Err(e) => Err(e),
            Ok(()) => {
                if args[0].is_null() || args[1].is_null() {
                    Ok(Value::Null)
                } else {
                    let hay = args[0].render();
                    let needle = args[1].render();
                    let pos = if needle.is_empty() {
                        if hay.is_empty() { 0 } else { 1 }
                    } else {
                        hay.find(&needle).map(|b| hay[..b].chars().count() + 1).unwrap_or(0)
                    };
                    Ok(Value::Integer(pos as i64))
                }
            }
        },
        "REPLACE" => match require(&upper, args, 3) {
            Err(e) => Err(e),
            Ok(()) => {
                if args.iter().any(Value::is_null) {
                    Ok(Value::Null)
                } else {
                    let s = args[0].render();
                    let from = args[1].render();
                    if from.is_empty() {
                        Ok(Value::text(s))
                    } else {
                        Ok(Value::text(s.replace(&from, &args[2].render())))
                    }
                }
            }
        },
        "MIN" | "MAX" if args.len() >= 2 => {
            // Scalar (multi-argument) MIN/MAX, as in SQLite.
            if args.iter().any(Value::is_null) {
                return Some(Ok(Value::Null));
            }
            let mut best = args[0].clone();
            for v in &args[1..] {
                let take = if upper == "MIN" {
                    v.sort_cmp(&best) == std::cmp::Ordering::Less
                } else {
                    v.sort_cmp(&best) == std::cmp::Ordering::Greater
                };
                if take {
                    best = v.clone();
                }
            }
            Ok(best)
        }
        "TYPEOF" => match require(&upper, args, 1) {
            Err(e) => Err(e),
            Ok(()) => Ok(Value::text(args[0].type_name())),
        },
        "PRINTF" | "FORMAT" => printf(args),
        "CONCAT" => Ok(Value::text(args.iter().map(Value::render).collect::<Vec<_>>().join(""))),
        _ => return None,
    };
    Some(r)
}

fn require(name: &str, args: &[Value], n: usize) -> Result<()> {
    if args.len() == n {
        Ok(())
    } else {
        Err(Error::Semantic(format!("{name} expects {n} argument(s), got {}", args.len())))
    }
}

fn unary_text(name: &str, args: &[Value], f: impl Fn(&str) -> String) -> Result<Value> {
    require(name, args, 1)?;
    Ok(match &args[0] {
        Value::Null => Value::Null,
        other => Value::text(f(&other.render())),
    })
}

fn round(args: &[Value]) -> Result<Value> {
    if args.is_empty() || args.len() > 2 {
        return Err(Error::Semantic("ROUND expects 1 or 2 arguments".into()));
    }
    if args[0].is_null() {
        return Ok(Value::Null);
    }
    let x = args[0]
        .as_f64()
        .ok_or_else(|| Error::Type(format!("ROUND on non-numeric {}", args[0])))?;
    let digits = if args.len() == 2 {
        if args[1].is_null() {
            return Ok(Value::Null);
        }
        args[1].as_i64().unwrap_or(0).clamp(-15, 15)
    } else {
        0
    };
    let factor = 10f64.powi(digits as i32);
    Ok(Value::Real((x * factor).round() / factor))
}

fn substr(args: &[Value]) -> Result<Value> {
    if args.len() < 2 || args.len() > 3 {
        return Err(Error::Semantic("SUBSTR expects 2 or 3 arguments".into()));
    }
    if args[0].is_null() || args[1].is_null() {
        return Ok(Value::Null);
    }
    let s: Vec<char> = args[0].render().chars().collect();
    let n = s.len() as i64;
    let mut start = args[1]
        .as_i64()
        .ok_or_else(|| Error::Type("SUBSTR start must be an integer".into()))?;
    let len = match args.get(2) {
        None => i64::MAX,
        Some(v) if v.is_null() => return Ok(Value::Null),
        Some(v) => v.as_i64().ok_or_else(|| Error::Type("SUBSTR length must be an integer".into()))?,
    };
    // SQLite: 1-based; 0 behaves like 1; negative counts from the end.
    if start < 0 {
        start = (n + start + 1).max(1);
    } else if start == 0 {
        start = 1;
    }
    if len <= 0 {
        return Ok(Value::text(""));
    }
    let begin = (start - 1).clamp(0, n) as usize;
    let end = ((start - 1).saturating_add(len)).clamp(0, n) as usize;
    Ok(Value::text(s[begin..end.max(begin)].iter().collect::<String>()))
}

/// Tiny printf supporting %s, %d, %f, %.Nf and %% — enough for URL and code
/// formatting in the benchmark generators.
fn printf(args: &[Value]) -> Result<Value> {
    let Some(fmt) = args.first() else {
        return Err(Error::Semantic("PRINTF expects a format string".into()));
    };
    if fmt.is_null() {
        return Ok(Value::Null);
    }
    let fmt = fmt.render();
    let mut out = String::with_capacity(fmt.len());
    let mut arg_i = 1;
    let mut chars = fmt.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let mut spec = String::new();
        loop {
            match chars.next() {
                None => return Err(Error::Semantic("dangling % in PRINTF format".into())),
                Some('%') if spec.is_empty() => {
                    out.push('%');
                    break;
                }
                Some(c2) if "sdif".contains(c2) => {
                    let v = args.get(arg_i).cloned().unwrap_or(Value::Null);
                    arg_i += 1;
                    match c2 {
                        's' => out.push_str(&v.render()),
                        'd' | 'i' => out.push_str(&v.as_i64().unwrap_or(0).to_string()),
                        'f' => {
                            let prec = spec
                                .strip_prefix('.')
                                .and_then(|p| p.parse::<usize>().ok())
                                .unwrap_or(6);
                            out.push_str(&format!("{:.*}", prec, v.as_f64().unwrap_or(0.0)));
                        }
                        _ => unreachable!(),
                    }
                    break;
                }
                Some(c2) if c2.is_ascii_digit() || c2 == '.' => spec.push(c2),
                Some(c2) => {
                    return Err(Error::Semantic(format!("unsupported PRINTF directive %{spec}{c2}")))
                }
            }
        }
    }
    Ok(Value::text(out))
}

/// Evaluate `expr LIKE pattern` with `%` and `_` wildcards
/// (case-insensitive for ASCII, as in SQLite).
pub fn like_match(text: &str, pattern: &str) -> bool {
    fn inner(t: &[u8], p: &[u8]) -> bool {
        if p.is_empty() {
            return t.is_empty();
        }
        match p[0] {
            b'%' => {
                // Collapse consecutive % for linear behaviour on repeats.
                let p_rest = &p[1..];
                if p_rest.is_empty() {
                    return true;
                }
                (0..=t.len()).any(|i| inner(&t[i..], p_rest))
            }
            b'_' => !t.is_empty() && inner(&t[1..], &p[1..]),
            c => {
                !t.is_empty()
                    && t[0].eq_ignore_ascii_case(&c)
                    && inner(&t[1..], &p[1..])
            }
        }
    }
    inner(text.as_bytes(), pattern.as_bytes())
}

/// Evaluate `expr GLOB pattern` with `*` and `?` wildcards (case-sensitive).
pub fn glob_match(text: &str, pattern: &str) -> bool {
    fn inner(t: &[u8], p: &[u8]) -> bool {
        if p.is_empty() {
            return t.is_empty();
        }
        match p[0] {
            b'*' => {
                let p_rest = &p[1..];
                if p_rest.is_empty() {
                    return true;
                }
                (0..=t.len()).any(|i| inner(&t[i..], p_rest))
            }
            b'?' => !t.is_empty() && inner(&t[1..], &p[1..]),
            c => !t.is_empty() && t[0] == c && inner(&t[1..], &p[1..]),
        }
    }
    inner(text.as_bytes(), pattern.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(name: &str, args: &[Value]) -> Value {
        eval_builtin(name, args).unwrap().unwrap()
    }

    #[test]
    fn case_functions() {
        assert_eq!(call("upper", &["abc".into()]), Value::text("ABC"));
        assert_eq!(call("LOWER", &["AbC".into()]), Value::text("abc"));
        assert!(call("UPPER", &[Value::Null]).is_null());
    }

    #[test]
    fn length_counts_chars() {
        assert_eq!(call("LENGTH", &["héro".into()]), Value::Integer(4));
        assert!(call("LENGTH", &[Value::Null]).is_null());
        assert_eq!(call("LENGTH", &[Value::Integer(1234)]), Value::Integer(4));
    }

    #[test]
    fn substr_sqlite_semantics() {
        assert_eq!(call("SUBSTR", &["hello".into(), 2.into()]), Value::text("ello"));
        assert_eq!(call("SUBSTR", &["hello".into(), 2.into(), 3.into()]), Value::text("ell"));
        assert_eq!(call("SUBSTR", &["hello".into(), (-3).into()]), Value::text("llo"));
        assert_eq!(call("SUBSTR", &["hello".into(), 0.into(), 2.into()]), Value::text("he"));
        assert_eq!(call("SUBSTR", &["hello".into(), 10.into()]), Value::text(""));
    }

    #[test]
    fn instr_is_one_based() {
        assert_eq!(call("INSTR", &["superhero".into(), "hero".into()]), Value::Integer(6));
        assert_eq!(call("INSTR", &["abc".into(), "z".into()]), Value::Integer(0));
    }

    #[test]
    fn replace_and_concat() {
        assert_eq!(
            call("REPLACE", &["a-b-c".into(), "-".into(), "+".into()]),
            Value::text("a+b+c")
        );
        assert_eq!(
            call("CONCAT", &["www.".into(), "school".into(), ".edu".into()]),
            Value::text("www.school.edu")
        );
    }

    #[test]
    fn coalesce_ifnull_nullif() {
        assert_eq!(call("COALESCE", &[Value::Null, Value::Null, 3.into()]), Value::Integer(3));
        assert_eq!(call("IFNULL", &[Value::Null, "x".into()]), Value::text("x"));
        assert!(call("NULLIF", &[5.into(), 5.into()]).is_null());
        assert_eq!(call("NULLIF", &[5.into(), 6.into()]), Value::Integer(5));
    }

    #[test]
    fn round_behaviour() {
        assert_eq!(call("ROUND", &[Value::Real(2.567), 2.into()]), Value::Real(2.57));
        assert_eq!(call("ROUND", &[Value::Real(2.5)]), Value::Real(3.0));
        assert!(call("ROUND", &[Value::Null]).is_null());
    }

    #[test]
    fn scalar_min_max_multiarg() {
        assert_eq!(call("MAX", &[1.into(), 9.into(), 4.into()]), Value::Integer(9));
        assert_eq!(call("MIN", &[1.into(), 9.into(), 4.into()]), Value::Integer(1));
        assert!(call("MAX", &[1.into(), Value::Null]).is_null());
    }

    #[test]
    fn printf_formats() {
        assert_eq!(
            call("PRINTF", &["%s-%d".into(), "x".into(), 42.into()]),
            Value::text("x-42")
        );
        assert_eq!(
            call("PRINTF", &["%.2f%%".into(), Value::Real(0.4567)]),
            Value::text("0.46%")
        );
    }

    #[test]
    fn like_wildcards() {
        assert!(like_match("Marvel Comics", "Marvel%"));
        assert!(like_match("Marvel Comics", "%comics"));
        assert!(like_match("Spider-Man", "%ider%"));
        assert!(like_match("cat", "c_t"));
        assert!(!like_match("cart", "c_t"));
        assert!(like_match("", "%"));
        assert!(!like_match("abc", ""));
        assert!(like_match("ABC", "abc"), "LIKE is case-insensitive");
    }

    #[test]
    fn glob_wildcards() {
        assert!(glob_match("file.txt", "*.txt"));
        assert!(!glob_match("FILE.TXT", "*.txt"), "GLOB is case-sensitive");
        assert!(glob_match("a1b", "a?b"));
    }

    #[test]
    fn like_pathological_pattern_is_fast() {
        // Consecutive %s should not blow up exponentially.
        let t = "a".repeat(60);
        let p = format!("%{}%", "a".repeat(30));
        assert!(like_match(&t, &p));
    }

    #[test]
    fn udf_registry_roundtrip() {
        struct Echo;
        impl ScalarUdf for Echo {
            fn name(&self) -> &str {
                "echo"
            }
            fn invoke(&self, args: &[Value]) -> Result<Value> {
                Ok(args.first().cloned().unwrap_or(Value::Null))
            }
            fn is_expensive(&self) -> bool {
                true
            }
        }
        let mut reg = UdfRegistry::new();
        reg.register(Arc::new(Echo));
        assert!(reg.get("ECHO").is_some(), "lookup is case-insensitive");
        assert!(reg.is_expensive("Echo"));
        let v = reg.get("echo").unwrap().invoke(&[7.into()]).unwrap();
        assert_eq!(v, Value::Integer(7));
    }

    #[test]
    fn unknown_builtin_returns_none() {
        assert!(eval_builtin("no_such_fn", &[]).is_none());
    }
}
