//! The virtual filesystem seam under the durability layer.
//!
//! Every byte the WAL and the checkpointer touch goes through a [`Vfs`]:
//! [`RealFs`] is the production passthrough to `std::fs`, and [`SimFs`] is
//! an in-memory filesystem that records every operation and can
//! deterministically *fail* or *crash* at any operation index — the
//! substrate the `crash_sim` harness sweeps to prove that recovery always
//! lands on a clean prefix of acknowledged commits.
//!
//! # Why a VFS
//!
//! The pre-existing recovery harness (`tests/wal_recovery.rs`) only
//! truncates a *finished* log file. Real durability bugs hide in
//! mid-write failures: a partial append the rollback path must erase, an
//! fsync that reports failure after the bytes left the process, a crash
//! between a checkpoint's rename and its directory sync. Those schedules
//! cannot be produced with `std::fs` on a healthy disk; they are one
//! `set_fault` call on a [`SimFs`].
//!
//! # SimFs crash model
//!
//! The simulated disk has real **inode semantics**: the namespace maps
//! paths to inodes, handles reference inodes (a handle kept across a
//! rename keeps writing the same storage, exactly like an fd), and two
//! images exist of everything:
//!
//! * the **volatile** image — what the running process observes (every
//!   write and namespace change lands here immediately);
//! * the **durable** image — what survives a crash: `sync_data` flushes
//!   an *inode's contents* (and, journaled-filesystem style, the
//!   still-pending directory entry that *created* the file), while a
//!   **rename over an existing name becomes durable only through
//!   `sync_parent_dir`** — until then a crash resolves the name to the
//!   old inode, which is how real filesystems lose renamed-over files
//!   and why checkpointers must fsync the directory.
//!
//! A [`FaultKind::Crash`] freezes the filesystem: the crashing operation
//! applies a configurable prefix of its effect ([`Torn`]), and every
//! later operation fails. [`SimFs::reboot`] then yields the disk a
//! restarted process would see — either the durable image alone
//! (`keep_unsynced = false`: the kernel lost everything unflushed) or the
//! full volatile image (`keep_unsynced = true`: everything written made
//! it down). A correct commit protocol must recover cleanly from *both*,
//! because it only acknowledged data after `sync_data` returned.
//!
//! [`FaultKind::FailOp`] models a transient I/O error instead: the one
//! operation fails (a write applies half its payload first — a short
//! write), everything after it succeeds, and the process keeps running —
//! exercising the WAL's rollback-and-poison paths.

use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use swan_pool::{lockrank, ClockHandle, RealClock};

use crate::error::{Error, Result};

/// An open file handle behind the VFS seam.
pub trait VfsFile: Send {
    /// Write the whole buffer at `offset`, extending the file as needed.
    fn write_all_at(&mut self, offset: u64, data: &[u8]) -> Result<()>;
    /// Read exactly `len` bytes at `offset`. A read past end-of-file is an
    /// error, not a short read: the paged store only ever reads page slots
    /// it has written, so a short read means corruption.
    fn read_exact_at(&mut self, offset: u64, len: usize) -> Result<Vec<u8>>;
    /// Truncate (or extend with zeros) to exactly `len` bytes.
    fn set_len(&mut self, len: u64) -> Result<()>;
    /// Flush file contents to durable storage — the acknowledgment point.
    fn sync_data(&mut self) -> Result<()>;
}

/// The filesystem operations the durability layer needs. Implementations
/// must be shareable across threads (the WAL handle moves between
/// committers and the checkpoint runs under the same seam).
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Open `path` read+write, creating it empty if absent.
    fn open(&self, path: &Path) -> Result<Box<dyn VfsFile>>;
    /// Create `path` truncated to zero length.
    fn create(&self, path: &Path) -> Result<Box<dyn VfsFile>>;
    /// Read the whole file.
    fn read(&self, path: &Path) -> Result<Vec<u8>>;
    /// Atomically rename `from` over `to`.
    fn rename(&self, from: &Path, to: &Path) -> Result<()>;
    /// Make a completed rename of `path` durable (directory fsync).
    fn sync_parent_dir(&self, path: &Path) -> Result<()>;
}

fn io_err(e: std::io::Error) -> Error {
    Error::Io(e.to_string())
}

// ---------------------------------------------------------------------------
// RealFs: the production passthrough
// ---------------------------------------------------------------------------

/// Passthrough [`Vfs`] over `std::fs` — what [`Database::open`]
/// (crate::db::Database::open) uses.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

struct RealFile(File);

impl VfsFile for RealFile {
    fn write_all_at(&mut self, offset: u64, data: &[u8]) -> Result<()> {
        self.0.seek(SeekFrom::Start(offset)).map_err(io_err)?;
        self.0.write_all(data).map_err(io_err)
    }

    fn read_exact_at(&mut self, offset: u64, len: usize) -> Result<Vec<u8>> {
        self.0.seek(SeekFrom::Start(offset)).map_err(io_err)?;
        let mut buf = vec![0u8; len];
        self.0.read_exact(&mut buf).map_err(io_err)?;
        Ok(buf)
    }

    fn set_len(&mut self, len: u64) -> Result<()> {
        self.0.set_len(len).map_err(io_err)
    }

    fn sync_data(&mut self) -> Result<()> {
        self.0.sync_data().map_err(io_err)
    }
}

impl Vfs for RealFs {
    fn open(&self, path: &Path) -> Result<Box<dyn VfsFile>> {
        let f = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .open(path)
            .map_err(io_err)?;
        Ok(Box::new(RealFile(f)))
    }

    fn create(&self, path: &Path) -> Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile(File::create(path).map_err(io_err)?)))
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>> {
        let mut f = File::open(path).map_err(io_err)?;
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes).map_err(io_err)?;
        Ok(bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        std::fs::rename(from, to).map_err(io_err)
    }

    fn sync_parent_dir(&self, path: &Path) -> Result<()> {
        // Failures must propagate: the checkpointer treats an un-synced
        // rename as fatal (it poisons the log), because until the
        // directory entry is durable the log's name still resolves to
        // the pre-checkpoint inode after a crash. Swallowing an EMFILE/
        // EACCES here would re-open exactly that hole.
        let Some(dir) = path.parent() else { return Ok(()) };
        let d = File::open(dir).map_err(io_err)?;
        d.sync_all().map_err(io_err)
    }
}

// ---------------------------------------------------------------------------
// SimFs: deterministic fault injection
// ---------------------------------------------------------------------------

/// How much of the faulting operation's effect reaches the volatile image
/// before a [`FaultKind::Crash`] freezes the filesystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Torn {
    /// Nothing: the operation had no effect at all.
    None,
    /// A write applies half its payload (a torn append); namespace
    /// operations (rename, create, set_len) behave like [`Torn::None`].
    Half,
    /// The full effect applied, but the acknowledgment (and everything
    /// after) was lost.
    Full,
}

/// The fault a [`SimFs`] injects at a configured operation index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The one operation fails (a write lands a short half-prefix first,
    /// simulating a short write); later operations succeed.
    FailOp,
    /// The operation tears per [`Torn`] and the filesystem freezes: every
    /// subsequent operation fails until [`SimFs::reboot`].
    Crash(Torn),
}

/// Simulated inode number.
type Ino = u64;

/// How a volatile namespace entry came to be — the distinction that
/// drives rename durability: `Created` entries persist with the file's
/// own `sync_data` (journaled-filesystem pragmatism: `creat` + `fsync`
/// makes a file findable), `Renamed` entries persist only through
/// `sync_parent_dir`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryKind {
    Created,
    Renamed,
}

struct SimState {
    /// Volatile namespace: what the running process resolves.
    namespace: HashMap<PathBuf, (Ino, EntryKind)>,
    /// Volatile inode contents (a handle writes here even after its
    /// name was renamed away — fd semantics).
    inodes: HashMap<Ino, Vec<u8>>,
    /// Durable namespace: the directory as a crash would find it.
    durable_ns: HashMap<PathBuf, Ino>,
    /// Durable inode contents (synced data only).
    durable_inodes: HashMap<Ino, Vec<u8>>,
    next_ino: Ino,
    /// Every operation, in order, for debugging and sweep sizing.
    ops: Vec<String>,
    faults: Vec<(u64, FaultKind)>,
    crashed: bool,
    sync_delay: Duration,
    /// Clock the sync delay sleeps on — the engine's `Clock` seam, so a
    /// `SimClock` sweep covers slow-disk modeling without wall time.
    clock: ClockHandle,
}

impl Default for SimState {
    fn default() -> Self {
        SimState {
            namespace: HashMap::new(),
            inodes: HashMap::new(),
            durable_ns: HashMap::new(),
            durable_inodes: HashMap::new(),
            next_ino: 0,
            ops: Vec::new(),
            faults: Vec::new(),
            crashed: false,
            sync_delay: Duration::ZERO,
            clock: RealClock::handle(),
        }
    }
}

/// What the fault gate decided for the current operation.
enum Gate {
    Proceed,
    Fail,
    Crash(Torn),
}

impl SimState {
    /// Count the operation, record its trace line, and decide its fate.
    fn gate(&mut self, desc: String) -> Result<Gate> {
        if self.crashed {
            return Err(Error::Io("simfs: crashed".into()));
        }
        let idx = self.ops.len() as u64;
        self.ops.push(desc);
        match self.faults.iter().find(|(at, _)| *at == idx) {
            Some((_, FaultKind::FailOp)) => Ok(Gate::Fail),
            Some((_, FaultKind::Crash(torn))) => {
                self.crashed = true;
                Ok(Gate::Crash(*torn))
            }
            None => Ok(Gate::Proceed),
        }
    }

    fn injected(&self, what: &str) -> Error {
        Error::Io(format!("simfs: injected fault at {what}"))
    }

    /// Allocate a fresh inode backed by empty content.
    fn alloc_ino(&mut self) -> Ino {
        let ino = self.next_ino;
        self.next_ino += 1;
        self.inodes.insert(ino, Vec::new());
        ino
    }

    /// Resolve a path in the volatile namespace.
    fn resolve(&self, path: &Path) -> Option<Ino> {
        self.namespace.get(path).map(|(ino, _)| *ino)
    }
}

/// The fault-injecting in-memory [`Vfs`]. Cloning shares the filesystem —
/// hand clones to [`Database::open_on`](crate::db::Database::open_on) and
/// keep one for fault control and inspection.
#[derive(Clone)]
pub struct SimFs {
    state: Arc<Mutex<SimState>>,
}

impl Default for SimFs {
    fn default() -> Self {
        SimFs {
            state: Arc::new(Mutex::with_rank("sim_fs", lockrank::VFS_SIM, SimState::default())),
        }
    }
}

impl fmt::Debug for SimFs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock();
        f.debug_struct("SimFs")
            .field("files", &st.namespace.keys().collect::<Vec<_>>())
            .field("ops", &st.ops.len())
            .field("crashed", &st.crashed)
            .finish()
    }
}

impl SimFs {
    pub fn new() -> Self {
        SimFs::default()
    }

    /// Inject `kind` at operation index `at` (indices are 0-based in the
    /// order operations reach the filesystem; see [`SimFs::ops`]),
    /// replacing any previously configured faults.
    pub fn set_fault(&self, at: u64, kind: FaultKind) {
        self.state.lock().faults = vec![(at, kind)];
    }

    /// Add a fault without clearing the existing ones — multi-fault
    /// schedules model "transient error swallowed, then crash later"
    /// (e.g. a checkpoint's failed directory sync followed by a crash
    /// before the next one).
    pub fn add_fault(&self, at: u64, kind: FaultKind) {
        self.state.lock().faults.push((at, kind));
    }

    pub fn clear_fault(&self) {
        self.state.lock().faults.clear();
    }

    /// Sleep this long inside every `sync_data` — lets benches and stress
    /// tests model a disk whose fsync dominates commit latency. The sleep
    /// goes through the clock installed by [`SimFs::set_clock`] (real
    /// time by default).
    pub fn set_sync_delay(&self, delay: Duration) {
        self.state.lock().sync_delay = delay;
    }

    /// Route the sync delay's sleep through `clock` — with a
    /// [`SimClock`](swan_pool::SimClock) the slow-disk model runs in
    /// virtual time, so fault sweeps cover it deterministically.
    pub fn set_clock(&self, clock: ClockHandle) {
        self.state.lock().clock = clock;
    }

    /// Number of operations performed so far (the sweep bound).
    pub fn op_count(&self) -> u64 {
        self.state.lock().ops.len() as u64
    }

    /// The recorded operation trace (`"<kind> <path> ..."` per line).
    pub fn ops(&self) -> Vec<String> {
        self.state.lock().ops.clone()
    }

    /// True once a [`FaultKind::Crash`] has frozen the filesystem.
    pub fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// The volatile image of a file, if it exists.
    pub fn file_bytes(&self, path: impl AsRef<Path>) -> Option<Vec<u8>> {
        let st = self.state.lock();
        st.resolve(path.as_ref()).and_then(|ino| st.inodes.get(&ino).cloned())
    }

    /// The durable image of a file: what a crash-then-reboot would find
    /// at this name (durable directory entry resolved through durable
    /// inode contents).
    pub fn durable_bytes(&self, path: impl AsRef<Path>) -> Option<Vec<u8>> {
        let st = self.state.lock();
        st.durable_ns
            .get(path.as_ref())
            .map(|ino| st.durable_inodes.get(ino).cloned().unwrap_or_default())
    }

    /// The disk a restarted process would mount. `keep_unsynced = false`
    /// is the adversarial kernel (only explicitly synced directory
    /// entries and inode contents survived); `true` is the lucky one
    /// (every volatile byte and namespace change made it down). The
    /// returned filesystem is fresh: fault cleared, op counter zeroed,
    /// both images seeded from the chosen view.
    pub fn reboot(&self, keep_unsynced: bool) -> SimFs {
        let st = self.state.lock();
        let image: HashMap<PathBuf, Vec<u8>> = if keep_unsynced {
            st.namespace
                .iter()
                .map(|(p, (ino, _))| {
                    (p.clone(), st.inodes.get(ino).cloned().unwrap_or_default())
                })
                .collect()
        } else {
            st.durable_ns
                .iter()
                .map(|(p, ino)| {
                    (p.clone(), st.durable_inodes.get(ino).cloned().unwrap_or_default())
                })
                .collect()
        };
        drop(st);
        let fresh = SimFs::new();
        for (path, bytes) in image {
            fresh.install_file(path, bytes);
        }
        fresh
    }

    /// Reboot with a *per-file* choice of which unsynced writes survived.
    ///
    /// Real kernels flush dirty pages per inode with no cross-file
    /// ordering: a crash can persist file B's unsynced writes while
    /// losing file A's, even if A was written first. `keep_unsynced`
    /// decides, per path, whether that file's volatile image (true) or
    /// only its durable image (false) made it to disk. `reboot(b)` is
    /// the uniform special case `reboot_mixed(|_| b)`. Paths are drawn
    /// from the union of both namespaces, so a file created-but-unsynced
    /// appears only when its closure returns true, and a file
    /// deleted-but-unsynced *survives the delete* when it returns false.
    pub fn reboot_mixed(&self, keep_unsynced: impl Fn(&Path) -> bool) -> SimFs {
        let st = self.state.lock();
        let mut paths: Vec<PathBuf> = st.namespace.keys().cloned().collect();
        for p in st.durable_ns.keys() {
            if !paths.contains(p) {
                paths.push(p.clone());
            }
        }
        let mut image: HashMap<PathBuf, Vec<u8>> = HashMap::new();
        for path in paths {
            if keep_unsynced(&path) {
                if let Some((ino, _)) = st.namespace.get(&path) {
                    image.insert(path, st.inodes.get(ino).cloned().unwrap_or_default());
                }
            } else if let Some(ino) = st.durable_ns.get(&path) {
                image.insert(path, st.durable_inodes.get(ino).cloned().unwrap_or_default());
            }
        }
        drop(st);
        let fresh = SimFs::new();
        for (path, bytes) in image {
            fresh.install_file(path, bytes);
        }
        fresh
    }

    /// Seed a file in both images (test setup helper).
    pub fn install_file(&self, path: impl Into<PathBuf>, bytes: Vec<u8>) {
        let path = path.into();
        let mut st = self.state.lock();
        let ino = st.alloc_ino();
        st.inodes.insert(ino, bytes.clone());
        st.durable_inodes.insert(ino, bytes);
        st.namespace.insert(path.clone(), (ino, EntryKind::Created));
        st.durable_ns.insert(path, ino);
    }
}

struct SimFile {
    /// Display name for the op trace (handles keep working across a
    /// rename of the name, exactly like a real fd).
    path: PathBuf,
    ino: Ino,
    state: Arc<Mutex<SimState>>,
}

impl SimFile {
    /// Run one mutating content operation through the gate. `apply`
    /// receives the inode buffer and the surviving fraction of the
    /// operation's effect.
    fn content_op(
        &mut self,
        desc: String,
        what: &str,
        apply: impl FnOnce(&mut Vec<u8>, Torn),
    ) -> Result<()> {
        let mut st = self.state.lock();
        let gate = st.gate(desc)?;
        let err = st.injected(what);
        let buf = st.inodes.entry(self.ino).or_default();
        match gate {
            Gate::Proceed => {
                apply(buf, Torn::Full);
                Ok(())
            }
            Gate::Fail => {
                apply(buf, Torn::Half);
                Err(err)
            }
            Gate::Crash(torn) => {
                apply(buf, torn);
                Err(err)
            }
        }
    }
}

impl VfsFile for SimFile {
    fn write_all_at(&mut self, offset: u64, data: &[u8]) -> Result<()> {
        let desc = format!("write {} @{offset} +{}", self.path.display(), data.len());
        self.content_op(desc, "write", |buf, torn| {
            let keep = match torn {
                Torn::None => 0,
                Torn::Half => data.len() / 2,
                Torn::Full => data.len(),
            };
            let offset = offset as usize;
            let end = offset + keep;
            if buf.len() < end {
                buf.resize(end, 0);
            }
            buf[offset..end].copy_from_slice(&data[..keep]);
        })
    }

    fn read_exact_at(&mut self, offset: u64, len: usize) -> Result<Vec<u8>> {
        let mut st = self.state.lock();
        let desc = format!("read {} @{offset} +{len}", self.path.display());
        match st.gate(desc)? {
            Gate::Proceed => {}
            // A failed or crashed read returns nothing; reads have no
            // durable side effects to tear.
            Gate::Fail | Gate::Crash(_) => return Err(st.injected("read")),
        }
        let buf = st.inodes.get(&self.ino).map(Vec::as_slice).unwrap_or(&[]);
        let start = offset as usize;
        let end = start.checked_add(len).ok_or_else(|| Error::Io("read offset overflow".into()))?;
        if end > buf.len() {
            return Err(Error::Io(format!(
                "short read: {} @{offset} +{len} beyond EOF ({})",
                self.path.display(),
                buf.len()
            )));
        }
        Ok(buf[start..end].to_vec())
    }

    fn set_len(&mut self, len: u64) -> Result<()> {
        let desc = format!("set_len {} {len}", self.path.display());
        self.content_op(desc, "set_len", |buf, torn| {
            // Truncation is atomic: it either happened or it did not.
            if torn == Torn::Full {
                buf.resize(len as usize, 0);
            }
        })
    }

    fn sync_data(&mut self) -> Result<()> {
        let delay;
        let clock;
        {
            let mut st = self.state.lock();
            match st.gate(format!("sync {}", self.path.display()))? {
                Gate::Proceed => {}
                // A failed or crashed fsync durably flushed nothing.
                Gate::Fail | Gate::Crash(_) => return Err(st.injected("sync")),
            }
            // Flush the inode's contents ...
            let content = st.inodes.get(&self.ino).cloned().unwrap_or_default();
            st.durable_inodes.insert(self.ino, content);
            // ... and, journaled-filesystem style, the directory entry
            // that *created* this file (creat + fsync makes a new file
            // findable). A `Renamed` entry is deliberately NOT flushed:
            // only `sync_parent_dir` makes a rename durable — a crash
            // before it resolves the name to the old inode.
            let created: Vec<PathBuf> = st
                .namespace
                .iter()
                .filter(|(_, (ino, kind))| *ino == self.ino && *kind == EntryKind::Created)
                .map(|(p, _)| p.clone())
                .collect();
            for path in created {
                st.durable_ns.insert(path, self.ino);
            }
            delay = st.sync_delay;
            clock = st.clock.clone();
        }
        // Off-lock, through the Clock seam: a SimClock advances virtual
        // time instantly instead of stalling the fault sweep.
        if !delay.is_zero() {
            clock.sleep(delay);
        }
        Ok(())
    }
}

impl Vfs for SimFs {
    fn open(&self, path: &Path) -> Result<Box<dyn VfsFile>> {
        let mut st = self.state.lock();
        let gate = st.gate(format!("open {}", path.display()))?;
        let ino = match gate {
            Gate::Proceed | Gate::Crash(Torn::Full) => match st.resolve(path) {
                Some(ino) => ino,
                None => {
                    let ino = st.alloc_ino();
                    st.namespace.insert(path.to_path_buf(), (ino, EntryKind::Created));
                    ino
                }
            },
            Gate::Fail | Gate::Crash(_) => return Err(st.injected("open")),
        };
        if st.crashed {
            return Err(st.injected("open"));
        }
        drop(st);
        Ok(Box::new(SimFile { path: path.to_path_buf(), ino, state: self.state.clone() }))
    }

    fn create(&self, path: &Path) -> Result<Box<dyn VfsFile>> {
        let mut st = self.state.lock();
        let gate = st.gate(format!("create {}", path.display()))?;
        let ino = match gate {
            Gate::Proceed | Gate::Crash(Torn::Full) => {
                // A truncating create is a fresh inode; a previous file
                // under this name is replaced in the volatile namespace.
                let ino = st.alloc_ino();
                st.namespace.insert(path.to_path_buf(), (ino, EntryKind::Created));
                ino
            }
            Gate::Fail | Gate::Crash(_) => return Err(st.injected("create")),
        };
        if st.crashed {
            return Err(st.injected("create"));
        }
        drop(st);
        Ok(Box::new(SimFile { path: path.to_path_buf(), ino, state: self.state.clone() }))
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>> {
        let mut st = self.state.lock();
        match st.gate(format!("read {}", path.display()))? {
            Gate::Proceed => {}
            Gate::Fail | Gate::Crash(_) => return Err(st.injected("read")),
        }
        st.resolve(path)
            .and_then(|ino| st.inodes.get(&ino).cloned())
            .ok_or_else(|| Error::Io(format!("simfs: no such file {}", path.display())))
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        let mut st = self.state.lock();
        let gate = st.gate(format!("rename {} -> {}", from.display(), to.display()))?;
        match gate {
            // Rename is atomic: all or nothing in the volatile
            // namespace. The durable namespace is untouched — only
            // `sync_parent_dir` persists it.
            Gate::Proceed | Gate::Crash(Torn::Full) => {
                let (ino, _) = st.namespace.remove(from).ok_or_else(|| {
                    Error::Io(format!("simfs: no such file {}", from.display()))
                })?;
                st.namespace.insert(to.to_path_buf(), (ino, EntryKind::Renamed));
            }
            Gate::Fail | Gate::Crash(_) => return Err(st.injected("rename")),
        }
        if st.crashed {
            return Err(st.injected("rename"));
        }
        Ok(())
    }

    fn sync_parent_dir(&self, path: &Path) -> Result<()> {
        let mut st = self.state.lock();
        match st.gate(format!("sync_dir {}", path.display()))? {
            Gate::Proceed => {}
            Gate::Fail | Gate::Crash(_) => return Err(st.injected("sync_dir")),
        }
        // Flush the directory: the durable namespace becomes exactly the
        // volatile one (renamed-over names now resolve to their new
        // inodes, unlinked names disappear), and every entry counts as
        // created from here on.
        st.durable_ns =
            st.namespace.iter().map(|(p, (ino, _))| (p.clone(), *ino)).collect();
        for entry in st.namespace.values_mut() {
            entry.1 = EntryKind::Created;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn write_sync_read_round_trip() {
        let fs = SimFs::new();
        let mut f = fs.open(&p("/a")).unwrap();
        f.write_all_at(0, b"hello").unwrap();
        f.write_all_at(5, b" world").unwrap();
        assert_eq!(fs.read(&p("/a")).unwrap(), b"hello world");
        // Nothing synced: the adversarial reboot loses it all.
        assert!(fs.reboot(false).read(&p("/a")).is_err());
        f.sync_data().unwrap();
        assert_eq!(fs.reboot(false).read(&p("/a")).unwrap(), b"hello world");
    }

    #[test]
    fn fail_op_is_transient_and_tears_the_write() {
        let fs = SimFs::new();
        let mut f = fs.open(&p("/a")).unwrap();
        f.write_all_at(0, b"base").unwrap();
        f.sync_data().unwrap();
        // Next op (index 3) fails: the write lands half its payload.
        fs.set_fault(3, FaultKind::FailOp);
        assert!(f.write_all_at(4, b"XXXX").is_err());
        assert_eq!(fs.file_bytes("/a").unwrap(), b"baseXX");
        // Later ops succeed: the rollback path can truncate and sync.
        f.set_len(4).unwrap();
        f.sync_data().unwrap();
        assert_eq!(fs.reboot(false).read(&p("/a")).unwrap(), b"base");
        assert!(!fs.crashed());
    }

    #[test]
    fn crash_freezes_everything_after() {
        let fs = SimFs::new();
        let mut f = fs.open(&p("/a")).unwrap();
        f.write_all_at(0, b"acked").unwrap();
        f.sync_data().unwrap();
        fs.set_fault(3, FaultKind::Crash(Torn::None));
        assert!(f.write_all_at(5, b"lost").is_err());
        assert!(f.sync_data().is_err(), "everything after the crash fails");
        assert!(fs.crashed());
        assert_eq!(fs.reboot(false).read(&p("/a")).unwrap(), b"acked");
        assert_eq!(fs.reboot(true).read(&p("/a")).unwrap(), b"acked");
    }

    #[test]
    fn torn_variants_control_the_crashing_write() {
        for (torn, expect) in [
            (Torn::None, &b"12345678"[..]),
            (Torn::Half, &b"12345678AB"[..]),
            (Torn::Full, &b"12345678ABCD"[..]),
        ] {
            let fs = SimFs::new();
            let mut f = fs.open(&p("/a")).unwrap();
            f.write_all_at(0, b"12345678").unwrap();
            f.sync_data().unwrap();
            fs.set_fault(3, FaultKind::Crash(torn));
            assert!(f.write_all_at(8, b"ABCD").is_err());
            // The lucky kernel flushed the torn tail; the adversarial one
            // only the synced prefix.
            assert_eq!(fs.reboot(true).read(&p("/a")).unwrap(), expect);
            assert_eq!(fs.reboot(false).read(&p("/a")).unwrap(), b"12345678");
        }
    }

    #[test]
    fn rename_durability_requires_dir_sync() {
        let fs = SimFs::new();
        let mut tmp = fs.create(&p("/wal.tmp")).unwrap();
        tmp.write_all_at(0, b"checkpoint").unwrap();
        tmp.sync_data().unwrap();
        fs.install_file("/wal", b"old-log".to_vec());
        fs.rename(&p("/wal.tmp"), &p("/wal")).unwrap();
        // Volatile view: renamed. Durable view: still the old inode.
        assert_eq!(fs.read(&p("/wal")).unwrap(), b"checkpoint");
        assert_eq!(fs.reboot(true).read(&p("/wal")).unwrap(), b"checkpoint");
        assert_eq!(fs.reboot(false).read(&p("/wal")).unwrap(), b"old-log");

        // Even fsyncing the renamed file's DATA (through a fresh handle
        // at the new name) must NOT make the rename durable: the data
        // reaches the new inode, but a crash still resolves the name to
        // the old one. This is exactly the trap a checkpointer that
        // skips the directory sync falls into.
        let mut renamed = fs.open(&p("/wal")).unwrap();
        renamed.write_all_at(10, b"+more").unwrap();
        renamed.sync_data().unwrap();
        assert_eq!(
            fs.reboot(false).read(&p("/wal")).unwrap(),
            b"old-log",
            "data fsync must not persist a rename"
        );

        fs.sync_parent_dir(&p("/wal")).unwrap();
        assert_eq!(fs.reboot(false).read(&p("/wal")).unwrap(), b"checkpoint+more");
        assert!(fs.reboot(false).read(&p("/wal.tmp")).is_err(), "tmp entry moved");
    }

    #[test]
    fn reboot_mixed_persists_unsynced_writes_per_file() {
        let fs = SimFs::new();
        fs.install_file("/wal", b"synced-wal".to_vec());
        fs.install_file("/db", b"synced-db".to_vec());
        let mut wal = fs.open(&p("/wal")).unwrap();
        wal.write_all_at(0, b"dirty--wal").unwrap();
        let mut db = fs.open(&p("/db")).unwrap();
        db.write_all_at(0, b"dirty--db").unwrap();
        // Neither file synced. The kernel flushed /db's dirty pages but
        // not /wal's — the write to /wal happened *first*, yet only the
        // later write survives: no cross-file ordering.
        let disk = fs.reboot_mixed(|path| path == p("/db"));
        assert_eq!(disk.read(&p("/wal")).unwrap(), b"synced-wal");
        assert_eq!(disk.read(&p("/db")).unwrap(), b"dirty--db");
        // Uniform closures reproduce plain reboot.
        assert_eq!(fs.reboot_mixed(|_| true).read(&p("/wal")).unwrap(), b"dirty--wal");
        assert_eq!(fs.reboot_mixed(|_| false).read(&p("/db")).unwrap(), b"synced-db");

        // Created-but-unsynced appears only for kept files; an unsynced
        // rename is undone for dropped files (source name comes back).
        let mut tmp = fs.create(&p("/tmp1")).unwrap();
        tmp.write_all_at(0, b"t").unwrap();
        drop(tmp);
        fs.rename(&p("/db"), &p("/db2")).unwrap();
        let disk = fs.reboot_mixed(|_| false);
        assert!(disk.read(&p("/tmp1")).is_err(), "unsynced create lost");
        assert_eq!(disk.read(&p("/db")).unwrap(), b"synced-db", "unsynced rename undone");
        assert!(disk.read(&p("/db2")).is_err());
        let disk = fs.reboot_mixed(|_| true);
        assert_eq!(disk.read(&p("/tmp1")).unwrap(), b"t");
        assert_eq!(disk.read(&p("/db2")).unwrap(), b"dirty--db", "kept rename stays");
        assert!(disk.read(&p("/db")).is_err());
    }

    #[test]
    fn handle_keeps_writing_its_inode_across_rename() {
        let fs = SimFs::new();
        let mut old = fs.open(&p("/wal")).unwrap();
        old.write_all_at(0, b"old").unwrap();
        old.sync_data().unwrap();
        let mut tmp = fs.create(&p("/wal.tmp")).unwrap();
        tmp.write_all_at(0, b"new").unwrap();
        tmp.sync_data().unwrap();
        fs.rename(&p("/wal.tmp"), &p("/wal")).unwrap();
        // The stale handle still addresses the unlinked old inode: its
        // writes never reach the file now living at /wal (the hazard the
        // WAL's post-checkpoint reopen-or-poison guards against).
        old.write_all_at(3, b"-stale").unwrap();
        old.sync_data().unwrap();
        assert_eq!(fs.read(&p("/wal")).unwrap(), b"new");
    }

    #[test]
    fn op_trace_is_recorded_in_order() {
        let fs = SimFs::new();
        let mut f = fs.open(&p("/a")).unwrap();
        f.write_all_at(0, b"x").unwrap();
        f.sync_data().unwrap();
        let ops = fs.ops();
        assert_eq!(ops.len(), 3);
        assert!(ops[0].starts_with("open"), "{ops:?}");
        assert!(ops[1].starts_with("write"), "{ops:?}");
        assert!(ops[2].starts_with("sync"), "{ops:?}");
        assert_eq!(fs.op_count(), 3);
    }

    #[test]
    fn reboot_resets_faults_and_counters() {
        let fs = SimFs::new();
        fs.set_fault(1, FaultKind::Crash(Torn::None));
        let mut f = fs.open(&p("/a")).unwrap();
        assert!(f.write_all_at(0, b"x").is_err());
        let fresh = fs.reboot(false);
        assert!(!fresh.crashed());
        assert_eq!(fresh.op_count(), 0);
        let mut f = fresh.open(&p("/a")).unwrap();
        f.write_all_at(0, b"ok").unwrap();
        f.sync_data().unwrap();
        assert_eq!(fresh.reboot(false).read(&p("/a")).unwrap(), b"ok");
    }

    #[test]
    fn real_fs_round_trips() {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "swan-vfs-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let fs = RealFs;
        {
            let mut f = fs.open(&path).unwrap();
            f.write_all_at(0, b"hello world").unwrap();
            f.set_len(5).unwrap();
            f.sync_data().unwrap();
        }
        assert_eq!(fs.read(&path).unwrap(), b"hello");
        let mut renamed = path.clone();
        renamed.set_extension("renamed");
        fs.rename(&path, &renamed).unwrap();
        fs.sync_parent_dir(&renamed).unwrap();
        assert_eq!(fs.read(&renamed).unwrap(), b"hello");
        let _ = std::fs::remove_file(&renamed);
    }
}
