//! Columnar storage and vectorized execution kernels.
//!
//! The row engine stores a table as `Vec<Row>` where `Row = Arc<[Value]>`:
//! every cell access pays an `Arc` pointer chase plus a `Value` enum match,
//! and a scan touches memory row-major — exactly the access pattern PERF.md
//! measured as L3-latency bound on `hash_join_sf1`. This module is the
//! column-major alternative:
//!
//! * [`ColumnData`] — typed vectors: `I64(Vec<i64>)`, `F64(Vec<f64>)`,
//!   `Bool` (bit-packed), `Text` (a dictionary of interned `Arc<str>` plus
//!   per-row `u32` ids), and `Mixed(Vec<Value>)` as the escape hatch for
//!   columns that are not type-stable.
//! * [`ColumnVec`] — a column plus its validity [`Bitmap`] (`1` = non-NULL).
//! * [`ColumnSet`] — all columns of one table, built once from the row
//!   store by [`ColumnSet::from_rows`] and cached on [`crate::storage::Table`].
//!
//! On top of the layout sit the kernels:
//!
//! * [`eval_predicate`] compiles a *bound* filter expression
//!   (comparisons, `AND`/`OR`/`NOT`, `IS [NOT] NULL`, `BETWEEN`, literal
//!   `IN`-lists over `Expr::BoundColumn` / `Expr::Literal` leaves) into a
//!   [`Verdict`]: a pair of `u64`-word bitmaps (`truth`, `known`)
//!   implementing SQL three-valued logic word-at-a-time. Selection
//!   bitmaps survive across conjuncts — an `AND` is two word-ops, not a
//!   re-scan. Unsupported expression shapes return `None` and the caller
//!   falls back to the row path, which stays the semantic oracle.
//! * [`eval_aggregate`] runs `COUNT`/`SUM`/`TOTAL`/`AVG`/`MIN`/`MAX` as
//!   tight typed loops over the member indices of one group.
//! * [`ColumnVec::group_key_at`] / [`ColumnVec::join_key_at`] extract
//!   GROUP BY / join keys straight from a column without touching rows.
//!
//! Every kernel reproduces the row path bit-for-bit — the comparison,
//! truthiness, tie-break and overflow semantics are copied from
//! [`crate::value::Value`] (`sql_eq` uses IEEE `==` so `NaN != NaN`;
//! `sort_cmp` is the total order with NaN after reals; `MIN` keeps the
//! first of equals, `MAX` the last; integer `SUM` overflow is
//! `Error::Arithmetic`). The `parallel_diff` harness diffs
//! `columnar: true` against `columnar: false` on every generated query.
//!
//! Rows are materialized from columns only at the engine boundary
//! ([`ColumnSet::materialize_row`]); the `no-row-materialize` lint in
//! `swan-analyze` keeps row construction out of the kernels in this file.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

use crate::ast::{BinaryOp, Expr, UnaryOp};
use crate::error::{Error, Result};
use crate::storage::{
    codec_err, decode_value, encode_value, get_str, get_u32, get_u64, get_u8, put_str, put_u32,
    put_u64, TextInterner,
};
use crate::value::{GroupKey, Row, Value};

// ---- bitmaps ---------------------------------------------------------------

/// A fixed-length bit vector packed into `u64` words, little-endian within
/// each word (bit `i` lives at `words[i / 64] >> (i % 64)`). Tail bits past
/// `len` are always zero — word-wise operations rely on that invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// All-zero bitmap of `len` bits.
    pub fn new_false(len: usize) -> Self {
        Bitmap { words: vec![0; len.div_ceil(64)], len }
    }

    /// All-one bitmap of `len` bits (tail bits zeroed).
    pub fn new_true(len: usize) -> Self {
        let mut b = Bitmap { words: vec![u64::MAX; len.div_ceil(64)], len };
        b.mask_tail();
        b
    }

    /// Adopt raw words for a `len`-bit map, zeroing any tail bits.
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Self {
        words.resize(len.div_ceil(64), 0);
        let mut b = Bitmap { words, len };
        b.mask_tail();
        b
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(w) = self.words.last_mut() {
                *w &= (1u64 << tail) - 1;
            }
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn set(&mut self, i: usize, v: bool) {
        let (w, b) = (i / 64, i % 64);
        if v {
            self.words[w] |= 1u64 << b;
        } else {
            self.words[w] &= !(1u64 << b);
        }
    }

    #[inline]
    pub fn get(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

// ---- typed columns ---------------------------------------------------------

/// The typed payload of one column. Slots where the validity bitmap is zero
/// hold an arbitrary placeholder (`0`, `0.0`, id `0`) and must never be
/// read as data.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Every non-NULL cell is `Value::Integer`.
    I64(Vec<i64>),
    /// Every non-NULL cell is `Value::Real`. Bit patterns (NaN payloads,
    /// `-0.0`) are preserved exactly.
    F64(Vec<f64>),
    /// Every non-NULL cell is `Value::Integer(0 | 1)` — bit-packed.
    Bool(Bitmap),
    /// Every non-NULL cell is `Value::Text`. `dict` holds one shared
    /// `Arc<str>` per distinct string (re-sharing the first row's `Arc`);
    /// `ids[i]` indexes into it.
    Text { dict: Vec<Arc<str>>, ids: Vec<u32> },
    /// Type-unstable column: the row values verbatim. Kernels decline
    /// mixed columns and the caller falls back to the row path.
    Mixed(Vec<Value>),
}

/// Strict per-variant equality: reals compare by bit pattern so NaN
/// payloads and `-0.0` round-trips are checked exactly, and `Integer(1)`
/// never equals `Real(1.0)` (unlike `Value`'s sort-order `PartialEq`).
impl PartialEq for ColumnData {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (ColumnData::I64(a), ColumnData::I64(b)) => a == b,
            (ColumnData::F64(a), ColumnData::F64(b)) => {
                a.len() == b.len()
                    && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            (ColumnData::Bool(a), ColumnData::Bool(b)) => a == b,
            (ColumnData::Text { dict: da, ids: ia }, ColumnData::Text { dict: db, ids: ib }) => {
                da == db && ia == ib
            }
            (ColumnData::Mixed(a), ColumnData::Mixed(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| value_bits_eq(x, y))
            }
            _ => false,
        }
    }
}

fn value_bits_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (Value::Integer(x), Value::Integer(y)) => x == y,
        (Value::Real(x), Value::Real(y)) => x.to_bits() == y.to_bits(),
        (Value::Text(x), Value::Text(y)) => x == y,
        _ => false,
    }
}

/// One column: typed payload plus validity bitmap (`1` = non-NULL).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnVec {
    pub data: ColumnData,
    pub validity: Bitmap,
}

/// All columns of one table, column-major. Built from the row store by
/// [`ColumnSet::from_rows`] and cached on `Table` (invalidated by every
/// mutation).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSet {
    pub columns: Vec<ColumnVec>,
    len: usize,
}

impl ColumnSet {
    /// Transpose a row store into typed columns. Each column is classified
    /// by scanning its non-NULL cells: all-`Integer` becomes `I64` (or
    /// bit-packed `Bool` when every value is 0/1), all-`Real` becomes
    /// `F64`, all-`Text` becomes a dictionary column whose entries
    /// re-share the rows' interned `Arc<str>`s, anything else stays
    /// `Mixed`. Empty and all-NULL columns classify as `I64` with an
    /// all-zero validity bitmap.
    pub fn from_rows(rows: &[Row], width: usize) -> ColumnSet {
        let len = rows.len();
        let columns = (0..width).map(|j| build_column(rows, j, len)).collect();
        ColumnSet { columns, len }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Rebuild row `i` as a shared row — the lazy view at the engine
    /// boundary. Reconstructed values are bit-identical to the originals,
    /// and text cells share the dictionary's `Arc<str>`.
    pub fn materialize_row(&self, i: usize) -> Row {
        let vals: Vec<Value> = self.columns.iter().map(|c| c.value_at(i)).collect();
        vals.into()
    }
}

fn build_column(rows: &[Row], j: usize, len: usize) -> ColumnVec {
    let (mut ints, mut reals, mut texts) = (0usize, 0usize, 0usize);
    let mut all01 = true;
    for row in rows {
        match row.get(j) {
            Some(Value::Integer(i)) => {
                ints += 1;
                if *i != 0 && *i != 1 {
                    all01 = false;
                }
            }
            Some(Value::Real(_)) => reals += 1,
            Some(Value::Text(_)) => texts += 1,
            // NULL cells — and, defensively, rows narrower than the
            // schema — count toward no class.
            _ => {}
        }
    }

    let mut validity = Bitmap::new_false(len);

    if ints + reals + texts == 0 {
        // Empty or all-NULL: representation is arbitrary, pick I64.
        return ColumnVec { data: ColumnData::I64(vec![0; len]), validity };
    }

    if reals == 0 && texts == 0 {
        if all01 {
            let mut bits = Bitmap::new_false(len);
            for (i, row) in rows.iter().enumerate() {
                if let Some(Value::Integer(v)) = row.get(j) {
                    validity.set(i, true);
                    if *v == 1 {
                        bits.set(i, true);
                    }
                }
            }
            return ColumnVec { data: ColumnData::Bool(bits), validity };
        }
        let mut vals = vec![0i64; len];
        for (i, row) in rows.iter().enumerate() {
            if let Some(Value::Integer(v)) = row.get(j) {
                validity.set(i, true);
                vals[i] = *v;
            }
        }
        return ColumnVec { data: ColumnData::I64(vals), validity };
    }

    if ints == 0 && texts == 0 {
        let mut vals = vec![0f64; len];
        for (i, row) in rows.iter().enumerate() {
            if let Some(Value::Real(v)) = row.get(j) {
                validity.set(i, true);
                vals[i] = *v;
            }
        }
        return ColumnVec { data: ColumnData::F64(vals), validity };
    }

    if ints == 0 && reals == 0 {
        let mut dict: Vec<Arc<str>> = Vec::new();
        let mut index: HashMap<Arc<str>, u32> = HashMap::new();
        let mut ids = vec![0u32; len];
        for (i, row) in rows.iter().enumerate() {
            if let Some(Value::Text(s)) = row.get(j) {
                validity.set(i, true);
                let id = match index.get(s.as_ref()) {
                    Some(id) => *id,
                    None => {
                        let id = dict.len() as u32;
                        // Re-share the row's interned Arc: one allocation
                        // per distinct string, shared with the row store.
                        dict.push(s.clone());
                        index.insert(s.clone(), id);
                        id
                    }
                };
                ids[i] = id;
            }
        }
        return ColumnVec { data: ColumnData::Text { dict, ids }, validity };
    }

    let mut vals = vec![Value::Null; len];
    for (i, row) in rows.iter().enumerate() {
        match row.get(j) {
            Some(v @ (Value::Integer(_) | Value::Real(_) | Value::Text(_))) => {
                validity.set(i, true);
                vals[i] = v.clone();
            }
            _ => {}
        }
    }
    ColumnVec { data: ColumnData::Mixed(vals), validity }
}

impl ColumnVec {
    /// The cell at row `i` as a `Value` (bit-identical to the source row).
    pub fn value_at(&self, i: usize) -> Value {
        if !self.validity.get(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::I64(v) => Value::Integer(v[i]),
            ColumnData::F64(v) => Value::Real(v[i]),
            ColumnData::Bool(b) => Value::Integer(b.get(i) as i64),
            ColumnData::Text { dict, ids } => Value::Text(dict[ids[i] as usize].clone()),
            ColumnData::Mixed(v) => v[i].clone(),
        }
    }

    /// GROUP BY / DISTINCT key for row `i`, identical to
    /// `Value::group_key` on the materialized cell: integers and reals
    /// collapse to normalized f64 bits (`-0.0` → `0.0`, all NaNs to one
    /// pattern), NULL keys group together.
    pub fn group_key_at(&self, i: usize) -> GroupKey {
        if !self.validity.get(i) {
            return GroupKey::Null;
        }
        match &self.data {
            ColumnData::I64(v) => GroupKey::Num((v[i] as f64).to_bits()),
            ColumnData::F64(v) => {
                let r = v[i];
                let r = if r == 0.0 { 0.0 } else { r };
                let bits = if r.is_nan() { f64::NAN.to_bits() } else { r.to_bits() };
                GroupKey::Num(bits)
            }
            ColumnData::Bool(b) => GroupKey::Num((b.get(i) as i64 as f64).to_bits()),
            ColumnData::Text { dict, ids } => GroupKey::Text(dict[ids[i] as usize].clone()),
            ColumnData::Mixed(v) => v[i].group_key(),
        }
    }

    /// Hash-join key for row `i`: `None` for NULL (NULL never joins),
    /// otherwise the group key — identical to the row path's
    /// `KeySide::key`. One validity lookup; the typed arms stay small so
    /// the probe loop inlines them.
    #[inline]
    pub fn join_key_at(&self, i: usize) -> Option<GroupKey> {
        if !self.validity.get(i) {
            return None;
        }
        Some(match &self.data {
            ColumnData::I64(v) => GroupKey::Num((v[i] as f64).to_bits()),
            ColumnData::F64(v) => {
                let r = v[i];
                let r = if r == 0.0 { 0.0 } else { r };
                let bits = if r.is_nan() { f64::NAN.to_bits() } else { r.to_bits() };
                GroupKey::Num(bits)
            }
            ColumnData::Bool(b) => GroupKey::Num((b.get(i) as i64 as f64).to_bits()),
            ColumnData::Text { dict, ids } => GroupKey::Text(dict[ids[i] as usize].clone()),
            ColumnData::Mixed(v) => match v[i].group_key() {
                GroupKey::Null => return None,
                k => k,
            },
        })
    }
}

// ---- three-valued predicate verdicts ---------------------------------------

/// The vectorized result of a predicate over every row: SQL three-valued
/// logic as two bitmaps. `known.get(i)` is false when the predicate is
/// NULL/unknown for row `i`; `truth.get(i)` is meaningful only where
/// known, and `truth ⊆ known` is an invariant (a row the filter keeps is
/// exactly a set `truth` bit — unknown rows are dropped, matching
/// `truthiness() == Some(true)` on the row path).
#[derive(Debug, Clone)]
pub struct Verdict {
    truth: Vec<u64>,
    known: Vec<u64>,
    len: usize,
}

impl Verdict {
    fn new(len: usize) -> Verdict {
        let words = len.div_ceil(64);
        Verdict { truth: vec![0; words], known: vec![0; words], len }
    }

    /// Every row known with the same truth value.
    fn broadcast(len: usize, truth: bool) -> Verdict {
        let mut v = Verdict::new(len);
        for w in v.known.iter_mut() {
            *w = u64::MAX;
        }
        if truth {
            v.truth.clone_from(&v.known);
        }
        v.mask_tail();
        v
    }

    /// Every row unknown (NULL).
    fn unknown(len: usize) -> Verdict {
        Verdict::new(len)
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            let mask = (1u64 << tail) - 1;
            if let Some(w) = self.truth.last_mut() {
                *w &= mask;
            }
            if let Some(w) = self.known.last_mut() {
                *w &= mask;
            }
        }
    }

    #[inline]
    fn set_true(&mut self, i: usize) {
        let (w, b) = (i / 64, i % 64);
        self.truth[w] |= 1u64 << b;
        self.known[w] |= 1u64 << b;
    }

    #[inline]
    fn set_false(&mut self, i: usize) {
        self.known[i / 64] |= 1u64 << (i % 64);
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Is the predicate TRUE for row `i` (the filter-keep test)?
    #[inline]
    pub fn is_true(&self, i: usize) -> bool {
        (self.truth[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Is the predicate known (non-NULL) for row `i`?
    #[inline]
    pub fn is_known(&self, i: usize) -> bool {
        (self.known[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of TRUE rows — the selection cardinality.
    pub fn count_true(&self) -> usize {
        self.truth.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Row indices where the predicate is TRUE, ascending — the selection
    /// vector handed to downstream operators.
    pub fn selected(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count_true());
        for (wi, &word) in self.truth.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let b = w.trailing_zeros();
                out.push((wi as u32) * 64 + b);
                w &= w - 1;
            }
        }
        out
    }

    /// Kleene AND, word-at-a-time: TRUE iff both true; FALSE if either is
    /// known-false; otherwise unknown. Matches `eval`'s `and3`.
    fn and(mut self, other: &Verdict) -> Verdict {
        for i in 0..self.truth.len() {
            let t = self.truth[i] & other.truth[i];
            let f1 = self.known[i] & !self.truth[i];
            let f2 = other.known[i] & !other.truth[i];
            self.truth[i] = t;
            self.known[i] = t | f1 | f2;
        }
        self
    }

    /// Kleene OR: TRUE if either true; FALSE iff both known-false.
    /// Matches `eval`'s `or3`.
    fn or(mut self, other: &Verdict) -> Verdict {
        for i in 0..self.truth.len() {
            let t = self.truth[i] | other.truth[i];
            let f = (self.known[i] & !self.truth[i]) & (other.known[i] & !other.truth[i]);
            self.truth[i] = t;
            self.known[i] = t | f;
        }
        self
    }

    /// Kleene NOT: flips truth where known, unknown stays unknown.
    fn not(mut self) -> Verdict {
        for i in 0..self.truth.len() {
            self.truth[i] = self.known[i] & !self.truth[i];
        }
        self
    }
}

// ---- predicate kernels -----------------------------------------------------

/// A scalar cell view used by the comparison kernels. Exact because every
/// numeric comparison in `Value` (`sql_eq`, `sort_cmp`) goes through
/// `raw_num() -> f64` — integers and reals collapse to `f64` before any
/// comparison, so the kernel can too.
#[derive(Clone, Copy)]
enum Cell<'a> {
    Null,
    Num(f64),
    Text(&'a str),
}

/// A comparison operand after shape-checking: a whole column or a literal.
enum Operand<'a> {
    Col(&'a ColumnVec),
    Lit(&'a Value),
}

impl<'a> Operand<'a> {
    #[inline]
    fn cell(&self, i: usize) -> Cell<'a> {
        match self {
            Operand::Col(c) => {
                if !c.validity.get(i) {
                    return Cell::Null;
                }
                match &c.data {
                    ColumnData::I64(v) => Cell::Num(v[i] as f64),
                    ColumnData::F64(v) => Cell::Num(v[i]),
                    ColumnData::Bool(b) => Cell::Num(b.get(i) as i64 as f64),
                    ColumnData::Text { dict, ids } => Cell::Text(&dict[ids[i] as usize]),
                    ColumnData::Mixed(v) => value_cell(&v[i]),
                }
            }
            Operand::Lit(v) => value_cell(v),
        }
    }
}

#[inline]
fn value_cell(v: &Value) -> Cell<'_> {
    match v {
        Value::Null => Cell::Null,
        Value::Integer(i) => Cell::Num(*i as f64),
        Value::Real(r) => Cell::Num(*r),
        Value::Text(s) => Cell::Text(s),
    }
}

/// The three primitive comparisons; `!=`, `<=`, `>=` are Kleene NOTs of
/// these, mirroring `eval_binary`'s lowering through `sql_eq`/`sql_cmp`.
#[derive(Clone, Copy, PartialEq)]
enum CmpOp {
    Eq,
    Lt,
    Gt,
}

/// `sort_cmp` for non-NULL cells: text after numerics, text by bytes,
/// numerics by `partial_cmp` with the NaN fallback (NaN equal to NaN,
/// greater than any real).
#[inline]
fn cell_cmp(a: Cell<'_>, b: Cell<'_>) -> Ordering {
    match (a, b) {
        (Cell::Num(x), Cell::Num(y)) => num_cmp(x, y),
        (Cell::Text(x), Cell::Text(y)) => x.cmp(y),
        (Cell::Text(_), _) => Ordering::Greater,
        (_, Cell::Text(_)) => Ordering::Less,
        // Unreachable: callers test for Null before comparing.
        (Cell::Null, _) | (_, Cell::Null) => Ordering::Equal,
    }
}

#[inline]
fn num_cmp(x: f64, y: f64) -> Ordering {
    x.partial_cmp(&y).unwrap_or_else(|| match (x.is_nan(), y.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        _ => Ordering::Less,
    })
}

/// `sql_eq` for non-NULL cells: text equals only equal text, text never
/// equals a number, numerics by IEEE `==` (so `NaN != NaN`, unlike
/// `cell_cmp`).
#[inline]
fn cell_eq(a: Cell<'_>, b: Cell<'_>) -> bool {
    match (a, b) {
        (Cell::Num(x), Cell::Num(y)) => x == y,
        (Cell::Text(x), Cell::Text(y)) => x == y,
        _ => false,
    }
}

#[inline]
fn cell_test(op: CmpOp, a: Cell<'_>, b: Cell<'_>) -> bool {
    match op {
        CmpOp::Eq => cell_eq(a, b),
        CmpOp::Lt => cell_cmp(a, b) == Ordering::Less,
        CmpOp::Gt => cell_cmp(a, b) == Ordering::Greater,
    }
}

fn cmp_verdict(op: CmpOp, left: &Operand<'_>, right: &Operand<'_>, len: usize) -> Verdict {
    // Literal-vs-column: mirror so the column drives the loop.
    if let (Operand::Lit(_), Operand::Col(_)) = (left, right) {
        let mirrored = match op {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Lt,
        };
        return cmp_verdict(mirrored, right, left, len);
    }

    let mut out = Verdict::new(len);

    // Fast paths: typed column against a literal.
    if let (Operand::Col(c), Operand::Lit(lit)) = (left, right) {
        match (&c.data, value_cell(lit)) {
            (_, Cell::Null) => return Verdict::unknown(len),
            (ColumnData::I64(vals), Cell::Num(b)) => {
                for (i, &v) in vals.iter().enumerate() {
                    if c.validity.get(i) {
                        if cell_test(op, Cell::Num(v as f64), Cell::Num(b)) {
                            out.set_true(i);
                        } else {
                            out.set_false(i);
                        }
                    }
                }
                return out;
            }
            (ColumnData::F64(vals), Cell::Num(b)) => {
                for (i, &v) in vals.iter().enumerate() {
                    if c.validity.get(i) {
                        if cell_test(op, Cell::Num(v), Cell::Num(b)) {
                            out.set_true(i);
                        } else {
                            out.set_false(i);
                        }
                    }
                }
                return out;
            }
            (ColumnData::Text { dict, ids }, lit_cell) => {
                // Dictionary LUT: one comparison per distinct string, then
                // a gather over the ids.
                let lut: Vec<bool> = dict
                    .iter()
                    .map(|s| cell_test(op, Cell::Text(s), lit_cell))
                    .collect();
                for (i, &id) in ids.iter().enumerate() {
                    if c.validity.get(i) {
                        if lut[id as usize] {
                            out.set_true(i);
                        } else {
                            out.set_false(i);
                        }
                    }
                }
                return out;
            }
            _ => {}
        }
    }

    // General path: Cell-at-a-time (column-vs-column, Bool, Mixed).
    for i in 0..len {
        let (a, b) = (left.cell(i), right.cell(i));
        if matches!(a, Cell::Null) || matches!(b, Cell::Null) {
            continue;
        }
        if cell_test(op, a, b) {
            out.set_true(i);
        } else {
            out.set_false(i);
        }
    }
    out
}

/// Compile a *bound* predicate into a per-row [`Verdict`] over the whole
/// column set. Returns `None` when the expression contains any shape the
/// kernels don't cover (arithmetic, functions, subqueries, `LIKE`,
/// unresolved columns, ...) — the caller then runs the row path, which
/// remains the semantic oracle. Every supported shape is total (never
/// errors), so skipping the row path's short-circuiting is unobservable.
pub fn eval_predicate(expr: &Expr, set: &ColumnSet) -> Option<Verdict> {
    let len = set.len();
    match expr {
        Expr::Literal(v) => Some(match v.truthiness() {
            Some(t) => Verdict::broadcast(len, t),
            None => Verdict::unknown(len),
        }),
        Expr::BoundColumn(i) => Some(col_truthiness(set.columns.get(*i)?, len)),
        Expr::Unary { op: UnaryOp::Not, expr } => Some(eval_predicate(expr, set)?.not()),
        Expr::Binary { op, left, right } => match op {
            BinaryOp::And => {
                let l = eval_predicate(left, set)?;
                let r = eval_predicate(right, set)?;
                Some(l.and(&r))
            }
            BinaryOp::Or => {
                let l = eval_predicate(left, set)?;
                let r = eval_predicate(right, set)?;
                Some(l.or(&r))
            }
            BinaryOp::Eq | BinaryOp::NotEq | BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt
            | BinaryOp::GtEq => {
                let l = operand(left, set)?;
                let r = operand(right, set)?;
                Some(match op {
                    BinaryOp::Eq => cmp_verdict(CmpOp::Eq, &l, &r, len),
                    BinaryOp::NotEq => cmp_verdict(CmpOp::Eq, &l, &r, len).not(),
                    BinaryOp::Lt => cmp_verdict(CmpOp::Lt, &l, &r, len),
                    BinaryOp::GtEq => cmp_verdict(CmpOp::Lt, &l, &r, len).not(),
                    BinaryOp::Gt => cmp_verdict(CmpOp::Gt, &l, &r, len),
                    _ => cmp_verdict(CmpOp::Gt, &l, &r, len).not(),
                })
            }
            _ => None,
        },
        Expr::IsNull { expr, negated } => {
            let op = operand(expr, set)?;
            let mut v = Verdict::new(len);
            for w in v.known.iter_mut() {
                *w = u64::MAX;
            }
            match op {
                Operand::Col(c) => {
                    for (wi, &valid) in c.validity.words().iter().enumerate() {
                        v.truth[wi] = if *negated { valid } else { !valid };
                    }
                }
                Operand::Lit(val) => {
                    if val.is_null() != *negated {
                        v.truth.clone_from(&v.known);
                    }
                }
            }
            v.mask_tail();
            Some(v)
        }
        Expr::Between { expr, low, high, negated } => {
            let e = operand(expr, set)?;
            let lo = operand(low, set)?;
            let hi = operand(high, set)?;
            // `v >= lo AND v <= hi`, as eval lowers it through sql_cmp.
            let ge = cmp_verdict(CmpOp::Lt, &e, &lo, len).not();
            let le = cmp_verdict(CmpOp::Gt, &e, &hi, len).not();
            let v = ge.and(&le);
            Some(if *negated { v.not() } else { v })
        }
        Expr::InList { expr, list, negated } => {
            let e = operand(expr, set)?;
            let mut items = Vec::with_capacity(list.len());
            for item in list {
                match item {
                    Expr::Literal(v) => items.push(v),
                    _ => return None,
                }
            }
            Some(in_list_verdict(&e, &items, *negated, len))
        }
        _ => None,
    }
}

/// Truthiness of a bare column in boolean position: non-zero numerics are
/// TRUE, text parses through `as_f64` (non-numeric text is unknown, like
/// the row path), NULL is unknown.
fn col_truthiness(col: &ColumnVec, len: usize) -> Verdict {
    let mut out = Verdict::new(len);
    match &col.data {
        ColumnData::I64(vals) => {
            for (i, &v) in vals.iter().enumerate() {
                if col.validity.get(i) {
                    if v != 0 {
                        out.set_true(i);
                    } else {
                        out.set_false(i);
                    }
                }
            }
        }
        ColumnData::F64(vals) => {
            for (i, &v) in vals.iter().enumerate() {
                if col.validity.get(i) {
                    if v != 0.0 {
                        out.set_true(i);
                    } else {
                        out.set_false(i);
                    }
                }
            }
        }
        ColumnData::Bool(bits) => {
            // truth = value, known = validity: a 0/1 column's truthiness
            // is the bit itself.
            for (wi, &valid) in col.validity.words().iter().enumerate() {
                out.truth[wi] = bits.words()[wi] & valid;
                out.known[wi] = valid;
            }
        }
        ColumnData::Text { dict, ids } => {
            let lut: Vec<Option<bool>> = dict
                .iter()
                .map(|s| crate::value::parse_text_f64(s).map(|v| v != 0.0))
                .collect();
            for (i, &id) in ids.iter().enumerate() {
                if col.validity.get(i) {
                    match lut[id as usize] {
                        Some(true) => out.set_true(i),
                        Some(false) => out.set_false(i),
                        None => {}
                    }
                }
            }
        }
        ColumnData::Mixed(vals) => {
            for (i, v) in vals.iter().enumerate() {
                if col.validity.get(i) {
                    match v.truthiness() {
                        Some(true) => out.set_true(i),
                        Some(false) => out.set_false(i),
                        None => {}
                    }
                }
            }
        }
    }
    out
}

/// `expr [NOT] IN (literals...)`, reproducing eval's loop exactly: a NULL
/// probe is unknown; a hit answers immediately; a NULL list item makes a
/// miss unknown instead of false.
fn in_list_verdict(e: &Operand<'_>, items: &[&Value], negated: bool, len: usize) -> Verdict {
    let cells: Vec<Cell<'_>> = items.iter().map(|v| value_cell(v)).collect();
    let has_null_item = cells.iter().any(|c| matches!(c, Cell::Null));
    let mut out = Verdict::new(len);
    for i in 0..len {
        let v = e.cell(i);
        if matches!(v, Cell::Null) {
            continue;
        }
        let hit = cells
            .iter()
            .any(|c| !matches!(c, Cell::Null) && cell_eq(v, *c));
        if hit {
            if negated {
                out.set_false(i);
            } else {
                out.set_true(i);
            }
        } else if !has_null_item {
            if negated {
                out.set_true(i);
            } else {
                out.set_false(i);
            }
        }
        // miss with a NULL item: unknown — leave both bits clear.
    }
    out
}

fn operand<'a>(expr: &'a Expr, set: &'a ColumnSet) -> Option<Operand<'a>> {
    match expr {
        Expr::Literal(v) => Some(Operand::Lit(v)),
        Expr::BoundColumn(i) => set.columns.get(*i).map(Operand::Col),
        _ => None,
    }
}

// ---- aggregate kernels -----------------------------------------------------

/// The aggregates with typed-loop kernels. `DISTINCT`, `GROUP_CONCAT` and
/// mixed columns stay on the row path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKernel {
    Count,
    Sum,
    Total,
    Avg,
    Min,
    Max,
}

impl AggKernel {
    /// Map an (uppercased) aggregate name to its kernel.
    pub fn from_name(upper: &str) -> Option<AggKernel> {
        match upper {
            "COUNT" => Some(AggKernel::Count),
            "SUM" => Some(AggKernel::Sum),
            "TOTAL" => Some(AggKernel::Total),
            "AVG" => Some(AggKernel::Avg),
            "MIN" => Some(AggKernel::Min),
            "MAX" => Some(AggKernel::Max),
            _ => None,
        }
    }
}

/// Run one aggregate over the non-NULL cells of `col` at the member row
/// indices of a group, in member order. Returns `None` for `Mixed`
/// columns — the caller falls back to `compute_aggregate`, whose
/// semantics every kernel reproduces exactly: integer `SUM` uses checked
/// addition (`Error::Arithmetic` on overflow), real accumulation happens
/// in member order (float addition is not associative), text cells sum
/// through `as_f64().unwrap_or(0.0)`, `MIN` keeps the first of
/// `sort_cmp`-equal values and `MAX` the last (visible for `0.0`/`-0.0`),
/// and empty inputs yield NULL (`TOTAL`: `0.0`).
pub fn eval_aggregate(
    kind: AggKernel,
    col: &ColumnVec,
    members: &[usize],
) -> Option<Result<Value>> {
    match &col.data {
        ColumnData::Mixed(_) => None,
        ColumnData::I64(vals) => Some(agg_i64(kind, vals, &col.validity, members)),
        ColumnData::Bool(bits) => {
            // Bool columns hold Integer 0/1 cells; reuse the i64 kernel
            // through a per-member load.
            Some(agg_i64_by(kind, |i| bits.get(i) as i64, &col.validity, members))
        }
        ColumnData::F64(vals) => Some(agg_f64(kind, vals, &col.validity, members)),
        ColumnData::Text { dict, ids } => Some(agg_text(kind, dict, ids, &col.validity, members)),
    }
}

fn agg_i64(kind: AggKernel, vals: &[i64], validity: &Bitmap, members: &[usize]) -> Result<Value> {
    agg_i64_by(kind, |i| vals[i], validity, members)
}

fn agg_i64_by(
    kind: AggKernel,
    load: impl Fn(usize) -> i64,
    validity: &Bitmap,
    members: &[usize],
) -> Result<Value> {
    match kind {
        AggKernel::Count => {
            let n = members.iter().filter(|&&i| validity.get(i)).count();
            Ok(Value::Integer(n as i64))
        }
        AggKernel::Sum => {
            let mut acc: i64 = 0;
            let mut any = false;
            for &i in members {
                if validity.get(i) {
                    any = true;
                    acc = acc
                        .checked_add(load(i))
                        .ok_or_else(|| Error::Arithmetic("integer overflow in SUM".into()))?;
                }
            }
            Ok(if any { Value::Integer(acc) } else { Value::Null })
        }
        AggKernel::Total => {
            let mut acc = 0.0;
            for &i in members {
                if validity.get(i) {
                    acc += load(i) as f64;
                }
            }
            Ok(Value::Real(acc))
        }
        AggKernel::Avg => {
            let (mut acc, mut n) = (0.0, 0usize);
            for &i in members {
                if validity.get(i) {
                    acc += load(i) as f64;
                    n += 1;
                }
            }
            Ok(if n == 0 { Value::Null } else { Value::Real(acc / n as f64) })
        }
        AggKernel::Min => {
            let mut best: Option<i64> = None;
            for &i in members {
                if validity.get(i) {
                    let v = load(i);
                    best = Some(match best {
                        Some(b) if b <= v => b,
                        _ => v,
                    });
                }
            }
            Ok(best.map(Value::Integer).unwrap_or(Value::Null))
        }
        AggKernel::Max => {
            let mut best: Option<i64> = None;
            for &i in members {
                if validity.get(i) {
                    let v = load(i);
                    best = Some(match best {
                        Some(b) if b > v => b,
                        _ => v,
                    });
                }
            }
            Ok(best.map(Value::Integer).unwrap_or(Value::Null))
        }
    }
}

fn agg_f64(kind: AggKernel, vals: &[f64], validity: &Bitmap, members: &[usize]) -> Result<Value> {
    match kind {
        AggKernel::Count => {
            let n = members.iter().filter(|&&i| validity.get(i)).count();
            Ok(Value::Integer(n as i64))
        }
        AggKernel::Sum | AggKernel::Total | AggKernel::Avg => {
            let (mut acc, mut n) = (0.0, 0usize);
            for &i in members {
                if validity.get(i) {
                    acc += vals[i];
                    n += 1;
                }
            }
            Ok(match kind {
                AggKernel::Total => Value::Real(acc),
                _ if n == 0 => Value::Null,
                AggKernel::Avg => Value::Real(acc / n as f64),
                _ => Value::Real(acc),
            })
        }
        AggKernel::Min => {
            // min_by semantics: keep the current value on sort_cmp ties,
            // so the *first* of equals wins (0.0 vs -0.0, equal NaNs).
            let mut best: Option<f64> = None;
            for &i in members {
                if validity.get(i) {
                    let v = vals[i];
                    best = Some(match best {
                        Some(b) if num_cmp(v, b) != Ordering::Less => b,
                        _ => v,
                    });
                }
            }
            Ok(best.map(Value::Real).unwrap_or(Value::Null))
        }
        AggKernel::Max => {
            // max_by semantics: replace on Greater *or* Equal, so the
            // *last* of equals wins.
            let mut best: Option<f64> = None;
            for &i in members {
                if validity.get(i) {
                    let v = vals[i];
                    best = Some(match best {
                        Some(b) if num_cmp(v, b) == Ordering::Less => b,
                        _ => v,
                    });
                }
            }
            Ok(best.map(Value::Real).unwrap_or(Value::Null))
        }
    }
}

fn agg_text(
    kind: AggKernel,
    dict: &[Arc<str>],
    ids: &[u32],
    validity: &Bitmap,
    members: &[usize],
) -> Result<Value> {
    match kind {
        AggKernel::Count => {
            let n = members.iter().filter(|&&i| validity.get(i)).count();
            Ok(Value::Integer(n as i64))
        }
        AggKernel::Sum | AggKernel::Total | AggKernel::Avg => {
            // Text cells are never all-Integer, so SUM takes the float
            // path: `as_f64().unwrap_or(0.0)` per cell. One parse per
            // distinct string via the dictionary.
            let lut: Vec<f64> = dict
                .iter()
                .map(|s| crate::value::parse_text_f64(s).unwrap_or(0.0))
                .collect();
            let (mut acc, mut n) = (0.0, 0usize);
            for &i in members {
                if validity.get(i) {
                    acc += lut[ids[i] as usize];
                    n += 1;
                }
            }
            Ok(match kind {
                AggKernel::Total => Value::Real(acc),
                _ if n == 0 => Value::Null,
                AggKernel::Avg => Value::Real(acc / n as f64),
                _ => Value::Real(acc),
            })
        }
        AggKernel::Min => {
            let mut best: Option<u32> = None;
            for &i in members {
                if validity.get(i) {
                    let id = ids[i];
                    best = Some(match best {
                        Some(b) if dict[b as usize].as_ref() <= dict[id as usize].as_ref() => b,
                        _ => id,
                    });
                }
            }
            Ok(best
                .map(|id| Value::Text(dict[id as usize].clone()))
                .unwrap_or(Value::Null))
        }
        AggKernel::Max => {
            let mut best: Option<u32> = None;
            for &i in members {
                if validity.get(i) {
                    let id = ids[i];
                    best = Some(match best {
                        Some(b) if dict[id as usize].as_ref() < dict[b as usize].as_ref() => b,
                        _ => id,
                    });
                }
            }
            Ok(best
                .map(|id| Value::Text(dict[id as usize].clone()))
                .unwrap_or(Value::Null))
        }
    }
}

// ---- column codec ----------------------------------------------------------

const TAG_I64: u8 = 0;
const TAG_F64: u8 = 1;
const TAG_BOOL: u8 = 2;
const TAG_TEXT: u8 = 3;
const TAG_MIXED: u8 = 4;

fn put_words(buf: &mut Vec<u8>, bits: &Bitmap) {
    for &w in bits.words() {
        put_u64(buf, w);
    }
}

fn get_bitmap(buf: &[u8], pos: &mut usize, len: usize) -> Result<Bitmap> {
    let nwords = len.div_ceil(64);
    let mut words = Vec::with_capacity(nwords);
    for _ in 0..nwords {
        words.push(get_u64(buf, pos)?);
    }
    // `from_words` masks tail bits, so a malformed tail cannot smuggle
    // validity for rows past `len`.
    Ok(Bitmap::from_words(words, len))
}

/// Append a column set: `u32` column count, `u64` row count, then per
/// column a tag byte, the validity words, and the typed payload. Reals
/// are raw IEEE bits (NaN payloads and `-0.0` survive); the text payload
/// is the dictionary (each distinct string once) followed by the id
/// vector.
pub fn encode_column_set(buf: &mut Vec<u8>, set: &ColumnSet) {
    put_u32(buf, set.width() as u32);
    put_u64(buf, set.len() as u64);
    for col in &set.columns {
        match &col.data {
            ColumnData::I64(vals) => {
                buf.push(TAG_I64);
                put_words(buf, &col.validity);
                for &v in vals {
                    put_u64(buf, v as u64);
                }
            }
            ColumnData::F64(vals) => {
                buf.push(TAG_F64);
                put_words(buf, &col.validity);
                for &v in vals {
                    put_u64(buf, v.to_bits());
                }
            }
            ColumnData::Bool(bits) => {
                buf.push(TAG_BOOL);
                put_words(buf, &col.validity);
                put_words(buf, bits);
            }
            ColumnData::Text { dict, ids } => {
                buf.push(TAG_TEXT);
                put_words(buf, &col.validity);
                put_u32(buf, dict.len() as u32);
                for s in dict {
                    put_str(buf, s);
                }
                for &id in ids {
                    put_u32(buf, id);
                }
            }
            ColumnData::Mixed(vals) => {
                buf.push(TAG_MIXED);
                put_words(buf, &col.validity);
                for v in vals {
                    encode_value(buf, v);
                }
            }
        }
    }
}

/// Decode a column set, advancing `pos`. Text dictionary entries are
/// re-interned through `interner` so equal strings across columns and
/// tables share one `Arc<str>`. Any truncation, bad tag, non-UTF-8
/// string or out-of-range dictionary id is a codec error.
pub fn decode_column_set(
    buf: &[u8],
    pos: &mut usize,
    interner: &mut TextInterner,
) -> Result<ColumnSet> {
    let width = get_u32(buf, pos)? as usize;
    let len = u64_to_usize(get_u64(buf, pos)?, "row count")?;
    let mut columns = Vec::with_capacity(width.min(1024));
    for _ in 0..width {
        let tag = get_u8(buf, pos)?;
        let validity = get_bitmap(buf, pos, len)?;
        let data = match tag {
            TAG_I64 => {
                let mut vals = Vec::with_capacity(len.min(1 << 20));
                for _ in 0..len {
                    vals.push(get_u64(buf, pos)? as i64);
                }
                ColumnData::I64(vals)
            }
            TAG_F64 => {
                let mut vals = Vec::with_capacity(len.min(1 << 20));
                for _ in 0..len {
                    vals.push(f64::from_bits(get_u64(buf, pos)?));
                }
                ColumnData::F64(vals)
            }
            TAG_BOOL => ColumnData::Bool(get_bitmap(buf, pos, len)?),
            TAG_TEXT => {
                let dict_len = get_u32(buf, pos)? as usize;
                let mut dict = Vec::with_capacity(dict_len.min(1 << 20));
                for _ in 0..dict_len {
                    dict.push(interner.intern(get_str(buf, pos)?));
                }
                let mut ids = Vec::with_capacity(len.min(1 << 20));
                for i in 0..len {
                    let id = get_u32(buf, pos)?;
                    if validity.get(i) && id as usize >= dict.len() {
                        return Err(codec_err("text column id"));
                    }
                    ids.push(id);
                }
                ColumnData::Text { dict, ids }
            }
            TAG_MIXED => {
                let mut vals = Vec::with_capacity(len.min(1 << 20));
                for _ in 0..len {
                    vals.push(decode_value(buf, pos, interner)?);
                }
                ColumnData::Mixed(vals)
            }
            _ => return Err(codec_err("column tag")),
        };
        columns.push(ColumnVec { data, validity });
    }
    Ok(ColumnSet { columns, len })
}

fn u64_to_usize(v: u64, what: &str) -> Result<usize> {
    usize::try_from(v).map_err(|_| codec_err(what))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr;

    /// A deliberately nasty value pool: NULLs, 0/1, negative ints, NaN
    /// with a payload, -0.0, infinities, numeric and non-numeric text.
    fn pool() -> Vec<Value> {
        vec![
            Value::Null,
            Value::Integer(0),
            Value::Integer(1),
            Value::Integer(-7),
            Value::Integer(42),
            Value::Real(0.0),
            Value::Real(-0.0),
            Value::Real(2.5),
            Value::Real(f64::from_bits(0x7FF8_0000_DEAD_BEEF)),
            Value::Real(f64::NEG_INFINITY),
            Value::text("alpha"),
            Value::text("42"),
            Value::text("  3.5 "),
            Value::text(""),
        ]
    }

    /// Rows cycling through the pool with different offsets per column,
    /// so each column is type-mixed.
    fn mixed_rows(n: usize, width: usize) -> Vec<Row> {
        let p = pool();
        (0..n)
            .map(|i| {
                let vals: Vec<Value> =
                    (0..width).map(|j| p[(i * 3 + j * 5) % p.len()].clone()).collect();
                vals.into()
            })
            .collect()
    }

    /// Rows where each column is type-stable (exercises the typed
    /// representations): col0 I64 w/ NULLs, col1 F64 w/ specials, col2
    /// Text w/ dups, col3 Bool.
    fn typed_rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                let c0 = if i % 5 == 0 { Value::Null } else { Value::Integer(i as i64 - 3) };
                let c1 = match i % 6 {
                    0 => Value::Real(-0.0),
                    1 => Value::Real(f64::from_bits(0x7FF8_0000_DEAD_BEEF)),
                    2 => Value::Null,
                    k => Value::Real(k as f64 * 1.5 - 2.0),
                };
                let c2 = if i % 7 == 3 {
                    Value::Null
                } else {
                    Value::text(["red", "green", "blue", "42"][i % 4])
                };
                let c3 = if i % 4 == 1 { Value::Null } else { Value::Integer((i % 2) as i64) };
                vec![c0, c1, c2, c3].into()
            })
            .collect()
    }

    #[test]
    fn bitmap_tail_bits_stay_zero() {
        let mut b = Bitmap::new_true(67);
        assert_eq!(b.count_ones(), 67);
        assert_eq!(b.words().len(), 2);
        assert_eq!(b.words()[1] >> 3, 0);
        b.set(66, false);
        assert_eq!(b.count_ones(), 66);
        assert!(!b.get(66));
        assert!(b.get(65));
    }

    #[test]
    fn from_rows_round_trips_every_cell() {
        for rows in [mixed_rows(50, 4), typed_rows(64), Vec::new()] {
            let set = ColumnSet::from_rows(&rows, 4);
            assert_eq!(set.len(), rows.len());
            for (i, row) in rows.iter().enumerate() {
                let back = set.materialize_row(i);
                assert_eq!(back.len(), row.len());
                for (a, b) in row.iter().zip(back.iter()) {
                    assert!(value_bits_eq(a, b), "row {i}: {a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn typed_rows_classify_typed() {
        let rows = typed_rows(48);
        let set = ColumnSet::from_rows(&rows, 4);
        assert!(matches!(set.columns[0].data, ColumnData::I64(_)));
        assert!(matches!(set.columns[1].data, ColumnData::F64(_)));
        assert!(matches!(set.columns[2].data, ColumnData::Text { .. }));
        assert!(matches!(set.columns[3].data, ColumnData::Bool(_)));
        let mixed = ColumnSet::from_rows(&mixed_rows(30, 2), 2);
        assert!(matches!(mixed.columns[0].data, ColumnData::Mixed(_)));
    }

    #[test]
    fn text_dictionary_reshares_row_arcs() {
        let rows = typed_rows(40);
        let set = ColumnSet::from_rows(&rows, 4);
        let ColumnData::Text { dict, .. } = &set.columns[2].data else {
            panic!("expected text column");
        };
        assert_eq!(dict.len(), 4);
        // The dictionary entry is the same allocation as the first row
        // that used the string.
        for (i, row) in rows.iter().enumerate() {
            if let Value::Text(s) = &row[2] {
                let v = set.columns[2].value_at(i);
                let Value::Text(back) = v else { panic!("expected text") };
                assert!(Arc::ptr_eq(dict.iter().find(|d| *d == s).unwrap(), &back));
            }
        }
    }

    #[test]
    fn group_and_join_keys_match_value_group_key() {
        for rows in [mixed_rows(40, 3), typed_rows(64)] {
            let w = rows.first().map(|r| r.len()).unwrap_or(0);
            let set = ColumnSet::from_rows(&rows, w);
            for (i, row) in rows.iter().enumerate() {
                for j in 0..w {
                    assert_eq!(set.columns[j].group_key_at(i), row[j].group_key(), "({i},{j})");
                    let want = if row[j].is_null() { None } else { Some(row[j].group_key()) };
                    assert_eq!(set.columns[j].join_key_at(i), want, "({i},{j})");
                }
            }
        }
    }

    /// Reference evaluation of the kernel-supported predicate subset,
    /// straight through the row-path `Value` methods.
    fn reference_truth(expr: &Expr, row: &Row) -> Option<bool> {
        fn value_of(e: &Expr, row: &Row) -> Value {
            match e {
                Expr::Literal(v) => v.clone(),
                Expr::BoundColumn(i) => row[*i].clone(),
                _ => unreachable!("reference covers operands only"),
            }
        }
        fn and3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
            match (a, b) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            }
        }
        fn or3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
            match (a, b) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            }
        }
        match expr {
            Expr::Literal(v) => v.truthiness(),
            Expr::BoundColumn(i) => row[*i].truthiness(),
            Expr::Unary { op: UnaryOp::Not, expr } => reference_truth(expr, row).map(|b| !b),
            Expr::Binary { op: BinaryOp::And, left, right } => {
                and3(reference_truth(left, row), reference_truth(right, row))
            }
            Expr::Binary { op: BinaryOp::Or, left, right } => {
                or3(reference_truth(left, row), reference_truth(right, row))
            }
            Expr::Binary { op, left, right } => {
                let (a, b) = (value_of(left, row), value_of(right, row));
                match op {
                    BinaryOp::Eq => a.sql_eq(&b),
                    BinaryOp::NotEq => a.sql_eq(&b).map(|t| !t),
                    BinaryOp::Lt => a.sql_cmp(&b).map(|o| o == Ordering::Less),
                    BinaryOp::LtEq => a.sql_cmp(&b).map(|o| o != Ordering::Greater),
                    BinaryOp::Gt => a.sql_cmp(&b).map(|o| o == Ordering::Greater),
                    BinaryOp::GtEq => a.sql_cmp(&b).map(|o| o != Ordering::Less),
                    _ => unreachable!(),
                }
            }
            Expr::IsNull { expr, negated } => {
                Some(value_of(expr, row).is_null() != *negated)
            }
            Expr::Between { expr, low, high, negated } => {
                let v = value_of(expr, row);
                let ge = v.sql_cmp(&value_of(low, row)).map(|o| o != Ordering::Less);
                let le = v.sql_cmp(&value_of(high, row)).map(|o| o != Ordering::Greater);
                and3(ge, le).map(|b| b != *negated)
            }
            Expr::InList { expr, list, negated } => {
                let v = value_of(expr, row);
                if v.is_null() {
                    return None;
                }
                let mut saw_null = false;
                for item in list {
                    match v.sql_eq(&value_of(item, row)) {
                        Some(true) => return Some(!*negated),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                if saw_null {
                    None
                } else {
                    Some(*negated)
                }
            }
            _ => unreachable!("unsupported in reference"),
        }
    }

    fn check_predicate(expr: &Expr, rows: &[Row], set: &ColumnSet) {
        let verdict = eval_predicate(expr, set)
            .unwrap_or_else(|| panic!("kernel declined {expr:?}"));
        for (i, row) in rows.iter().enumerate() {
            let want = reference_truth(expr, row);
            assert_eq!(
                verdict.is_known(i),
                want.is_some(),
                "known mismatch at row {i} for {expr:?}"
            );
            assert_eq!(
                verdict.is_true(i),
                want == Some(true),
                "truth mismatch at row {i} for {expr:?}"
            );
        }
        let sel = verdict.selected();
        assert_eq!(sel.len(), verdict.count_true());
        assert!(sel.iter().all(|&i| verdict.is_true(i as usize)));
    }

    #[test]
    fn predicate_kernels_match_row_semantics() {
        let cases: Vec<(Vec<Row>, usize)> =
            vec![(mixed_rows(100, 4), 4), (typed_rows(130), 4), (Vec::new(), 4)];
        let lits = [
            Value::Integer(1),
            Value::Integer(-7),
            Value::Real(0.0),
            Value::Real(f64::NAN),
            Value::text("green"),
            Value::text("42"),
            Value::Null,
        ];
        for (rows, width) in cases {
            let set = ColumnSet::from_rows(&rows, width);
            for j in 0..width {
                let col = Box::new(Expr::BoundColumn(j));
                check_predicate(&Expr::BoundColumn(j), &rows, &set);
                check_predicate(
                    &Expr::Unary { op: UnaryOp::Not, expr: col.clone() },
                    &rows,
                    &set,
                );
                check_predicate(
                    &Expr::IsNull { expr: col.clone(), negated: j % 2 == 0 },
                    &rows,
                    &set,
                );
                for lit in &lits {
                    for op in [
                        BinaryOp::Eq,
                        BinaryOp::NotEq,
                        BinaryOp::Lt,
                        BinaryOp::LtEq,
                        BinaryOp::Gt,
                        BinaryOp::GtEq,
                    ] {
                        check_predicate(
                            &Expr::Binary {
                                op,
                                left: col.clone(),
                                right: Box::new(Expr::Literal(lit.clone())),
                            },
                            &rows,
                            &set,
                        );
                        // literal on the left exercises the mirrored path
                        check_predicate(
                            &Expr::Binary {
                                op,
                                left: Box::new(Expr::Literal(lit.clone())),
                                right: col.clone(),
                            },
                            &rows,
                            &set,
                        );
                    }
                }
                // column-vs-column
                for k in 0..width {
                    check_predicate(
                        &Expr::Binary {
                            op: BinaryOp::Eq,
                            left: col.clone(),
                            right: Box::new(Expr::BoundColumn(k)),
                        },
                        &rows,
                        &set,
                    );
                }
                for negated in [false, true] {
                    check_predicate(
                        &Expr::Between {
                            expr: col.clone(),
                            low: Box::new(Expr::Literal(Value::Integer(-2))),
                            high: Box::new(Expr::Literal(Value::Real(3.0))),
                            negated,
                        },
                        &rows,
                        &set,
                    );
                    check_predicate(
                        &Expr::InList {
                            expr: col.clone(),
                            list: vec![
                                Expr::Literal(Value::Integer(1)),
                                Expr::Literal(Value::text("blue")),
                                Expr::Literal(Value::Real(2.5)),
                            ],
                            negated,
                        },
                        &rows,
                        &set,
                    );
                    // NULL in the list makes misses unknown
                    check_predicate(
                        &Expr::InList {
                            expr: col.clone(),
                            list: vec![
                                Expr::Literal(Value::Integer(1)),
                                Expr::Literal(Value::Null),
                            ],
                            negated,
                        },
                        &rows,
                        &set,
                    );
                }
            }
            // compound AND/OR over two columns
            let p = |j: usize, lit: Value| {
                Box::new(Expr::Binary {
                    op: BinaryOp::Gt,
                    left: Box::new(Expr::BoundColumn(j)),
                    right: Box::new(Expr::Literal(lit)),
                })
            };
            for op in [BinaryOp::And, BinaryOp::Or] {
                check_predicate(
                    &Expr::Binary {
                        op,
                        left: p(0, Value::Integer(0)),
                        right: p(1, Value::Real(0.5)),
                    },
                    &rows,
                    &set,
                );
            }
        }
    }

    #[test]
    fn kernel_declines_unsupported_shapes() {
        let rows = typed_rows(8);
        let set = ColumnSet::from_rows(&rows, 4);
        let unsupported = [
            Expr::Column { table: None, name: "outer_ref".into() },
            Expr::Binary {
                op: BinaryOp::Add,
                left: Box::new(Expr::BoundColumn(0)),
                right: Box::new(Expr::Literal(Value::Integer(1))),
            },
            Expr::Function { name: "abs".into(), args: vec![], distinct: false, star: false },
        ];
        for e in &unsupported {
            assert!(eval_predicate(e, &set).is_none(), "{e:?}");
        }
        // ... and anywhere inside a conjunction
        let nested = Expr::Binary {
            op: BinaryOp::And,
            left: Box::new(Expr::BoundColumn(0)),
            right: Box::new(unsupported[1].clone()),
        };
        assert!(eval_predicate(&nested, &set).is_none());
    }

    /// Row-path aggregate reference: gather non-NULL values in member
    /// order, then reproduce compute_aggregate's arms.
    fn reference_aggregate(kind: AggKernel, col: &[Value], members: &[usize]) -> Result<Value> {
        let vals: Vec<Value> = members
            .iter()
            .map(|&i| col[i].clone())
            .filter(|v| !v.is_null())
            .collect();
        Ok(match kind {
            AggKernel::Count => Value::Integer(vals.len() as i64),
            AggKernel::Sum | AggKernel::Total => {
                if vals.is_empty() {
                    return Ok(if kind == AggKernel::Total {
                        Value::Real(0.0)
                    } else {
                        Value::Null
                    });
                }
                if kind == AggKernel::Sum && vals.iter().all(|v| matches!(v, Value::Integer(_))) {
                    let mut acc: i64 = 0;
                    for v in &vals {
                        if let Value::Integer(i) = v {
                            acc = acc
                                .checked_add(*i)
                                .ok_or_else(|| Error::Arithmetic("integer overflow in SUM".into()))?;
                        }
                    }
                    Value::Integer(acc)
                } else {
                    let mut acc = 0.0;
                    for v in &vals {
                        acc += v.as_f64().unwrap_or(0.0);
                    }
                    Value::Real(acc)
                }
            }
            AggKernel::Avg => {
                if vals.is_empty() {
                    return Ok(Value::Null);
                }
                let sum: f64 = vals.iter().map(|v| v.as_f64().unwrap_or(0.0)).sum();
                Value::Real(sum / vals.len() as f64)
            }
            AggKernel::Min => vals
                .into_iter()
                .min_by(|a, b| a.sort_cmp(b))
                .unwrap_or(Value::Null),
            AggKernel::Max => vals
                .into_iter()
                .max_by(|a, b| a.sort_cmp(b))
                .unwrap_or(Value::Null),
        })
    }

    #[test]
    fn aggregate_kernels_match_row_semantics() {
        let rows = typed_rows(90);
        let set = ColumnSet::from_rows(&rows, 4);
        let member_sets: Vec<Vec<usize>> = vec![
            (0..90).collect(),
            (0..90).step_by(3).collect(),
            vec![5, 4, 3, 2, 1],
            vec![2], // the NULL real row
            vec![],
        ];
        let kinds = [
            AggKernel::Count,
            AggKernel::Sum,
            AggKernel::Total,
            AggKernel::Avg,
            AggKernel::Min,
            AggKernel::Max,
        ];
        for j in 0..4 {
            let cells: Vec<Value> = (0..90).map(|i| set.columns[j].value_at(i)).collect();
            for members in &member_sets {
                for kind in kinds {
                    let got = eval_aggregate(kind, &set.columns[j], members)
                        .expect("typed column has a kernel");
                    let want = reference_aggregate(kind, &cells, members);
                    match (got, want) {
                        (Ok(a), Ok(b)) => {
                            assert!(value_bits_eq(&a, &b), "{kind:?} col {j}: {a:?} vs {b:?}")
                        }
                        (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
                        (a, b) => panic!("{kind:?} col {j}: {a:?} vs {b:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn integer_sum_overflow_is_an_arithmetic_error() {
        let rows: Vec<Row> = vec![
            vec![Value::Integer(i64::MAX)].into(),
            vec![Value::Integer(1)].into(),
        ];
        let set = ColumnSet::from_rows(&rows, 1);
        let got = eval_aggregate(AggKernel::Sum, &set.columns[0], &[0, 1]).unwrap();
        match got {
            Err(Error::Arithmetic(msg)) => assert_eq!(msg, "integer overflow in SUM"),
            other => panic!("expected overflow, got {other:?}"),
        }
    }

    #[test]
    fn min_max_tie_break_matches_min_by_max_by() {
        // 0.0 and -0.0 are sort_cmp-equal: MIN keeps the first, MAX the
        // last — bit-for-bit what min_by/max_by do on the row path.
        let rows: Vec<Row> = vec![
            vec![Value::Real(-0.0)].into(),
            vec![Value::Real(0.0)].into(),
        ];
        let set = ColumnSet::from_rows(&rows, 1);
        let min = eval_aggregate(AggKernel::Min, &set.columns[0], &[0, 1]).unwrap().unwrap();
        let max = eval_aggregate(AggKernel::Max, &set.columns[0], &[0, 1]).unwrap().unwrap();
        assert!(value_bits_eq(&min, &Value::Real(-0.0)), "{min:?}");
        assert!(value_bits_eq(&max, &Value::Real(0.0)), "{max:?}");
    }

    #[test]
    fn codec_round_trips_and_rejects_truncation() {
        for rows in [typed_rows(70), mixed_rows(33, 4), Vec::new()] {
            let set = ColumnSet::from_rows(&rows, 4);
            let mut buf = Vec::new();
            encode_column_set(&mut buf, &set);
            let mut pos = 0;
            let mut interner = TextInterner::new();
            let back = decode_column_set(&buf, &mut pos, &mut interner).unwrap();
            assert_eq!(pos, buf.len());
            assert_eq!(back, set);
            // every truncation is rejected, never panics
            for cut in 0..buf.len() {
                let mut pos = 0;
                let mut interner = TextInterner::new();
                assert!(decode_column_set(&buf[..cut], &mut pos, &mut interner).is_err());
            }
        }
    }
}
