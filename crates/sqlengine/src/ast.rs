//! Abstract syntax tree for the supported SQL dialect.
//!
//! The dialect is the subset of SQLite needed by the SWAN benchmark plus
//! hybrid-query UDFs: SELECT with joins / grouping / ordering / compound
//! operators, scalar and IN/EXISTS subqueries, CASE, CAST, LIKE and the
//! usual DDL/DML (CREATE/DROP/ALTER TABLE, INSERT, UPDATE, DELETE).

use crate::value::Value;

/// A full statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(SelectStmt),
    CreateTable(CreateTable),
    DropTable { name: String, if_exists: bool },
    AlterTableAddColumn { table: String, column: ColumnDef },
    Insert(Insert),
    Update(Update),
    Delete(Delete),
    /// `BEGIN [TRANSACTION]` — open a snapshot-isolation transaction.
    Begin,
    /// `COMMIT [TRANSACTION]` — atomically publish the open transaction.
    Commit,
    /// `ROLLBACK [TRANSACTION]` — discard the open transaction.
    Rollback,
}

impl Statement {
    /// The table this statement mutates; `None` for read-only statements
    /// and transaction control. Drives writer lock acquisition and the
    /// transaction layer's written-set tracking.
    pub fn write_target(&self) -> Option<&str> {
        match self {
            Statement::Select(_)
            | Statement::Begin
            | Statement::Commit
            | Statement::Rollback => None,
            Statement::CreateTable(ct) => Some(&ct.name),
            Statement::DropTable { name, .. } => Some(name),
            Statement::AlterTableAddColumn { table, .. } => Some(table),
            Statement::Insert(ins) => Some(&ins.table),
            Statement::Update(upd) => Some(&upd.table),
            Statement::Delete(del) => Some(&del.table),
        }
    }

    /// True for `BEGIN`/`COMMIT`/`ROLLBACK`.
    pub fn is_txn_control(&self) -> bool {
        matches!(self, Statement::Begin | Statement::Commit | Statement::Rollback)
    }
}

/// `CREATE TABLE` with optional PRIMARY KEY column list.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    pub name: String,
    pub if_not_exists: bool,
    pub columns: Vec<ColumnDef>,
    /// Table-level PRIMARY KEY (col, ...) constraint, if any.
    pub primary_key: Vec<String>,
}

/// A column definition. Declared types are advisory (SQLite-style).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub decl_type: Option<String>,
    pub not_null: bool,
    pub primary_key: bool,
    pub unique: bool,
}

/// `INSERT INTO t (cols) VALUES (...), (...)` or `INSERT INTO t SELECT ...`.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    pub table: String,
    pub columns: Vec<String>,
    pub source: InsertSource,
}

#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    Values(Vec<Vec<Expr>>),
    Select(Box<SelectStmt>),
}

/// `UPDATE t SET a = e, ... WHERE p`.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    pub table: String,
    pub assignments: Vec<(String, Expr)>,
    pub filter: Option<Expr>,
}

/// `DELETE FROM t WHERE p`.
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    pub table: String,
    pub filter: Option<Expr>,
}

/// A (possibly compound) SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub body: SelectBody,
    /// ORDER BY applies to the whole compound.
    pub order_by: Vec<OrderItem>,
    pub limit: Option<Expr>,
    pub offset: Option<Expr>,
}

/// Either a simple SELECT core or a compound of two bodies.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectBody {
    Simple(Box<SelectCore>),
    Compound { op: CompoundOp, left: Box<SelectBody>, right: Box<SelectBody> },
}

/// UNION / UNION ALL / EXCEPT / INTERSECT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompoundOp {
    Union,
    UnionAll,
    Except,
    Intersect,
}

/// The core of a simple SELECT.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectCore {
    pub distinct: bool,
    pub projection: Vec<SelectItem>,
    pub from: Option<TableRef>,
    pub filter: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
}

/// One item of the projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `t.*`
    QualifiedWildcard(String),
    /// `expr [AS alias]`
    Expr { expr: Expr, alias: Option<String> },
}

/// A FROM-clause item (table, subquery, or join tree).
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    Table { name: String, alias: Option<String> },
    Subquery { query: Box<SelectStmt>, alias: String },
    Join { left: Box<TableRef>, right: Box<TableRef>, kind: JoinKind, on: Option<Expr> },
}

/// Supported join kinds. RIGHT joins are rewritten to LEFT by the planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
    Right,
    Cross,
}

/// An ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub desc: bool,
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal constant.
    Literal(Value),
    /// Possibly-qualified column reference: `(qualifier, name)`.
    Column { table: Option<String>, name: String },
    /// A column pre-resolved to its index in the executing relation's
    /// schema. Never produced by the parser: the executor *binds* an
    /// expression to a schema once before a per-row loop
    /// ([`crate::eval::bind_columns`]), turning per-row name resolution
    /// into a direct index load. Valid only against the schema it was
    /// bound to.
    BoundColumn(usize),
    /// Unary operator application.
    Unary { op: UnaryOp, expr: Box<Expr> },
    /// Binary operator application.
    Binary { op: BinaryOp, left: Box<Expr>, right: Box<Expr> },
    /// Function call, possibly an aggregate, possibly `COUNT(*)`.
    Function { name: String, args: Vec<Expr>, distinct: bool, star: bool },
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull { expr: Box<Expr>, negated: bool },
    /// `expr [NOT] LIKE pattern` (also GLOB with `glob: true`).
    Like { expr: Box<Expr>, pattern: Box<Expr>, negated: bool, glob: bool },
    /// `expr [NOT] BETWEEN low AND high`.
    Between { expr: Box<Expr>, low: Box<Expr>, high: Box<Expr>, negated: bool },
    /// `expr [NOT] IN (list)` or `expr [NOT] IN (SELECT ...)`.
    InList { expr: Box<Expr>, list: Vec<Expr>, negated: bool },
    InSubquery { expr: Box<Expr>, query: Box<SelectStmt>, negated: bool },
    /// `[NOT] EXISTS (SELECT ...)`.
    Exists { query: Box<SelectStmt>, negated: bool },
    /// Scalar subquery returning a single value.
    ScalarSubquery(Box<SelectStmt>),
    /// `CASE [operand] WHEN .. THEN .. [ELSE ..] END`.
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
    /// `CAST(expr AS type)`.
    Cast { expr: Box<Expr>, type_name: String },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Not,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Concat,
}

impl Expr {
    /// Convenience: an unqualified column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column { table: None, name: name.into() }
    }

    /// Convenience: a qualified column reference.
    pub fn qcol(table: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column { table: Some(table.into()), name: name.into() }
    }

    /// Convenience: a literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// True if this expression subtree contains an aggregate function call.
    pub fn contains_aggregate(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if let Expr::Function { name, .. } = e {
                if crate::functions::is_aggregate(name) {
                    found = true;
                }
            }
        });
        found
    }

    /// Depth-first pre-order traversal over this expression (not descending
    /// into subqueries, which have their own scopes).
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Literal(_) | Expr::Column { .. } | Expr::BoundColumn(_) => {}
            Expr::Unary { expr, .. } => expr.walk(f),
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::Function { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::IsNull { expr, .. } => expr.walk(f),
            Expr::Like { expr, pattern, .. } => {
                expr.walk(f);
                pattern.walk(f);
            }
            Expr::Between { expr, low, high, .. } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::InSubquery { expr, .. } => expr.walk(f),
            Expr::Exists { .. } | Expr::ScalarSubquery(_) => {}
            Expr::Case { operand, branches, else_expr } => {
                if let Some(op) = operand {
                    op.walk(f);
                }
                for (w, t) in branches {
                    w.walk(f);
                    t.walk(f);
                }
                if let Some(e) = else_expr {
                    e.walk(f);
                }
            }
            Expr::Cast { expr, .. } => expr.walk(f),
        }
    }

    /// Collect the tables referenced by qualified column names in this
    /// expression (used by join-predicate pushdown).
    pub fn referenced_qualifiers(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Column { table: Some(t), .. } = e {
                if !out.iter().any(|x: &String| x.eq_ignore_ascii_case(t)) {
                    out.push(t.clone());
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_visits_every_node() {
        // 1 + (2 * col) has 5 nodes.
        let e = Expr::Binary {
            op: BinaryOp::Add,
            left: Box::new(Expr::lit(1)),
            right: Box::new(Expr::Binary {
                op: BinaryOp::Mul,
                left: Box::new(Expr::lit(2)),
                right: Box::new(Expr::col("x")),
            }),
        };
        let mut n = 0;
        e.walk(&mut |_| n += 1);
        assert_eq!(n, 5);
    }

    #[test]
    fn contains_aggregate_detects_count() {
        let e = Expr::Function { name: "COUNT".into(), args: vec![], distinct: false, star: true };
        assert!(e.contains_aggregate());
        let plain = Expr::Function {
            name: "upper".into(),
            args: vec![Expr::col("x")],
            distinct: false,
            star: false,
        };
        assert!(!plain.contains_aggregate());
    }

    #[test]
    fn referenced_qualifiers_dedupes_case_insensitively() {
        let e = Expr::Binary {
            op: BinaryOp::Eq,
            left: Box::new(Expr::qcol("T1", "a")),
            right: Box::new(Expr::qcol("t1", "b")),
        };
        assert_eq!(e.referenced_qualifiers(), vec!["T1".to_string()]);
    }
}
