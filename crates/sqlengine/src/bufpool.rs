//! # Page buffer pool
//!
//! A fixed-capacity cache of page buffers sitting between the B-tree /
//! heap layer ([`crate::btree`]) and the paged file ([`crate::pager`]).
//! Frames are keyed by page id and carry a **pin count** and a **dirty
//! flag**:
//!
//! * a *pinned* frame (`pin > 0`) is structurally exempt from eviction —
//!   the clock sweep skips it, and if every frame is pinned the pool
//!   **overcommits** (grows past capacity) rather than evicting or
//!   failing, so a deep tree descent can never lose a page out from
//!   under itself;
//! * a *dirty* frame holds the authoritative image of its page; evicting
//!   one hands the buffer back to the caller (the pager), which writes
//!   it to the page's shadow slot **without fsync** — durability comes
//!   only from the next checkpoint's fsync + meta flip;
//! * eviction is **clock** (second chance): each lookup sets the frame's
//!   reference bit, the sweep clears bits until it finds an unpinned,
//!   unreferenced victim.
//!
//! The pool's lock is ranked `BUF_POOL` (34): taken under the pager lock
//! (32), above the VFS leaf (40), so a dirty eviction may issue a page
//! write while the pool decision is already made. All pool state is
//! deterministic — frames live in a plain `Vec` in insertion order and
//! the clock hand advances deterministically — so the SimFs fault sweep
//! sees identical op sequences on every run.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use swan_pool::lockrank;

use crate::error::{Error, Result};
use crate::pager::PageBuf;

/// Default pool capacity in pages (1 MiB of 4 KiB pages).
pub const DEFAULT_POOL_PAGES: usize = 256;

/// Counters exposed for tests, the eviction-pressure crash-sim schedule,
/// and `PERF.md` numbers. `evicted_pinned` is asserted zero everywhere —
/// the clock sweep cannot select a pinned frame by construction, and the
/// counter exists so tests state that invariant positively.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Lookups served from a resident frame.
    pub hits: u64,
    /// Lookups that required a page-file read.
    pub misses: u64,
    /// Frames evicted by the clock sweep.
    pub evictions: u64,
    /// Evictions whose frame was dirty (image handed back for a shadow
    /// write).
    pub dirty_evictions: u64,
    /// Inserts that grew the pool past capacity because every frame was
    /// pinned.
    pub overcommits: u64,
    /// Evictions of a pinned frame. Always zero; tests assert it.
    pub evicted_pinned: u64,
}

struct Frame {
    id: u64,
    buf: Arc<PageBuf>,
    dirty: bool,
    pin: u32,
    referenced: bool,
    /// Dead frames (freed pages) are reusable slots.
    live: bool,
}

struct PoolState {
    frames: Vec<Frame>,
    map: HashMap<u64, usize>,
    free_slots: Vec<usize>,
    hand: usize,
    cap: usize,
    stats: PoolStats,
}

/// A dirty frame handed back by an eviction: the caller must write it to
/// the page's shadow slot before the image is lost.
pub(crate) struct Evicted {
    pub id: u64,
    pub buf: Arc<PageBuf>,
}

/// The pool itself; shared as `Arc<BufferPool>` so [`PageRef`] guards can
/// unpin on drop.
pub struct BufferPool {
    inner: Mutex<PoolState>,
}

/// A pinned page: holds the frame's buffer and keeps the frame pinned
/// until dropped.
pub(crate) struct PageRef {
    pool: Arc<BufferPool>,
    id: u64,
    pub buf: Arc<PageBuf>,
}

impl Drop for PageRef {
    fn drop(&mut self) {
        let mut st = self.pool.inner.lock();
        if let Some(&slot) = st.map.get(&self.id) {
            if let Some(f) = st.frames.get_mut(slot) {
                f.pin = f.pin.saturating_sub(1);
            }
        }
    }
}

impl BufferPool {
    pub fn new(cap: usize) -> Arc<BufferPool> {
        let cap = cap.max(2);
        Arc::new(BufferPool {
            inner: Mutex::with_rank(
                "buf_pool",
                lockrank::BUF_POOL,
                PoolState {
                    frames: Vec::new(),
                    map: HashMap::new(),
                    free_slots: Vec::new(),
                    hand: 0,
                    cap,
                    stats: PoolStats::default(),
                },
            ),
        })
    }

    /// Look up a resident page, pinning it. `None` = miss (caller reads
    /// the page file and calls [`BufferPool::insert`]).
    pub(crate) fn lookup(self: &Arc<Self>, id: u64) -> Option<PageRef> {
        let mut st = self.inner.lock();
        let slot = match st.map.get(&id) {
            Some(&s) => s,
            None => {
                st.stats.misses += 1;
                return None;
            }
        };
        st.stats.hits += 1;
        let f = st.frames.get_mut(slot)?;
        f.pin += 1;
        f.referenced = true;
        let buf = f.buf.clone();
        Some(PageRef { pool: self.clone(), id, buf })
    }

    /// Insert a freshly-read page, pinned once. Returns the guard plus a
    /// dirty victim if the insert had to evict one.
    pub(crate) fn insert(
        self: &Arc<Self>,
        id: u64,
        buf: Arc<PageBuf>,
        dirty: bool,
    ) -> (PageRef, Option<Evicted>) {
        let mut st = self.inner.lock();
        let evicted = st.place(id, buf.clone(), dirty, 1);
        (PageRef { pool: self.clone(), id, buf }, evicted)
    }

    /// Install a new image for `id` (insert-or-replace), marking the frame
    /// dirty. Returns a dirty victim if installing required an eviction.
    pub(crate) fn update(&self, id: u64, buf: Arc<PageBuf>) -> Option<Evicted> {
        let mut st = self.inner.lock();
        if let Some(&slot) = st.map.get(&id) {
            if let Some(f) = st.frames.get_mut(slot) {
                f.buf = buf;
                f.dirty = true;
                f.referenced = true;
                return None;
            }
        }
        st.place(id, buf, true, 0)
    }

    /// Drop a freed page's frame. Erroring on a pinned frame keeps the
    /// pin invariant honest: the tree layer must release its guards
    /// before freeing a page.
    pub(crate) fn drop_page(&self, id: u64) -> Result<()> {
        let mut st = self.inner.lock();
        if let Some(slot) = st.map.remove(&id) {
            if let Some(f) = st.frames.get_mut(slot) {
                if f.pin > 0 {
                    st.map.insert(id, slot);
                    return Err(Error::Internal(format!(
                        "buffer pool: freeing pinned page {id}"
                    )));
                }
                f.live = false;
                f.dirty = false;
            }
            st.free_slots.push(slot);
        }
        Ok(())
    }

    /// Snapshot every dirty frame's image (sorted by page id, so
    /// checkpoint flush order is deterministic). Flags are NOT cleared —
    /// a checkpoint flush may fail mid-loop, and a page whose shadow
    /// write never happened must stay dirty for the retry. Pair with
    /// [`Self::clear_dirty`] once the flip is durable.
    pub(crate) fn dirty_snapshot(&self) -> Vec<(u64, Arc<PageBuf>)> {
        let st = self.inner.lock();
        let mut out: Vec<(u64, Arc<PageBuf>)> = Vec::new();
        for f in st.frames.iter() {
            if f.live && f.dirty {
                out.push((f.id, f.buf.clone()));
            }
        }
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// Mark every frame clean — called only after a checkpoint's meta
    /// rename is durable. Sound because the pager is exclusive under the
    /// WAL mutex: nothing can dirty a frame between the snapshot flush
    /// and this clear.
    pub(crate) fn clear_dirty(&self) {
        let mut st = self.inner.lock();
        for f in st.frames.iter_mut() {
            f.dirty = false;
        }
    }

    /// Forget every frame (table rebuild / recovery reset).
    pub(crate) fn clear(&self) {
        let mut st = self.inner.lock();
        st.frames.clear();
        st.map.clear();
        st.free_slots.clear();
        st.hand = 0;
    }

    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats
    }

    /// Resident live frames (tests).
    pub fn resident(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether `id` is resident without touching pins or stats (tests).
    pub fn contains(&self, id: u64) -> bool {
        self.inner.lock().map.contains_key(&id)
    }
}

impl PoolState {
    /// Place a page into a frame: reuse a dead slot, grow under capacity,
    /// otherwise clock-evict (pinned frames are skipped; if everything is
    /// pinned the pool overcommits). Returns the dirty victim, if any.
    fn place(&mut self, id: u64, buf: Arc<PageBuf>, dirty: bool, pin: u32) -> Option<Evicted> {
        if let Some(&slot) = self.map.get(&id) {
            // Already resident (racing insert after a stale miss): replace
            // in place so the frame vector never holds two images of one
            // page.
            if let Some(f) = self.frames.get_mut(slot) {
                f.buf = buf;
                f.dirty = f.dirty || dirty;
                f.pin += pin;
                f.referenced = true;
                return None;
            }
        }
        let frame = Frame { id, buf, dirty, pin, referenced: true, live: true };
        if let Some(slot) = self.free_slots.pop() {
            if let Some(f) = self.frames.get_mut(slot) {
                *f = frame;
                self.map.insert(id, slot);
                return None;
            }
        }
        if self.frames.len() < self.cap {
            self.frames.push(frame);
            self.map.insert(id, self.frames.len() - 1);
            return None;
        }
        match self.clock_victim() {
            Some(slot) => {
                self.stats.evictions += 1;
                let victim = match self.frames.get_mut(slot) {
                    Some(v) => std::mem::replace(v, frame),
                    None => {
                        // Unreachable by construction; recover by growing.
                        self.stats.overcommits += 1;
                        self.frames.push(frame);
                        self.map.insert(id, self.frames.len() - 1);
                        return None;
                    }
                };
                self.map.remove(&victim.id);
                self.map.insert(id, slot);
                let evicted = (victim.live && victim.dirty)
                    .then(|| Evicted { id: victim.id, buf: victim.buf });
                if evicted.is_some() {
                    self.stats.dirty_evictions += 1;
                }
                evicted
            }
            None => {
                // Every frame is pinned: grow rather than evict a pinned
                // page (the `evicted_pinned` counter stays zero forever).
                self.stats.overcommits += 1;
                self.frames.push(frame);
                self.map.insert(id, self.frames.len() - 1);
                None
            }
        }
    }

    /// Second-chance clock sweep: at most two passes (the first clears
    /// reference bits), skipping pinned frames. `None` = all pinned.
    fn clock_victim(&mut self) -> Option<usize> {
        let n = self.frames.len();
        if n == 0 {
            return None;
        }
        for _ in 0..(2 * n) {
            let slot = self.hand;
            self.hand = (self.hand + 1) % n;
            let f = self.frames.get_mut(slot)?;
            if f.pin > 0 {
                continue;
            }
            if f.live && f.referenced {
                f.referenced = false;
                continue;
            }
            return Some(slot);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(tag: u8) -> Arc<PageBuf> {
        Arc::new(PageBuf { typ: 1, data: vec![tag; 16] })
    }

    #[test]
    fn lookup_miss_then_hit() {
        let pool = BufferPool::new(4);
        assert!(pool.lookup(7).is_none());
        let (g, ev) = pool.insert(7, buf(1), false);
        assert!(ev.is_none());
        drop(g);
        let g = pool.lookup(7).expect("resident");
        assert_eq!(g.buf.data, vec![1; 16]);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn eviction_skips_pinned_and_hands_back_dirty() {
        let pool = BufferPool::new(2);
        let (pinned, _) = pool.insert(1, buf(1), true); // stays pinned
        let (g2, _) = pool.insert(2, buf(2), true);
        drop(g2);
        // Pool full; inserting page 3 must evict page 2 (page 1 is pinned).
        let (g3, ev) = pool.insert(3, buf(3), false);
        let ev = ev.expect("dirty victim handed back");
        assert_eq!(ev.id, 2);
        assert!(pool.contains(1), "pinned page survives pressure");
        assert!(!pool.contains(2));
        drop(g3);
        drop(pinned);
        let s = pool.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.dirty_evictions, 1);
        assert_eq!(s.evicted_pinned, 0);
    }

    #[test]
    fn all_pinned_overcommits_instead_of_evicting() {
        let pool = BufferPool::new(2);
        let g1 = pool.insert(1, buf(1), false).0;
        let g2 = pool.insert(2, buf(2), false).0;
        let g3 = pool.insert(3, buf(3), false).0;
        assert!(pool.contains(1) && pool.contains(2) && pool.contains(3));
        let s = pool.stats();
        assert_eq!(s.overcommits, 1);
        assert_eq!(s.evictions, 0);
        drop((g1, g2, g3));
    }

    #[test]
    fn dirty_snapshot_is_sorted_and_survives_until_cleared() {
        let pool = BufferPool::new(8);
        pool.update(5, buf(5));
        pool.update(2, buf(2));
        pool.insert(9, buf(9), true);
        let dirty: Vec<u64> = pool.dirty_snapshot().into_iter().map(|(id, _)| id).collect();
        assert_eq!(dirty, vec![2, 5, 9]);
        // A snapshot is non-destructive: a failed flush retries the
        // same set.
        let again: Vec<u64> = pool.dirty_snapshot().into_iter().map(|(id, _)| id).collect();
        assert_eq!(again, vec![2, 5, 9]);
        pool.clear_dirty();
        assert!(pool.dirty_snapshot().is_empty());
    }

    #[test]
    fn drop_page_refuses_pinned() {
        let pool = BufferPool::new(4);
        let g = pool.insert(1, buf(1), false).0;
        assert!(pool.drop_page(1).is_err());
        drop(g);
        assert!(pool.drop_page(1).is_ok());
        assert!(!pool.contains(1));
    }
}
